//! Property-based tests for the Qcluster core, including the paper's
//! Theorem 1: T², d², and d̂ are invariant under invertible linear
//! transformations of the feature space (with the full-inverse scheme and
//! no regularization, which is the setting of the theorem).

use proptest::prelude::*;
use qcluster_core::merge::pair_t2;
use qcluster_core::{Cluster, CovarianceScheme, DisjunctiveQuery, FeedbackPoint};
use qcluster_index::QueryDistance;
use qcluster_linalg::Matrix;

/// A well-conditioned invertible 2×2 matrix: rotation + anisotropic scale.
fn linear_map() -> impl Strategy<Value = Matrix> {
    (0.0..std::f64::consts::TAU, 0.5..2.0f64, 0.5..2.0f64).prop_map(|(th, sx, sy)| {
        let rot = Matrix::from_rows(&[&[th.cos(), -th.sin()], &[th.sin(), th.cos()]]);
        let scale = Matrix::from_diagonal(&[sx, sy]);
        rot.matmul(&scale)
    })
}

/// A cluster of `n ≥ 4` distinct points with unit scores, guaranteed
/// non-degenerate covariance in both dimensions.
fn cluster_points(offset: f64) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(
        (offset - 2.0..offset + 2.0, offset - 2.0..offset + 2.0).prop_map(|(x, y)| vec![x, y]),
        6..14,
    )
    .prop_filter("needs spread in both dims", |pts| {
        let spread = |d: usize| {
            let lo = pts.iter().map(|p| p[d]).fold(f64::INFINITY, f64::min);
            let hi = pts.iter().map(|p| p[d]).fold(f64::NEG_INFINITY, f64::max);
            hi - lo
        };
        spread(0) > 0.5 && spread(1) > 0.5
    })
}

fn make_cluster(pts: &[Vec<f64>], base_id: usize) -> Cluster {
    Cluster::from_points(
        pts.iter()
            .enumerate()
            .map(|(i, p)| FeedbackPoint::new(base_id + i, p.clone(), 1.0))
            .collect(),
    )
    .unwrap()
}

fn transform_cluster(c: &Cluster, a: &Matrix) -> Cluster {
    Cluster::from_points(
        c.members()
            .iter()
            .map(|p| FeedbackPoint::new(p.id, a.matvec(&p.vector), p.score))
            .collect(),
    )
    .unwrap()
}

/// The exact full-inverse scheme of Theorem 1 (no ridge).
const EXACT: CovarianceScheme = CovarianceScheme::FullInverse { lambda: 0.0 };

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn theorem1_t2_is_invariant(
        a in linear_map(),
        p1 in cluster_points(0.0),
        p2 in cluster_points(3.0),
    ) {
        let c1 = make_cluster(&p1, 0);
        let c2 = make_cluster(&p2, 1000);
        let t2_orig = pair_t2(&c1, &c2, EXACT);
        let t2_mapped = pair_t2(
            &transform_cluster(&c1, &a),
            &transform_cluster(&c2, &a),
            EXACT,
        );
        if let (Ok(x), Ok(y)) = (t2_orig, t2_mapped) {
            prop_assert!(
                (x - y).abs() < 1e-6 * (1.0 + x.abs()),
                "T² changed under linear map: {x} vs {y}"
            );
        }
    }

    #[test]
    fn theorem1_quadratic_distance_is_invariant(
        a in linear_map(),
        pts in cluster_points(0.0),
        q in (-3.0..3.0f64, -3.0..3.0f64).prop_map(|(x, y)| vec![x, y]),
    ) {
        let c = make_cluster(&pts, 0);
        let d_orig = c.mahalanobis(&q, EXACT);
        let cm = transform_cluster(&c, &a);
        let d_mapped = cm.mahalanobis(&a.matvec(&q), EXACT);
        if let (Ok(x), Ok(y)) = (d_orig, d_mapped) {
            prop_assert!(
                (x - y).abs() < 1e-6 * (1.0 + x.abs()),
                "d² changed under linear map: {x} vs {y}"
            );
        }
    }

    #[test]
    fn disjunctive_distance_is_invariant(
        a in linear_map(),
        p1 in cluster_points(0.0),
        p2 in cluster_points(4.0),
        q in (-5.0..8.0f64, -5.0..8.0f64).prop_map(|(x, y)| vec![x, y]),
    ) {
        let c1 = make_cluster(&p1, 0);
        let c2 = make_cluster(&p2, 1000);
        let orig = DisjunctiveQuery::new(&[c1.clone(), c2.clone()], EXACT);
        let mapped = DisjunctiveQuery::new(
            &[transform_cluster(&c1, &a), transform_cluster(&c2, &a)],
            EXACT,
        );
        if let (Ok(o), Ok(m)) = (orig, mapped) {
            let d0 = o.distance(&q);
            let d1 = m.distance(&a.matvec(&q));
            prop_assert!(
                (d0 - d1).abs() < 1e-6 * (1.0 + d0.abs()),
                "disjunctive distance changed: {d0} vs {d1}"
            );
        }
    }

    #[test]
    fn merge_closed_form_equals_recompute(
        p1 in cluster_points(0.0),
        p2 in cluster_points(2.0),
        s1 in 1.0..4.0f64,
        s2 in 1.0..4.0f64,
    ) {
        let c1 = Cluster::from_points(
            p1.iter().enumerate()
                .map(|(i, p)| FeedbackPoint::new(i, p.clone(), s1))
                .collect(),
        ).unwrap();
        let c2 = Cluster::from_points(
            p2.iter().enumerate()
                .map(|(i, p)| FeedbackPoint::new(1000 + i, p.clone(), s2))
                .collect(),
        ).unwrap();
        let merged = Cluster::merge(&c1, &c2);
        let mut union = c1.members().to_vec();
        union.extend(c2.members().iter().cloned());
        let direct = Cluster::from_points(union).unwrap();
        for (a, b) in merged.mean().iter().zip(direct.mean().iter()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
        for i in 0..2 {
            for j in 0..2 {
                prop_assert!(
                    (merged.covariance().get(i, j) - direct.covariance().get(i, j)).abs()
                        < 1e-9 * (1.0 + direct.covariance().max_abs())
                );
            }
        }
    }

    #[test]
    fn incremental_push_equals_recompute(
        pts in cluster_points(0.0),
        scores in prop::collection::vec(0.5..4.0f64, 20),
    ) {
        // Build incrementally via the Eq. 11–13 closed form…
        let mk = |i: usize, p: &Vec<f64>| {
            FeedbackPoint::new(i, p.clone(), scores[i % scores.len()])
        };
        let mut inc = Cluster::from_point(mk(0, &pts[0]));
        for (i, p) in pts.iter().enumerate().skip(1) {
            inc.push(mk(i, p));
        }
        // …and compare against full recomputation.
        let direct = Cluster::from_points(
            pts.iter().enumerate().map(|(i, p)| mk(i, p)).collect(),
        ).unwrap();
        for (a, b) in inc.mean().iter().zip(direct.mean().iter()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
        let scale = 1.0 + direct.covariance().max_abs();
        for i in 0..2 {
            for j in 0..2 {
                prop_assert!(
                    (inc.covariance().get(i, j) - direct.covariance().get(i, j)).abs()
                        < 1e-9 * scale
                );
            }
        }
        prop_assert!((inc.mass() - direct.mass()).abs() < 1e-9);
    }

    #[test]
    fn disjunctive_distance_nonnegative_and_zero_at_centers(
        p1 in cluster_points(0.0),
        p2 in cluster_points(5.0),
        q in (-10.0..10.0f64, -10.0..10.0f64).prop_map(|(x, y)| vec![x, y]),
    ) {
        let c1 = make_cluster(&p1, 0);
        let c2 = make_cluster(&p2, 1000);
        let dq = DisjunctiveQuery::new(
            &[c1.clone(), c2.clone()],
            CovarianceScheme::default_diagonal(),
        ).unwrap();
        prop_assert!(dq.distance(&q) >= 0.0);
        prop_assert!(dq.distance(c1.mean()).abs() < 1e-9);
        prop_assert!(dq.distance(c2.mean()).abs() < 1e-9);
    }

    #[test]
    fn disjunctive_lower_bound_contract(
        p1 in cluster_points(0.0),
        p2 in cluster_points(4.0),
        corner in (-6.0..6.0f64, -6.0..6.0f64),
        extent in (0.1..4.0f64, 0.1..4.0f64),
    ) {
        let dq = DisjunctiveQuery::new(
            &[make_cluster(&p1, 0), make_cluster(&p2, 1000)],
            CovarianceScheme::default_diagonal(),
        ).unwrap();
        let lo = vec![corner.0, corner.1];
        let hi = vec![corner.0 + extent.0, corner.1 + extent.1];
        let b = qcluster_index::BoundingBox::new(lo.clone(), hi.clone());
        let lb = dq.min_distance(&b);
        for i in 0..=4 {
            for j in 0..=4 {
                let x = [
                    lo[0] + extent.0 * i as f64 / 4.0,
                    lo[1] + extent.1 * j as f64 / 4.0,
                ];
                prop_assert!(dq.distance(&x) >= lb - 1e-9);
            }
        }
    }
}
