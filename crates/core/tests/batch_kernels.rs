//! Property tests for the compiled query kernels: the disjunctive
//! multipoint query and the single-cluster quadratic must evaluate
//! blocks through `distance_batch` **bit-for-bit** identically to the
//! scalar path, under both covariance schemes and at every block size —
//! and the blocked k-NN selection over them must match a full sort.

use proptest::prelude::*;
use qcluster_core::{Cluster, ClusterDistance, CovarianceScheme, DisjunctiveQuery, FeedbackPoint};
use qcluster_index::{LinearScan, Neighbor, QueryDistance};

/// A cluster's points with spread in both dimensions, so covariances
/// are non-degenerate under both schemes.
fn cluster_points(offset: f64) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(
        (offset - 2.0..offset + 2.0, offset - 2.0..offset + 2.0).prop_map(|(x, y)| vec![x, y]),
        4..10,
    )
    .prop_filter("needs spread in both dims", |pts| {
        let spread = |d: usize| {
            let lo = pts.iter().map(|p| p[d]).fold(f64::INFINITY, f64::min);
            let hi = pts.iter().map(|p| p[d]).fold(f64::NEG_INFINITY, f64::max);
            hi - lo
        };
        spread(0) > 0.5 && spread(1) > 0.5
    })
}

fn make_cluster(pts: &[Vec<f64>], base_id: usize, score: f64) -> Cluster {
    Cluster::from_points(
        pts.iter()
            .enumerate()
            .map(|(i, p)| FeedbackPoint::new(base_id + i, p.clone(), score))
            .collect(),
    )
    .unwrap()
}

fn schemes() -> [CovarianceScheme; 2] {
    [
        CovarianceScheme::default_diagonal(),
        CovarianceScheme::default_full(),
    ]
}

fn flatten(pts: &[Vec<f64>]) -> Vec<f64> {
    pts.iter().flatten().copied().collect()
}

fn batch_in_blocks<Q: QueryDistance>(
    query: &Q,
    flat: &[f64],
    dim: usize,
    n: usize,
    block_size: usize,
) -> Vec<f64> {
    let mut out = vec![0.0; n];
    let mut start = 0;
    while start < n {
        let count = block_size.min(n - start);
        query.distance_batch(
            &flat[start * dim..(start + count) * dim],
            dim,
            &mut out[start..start + count],
        );
        start += count;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn disjunctive_batch_matches_scalar_bitwise(
        p1 in cluster_points(0.0),
        p2 in cluster_points(4.0),
        s1 in 0.5..4.0f64,
        s2 in 0.5..4.0f64,
        corpus in prop::collection::vec(
            (-6.0..10.0f64, -6.0..10.0f64).prop_map(|(x, y)| vec![x, y]),
            1..300,
        ),
    ) {
        let clusters = [make_cluster(&p1, 0, s1), make_cluster(&p2, 1000, s2)];
        let flat = flatten(&corpus);
        for scheme in schemes() {
            let q = DisjunctiveQuery::new(&clusters, scheme).unwrap();
            for bs in [1usize, 7, 256, corpus.len()] {
                let got = batch_in_blocks(&q, &flat, 2, corpus.len(), bs);
                for (p, &d) in got.iter().enumerate() {
                    prop_assert_eq!(
                        d,
                        q.distance(&corpus[p]),
                        "{:?} block_size={} p={}",
                        scheme,
                        bs,
                        p
                    );
                }
            }
        }
    }

    #[test]
    fn cluster_distance_batch_matches_scalar_bitwise(
        p1 in cluster_points(0.0),
        corpus in prop::collection::vec(
            (-6.0..6.0f64, -6.0..6.0f64).prop_map(|(x, y)| vec![x, y]),
            1..300,
        ),
    ) {
        let c = make_cluster(&p1, 0, 1.0);
        let flat = flatten(&corpus);
        for scheme in schemes() {
            let q = ClusterDistance::new(&c, scheme).unwrap();
            for bs in [1usize, 7, 256, corpus.len()] {
                let got = batch_in_blocks(&q, &flat, 2, corpus.len(), bs);
                for (p, &d) in got.iter().enumerate() {
                    prop_assert_eq!(d, q.distance(&corpus[p]));
                }
            }
        }
    }

    #[test]
    fn blocked_knn_with_disjunctive_query_equals_full_sort(
        p1 in cluster_points(0.0),
        p2 in cluster_points(4.0),
        corpus in prop::collection::vec(
            (-6.0..10.0f64, -6.0..10.0f64).prop_map(|(x, y)| vec![x, y]),
            1..300,
        ),
        k in 1usize..25,
    ) {
        let clusters = [make_cluster(&p1, 0, 1.0), make_cluster(&p2, 1000, 1.0)];
        let scan = LinearScan::new(&corpus);
        for scheme in schemes() {
            let q = DisjunctiveQuery::new(&clusters, scheme).unwrap();
            let got = scan.knn(&q, k);
            let mut want: Vec<Neighbor> = corpus
                .iter()
                .enumerate()
                .map(|(id, p)| Neighbor { id, distance: q.distance(p) })
                .collect();
            want.sort_by(|a, b| {
                a.distance
                    .partial_cmp(&b.distance)
                    .expect("non-NaN distances")
                    .then_with(|| a.id.cmp(&b.id))
            });
            want.truncate(k);
            prop_assert_eq!(got, want);
        }
    }
}
