//! Covariance handling schemes (paper Sec. 3.2 and Fig. 6).
//!
//! The quadratic forms at the heart of Qcluster need `S⁻¹`. The paper
//! evaluates two estimators:
//!
//! - the **inverse matrix scheme** (MindReader-style): invert the full
//!   covariance, which captures arbitrarily-oriented ellipsoids but is
//!   expensive and singular whenever a cluster has fewer points than
//!   dimensions;
//! - the **diagonal matrix scheme** (MARS-style): keep only the diagonal,
//!   i.e. axis-aligned ellipsoids, which "avoids the singularity problem
//!   and its performance is similar to that of the method using an inverse
//!   matrix" (Sec. 4). The paper adopts it after Fig. 6 shows its far lower
//!   CPU cost.
//!
//! Both schemes ridge-regularize with `lambda` before inverting so that
//! singleton clusters (zero covariance) still define a finite, sharply
//! peaked ellipsoid.

use qcluster_linalg::{LinalgError, Matrix};

/// How a cluster covariance is turned into the `S⁻¹` of the quadratic form.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CovarianceScheme {
    /// Invert the full covariance (plus `lambda·I` ridge).
    FullInverse {
        /// Ridge added to the diagonal before inversion.
        lambda: f64,
    },
    /// Invert only the diagonal: `w_i = 1 / (σ_i² + lambda)`.
    Diagonal {
        /// Ridge added to each variance before inversion.
        lambda: f64,
    },
}

impl CovarianceScheme {
    /// The paper's adopted configuration: diagonal with a small ridge.
    pub const fn default_diagonal() -> Self {
        CovarianceScheme::Diagonal { lambda: 1e-3 }
    }

    /// The MindReader-style configuration.
    pub const fn default_full() -> Self {
        CovarianceScheme::FullInverse { lambda: 1e-3 }
    }

    /// The ridge parameter.
    pub fn lambda(&self) -> f64 {
        match *self {
            CovarianceScheme::FullInverse { lambda } | CovarianceScheme::Diagonal { lambda } => {
                lambda
            }
        }
    }

    /// Materializes `S⁻¹` from a covariance matrix under this scheme.
    ///
    /// # Errors
    ///
    /// [`LinalgError::Singular`] when the regularized full matrix still
    /// fails to invert (pathological `lambda = 0` inputs).
    pub fn invert(&self, cov: &Matrix) -> Result<InverseCovariance, LinalgError> {
        match *self {
            CovarianceScheme::Diagonal { lambda } => {
                let weights = cov
                    .diagonal()
                    .iter()
                    .map(|&v| 1.0 / (v.max(0.0) + lambda))
                    .collect();
                Ok(InverseCovariance::Diagonal(weights))
            }
            CovarianceScheme::FullInverse { lambda } => {
                let mut reg = cov.clone();
                reg.regularize(lambda);
                Ok(InverseCovariance::Full(reg.inverse()?))
            }
        }
    }
}

impl Default for CovarianceScheme {
    fn default() -> Self {
        Self::default_diagonal()
    }
}

/// A materialized `S⁻¹` that can evaluate its quadratic form.
#[derive(Debug, Clone)]
pub enum InverseCovariance {
    /// Diagonal inverse: per-dimension weights.
    Diagonal(Vec<f64>),
    /// Dense inverse matrix.
    Full(Matrix),
}

impl InverseCovariance {
    /// Evaluates `(x − c)ᵀ S⁻¹ (x − c)`.
    ///
    /// `scratch` must have length `x.len()` (only used by the dense path).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches.
    pub fn quadratic_form(&self, x: &[f64], c: &[f64], scratch: &mut [f64]) -> f64 {
        match self {
            InverseCovariance::Diagonal(w) => {
                qcluster_linalg::vecops::weighted_sq_euclidean(x, c, w)
            }
            InverseCovariance::Full(m) => {
                qcluster_linalg::vecops::quadratic_form(x, c, m.as_slice(), scratch)
            }
        }
    }

    /// A scale factor `s` such that `quadratic_form(x, c) ≥ s · ‖x − c‖²`
    /// for all `x` — the smallest eigenvalue for the dense case, the
    /// smallest weight for the diagonal case. Used to lower-bound the
    /// quadratic form over a bounding box during tree search.
    pub fn min_eigenvalue(&self) -> f64 {
        match self {
            InverseCovariance::Diagonal(w) => {
                w.iter().fold(f64::INFINITY, |m, &v| m.min(v)).max(0.0)
            }
            InverseCovariance::Full(m) => {
                match qcluster_linalg::SymmetricEigen::decompose(m) {
                    Ok(e) => e.eigenvalues.last().copied().unwrap_or(0.0).max(0.0),
                    // A non-symmetric numerical artifact: fall back to the
                    // always-valid (if loose) bound of zero.
                    Err(_) => 0.0,
                }
            }
        }
    }

    /// Per-dimension weights when diagonal, `None` when dense.
    pub fn diagonal_weights(&self) -> Option<&[f64]> {
        match self {
            InverseCovariance::Diagonal(w) => Some(w),
            InverseCovariance::Full(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_scheme_inverts_elementwise() {
        let cov = Matrix::from_rows(&[&[4.0, 9.0], &[9.0, 1.0]]);
        let inv = CovarianceScheme::Diagonal { lambda: 0.0 }
            .invert(&cov)
            .unwrap();
        let w = inv.diagonal_weights().unwrap();
        assert!((w[0] - 0.25).abs() < 1e-12);
        assert!((w[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn full_scheme_matches_true_inverse() {
        let cov = Matrix::from_rows(&[&[2.0, 0.5], &[0.5, 1.0]]);
        let inv = CovarianceScheme::FullInverse { lambda: 0.0 }
            .invert(&cov)
            .unwrap();
        let mut scratch = [0.0; 2];
        let q = inv.quadratic_form(&[1.0, 0.0], &[0.0, 0.0], &mut scratch);
        // True inverse of [[2,.5],[.5,1]] has (0,0) entry 1/1.75·1 = 0.5714…
        let true_inv = cov.inverse().unwrap();
        assert!((q - true_inv.get(0, 0)).abs() < 1e-12);
    }

    #[test]
    fn zero_covariance_is_regularized() {
        let cov = Matrix::zeros(3, 3);
        for scheme in [
            CovarianceScheme::Diagonal { lambda: 1e-3 },
            CovarianceScheme::FullInverse { lambda: 1e-3 },
        ] {
            let inv = scheme.invert(&cov).unwrap();
            let mut scratch = [0.0; 3];
            let q = inv.quadratic_form(&[1.0, 0.0, 0.0], &[0.0; 3], &mut scratch);
            assert!((q - 1000.0).abs() < 1e-6, "{scheme:?}: q={q}");
        }
    }

    #[test]
    fn min_eigenvalue_bounds_quadratic_form() {
        let cov = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]);
        for scheme in [
            CovarianceScheme::Diagonal { lambda: 0.1 },
            CovarianceScheme::FullInverse { lambda: 0.1 },
        ] {
            let inv = scheme.invert(&cov).unwrap();
            let lam = inv.min_eigenvalue();
            let mut scratch = [0.0; 2];
            for &x in &[[1.0, 0.0], [0.3, -0.7], [2.0, 2.0]] {
                let q = inv.quadratic_form(&x, &[0.0, 0.0], &mut scratch);
                let n2 = x[0] * x[0] + x[1] * x[1];
                assert!(q >= lam * n2 - 1e-9, "{scheme:?}");
            }
        }
    }

    #[test]
    fn negative_variances_are_clamped() {
        // Round-off can make a variance slightly negative; the diagonal
        // scheme must still produce positive weights.
        let cov = Matrix::from_diagonal(&[-1e-15, 1.0]);
        let inv = CovarianceScheme::Diagonal { lambda: 1e-3 }
            .invert(&cov)
            .unwrap();
        let w = inv.diagonal_weights().unwrap();
        assert!(w[0] > 0.0 && w[0] <= 1000.0);
    }
}
