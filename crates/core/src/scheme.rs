//! Covariance handling schemes (paper Sec. 3.2 and Fig. 6).
//!
//! The quadratic forms at the heart of Qcluster need `S⁻¹`. The paper
//! evaluates two estimators:
//!
//! - the **inverse matrix scheme** (MindReader-style): invert the full
//!   covariance, which captures arbitrarily-oriented ellipsoids but is
//!   expensive and singular whenever a cluster has fewer points than
//!   dimensions;
//! - the **diagonal matrix scheme** (MARS-style): keep only the diagonal,
//!   i.e. axis-aligned ellipsoids, which "avoids the singularity problem
//!   and its performance is similar to that of the method using an inverse
//!   matrix" (Sec. 4). The paper adopts it after Fig. 6 shows its far lower
//!   CPU cost.
//!
//! Both schemes ridge-regularize with `lambda` before inverting so that
//! singleton clusters (zero covariance) still define a finite, sharply
//! peaked ellipsoid.

use qcluster_linalg::{LinalgError, Matrix};

/// How a cluster covariance is turned into the `S⁻¹` of the quadratic form.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CovarianceScheme {
    /// Invert the full covariance (plus `lambda·I` ridge).
    FullInverse {
        /// Ridge added to the diagonal before inversion.
        lambda: f64,
    },
    /// Invert only the diagonal: `w_i = 1 / (σ_i² + lambda)`.
    Diagonal {
        /// Ridge added to each variance before inversion.
        lambda: f64,
    },
}

impl CovarianceScheme {
    /// The paper's adopted configuration: diagonal with a small ridge.
    pub const fn default_diagonal() -> Self {
        CovarianceScheme::Diagonal { lambda: 1e-3 }
    }

    /// The MindReader-style configuration.
    pub const fn default_full() -> Self {
        CovarianceScheme::FullInverse { lambda: 1e-3 }
    }

    /// The ridge parameter.
    pub fn lambda(&self) -> f64 {
        match *self {
            CovarianceScheme::FullInverse { lambda } | CovarianceScheme::Diagonal { lambda } => {
                lambda
            }
        }
    }

    /// Materializes `S⁻¹` from a covariance matrix under this scheme.
    ///
    /// # Errors
    ///
    /// [`LinalgError::Singular`] when the regularized full matrix still
    /// fails to invert (pathological `lambda = 0` inputs).
    pub fn invert(&self, cov: &Matrix) -> Result<InverseCovariance, LinalgError> {
        match *self {
            CovarianceScheme::Diagonal { lambda } => {
                let weights = cov
                    .diagonal()
                    .iter()
                    .map(|&v| 1.0 / (v.max(0.0) + lambda))
                    .collect();
                Ok(InverseCovariance::Diagonal(weights))
            }
            CovarianceScheme::FullInverse { lambda } => {
                let mut reg = cov.clone();
                reg.regularize(lambda);
                Ok(InverseCovariance::Full(reg.inverse()?))
            }
        }
    }
}

impl Default for CovarianceScheme {
    fn default() -> Self {
        Self::default_diagonal()
    }
}

/// A materialized `S⁻¹` that can evaluate its quadratic form.
#[derive(Debug, Clone)]
pub enum InverseCovariance {
    /// Diagonal inverse: per-dimension weights.
    Diagonal(Vec<f64>),
    /// Dense inverse matrix.
    Full(Matrix),
}

impl InverseCovariance {
    /// Evaluates `(x − c)ᵀ S⁻¹ (x − c)`.
    ///
    /// `scratch` must have length `x.len()` (only used by the dense path).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches.
    pub fn quadratic_form(&self, x: &[f64], c: &[f64], scratch: &mut [f64]) -> f64 {
        match self {
            InverseCovariance::Diagonal(w) => {
                qcluster_linalg::vecops::weighted_sq_euclidean(x, c, w)
            }
            InverseCovariance::Full(m) => {
                qcluster_linalg::vecops::quadratic_form(x, c, m.as_slice(), scratch)
            }
        }
    }

    /// Evaluates the quadratic form for every point of a contiguous
    /// row-major block, reusing `scratch` (length `dim`) across all of
    /// them — one arena borrow per block instead of one per point.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches.
    pub fn quadratic_form_batch(
        &self,
        block: &[f64],
        dim: usize,
        c: &[f64],
        scratch: &mut [f64],
        out: &mut [f64],
    ) {
        match self {
            InverseCovariance::Diagonal(w) => {
                qcluster_linalg::vecops::weighted_sq_euclidean_batch(block, dim, c, w, out)
            }
            InverseCovariance::Full(m) => qcluster_linalg::vecops::quadratic_form_batch(
                block,
                dim,
                c,
                m.as_slice(),
                scratch,
                out,
            ),
        }
    }

    /// A scale factor `s` such that `quadratic_form(x, c) ≥ s · ‖x − c‖²`
    /// for all `x` — the smallest eigenvalue for the dense case, the
    /// smallest weight for the diagonal case. Used to lower-bound the
    /// quadratic form over a bounding box during tree search.
    pub fn min_eigenvalue(&self) -> f64 {
        match self {
            InverseCovariance::Diagonal(w) => {
                w.iter().fold(f64::INFINITY, |m, &v| m.min(v)).max(0.0)
            }
            InverseCovariance::Full(m) => {
                match qcluster_linalg::SymmetricEigen::decompose(m) {
                    Ok(e) => e.eigenvalues.last().copied().unwrap_or(0.0).max(0.0),
                    // Eigendecomposition can fail on a numerically
                    // asymmetric artifact or non-convergence. Zero would
                    // still be valid but collapses the box lower bound and
                    // disables all tree pruning; the Gershgorin circle
                    // bound stays cheap and is usually far tighter.
                    Err(_) => gershgorin_lower_bound(m).max(0.0),
                }
            }
        }
    }

    /// Per-dimension weights when diagonal, `None` when dense.
    pub fn diagonal_weights(&self) -> Option<&[f64]> {
        match self {
            InverseCovariance::Diagonal(w) => Some(w),
            InverseCovariance::Full(_) => None,
        }
    }
}

/// Gershgorin-circle lower bound on the smallest eigenvalue of the
/// symmetric part `S = (M + Mᵀ)/2`:
/// `λ_min(S) ≥ min_i ( s_ii − Σ_{j≠i} |s_ij| )`.
///
/// Because `xᵀMx = xᵀSx` for every `x`, this is a valid scale factor for
/// the quadratic-form bound even when `M` itself is (numerically) not
/// quite symmetric — exactly the case where eigendecomposition refuses
/// to run.
fn gershgorin_lower_bound(m: &Matrix) -> f64 {
    let p = m.rows();
    let mut bound = f64::INFINITY;
    for i in 0..p {
        let mut radius = 0.0;
        for j in 0..p {
            if j != i {
                radius += (m.get(i, j) + m.get(j, i)).abs() / 2.0;
            }
        }
        bound = bound.min(m.get(i, i) - radius);
    }
    if bound.is_finite() {
        bound
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_scheme_inverts_elementwise() {
        let cov = Matrix::from_rows(&[&[4.0, 9.0], &[9.0, 1.0]]);
        let inv = CovarianceScheme::Diagonal { lambda: 0.0 }
            .invert(&cov)
            .unwrap();
        let w = inv.diagonal_weights().unwrap();
        assert!((w[0] - 0.25).abs() < 1e-12);
        assert!((w[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn full_scheme_matches_true_inverse() {
        let cov = Matrix::from_rows(&[&[2.0, 0.5], &[0.5, 1.0]]);
        let inv = CovarianceScheme::FullInverse { lambda: 0.0 }
            .invert(&cov)
            .unwrap();
        let mut scratch = [0.0; 2];
        let q = inv.quadratic_form(&[1.0, 0.0], &[0.0, 0.0], &mut scratch);
        // True inverse of [[2,.5],[.5,1]] has (0,0) entry 1/1.75·1 = 0.5714…
        let true_inv = cov.inverse().unwrap();
        assert!((q - true_inv.get(0, 0)).abs() < 1e-12);
    }

    #[test]
    fn zero_covariance_is_regularized() {
        let cov = Matrix::zeros(3, 3);
        for scheme in [
            CovarianceScheme::Diagonal { lambda: 1e-3 },
            CovarianceScheme::FullInverse { lambda: 1e-3 },
        ] {
            let inv = scheme.invert(&cov).unwrap();
            let mut scratch = [0.0; 3];
            let q = inv.quadratic_form(&[1.0, 0.0, 0.0], &[0.0; 3], &mut scratch);
            assert!((q - 1000.0).abs() < 1e-6, "{scheme:?}: q={q}");
        }
    }

    #[test]
    fn min_eigenvalue_bounds_quadratic_form() {
        let cov = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]);
        for scheme in [
            CovarianceScheme::Diagonal { lambda: 0.1 },
            CovarianceScheme::FullInverse { lambda: 0.1 },
        ] {
            let inv = scheme.invert(&cov).unwrap();
            let lam = inv.min_eigenvalue();
            let mut scratch = [0.0; 2];
            for &x in &[[1.0, 0.0], [0.3, -0.7], [2.0, 2.0]] {
                let q = inv.quadratic_form(&x, &[0.0, 0.0], &mut scratch);
                let n2 = x[0] * x[0] + x[1] * x[1];
                assert!(q >= lam * n2 - 1e-9, "{scheme:?}");
            }
        }
    }

    #[test]
    fn asymmetric_full_matrix_falls_back_to_gershgorin() {
        // Asymmetry beyond the eigen solver's tolerance forces the
        // fallback path; the regression this guards: that path used to
        // return 0.0, disabling tree pruning entirely.
        let m = Matrix::from_rows(&[&[4.0, 0.5], &[0.2, 3.0]]);
        assert!(qcluster_linalg::SymmetricEigen::decompose(&m).is_err());
        let inv = InverseCovariance::Full(m);
        let lam = inv.min_eigenvalue();
        // Symmetrized off-diagonal is 0.35; rows give 3.65 and 2.65.
        assert!((lam - 2.65).abs() < 1e-12, "lam={lam}");

        // The bound must stay valid: q(x) ≥ λ·‖x − c‖² on a sample grid.
        let mut scratch = [0.0; 2];
        for i in -5..=5 {
            for j in -5..=5 {
                let x = [0.4 * i as f64, 0.4 * j as f64];
                let q = inv.quadratic_form(&x, &[0.0, 0.0], &mut scratch);
                let n2 = x[0] * x[0] + x[1] * x[1];
                assert!(q >= lam * n2 - 1e-9, "x={x:?} q={q} bound={}", lam * n2);
            }
        }
    }

    #[test]
    fn gershgorin_fallback_clamps_at_zero() {
        // Dominant off-diagonals drive the circle bound negative; the
        // clamp keeps min_eigenvalue a usable (if loose) scale of 0.
        let m = Matrix::from_rows(&[&[1.0, 10.0], &[9.0, 1.0]]);
        assert!(qcluster_linalg::SymmetricEigen::decompose(&m).is_err());
        assert_eq!(InverseCovariance::Full(m).min_eigenvalue(), 0.0);
    }

    #[test]
    fn quadratic_form_batch_matches_scalar_for_both_variants() {
        let cov = Matrix::from_rows(&[&[2.0, 0.5], &[0.5, 1.0]]);
        let block = [0.3, -0.7, 1.5, 0.2, -0.9, -0.1, 0.0, 0.0, 2.0, 2.0];
        let c = [0.1, -0.3];
        for scheme in [
            CovarianceScheme::Diagonal { lambda: 0.01 },
            CovarianceScheme::FullInverse { lambda: 0.01 },
        ] {
            let inv = scheme.invert(&cov).unwrap();
            let mut scratch = [0.0; 2];
            let mut out = [0.0; 5];
            inv.quadratic_form_batch(&block, 2, &c, &mut scratch, &mut out);
            for p in 0..5 {
                let x = &block[p * 2..(p + 1) * 2];
                assert_eq!(
                    out[p],
                    inv.quadratic_form(x, &c, &mut scratch),
                    "{scheme:?}"
                );
            }
        }
    }

    #[test]
    fn negative_variances_are_clamped() {
        // Round-off can make a variance slightly negative; the diagonal
        // scheme must still produce positive weights.
        let cov = Matrix::from_diagonal(&[-1e-15, 1.0]);
        let inv = CovarianceScheme::Diagonal { lambda: 1e-3 }
            .invert(&cov)
            .unwrap();
        let w = inv.diagonal_weights().unwrap();
        assert!(w[0] > 0.0 && w[0] <= 1000.0);
    }
}
