//! Dimension reduction inside the engine's statistics (paper Sec. 4.4).
//!
//! The paper shows that all three quadratic measures — T² (Eq. 17), the
//! classification function d̂, and the distance d² — are invariant under
//! the full principal-component rotation `G`, and that in PCA coordinates
//! they collapse to **simple diagonal quadratic forms**
//! `Σ_j (z_xj − z_yj)² / λ_j` (Eq. 18), "which saves a lot of computing
//! efforts". Keeping only the first `k` components (chosen so the retained
//! variance is at least `1 − ε`, ε ≤ 0.15; Sec. 4.4.4) gives the truncated
//! form of Eq. 19 — an approximation whose error is controlled by the
//! discarded eigenvalue mass.
//!
//! [`ReducedSpace`] packages that machinery: fit a PCA basis on the
//! relevant data (or the whole corpus), project points and clusters, and
//! evaluate the Eq. 18/19 quadratic forms directly from the eigenvalue
//! spectrum.

use crate::cluster::Cluster;
use crate::error::Result;
use crate::types::FeedbackPoint;
use qcluster_linalg::{Matrix, Pca};
use qcluster_stats::hotelling::t2_from_quadratic_form;

/// A fitted PCA coordinate system with the spectrum-weighted quadratic
/// forms of paper Eqs. 18–19.
#[derive(Debug, Clone)]
pub struct ReducedSpace {
    pca: Pca,
    /// Number of retained components `k ≤ p`.
    k: usize,
    /// Inverse eigenvalues `1/λ_j` of the retained components (ridged).
    inv_lambda: Vec<f64>,
}

impl ReducedSpace {
    /// Fits the space on a data matrix (one observation per row), keeping
    /// the smallest `k` whose retained variance reaches `1 − epsilon`
    /// (Sec. 4.4.4; the paper uses ε ≤ 0.15).
    ///
    /// # Errors
    ///
    /// Propagates PCA fitting failures.
    ///
    /// # Panics
    ///
    /// Panics for `epsilon` outside `[0, 1)`.
    pub fn fit(data: &Matrix, epsilon: f64) -> Result<ReducedSpace> {
        let pca = Pca::fit(data)?;
        let k = pca.components_for_epsilon(epsilon);
        Ok(Self::from_pca(pca, k))
    }

    /// Fits with an explicit component count (the synthetic experiments
    /// fix `k` to 12/9/6/3).
    ///
    /// # Errors
    ///
    /// Propagates PCA fitting failures.
    ///
    /// # Panics
    ///
    /// Panics when `k` is zero or exceeds the dimensionality.
    pub fn fit_with_k(data: &Matrix, k: usize) -> Result<ReducedSpace> {
        let pca = Pca::fit(data)?;
        assert!(k >= 1 && k <= pca.input_dim(), "k out of range");
        Ok(Self::from_pca(pca, k))
    }

    fn from_pca(pca: Pca, k: usize) -> ReducedSpace {
        let inv_lambda = pca.eigenvalues()[..k]
            .iter()
            .map(|&l| 1.0 / l.max(1e-12))
            .collect();
        ReducedSpace { pca, k, inv_lambda }
    }

    /// Retained component count `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Retained variance ratio of the `k` components.
    pub fn retained_variance(&self) -> f64 {
        self.pca.retained_variance(self.k)
    }

    /// Projects a point into the retained PCA coordinates
    /// (`z = G_kᵀ (x − mean)`).
    pub fn project(&self, x: &[f64]) -> Vec<f64> {
        self.pca.transform(x, self.k)
    }

    /// Projects a feedback point, preserving id and score.
    pub fn project_point(&self, p: &FeedbackPoint) -> FeedbackPoint {
        FeedbackPoint::new(p.id, self.project(&p.vector), p.score)
    }

    /// Rebuilds a cluster in the reduced space from its members.
    ///
    /// # Errors
    ///
    /// Propagates cluster construction failures.
    pub fn project_cluster(&self, c: &Cluster) -> Result<Cluster> {
        Cluster::from_points(c.members().iter().map(|p| self.project_point(p)).collect())
    }

    /// The spectrum-weighted squared distance of Eqs. 18–19:
    /// `Σ_{j<k} (z_xj − z_yj)² / λ_j` for two already-projected vectors.
    ///
    /// # Panics
    ///
    /// Panics when either vector's length differs from `k`.
    pub fn spectral_sq_distance(&self, zx: &[f64], zy: &[f64]) -> f64 {
        assert_eq!(zx.len(), self.k, "projected vector length mismatch");
        assert_eq!(zy.len(), self.k, "projected vector length mismatch");
        let mut acc = 0.0;
        for j in 0..self.k {
            let d = zx[j] - zy[j];
            acc += self.inv_lambda[j] * d * d;
        }
        acc
    }

    /// Hotelling's T² between two projected cluster means in the reduced
    /// space (Eq. 19): the pooled covariance is diagonalized by `G`, so
    /// the quadratic form is the spectral distance — "a simple quadratic
    /// form" needing no matrix inversion at query time.
    pub fn t2(&self, mean_x: &[f64], mass_x: f64, mean_y: &[f64], mass_y: f64) -> f64 {
        let zx = self.project(mean_x);
        let zy = self.project(mean_y);
        t2_from_quadratic_form(self.spectral_sq_distance(&zx, &zy), mass_x, mass_y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Correlated Gaussian-ish sample with an anisotropic spectrum.
    fn sample_data(n: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = Matrix::zeros(n, 4);
        for i in 0..n {
            let a: f64 = rng.gen_range(-2.0..2.0);
            let b: f64 = rng.gen_range(-0.5..0.5);
            let row = [
                a + 0.1 * b,
                0.8 * a - b,
                b + rng.gen_range(-0.1..0.1),
                rng.gen_range(-0.05..0.05),
            ];
            m.row_mut(i).copy_from_slice(&row);
        }
        m
    }

    #[test]
    fn epsilon_controls_component_count() {
        let data = sample_data(300, 1);
        let loose = ReducedSpace::fit(&data, 0.15).unwrap();
        let tight = ReducedSpace::fit(&data, 0.001).unwrap();
        assert!(loose.k() <= tight.k());
        assert!(loose.retained_variance() >= 0.85);
        assert!(tight.retained_variance() >= 0.999);
    }

    #[test]
    fn full_rank_spectral_distance_equals_mahalanobis() {
        // Eq. 18 with k = p: the spectral form must equal the quadratic
        // form under the inverse sample covariance (the PCA rotation is a
        // similarity transform — Theorem 1).
        let data = sample_data(400, 2);
        let space = ReducedSpace::fit_with_k(&data, 4).unwrap();
        // Sample covariance and its inverse (ridged the same way).
        let pca = Pca::fit(&data).unwrap();
        let mut cov = pca.components().matmul(
            &Matrix::from_diagonal(pca.eigenvalues()).matmul(&pca.components().transpose()),
        );
        cov.regularize(0.0);
        let inv = cov.inverse().unwrap();

        let x = [0.7, -0.3, 0.2, 0.01];
        let y = [-0.5, 0.4, -0.1, 0.02];
        let zx = space.project(&x);
        let zy = space.project(&y);
        let spectral = space.spectral_sq_distance(&zx, &zy);
        let diff = qcluster_linalg::vecops::sub(&x, &y);
        let mut scratch = vec![0.0; 4];
        let direct =
            qcluster_linalg::vecops::quadratic_form(&diff, &[0.0; 4], inv.as_slice(), &mut scratch);
        assert!(
            (spectral - direct).abs() < 1e-8 * (1.0 + direct),
            "{spectral} vs {direct}"
        );
    }

    #[test]
    fn truncation_error_is_bounded_by_discarded_mass() {
        // Eq. 19: dropping low-λ components can only *add* inverse-weighted
        // terms, so the truncated distance is ≤ the full distance, and for
        // points living mostly in the retained subspace they are close.
        let data = sample_data(400, 3);
        let full = ReducedSpace::fit_with_k(&data, 4).unwrap();
        let trunc = ReducedSpace::fit_with_k(&data, 2).unwrap();
        let x = [1.0, 0.8, 0.0, 0.0];
        let y = [-1.0, -0.8, 0.0, 0.0];
        let d_full = full.spectral_sq_distance(&full.project(&x), &full.project(&y));
        let d_trunc = trunc.spectral_sq_distance(&trunc.project(&x), &trunc.project(&y));
        assert!(d_trunc <= d_full + 1e-9);
        assert!(
            d_trunc > 0.5 * d_full,
            "dominant-subspace points: {d_trunc} vs {d_full}"
        );
    }

    #[test]
    fn t2_matches_stats_crate_on_projected_data() {
        // Projected-space T² (Eq. 19) equals the stats-crate two-sample T²
        // computed in the reduced coordinates with the spectrum as pooled
        // covariance — consistency of the two implementations.
        let data = sample_data(500, 4);
        let space = ReducedSpace::fit_with_k(&data, 3).unwrap();
        let mean_x = [0.5, 0.0, 0.1, 0.0];
        let mean_y = [-0.2, 0.3, 0.0, 0.05];
        let t2 = space.t2(&mean_x, 30.0, &mean_y, 30.0);
        let zx = space.project(&mean_x);
        let zy = space.project(&mean_y);
        let q = space.spectral_sq_distance(&zx, &zy);
        assert!((t2 - 15.0 * q).abs() < 1e-9); // 30·30/60 = 15
    }

    #[test]
    fn project_cluster_preserves_membership() {
        let pts = vec![
            FeedbackPoint::new(0, vec![1.0, 0.5, 0.0, 0.0], 3.0),
            FeedbackPoint::new(1, vec![0.5, 1.0, 0.1, 0.0], 1.0),
            FeedbackPoint::new(2, vec![0.8, 0.8, 0.0, 0.1], 2.0),
        ];
        let c = Cluster::from_points(pts).unwrap();
        let data = sample_data(100, 5);
        let space = ReducedSpace::fit_with_k(&data, 2).unwrap();
        let rc = space.project_cluster(&c).unwrap();
        assert_eq!(rc.len(), 3);
        assert_eq!(rc.dim(), 2);
        assert_eq!(rc.mass(), c.mass());
        assert!(rc.contains_id(1));
    }
}
