//! Qcluster — relevance feedback using adaptive clustering for CBIR.
//!
//! This crate is the reproduction of the primary contribution of
//! Kim & Chung, *Qcluster: Relevance Feedback Using Adaptive Clustering for
//! Content-Based Image Retrieval* (SIGMOD 2003).
//!
//! A complex image query is represented as **multiple disjoint clusters**
//! in feature space, each cluster a weighted Gaussian summary (centroid,
//! covariance, relevance-score mass) of the user's relevant images. Every
//! feedback iteration runs two adaptive stages instead of re-clustering
//! from scratch:
//!
//! 1. **Classification** ([`classify`]) — each newly-marked relevant image
//!    is dropped into the nearest existing cluster by a Bayesian
//!    classification function (paper Eq. 10) if it falls inside that
//!    cluster's χ² effective radius (Lemma 1), otherwise it seeds a new
//!    cluster.
//! 2. **Cluster merging** ([`merge`]) — pairs of clusters whose means are
//!    statistically indistinguishable under Hotelling's T² (Eqs. 14–16)
//!    are merged in closed form (Eqs. 11–13) until at most
//!    `target_clusters` remain.
//!
//! The refined query is the **disjunctive aggregate distance** over the
//! cluster representatives (Eq. 5), a weighted harmonic combination of
//! per-cluster quadratic forms that behaves like a fuzzy OR: an image close
//! to *any* cluster scores well. It plugs straight into the
//! [`qcluster_index`] tree search.
//!
//! # Quick start
//!
//! ```
//! use qcluster_core::{FeedbackPoint, QclusterConfig, QclusterEngine};
//!
//! // Two disjoint groups of relevant images in 2-D feature space.
//! let relevant: Vec<FeedbackPoint> = vec![
//!     FeedbackPoint::new(0, vec![0.0, 0.1], 3.0),
//!     FeedbackPoint::new(1, vec![0.1, 0.0], 3.0),
//!     FeedbackPoint::new(2, vec![5.0, 5.1], 3.0),
//!     FeedbackPoint::new(3, vec![5.1, 5.0], 3.0),
//! ];
//! let mut engine = QclusterEngine::new(QclusterConfig::default());
//! engine.feed(&relevant).unwrap();
//! assert_eq!(engine.num_clusters(), 2);
//!
//! // The disjunctive query ranks points near either cluster ahead of the
//! // midpoint between them.
//! let q = engine.query().unwrap();
//! use qcluster_index::QueryDistance;
//! assert!(q.distance(&[0.05, 0.05]) < q.distance(&[2.5, 2.5]));
//! assert!(q.distance(&[5.05, 5.05]) < q.distance(&[2.5, 2.5]));
//! ```

#![warn(missing_docs)]
// Indexed loops over multiple parallel buffers are the clearest (and often
// fastest) form for the dense numeric kernels in this workspace.
#![allow(clippy::needless_range_loop)]

pub mod classify;
pub mod cluster;
pub mod distance;
pub mod engine;
pub mod error;
pub mod hierarchical;
pub mod merge;
pub mod pooled;
pub mod quality;
pub mod reduce;
pub mod scheme;
pub mod types;

pub use classify::{BayesianClassifier, Classification};
pub use cluster::Cluster;
pub use distance::{ClusterDistance, DisjunctiveQuery};
pub use engine::{QclusterConfig, QclusterEngine, ThresholdPolicy};
pub use error::{CoreError, Result};
pub use merge::{merge_clusters, MergeOutcome};
pub use quality::leave_one_out_error_rate;
pub use reduce::ReducedSpace;
pub use scheme::CovarianceScheme;
pub use types::FeedbackPoint;
