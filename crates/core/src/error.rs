//! Error type for the Qcluster engine.

use std::fmt;

/// Errors surfaced by the relevance-feedback engine.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Feedback or query operations on an engine that has no clusters yet.
    NoClusters,
    /// A feedback point's dimensionality disagrees with the engine's.
    DimensionMismatch {
        /// Dimensionality the engine was initialized with.
        expected: usize,
        /// Dimensionality of the offending point.
        found: usize,
    },
    /// A relevance score was not strictly positive.
    InvalidScore(f64),
    /// The relevant set handed to an iteration was empty.
    EmptyFeedback,
    /// A linear-algebra failure (e.g. a covariance that stayed singular
    /// even after regularization).
    Linalg(qcluster_linalg::LinalgError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NoClusters => write!(f, "engine has no clusters yet"),
            CoreError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            CoreError::InvalidScore(s) => {
                write!(f, "relevance scores must be positive, got {s}")
            }
            CoreError::EmptyFeedback => write!(f, "empty relevant set"),
            CoreError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<qcluster_linalg::LinalgError> for CoreError {
    fn from(e: qcluster_linalg::LinalgError) -> Self {
        CoreError::Linalg(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CoreError>;
