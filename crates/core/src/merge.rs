//! Cluster merging with Hotelling's T² (paper Sec. 4.3, Algorithm 3).
//!
//! After classification the cluster count may have grown; this stage merges
//! pairs whose mean vectors are statistically indistinguishable. For each
//! pair the statistic
//!
//! ```text
//! T² = m_i m_j / (m_i + m_j) · (x̄_i − x̄_j)ᵀ S_pooled⁻¹ (x̄_i − x̄_j)
//! ```
//!
//! (Eq. 14, with the pairwise pooled covariance of Eq. 15) is compared to
//! the critical distance `c²` (Eq. 16). Pairs with `T² ≤ c²` merge in
//! closed form (Eqs. 11–13). Following Algorithm 3, when no remaining pair
//! passes the test but the cluster count still exceeds the target, the
//! significance level α is lowered — which *raises* `c²` — and the pairs
//! are re-examined, so the count converges to the threshold.
//!
//! ### Degenerate pairs
//!
//! The paper notes that "the initial clusters at the initial iteration
//! include only one point in each of them" and merges those too — but for
//! a pair of singletons the pooled covariance (Eq. 15) is the zero matrix
//! and T² carries no information (under ridge regularization it reduces to
//! a scaled point distance). For such pairs this implementation falls back
//! to the geometric rule the hierarchical stage uses: merge when the
//! squared centroid distance is at most `degenerate_threshold`. Relaxation
//! widens this threshold alongside `c²`.

use crate::cluster::Cluster;
use crate::error::Result;
use crate::pooled::pairwise_pooled_covariance;
use crate::scheme::CovarianceScheme;
use qcluster_stats::hotelling::{hotelling_critical_value, t2_from_quadratic_form};

/// Pooled covariances with every entry below this are treated as
/// degenerate (statistically powerless) pairs.
const DEGENERATE_EPS: f64 = 1e-12;

/// Statistics of one completed merge pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeOutcome {
    /// Number of merges performed.
    pub merges: usize,
    /// Number of times α was relaxed to force progress toward the target.
    pub relaxations: usize,
    /// Number of pair evaluations (the pass's dominant cost).
    pub tests: usize,
}

/// Computes the T² statistic for a pair of clusters under `scheme`.
///
/// # Errors
///
/// Propagates covariance inversion failures (full scheme on singular
/// pools; the ridge normally prevents this).
pub fn pair_t2(a: &Cluster, b: &Cluster, scheme: CovarianceScheme) -> Result<f64> {
    let pooled = pairwise_pooled_covariance(a, b);
    let inv = scheme.invert(&pooled)?;
    let diff = qcluster_linalg::vecops::sub(a.mean(), b.mean());
    let mut scratch = vec![0.0; a.dim()];
    let q = inv.quadratic_form(&diff, &vec![0.0; a.dim()], &mut scratch);
    Ok(t2_from_quadratic_form(q, a.mass(), b.mass()))
}

/// The critical distance `c²` for a pair (Eq. 16).
pub fn pair_c2(a: &Cluster, b: &Cluster, alpha: f64) -> f64 {
    hotelling_critical_value(a.dim(), a.mass(), b.mass(), alpha)
}

/// How one pair was scored: the statistical T² test or the geometric
/// fallback for degenerate pairs.
#[derive(Debug, Clone, Copy)]
enum PairScore {
    /// `ratio = T² / c²`; mergeable when ≤ 1.
    Statistical(f64),
    /// `ratio = d² / threshold`; mergeable when ≤ 1.
    Degenerate(f64),
}

impl PairScore {
    fn ratio(self) -> f64 {
        match self {
            PairScore::Statistical(r) | PairScore::Degenerate(r) => r,
        }
    }
}

fn score_pair(
    a: &Cluster,
    b: &Cluster,
    scheme: CovarianceScheme,
    alpha: f64,
    degenerate_threshold: f64,
) -> Result<PairScore> {
    let pooled = pairwise_pooled_covariance(a, b);
    if pooled.max_abs() < DEGENERATE_EPS {
        let d2 = qcluster_linalg::vecops::sq_euclidean(a.mean(), b.mean());
        return Ok(PairScore::Degenerate(d2 / degenerate_threshold.max(1e-300)));
    }
    let inv = scheme.invert(&pooled)?;
    let diff = qcluster_linalg::vecops::sub(a.mean(), b.mean());
    let mut scratch = vec![0.0; a.dim()];
    let q = inv.quadratic_form(&diff, &vec![0.0; a.dim()], &mut scratch);
    let t2 = t2_from_quadratic_form(q, a.mass(), b.mass());
    let c2 = pair_c2(a, b, alpha);
    if c2.is_infinite() {
        // Too few effective samples for the F test: no power. Treat like a
        // degenerate pair ordered by the raw statistic but always mergeable
        // only within the geometric threshold.
        let d2 = qcluster_linalg::vecops::sq_euclidean(a.mean(), b.mean());
        return Ok(PairScore::Degenerate(d2 / degenerate_threshold.max(1e-300)));
    }
    Ok(PairScore::Statistical(t2 / c2))
}

/// Runs the merging stage (Algorithm 3) in place.
///
/// ```
/// use qcluster_core::{merge_clusters, Cluster, CovarianceScheme, FeedbackPoint};
///
/// // Two overlapping point groups → one merged cluster.
/// let mut clusters = vec![
///     Cluster::from_points((0..8).map(|i| {
///         FeedbackPoint::new(i, vec![0.1 * i as f64, 0.0], 1.0)
///     }).collect())?,
///     Cluster::from_points((8..16).map(|i| {
///         FeedbackPoint::new(i, vec![0.1 * (i - 8) as f64 + 0.05, 0.01], 1.0)
///     }).collect())?,
/// ];
/// merge_clusters(
///     &mut clusters,
///     CovarianceScheme::default_diagonal(),
///     0.05, // α
///     1,    // target cluster count
///     0,    // no forced relaxation
///     0.5,  // geometric threshold for degenerate pairs
/// )?;
/// assert_eq!(clusters.len(), 1);
/// # Ok::<(), qcluster_core::CoreError>(())
/// ```
///
/// Merges every pair accepted by the T² test at level `alpha` (or, for
/// degenerate pairs, within `degenerate_threshold` squared centroid
/// distance); if the cluster count still exceeds `target`, α is halved
/// (growing `c²`) and the threshold doubled, up to `max_relaxations`
/// times, until the count reaches the target. With `max_relaxations = 0`
/// only justified merges happen and the count may stay above `target`.
///
/// # Errors
///
/// Propagates covariance inversion failures.
///
/// # Panics
///
/// Panics when `target == 0`, `alpha` is outside `(0, 1)`, or
/// `degenerate_threshold` is negative.
pub fn merge_clusters(
    clusters: &mut Vec<Cluster>,
    scheme: CovarianceScheme,
    alpha: f64,
    target: usize,
    max_relaxations: usize,
    degenerate_threshold: f64,
) -> Result<MergeOutcome> {
    assert!(target > 0, "target cluster count must be positive");
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
    assert!(
        degenerate_threshold >= 0.0,
        "threshold must be non-negative"
    );
    let mut outcome = MergeOutcome::default();
    let mut alpha = alpha;
    let mut threshold = degenerate_threshold;

    loop {
        // Greedy closest-pair merging at the current (α, threshold):
        // repeatedly merge the pair with the smallest ratio while it
        // passes its test.
        loop {
            if clusters.len() <= 1 {
                return Ok(outcome);
            }
            let mut best: Option<(usize, usize, f64)> = None;
            for i in 0..clusters.len() {
                for j in (i + 1)..clusters.len() {
                    let s = score_pair(&clusters[i], &clusters[j], scheme, alpha, threshold)?;
                    outcome.tests += 1;
                    let ratio = s.ratio();
                    if best.is_none_or(|(_, _, r)| ratio < r) {
                        best = Some((i, j, ratio));
                    }
                }
            }
            let (i, j, ratio) = best.expect("at least one pair");
            if ratio <= 1.0 {
                let merged = Cluster::merge(&clusters[i], &clusters[j]);
                // Remove j first (j > i) to keep i valid.
                clusters.remove(j);
                clusters.remove(i);
                clusters.push(merged);
                outcome.merges += 1;
            } else {
                break;
            }
        }
        if clusters.len() <= target || outcome.relaxations >= max_relaxations {
            return Ok(outcome);
        }
        // Algorithm 3 step 8: "Increase critical distance c² using α".
        alpha *= 0.5;
        threshold *= 2.0;
        outcome.relaxations += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::FeedbackPoint;

    fn pt(id: usize, v: &[f64], s: f64) -> FeedbackPoint {
        FeedbackPoint::new(id, v.to_vec(), s)
    }

    fn blob(cx: f64, cy: f64, spread: f64, ids: usize, n: usize) -> Cluster {
        let pts: Vec<FeedbackPoint> = (0..n)
            .map(|k| {
                let angle = k as f64 * std::f64::consts::TAU / n as f64;
                pt(
                    ids + k,
                    &[cx + spread * angle.cos(), cy + spread * angle.sin()],
                    1.0,
                )
            })
            .collect();
        Cluster::from_points(pts).unwrap()
    }

    const THR: f64 = 0.5;

    #[test]
    fn overlapping_clusters_merge() {
        let mut clusters = vec![blob(0.0, 0.0, 1.0, 0, 8), blob(0.2, 0.1, 1.0, 8, 8)];
        let out = merge_clusters(
            &mut clusters,
            CovarianceScheme::default_diagonal(),
            0.05,
            1,
            0,
            THR,
        )
        .unwrap();
        assert_eq!(clusters.len(), 1);
        assert_eq!(out.merges, 1);
        assert_eq!(clusters[0].len(), 16);
    }

    #[test]
    fn distant_clusters_stay_separate_without_relaxation() {
        let mut clusters = vec![blob(0.0, 0.0, 1.0, 0, 8), blob(50.0, 50.0, 1.0, 8, 8)];
        let out = merge_clusters(
            &mut clusters,
            CovarianceScheme::default_diagonal(),
            0.05,
            1,
            0,
            THR,
        )
        .unwrap();
        assert_eq!(clusters.len(), 2);
        assert_eq!(out.merges, 0);
    }

    #[test]
    fn relaxation_forces_progress_toward_target() {
        // Even well-separated clusters eventually merge when the target
        // demands it and relaxations are allowed.
        let mut clusters = vec![
            blob(0.0, 0.0, 1.0, 0, 8),
            blob(20.0, 0.0, 1.0, 8, 8),
            blob(0.0, 20.0, 1.0, 16, 8),
            blob(20.0, 20.0, 1.0, 24, 8),
        ];
        let out = merge_clusters(
            &mut clusters,
            CovarianceScheme::default_diagonal(),
            0.05,
            2,
            200,
            THR,
        )
        .unwrap();
        assert!(clusters.len() <= 2, "got {}", clusters.len());
        assert!(out.relaxations > 0);
    }

    #[test]
    fn t2_grows_with_separation() {
        let a = blob(0.0, 0.0, 1.0, 0, 8);
        let near = blob(1.0, 0.0, 1.0, 8, 8);
        let far = blob(10.0, 0.0, 1.0, 16, 8);
        let scheme = CovarianceScheme::default_diagonal();
        let t_near = pair_t2(&a, &near, scheme).unwrap();
        let t_far = pair_t2(&a, &far, scheme).unwrap();
        assert!(t_far > t_near);
    }

    #[test]
    fn close_singletons_merge_distant_singletons_do_not() {
        let mut clusters = vec![
            Cluster::from_point(pt(0, &[0.0, 0.0], 1.0)),
            Cluster::from_point(pt(1, &[0.1, 0.0], 1.0)),
            Cluster::from_point(pt(2, &[30.0, 30.0], 1.0)),
        ];
        merge_clusters(
            &mut clusters,
            CovarianceScheme::default_diagonal(),
            0.05,
            1,
            0,
            THR,
        )
        .unwrap();
        assert_eq!(clusters.len(), 2);
        let sizes: Vec<usize> = clusters.iter().map(|c| c.len()).collect();
        assert!(sizes.contains(&2));
    }

    #[test]
    fn full_and_diagonal_schemes_agree_on_clear_cases() {
        for scheme in [
            CovarianceScheme::default_diagonal(),
            CovarianceScheme::default_full(),
        ] {
            let mut close = vec![blob(0.0, 0.0, 1.0, 0, 10), blob(0.1, 0.0, 1.0, 10, 10)];
            merge_clusters(&mut close, scheme, 0.05, 1, 0, THR).unwrap();
            assert_eq!(close.len(), 1, "{scheme:?} should merge overlapping");

            let mut apart = vec![blob(0.0, 0.0, 1.0, 0, 10), blob(40.0, 0.0, 1.0, 10, 10)];
            merge_clusters(&mut apart, scheme, 0.05, 1, 0, THR).unwrap();
            assert_eq!(apart.len(), 2, "{scheme:?} should keep distant apart");
        }
    }

    #[test]
    fn merge_pass_reports_test_count() {
        let mut clusters = vec![
            blob(0.0, 0.0, 1.0, 0, 6),
            blob(30.0, 0.0, 1.0, 6, 6),
            blob(60.0, 0.0, 1.0, 12, 6),
        ];
        let out = merge_clusters(
            &mut clusters,
            CovarianceScheme::default_diagonal(),
            0.05,
            3,
            0,
            THR,
        )
        .unwrap();
        // 3 clusters → 3 pairs examined in the single non-merging pass.
        assert_eq!(out.tests, 3);
        assert_eq!(out.merges, 0);
    }

    #[test]
    fn singleton_absorbed_into_nearby_large_cluster() {
        // A lone new point inside a big cluster's spread merges into it via
        // the statistical test (pooled covariance comes from the big one).
        let mut clusters = vec![
            blob(0.0, 0.0, 1.5, 0, 12),
            Cluster::from_point(pt(99, &[0.4, 0.2], 1.0)),
        ];
        merge_clusters(
            &mut clusters,
            CovarianceScheme::default_diagonal(),
            0.05,
            1,
            0,
            THR,
        )
        .unwrap();
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].len(), 13);
    }
}
