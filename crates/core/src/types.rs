//! Basic value types shared across the engine.

/// One user-marked relevant image: its database id, feature vector, and
/// relevance score.
///
/// Scores follow the paper's protocol (Sec. 5): the oracle assigns 3 to
/// images of the query's own category and 1 to images of related
/// categories. Any positive score works — scores weight the centroid
/// (Def. 1), the covariance (Def. 2), and the cluster mass `m_i`.
#[derive(Debug, Clone, PartialEq)]
pub struct FeedbackPoint {
    /// Database image id.
    pub id: usize,
    /// Feature vector (already PCA-reduced by the pipeline).
    pub vector: Vec<f64>,
    /// Positive relevance score `v`.
    pub score: f64,
}

impl FeedbackPoint {
    /// Creates a feedback point.
    ///
    /// # Panics
    ///
    /// Panics for an empty vector or non-positive score — these are
    /// programming errors, not data conditions (the engine validates user
    /// data with `Result` before constructing points).
    pub fn new(id: usize, vector: Vec<f64>, score: f64) -> Self {
        assert!(!vector.is_empty(), "feature vector must be non-empty");
        assert!(
            vector.iter().all(|v| v.is_finite()),
            "feature vector must be finite (NaN/inf would corrupt every \
             downstream quadratic form and heap ordering)"
        );
        assert!(score > 0.0, "relevance score must be positive, got {score}");
        FeedbackPoint { id, vector, score }
    }

    /// Dimensionality of the feature vector.
    pub fn dim(&self) -> usize {
        self.vector.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructs_and_reports_dim() {
        let p = FeedbackPoint::new(7, vec![1.0, 2.0, 3.0], 3.0);
        assert_eq!(p.id, 7);
        assert_eq!(p.dim(), 3);
        assert_eq!(p.score, 3.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_zero_score() {
        let _ = FeedbackPoint::new(0, vec![1.0], 0.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_vector() {
        let _ = FeedbackPoint::new(0, vec![], 1.0);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn rejects_nan_vector() {
        let _ = FeedbackPoint::new(0, vec![1.0, f64::NAN], 1.0);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn rejects_infinite_vector() {
        let _ = FeedbackPoint::new(0, vec![f64::INFINITY], 1.0);
    }
}
