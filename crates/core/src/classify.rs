//! Adaptive Bayesian classification of new relevant points
//! (paper Sec. 4.2, Algorithm 2).
//!
//! Each relevant point from the latest feedback round is assigned to one of
//! the `g` current clusters — or seeds a new one — in two steps:
//!
//! 1. **Nearest cluster by classification function** (Eq. 10):
//!    `d̂_i(x) = −½ (x − x̄_i)ᵀ S_pooled⁻¹ (x − x̄_i) + ln w_i`,
//!    the log-posterior of the Bayesian rule (Eq. 8) with the constant
//!    terms dropped; `w_i = m_i / Σ m_k` is the prior from the previous
//!    iteration's cluster masses.
//! 2. **Effective radius check** (Lemma 1 / Algorithm 2 step 4): the point
//!    joins the winning cluster `k` only if
//!    `(x − x̄_k)ᵀ S_k⁻¹ (x − x̄_k) < χ²_p(α)` under the cluster's own
//!    covariance; otherwise it is an outlier to every current cluster and
//!    becomes a new singleton cluster.

use crate::cluster::Cluster;
use crate::error::{CoreError, Result};
use crate::pooled::classifier_pooled_covariance;
use crate::scheme::{CovarianceScheme, InverseCovariance};
use qcluster_stats::chi_squared_quantile;

/// Verdict for one point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Classification {
    /// Place the point into the existing cluster with this index.
    Assign(usize),
    /// The point is outside every cluster's effective radius; seed a new
    /// cluster from it.
    NewCluster,
}

/// A classifier materialized for one feedback round: the pooled inverse
/// covariance, the cluster priors, and the χ² effective radius.
///
/// Build it once per round ([`BayesianClassifier::fit`]) and call
/// [`classify`](BayesianClassifier::classify) per point — the pooled
/// matrix inversion happens once, which is what makes the adaptive update
/// cheap relative to re-clustering.
pub struct BayesianClassifier {
    pooled_inv: InverseCovariance,
    cluster_inv: Vec<InverseCovariance>,
    log_priors: Vec<f64>,
    radius: f64,
    dim: usize,
}

impl BayesianClassifier {
    /// Fits the classifier to the current clusters.
    ///
    /// `alpha` is the significance level of the effective radius
    /// (paper: typically 0.01–0.05, giving 95–99% coverage).
    ///
    /// # Errors
    ///
    /// [`CoreError::NoClusters`] for an empty cluster set; propagates
    /// covariance inversion failures.
    pub fn fit(
        clusters: &[Cluster],
        scheme: CovarianceScheme,
        alpha: f64,
    ) -> Result<BayesianClassifier> {
        if clusters.is_empty() {
            return Err(CoreError::NoClusters);
        }
        let dim = clusters[0].dim();
        let pooled = classifier_pooled_covariance(clusters);
        let pooled_inv = scheme.invert(&pooled)?;
        let total_mass: f64 = clusters.iter().map(|c| c.mass()).sum();
        let log_priors = clusters
            .iter()
            .map(|c| (c.mass() / total_mass).ln())
            .collect();
        let cluster_inv = clusters
            .iter()
            .map(|c| c.inverse_covariance(scheme))
            .collect::<Result<Vec<_>>>()?;
        Ok(BayesianClassifier {
            pooled_inv,
            cluster_inv,
            log_priors,
            radius: chi_squared_quantile(dim, alpha),
            dim,
        })
    }

    /// The effective radius `χ²_p(α)` in force.
    pub fn effective_radius(&self) -> f64 {
        self.radius
    }

    /// Evaluates the classification function `d̂_i(x)` (Eq. 10) for
    /// cluster `i`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range `i` or dimension mismatch.
    pub fn score(&self, clusters: &[Cluster], i: usize, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim, "point dimension mismatch");
        let mut scratch = vec![0.0; self.dim];
        let q = self
            .pooled_inv
            .quadratic_form(x, clusters[i].mean(), &mut scratch);
        -0.5 * q + self.log_priors[i]
    }

    /// The index of the nearest cluster by the classification function
    /// `d̂` alone — the pure Bayesian assignment without the
    /// effective-radius outlier cut. This is the quantity behind the
    /// "classification error rates" of Sec. 4.5 and Figs. 14–17: a point
    /// is an error when it is *assigned* to the wrong cluster, not when it
    /// is flagged as an outlier.
    ///
    /// # Panics
    ///
    /// Panics on cluster-set or dimension mismatch.
    pub fn nearest(&self, clusters: &[Cluster], x: &[f64]) -> usize {
        assert_eq!(
            clusters.len(),
            self.log_priors.len(),
            "classifier fitted on a different cluster set"
        );
        assert_eq!(x.len(), self.dim, "point dimension mismatch");
        let mut best = 0;
        let mut best_score = f64::NEG_INFINITY;
        for i in 0..clusters.len() {
            let s = self.score(clusters, i, x);
            if s > best_score {
                best_score = s;
                best = i;
            }
        }
        best
    }

    /// Runs Algorithm 2 for one point: nearest cluster by `d̂`, then the
    /// effective-radius check under the winner's own covariance.
    ///
    /// # Panics
    ///
    /// Panics when `clusters` is not the set the classifier was fitted on
    /// (length mismatch) or on dimension mismatch.
    pub fn classify(&self, clusters: &[Cluster], x: &[f64]) -> Classification {
        assert_eq!(
            clusters.len(),
            self.log_priors.len(),
            "classifier fitted on a different cluster set"
        );
        assert_eq!(x.len(), self.dim, "point dimension mismatch");
        let best = self.nearest(clusters, x);
        // Step 4: the winner's own ellipsoid must actually contain x.
        let mut scratch = vec![0.0; self.dim];
        let own = self.cluster_inv[best].quadratic_form(x, clusters[best].mean(), &mut scratch);
        if own < self.radius {
            Classification::Assign(best)
        } else {
            Classification::NewCluster
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::FeedbackPoint;

    fn pt(id: usize, v: &[f64], s: f64) -> FeedbackPoint {
        FeedbackPoint::new(id, v.to_vec(), s)
    }

    fn blob(center: [f64; 2], spread: f64, ids: usize, score: f64) -> Cluster {
        Cluster::from_points(vec![
            pt(ids, &[center[0] - spread, center[1]], score),
            pt(ids + 1, &[center[0] + spread, center[1]], score),
            pt(ids + 2, &[center[0], center[1] - spread], score),
            pt(ids + 3, &[center[0], center[1] + spread], score),
        ])
        .unwrap()
    }

    fn two_blobs() -> Vec<Cluster> {
        vec![
            blob([0.0, 0.0], 1.0, 0, 1.0),
            blob([10.0, 10.0], 1.0, 4, 1.0),
        ]
    }

    #[test]
    fn assigns_to_nearest_cluster() {
        let clusters = two_blobs();
        let clf =
            BayesianClassifier::fit(&clusters, CovarianceScheme::default_diagonal(), 0.05).unwrap();
        assert_eq!(
            clf.classify(&clusters, &[0.3, -0.2]),
            Classification::Assign(0)
        );
        assert_eq!(
            clf.classify(&clusters, &[9.8, 10.1]),
            Classification::Assign(1)
        );
    }

    #[test]
    fn far_outlier_becomes_new_cluster() {
        let clusters = two_blobs();
        let clf =
            BayesianClassifier::fit(&clusters, CovarianceScheme::default_diagonal(), 0.05).unwrap();
        assert_eq!(
            clf.classify(&clusters, &[100.0, -100.0]),
            Classification::NewCluster
        );
    }

    #[test]
    fn radius_follows_alpha() {
        let clusters = two_blobs();
        let tight =
            BayesianClassifier::fit(&clusters, CovarianceScheme::default_diagonal(), 0.20).unwrap();
        let loose =
            BayesianClassifier::fit(&clusters, CovarianceScheme::default_diagonal(), 0.01).unwrap();
        // Lower α ⇒ larger radius (paper Lemma 1 discussion).
        assert!(loose.effective_radius() > tight.effective_radius());
        // A borderline point can flip from outlier to member as α drops.
        let x = [2.4, 2.4];
        if tight.classify(&clusters, &x) == Classification::NewCluster {
            // Only meaningful if the loose radius accepts it.
            let _ = loose.classify(&clusters, &x);
        }
    }

    #[test]
    fn prior_breaks_near_ties() {
        // Same geometry, but cluster 1 has much higher mass: a point
        // equidistant between the two should go to the heavier cluster.
        let clusters = vec![
            blob([0.0, 0.0], 1.0, 0, 1.0),
            blob([3.0, 0.0], 1.0, 4, 30.0),
        ];
        let clf =
            BayesianClassifier::fit(&clusters, CovarianceScheme::default_diagonal(), 0.05).unwrap();
        assert_eq!(
            clf.classify(&clusters, &[1.5, 0.0]),
            Classification::Assign(1)
        );
    }

    #[test]
    fn works_with_full_inverse_scheme() {
        let clusters = two_blobs();
        let clf =
            BayesianClassifier::fit(&clusters, CovarianceScheme::default_full(), 0.05).unwrap();
        assert_eq!(
            clf.classify(&clusters, &[0.1, 0.1]),
            Classification::Assign(0)
        );
    }

    #[test]
    fn empty_cluster_set_rejected() {
        assert!(matches!(
            BayesianClassifier::fit(&[], CovarianceScheme::default_diagonal(), 0.05),
            Err(CoreError::NoClusters)
        ));
    }

    #[test]
    fn classification_function_decreases_with_distance() {
        let clusters = two_blobs();
        let clf =
            BayesianClassifier::fit(&clusters, CovarianceScheme::default_diagonal(), 0.05).unwrap();
        let near = clf.score(&clusters, 0, &[0.1, 0.1]);
        let far = clf.score(&clusters, 0, &[5.0, 5.0]);
        assert!(near > far);
    }
}
