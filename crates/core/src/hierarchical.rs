//! Initial hierarchical clustering (paper Sec. 3.1 / 4.1, Algorithm 1
//! step 1).
//!
//! "Initially, assign n input points … to n distinct clusters. Among all
//! clusters, pick up the two clusters with the smallest distance between
//! them. Merge them … Repeat" — classic bottom-up agglomeration with
//! centroid linkage. At the very first feedback iteration the relevant
//! points arrive with no prior cluster structure, so singleton T² tests
//! have no statistical power; the initial agglomeration therefore merges
//! by centroid distance until the T² test gains power and takes over
//! (later iterations use [`crate::merge`] exclusively).
//!
//! Stopping rule: merge while more than `target` clusters remain **or**
//! while the closest pair is closer than `distance_threshold` (so that
//! near-duplicate relevant images always collapse into one cluster even
//! when the target is large).

use crate::cluster::Cluster;
use crate::error::{CoreError, Result};
use crate::types::FeedbackPoint;

/// Agglomerates `points` into at most `target` clusters by repeated
/// closest-centroid merging (statistics combined with Eqs. 11–13).
///
/// `distance_threshold` is the squared centroid distance below which pairs
/// keep merging even after the target is reached.
///
/// # Errors
///
/// [`CoreError::EmptyFeedback`] on empty input,
/// [`CoreError::DimensionMismatch`] on ragged input.
///
/// # Panics
///
/// Panics when `target == 0`.
pub fn hierarchical_clustering(
    points: Vec<FeedbackPoint>,
    target: usize,
    distance_threshold: f64,
) -> Result<Vec<Cluster>> {
    assert!(target > 0, "target cluster count must be positive");
    let first_dim = points.first().ok_or(CoreError::EmptyFeedback)?.dim();
    for p in &points {
        if p.dim() != first_dim {
            return Err(CoreError::DimensionMismatch {
                expected: first_dim,
                found: p.dim(),
            });
        }
    }
    let mut clusters: Vec<Cluster> = points.into_iter().map(Cluster::from_point).collect();

    while clusters.len() > 1 {
        // Closest pair by squared centroid distance (centroid linkage).
        let mut best = (0usize, 1usize, f64::INFINITY);
        for i in 0..clusters.len() {
            for j in (i + 1)..clusters.len() {
                let d =
                    qcluster_linalg::vecops::sq_euclidean(clusters[i].mean(), clusters[j].mean());
                if d < best.2 {
                    best = (i, j, d);
                }
            }
        }
        let (i, j, d) = best;
        let over_target = clusters.len() > target;
        if !over_target && d > distance_threshold {
            break;
        }
        let merged = Cluster::merge(&clusters[i], &clusters[j]);
        clusters.remove(j);
        clusters.remove(i);
        clusters.push(merged);
    }
    Ok(clusters)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(id: usize, v: &[f64]) -> FeedbackPoint {
        FeedbackPoint::new(id, v.to_vec(), 1.0)
    }

    fn two_group_points() -> Vec<FeedbackPoint> {
        vec![
            pt(0, &[0.0, 0.0]),
            pt(1, &[0.1, 0.1]),
            pt(2, &[0.2, 0.0]),
            pt(3, &[10.0, 10.0]),
            pt(4, &[10.1, 9.9]),
            pt(5, &[9.9, 10.1]),
        ]
    }

    #[test]
    fn recovers_two_well_separated_groups() {
        let clusters = hierarchical_clustering(two_group_points(), 2, 1e-9).unwrap();
        assert_eq!(clusters.len(), 2);
        let mut sizes: Vec<usize> = clusters.iter().map(|c| c.len()).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![3, 3]);
        // Each cluster's members share a group.
        for c in &clusters {
            let ids: Vec<usize> = c.members().iter().map(|p| p.id).collect();
            assert!(ids.iter().all(|&i| i < 3) || ids.iter().all(|&i| i >= 3));
        }
    }

    #[test]
    fn threshold_keeps_merging_below_it() {
        // Target 6 (no merging needed) but threshold forces the tight
        // groups to collapse anyway.
        let clusters = hierarchical_clustering(two_group_points(), 6, 1.0).unwrap();
        assert_eq!(clusters.len(), 2);
    }

    #[test]
    fn target_one_merges_everything() {
        let clusters = hierarchical_clustering(two_group_points(), 1, 0.0).unwrap();
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].len(), 6);
    }

    #[test]
    fn singleton_input_is_one_cluster() {
        let clusters = hierarchical_clustering(vec![pt(0, &[1.0])], 3, 0.0).unwrap();
        assert_eq!(clusters.len(), 1);
    }

    #[test]
    fn empty_input_rejected() {
        assert!(matches!(
            hierarchical_clustering(vec![], 2, 0.0),
            Err(CoreError::EmptyFeedback)
        ));
    }

    #[test]
    fn merged_statistics_match_direct_computation() {
        let clusters = hierarchical_clustering(two_group_points(), 2, 1e-9).unwrap();
        for c in &clusters {
            let direct = Cluster::from_points(c.members().to_vec()).unwrap();
            for (a, b) in c.mean().iter().zip(direct.mean().iter()) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }
}
