//! Query distance functions: the per-cluster quadratic form (Eq. 1) and
//! the disjunctive aggregate (Eq. 5).
//!
//! The disjunctive aggregate over cluster representatives
//! `Q = {x̄_1, …, x̄_g}` is
//!
//! ```text
//! d²_disjunctive(Q, x) = Σ m_i  /  Σ ( m_i / d²(x, x̄_i) )
//! ```
//!
//! — the α = −2 instance of the fuzzy-OR aggregate (Eq. 4) weighted by
//! cluster masses. It is a **weighted harmonic mean** of the per-cluster
//! quadratic distances, so the closest cluster dominates: an image near
//! *any* representative scores well, which is exactly the disjunctive-query
//! semantics of Fig. 1(c) / Example 3.
//!
//! Both distances implement [`QueryDistance`], so the hybrid-tree k-NN can
//! run them directly. The bounding-box lower bounds:
//!
//! - diagonal `S⁻¹`: the weighted distance to the box-clamped point —
//!   exact and tight (coordinate-wise monotone form);
//! - full `S⁻¹`: `λ_min · ‖x − clamp(x)‖²`, valid because
//!   `dᵀ M d ≥ λ_min ‖d‖²` and `‖x − c‖` is minimized by the clamp;
//! - the aggregate: the harmonic form is non-decreasing in each `d_i`, so
//!   aggregating the per-cluster lower bounds lower-bounds the aggregate.

use crate::cluster::Cluster;
use crate::error::Result;
use crate::scheme::{CovarianceScheme, InverseCovariance};
use qcluster_index::{BoundingBox, QueryDistance};
use std::cell::RefCell;

/// One cluster representative compiled for fast distance evaluation.
#[derive(Debug, Clone)]
struct Representative {
    mean: Vec<f64>,
    inv: InverseCovariance,
    mass: f64,
    /// Lower-bound scale for the dense case (`λ_min(S⁻¹)`).
    min_eig: f64,
}

impl Representative {
    fn compile(cluster: &Cluster, scheme: CovarianceScheme) -> Result<Self> {
        let inv = cluster.inverse_covariance(scheme)?;
        let min_eig = inv.min_eigenvalue();
        Ok(Representative {
            mean: cluster.mean().to_vec(),
            inv,
            mass: cluster.mass(),
            min_eig,
        })
    }

    #[inline]
    fn quadratic(&self, x: &[f64], scratch: &mut [f64]) -> f64 {
        self.inv.quadratic_form(x, &self.mean, scratch)
    }

    /// Lower bound of the quadratic form over a box.
    fn lower_bound(&self, b: &BoundingBox, scratch: &mut [f64]) -> f64 {
        match self.inv.diagonal_weights() {
            Some(w) => {
                let mut acc = 0.0;
                for i in 0..self.mean.len() {
                    let c = self.mean[i].clamp(b.lo()[i], b.hi()[i]);
                    let d = self.mean[i] - c;
                    acc += w[i] * d * d;
                }
                acc
            }
            None => {
                b.clamp_point(&self.mean, scratch);
                let sq = qcluster_linalg::vecops::sq_euclidean(&self.mean, scratch);
                self.min_eig * sq
            }
        }
    }
}

/// The quadratic distance `d²(x, x̄) = (x − x̄)ᵀ S⁻¹ (x − x̄)` to a single
/// cluster (paper Eq. 1) — MindReader's generalized Euclidean when the
/// scheme is [`CovarianceScheme::FullInverse`], MARS's weighted Euclidean
/// when diagonal.
#[derive(Debug, Clone)]
pub struct ClusterDistance {
    rep: Representative,
    scratch: RefCell<Vec<f64>>,
}

impl ClusterDistance {
    /// Compiles the distance for a cluster under `scheme`.
    ///
    /// # Errors
    ///
    /// Propagates covariance inversion failures.
    pub fn new(cluster: &Cluster, scheme: CovarianceScheme) -> Result<Self> {
        let rep = Representative::compile(cluster, scheme)?;
        let dim = rep.mean.len();
        Ok(ClusterDistance {
            rep,
            scratch: RefCell::new(vec![0.0; dim]),
        })
    }

    /// The cluster centroid this query is centered on.
    pub fn center(&self) -> &[f64] {
        &self.rep.mean
    }
}

impl QueryDistance for ClusterDistance {
    fn dim(&self) -> usize {
        self.rep.mean.len()
    }

    fn distance(&self, x: &[f64]) -> f64 {
        self.rep.quadratic(x, &mut self.scratch.borrow_mut())
    }

    fn min_distance(&self, b: &BoundingBox) -> f64 {
        self.rep.lower_bound(b, &mut self.scratch.borrow_mut())
    }
}

/// The disjunctive multipoint query (paper Eq. 5).
#[derive(Debug, Clone)]
pub struct DisjunctiveQuery {
    reps: Vec<Representative>,
    total_mass: f64,
    scratch: RefCell<Vec<f64>>,
}

impl DisjunctiveQuery {
    /// Compiles the query from the engine's current clusters.
    ///
    /// # Errors
    ///
    /// Propagates covariance inversion failures.
    ///
    /// # Panics
    ///
    /// Panics on an empty cluster set.
    pub fn new(clusters: &[Cluster], scheme: CovarianceScheme) -> Result<Self> {
        assert!(!clusters.is_empty(), "need at least one cluster");
        let reps = clusters
            .iter()
            .map(|c| Representative::compile(c, scheme))
            .collect::<Result<Vec<_>>>()?;
        let total_mass = reps.iter().map(|r| r.mass).sum();
        let dim = reps[0].mean.len();
        Ok(DisjunctiveQuery {
            reps,
            total_mass,
            scratch: RefCell::new(vec![0.0; dim]),
        })
    }

    /// Number of cluster representatives (the paper's `g`).
    pub fn num_representatives(&self) -> usize {
        self.reps.len()
    }

    /// The representatives' centroids.
    pub fn centers(&self) -> Vec<&[f64]> {
        self.reps.iter().map(|r| r.mean.as_slice()).collect()
    }

    /// Evaluates Eq. 5 given the per-cluster quadratic distances.
    #[inline]
    fn aggregate(&self, dists: impl Iterator<Item = (f64, f64)>) -> f64 {
        // dists yields (m_i, d_i).
        let mut inv_sum = 0.0;
        for (m, d) in dists {
            if d <= 0.0 {
                // x coincides with a representative: distance zero.
                return 0.0;
            }
            inv_sum += m / d;
        }
        self.total_mass / inv_sum
    }
}

impl QueryDistance for DisjunctiveQuery {
    fn dim(&self) -> usize {
        self.reps[0].mean.len()
    }

    fn distance(&self, x: &[f64]) -> f64 {
        let mut scratch = self.scratch.borrow_mut();
        self.aggregate(
            self.reps
                .iter()
                .map(|r| (r.mass, r.quadratic(x, &mut scratch))),
        )
    }

    fn min_distance(&self, b: &BoundingBox) -> f64 {
        let mut scratch = self.scratch.borrow_mut();
        self.aggregate(
            self.reps
                .iter()
                .map(|r| (r.mass, r.lower_bound(b, &mut scratch))),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::FeedbackPoint;

    fn pt(id: usize, v: &[f64], s: f64) -> FeedbackPoint {
        FeedbackPoint::new(id, v.to_vec(), s)
    }

    fn blob(cx: f64, cy: f64, ids: usize) -> Cluster {
        Cluster::from_points(vec![
            pt(ids, &[cx - 1.0, cy], 1.0),
            pt(ids + 1, &[cx + 1.0, cy], 1.0),
            pt(ids + 2, &[cx, cy - 1.0], 1.0),
            pt(ids + 3, &[cx, cy + 1.0], 1.0),
        ])
        .unwrap()
    }

    fn two_cluster_query(scheme: CovarianceScheme) -> DisjunctiveQuery {
        DisjunctiveQuery::new(&[blob(0.0, 0.0, 0), blob(10.0, 10.0, 4)], scheme).unwrap()
    }

    #[test]
    fn distance_is_zero_at_representatives() {
        let q = two_cluster_query(CovarianceScheme::default_diagonal());
        assert_eq!(q.distance(&[0.0, 0.0]), 0.0);
        assert_eq!(q.distance(&[10.0, 10.0]), 0.0);
    }

    #[test]
    fn disjunctive_shape_midpoint_is_far() {
        // The fuzzy-OR semantics: near either cluster beats the midpoint.
        let q = two_cluster_query(CovarianceScheme::default_diagonal());
        let near_a = q.distance(&[0.5, 0.5]);
        let near_b = q.distance(&[9.5, 9.5]);
        let mid = q.distance(&[5.0, 5.0]);
        assert!(near_a < mid);
        assert!(near_b < mid);
    }

    #[test]
    fn aggregate_below_smallest_component_times_count() {
        // Harmonic-mean property: d_agg ≤ min_i d_i · (Σm)/(m_min).
        let q = two_cluster_query(CovarianceScheme::default_diagonal());
        let x = [1.0, 1.0];
        let d_agg = q.distance(&x);
        let c0 =
            ClusterDistance::new(&blob(0.0, 0.0, 0), CovarianceScheme::default_diagonal()).unwrap();
        assert!(d_agg <= 2.0 * c0.distance(&x) + 1e-9);
    }

    #[test]
    fn mass_weighting_biases_toward_heavy_cluster() {
        let mut heavy_pts: Vec<FeedbackPoint> = Vec::new();
        for k in 0..4 {
            let p = blob(0.0, 0.0, 0).members()[k].clone();
            heavy_pts.push(FeedbackPoint::new(p.id, p.vector, 10.0));
        }
        let heavy = Cluster::from_points(heavy_pts).unwrap();
        let light = blob(10.0, 10.0, 4);
        let q =
            DisjunctiveQuery::new(&[heavy, light], CovarianceScheme::default_diagonal()).unwrap();
        let balanced = two_cluster_query(CovarianceScheme::default_diagonal());
        // At the midpoint the heavy query should pull the distance down
        // relative to cluster 1's side compared to the balanced query.
        let x = [5.0, 5.0];
        assert!(q.distance(&x).is_finite());
        assert!(balanced.distance(&x).is_finite());
    }

    #[test]
    fn lower_bound_contract_diagonal() {
        let q = two_cluster_query(CovarianceScheme::default_diagonal());
        let b = BoundingBox::new(vec![2.0, 2.0], vec![4.0, 4.0]);
        let lb = q.min_distance(&b);
        for i in 0..=10 {
            for j in 0..=10 {
                let x = [2.0 + 0.2 * i as f64, 2.0 + 0.2 * j as f64];
                assert!(
                    q.distance(&x) >= lb - 1e-9,
                    "x={x:?} d={} lb={lb}",
                    q.distance(&x)
                );
            }
        }
    }

    #[test]
    fn lower_bound_contract_full() {
        // Build clusters with correlated covariance to exercise λ_min.
        let a = Cluster::from_points(vec![
            pt(0, &[0.0, 0.0], 1.0),
            pt(1, &[1.0, 1.0], 1.0),
            pt(2, &[2.0, 2.2], 1.0),
            pt(3, &[-1.0, -0.9], 1.0),
        ])
        .unwrap();
        let b = Cluster::from_points(vec![
            pt(4, &[8.0, 0.0], 1.0),
            pt(5, &[9.0, 1.0], 1.0),
            pt(6, &[10.0, -1.0], 1.0),
        ])
        .unwrap();
        let q = DisjunctiveQuery::new(&[a, b], CovarianceScheme::default_full()).unwrap();
        let bx = BoundingBox::new(vec![3.0, -2.0], vec![6.0, 2.0]);
        let lb = q.min_distance(&bx);
        for i in 0..=10 {
            for j in 0..=10 {
                let x = [3.0 + 0.3 * i as f64, -2.0 + 0.4 * j as f64];
                assert!(q.distance(&x) >= lb - 1e-9);
            }
        }
    }

    #[test]
    fn single_cluster_query_reduces_to_quadratic() {
        let c = blob(0.0, 0.0, 0);
        let scheme = CovarianceScheme::default_diagonal();
        let dq = DisjunctiveQuery::new(std::slice::from_ref(&c), scheme).unwrap();
        let cd = ClusterDistance::new(&c, scheme).unwrap();
        for &x in &[[0.5, 0.5], [3.0, -1.0], [0.0, 2.0]] {
            assert!((dq.distance(&x) - cd.distance(&x)).abs() < 1e-12);
        }
    }

    #[test]
    fn box_containing_representative_has_zero_bound() {
        let q = two_cluster_query(CovarianceScheme::default_diagonal());
        let b = BoundingBox::new(vec![-1.0, -1.0], vec![1.0, 1.0]);
        assert_eq!(q.min_distance(&b), 0.0);
    }
}
