//! Query distance functions: the per-cluster quadratic form (Eq. 1) and
//! the disjunctive aggregate (Eq. 5).
//!
//! The disjunctive aggregate over cluster representatives
//! `Q = {x̄_1, …, x̄_g}` is
//!
//! ```text
//! d²_disjunctive(Q, x) = Σ m_i  /  Σ ( m_i / d²(x, x̄_i) )
//! ```
//!
//! — the α = −2 instance of the fuzzy-OR aggregate (Eq. 4) weighted by
//! cluster masses. It is a **weighted harmonic mean** of the per-cluster
//! quadratic distances, so the closest cluster dominates: an image near
//! *any* representative scores well, which is exactly the disjunctive-query
//! semantics of Fig. 1(c) / Example 3.
//!
//! Both distances implement [`QueryDistance`], so the hybrid-tree k-NN can
//! run them directly. The bounding-box lower bounds:
//!
//! - diagonal `S⁻¹`: the weighted distance to the box-clamped point —
//!   exact and tight (coordinate-wise monotone form);
//! - full `S⁻¹`: `λ_min · ‖x − clamp(x)‖²`, valid because
//!   `dᵀ M d ≥ λ_min ‖d‖²` and `‖x − c‖` is minimized by the clamp;
//! - the aggregate: the harmonic form is non-decreasing in each `d_i`, so
//!   aggregating the per-cluster lower bounds lower-bounds the aggregate.

use crate::cluster::Cluster;
use crate::error::Result;
use crate::scheme::{CovarianceScheme, InverseCovariance};
use qcluster_index::{BoundingBox, QuantParams, QuantPlan, QuantSpec, QueryDistance};
use std::cell::RefCell;

/// One cluster representative compiled for fast distance evaluation.
///
/// The diagonal scheme is precompiled into **expanded form**:
/// `d²(x) = Σ_j (w_j·x_j)·x_j − 2·Σ_j wc_j·x_j + c0` with
/// `wc_j = w_j·c_j` and `c0 = Σ_j wc_j·c_j`, so evaluation never touches
/// the center and blocks of points stream through two fused accumulator
/// passes. The full scheme keeps the difference form (it needs the
/// `M·(x−c)` product) and amortizes its scratch over whole blocks.
#[derive(Debug, Clone)]
struct Representative {
    mean: Vec<f64>,
    inv: InverseCovariance,
    mass: f64,
    /// Lower-bound scale for the dense case (`λ_min(S⁻¹)`).
    min_eig: f64,
    /// Expanded-form linear coefficients `w ∘ mean` (diagonal scheme
    /// only; empty for the full scheme).
    wc: Vec<f64>,
    /// Expanded-form constant `Σ wc_j·mean_j` (diagonal scheme only).
    c0: f64,
}

impl Representative {
    fn compile(cluster: &Cluster, scheme: CovarianceScheme) -> Result<Self> {
        let inv = cluster.inverse_covariance(scheme)?;
        let min_eig = inv.min_eigenvalue();
        let mean = cluster.mean().to_vec();
        let (wc, c0) = match inv.diagonal_weights() {
            Some(w) => {
                let wc: Vec<f64> = w.iter().zip(&mean).map(|(&w, &c)| w * c).collect();
                let c0 = wc.iter().zip(&mean).map(|(&wc, &c)| wc * c).sum();
                (wc, c0)
            }
            None => (Vec::new(), 0.0),
        };
        Ok(Representative {
            mean,
            inv,
            mass: cluster.mass(),
            min_eig,
            wc,
            c0,
        })
    }

    #[inline]
    fn quadratic(&self, x: &[f64], scratch: &mut [f64]) -> f64 {
        match self.inv.diagonal_weights() {
            Some(w) => qcluster_linalg::vecops::expanded_weighted_sq(x, w, &self.wc, self.c0),
            None => self.inv.quadratic_form(x, &self.mean, scratch),
        }
    }

    /// [`Representative::quadratic`] over a contiguous row-major block,
    /// bit-for-bit identical to the scalar path per point.
    fn quadratic_batch(&self, block: &[f64], dim: usize, scratch: &mut [f64], out: &mut [f64]) {
        match self.inv.diagonal_weights() {
            Some(w) => qcluster_linalg::vecops::expanded_weighted_sq_batch(
                block, dim, w, &self.wc, self.c0, out,
            ),
            None => self
                .inv
                .quadratic_form_batch(block, dim, &self.mean, scratch, out),
        }
    }

    /// Lower bound of the quadratic form over a box.
    fn lower_bound(&self, b: &BoundingBox, scratch: &mut [f64]) -> f64 {
        match self.inv.diagonal_weights() {
            Some(w) => {
                let mut acc = 0.0;
                for i in 0..self.mean.len() {
                    let c = self.mean[i].clamp(b.lo()[i], b.hi()[i]);
                    let d = self.mean[i] - c;
                    acc += w[i] * d * d;
                }
                acc
            }
            None => {
                b.clamp_point(&self.mean, scratch);
                let sq = qcluster_linalg::vecops::sq_euclidean(&self.mean, scratch);
                self.min_eig * sq
            }
        }
    }
}

/// The quadratic distance `d²(x, x̄) = (x − x̄)ᵀ S⁻¹ (x − x̄)` to a single
/// cluster (paper Eq. 1) — MindReader's generalized Euclidean when the
/// scheme is [`CovarianceScheme::FullInverse`], MARS's weighted Euclidean
/// when diagonal.
#[derive(Debug, Clone)]
pub struct ClusterDistance {
    rep: Representative,
    scratch: RefCell<Vec<f64>>,
}

impl ClusterDistance {
    /// Compiles the distance for a cluster under `scheme`.
    ///
    /// # Errors
    ///
    /// Propagates covariance inversion failures.
    pub fn new(cluster: &Cluster, scheme: CovarianceScheme) -> Result<Self> {
        let rep = Representative::compile(cluster, scheme)?;
        let dim = rep.mean.len();
        Ok(ClusterDistance {
            rep,
            scratch: RefCell::new(vec![0.0; dim]),
        })
    }

    /// The cluster centroid this query is centered on.
    pub fn center(&self) -> &[f64] {
        &self.rep.mean
    }
}

impl QueryDistance for ClusterDistance {
    fn dim(&self) -> usize {
        self.rep.mean.len()
    }

    fn distance(&self, x: &[f64]) -> f64 {
        self.rep.quadratic(x, &mut self.scratch.borrow_mut())
    }

    fn distance_batch(&self, block: &[f64], dim: usize, out: &mut [f64]) {
        assert_eq!(dim, self.dim(), "query dimensionality mismatch");
        assert_eq!(block.len(), out.len() * dim, "block/out length mismatch");
        self.rep
            .quadratic_batch(block, dim, &mut self.scratch.borrow_mut(), out);
    }

    fn distance_tiles(&self, tiles: &[f64], dim: usize, out: &mut [f64]) {
        use qcluster_linalg::vecops::{expanded_weighted_sq_tile, untranspose_tile, TILE_LANES};
        assert_eq!(dim, self.dim(), "query dimensionality mismatch");
        let ntiles = out.len().div_ceil(TILE_LANES);
        assert_eq!(
            tiles.len(),
            ntiles * dim * TILE_LANES,
            "tiles/out length mismatch"
        );
        match self.rep.inv.diagonal_weights() {
            Some(w) => {
                // Tile-native expanded form: no transpose, no row
                // materialization — bit-for-bit equal to `distance_batch`.
                for (t, chunk) in out.chunks_mut(TILE_LANES).enumerate() {
                    let tile = &tiles[t * dim * TILE_LANES..(t + 1) * dim * TILE_LANES];
                    let d8 = expanded_weighted_sq_tile(tile, w, &self.rep.wc, self.rep.c0);
                    chunk.copy_from_slice(&d8[..chunk.len()]);
                }
            }
            None => {
                // Full scheme has no tile kernel: un-transpose and reuse
                // the blocked dense path.
                let mut rows = vec![0.0f64; TILE_LANES * dim];
                for (t, chunk) in out.chunks_mut(TILE_LANES).enumerate() {
                    let tile = &tiles[t * dim * TILE_LANES..(t + 1) * dim * TILE_LANES];
                    let pn = chunk.len();
                    untranspose_tile(tile, dim, &mut rows[..pn * dim]);
                    self.distance_batch(&rows[..pn * dim], dim, chunk);
                }
            }
        }
    }

    fn quantized_plan(&self, params: &QuantParams) -> Option<QuantPlan> {
        let w = self.rep.inv.diagonal_weights()?;
        if params.dim() != self.dim() {
            return None;
        }
        QuantPlan::build(
            params,
            &[QuantSpec {
                weights: Some(w),
                center: &self.rep.mean,
                mass: 1.0,
            }],
            1.0,
        )
    }

    fn min_distance(&self, b: &BoundingBox) -> f64 {
        self.rep.lower_bound(b, &mut self.scratch.borrow_mut())
    }
}

/// Reusable evaluation buffers for [`DisjunctiveQuery`]: the
/// column-major transpose tile for the diagonal scheme and the
/// full-scheme difference vector. Held in a `RefCell` so a compiled
/// query stays `&self`-evaluable without reallocating per call (or per
/// block).
#[derive(Debug, Clone)]
struct Scratch {
    tile: Vec<f64>,
    diff: Vec<f64>,
}

/// The disjunctive multipoint query (paper Eq. 5).
#[derive(Debug, Clone)]
pub struct DisjunctiveQuery {
    reps: Vec<Representative>,
    total_mass: f64,
    scratch: RefCell<Scratch>,
}

impl DisjunctiveQuery {
    /// Compiles the query from the engine's current clusters.
    ///
    /// # Errors
    ///
    /// Propagates covariance inversion failures.
    ///
    /// # Panics
    ///
    /// Panics on an empty cluster set.
    pub fn new(clusters: &[Cluster], scheme: CovarianceScheme) -> Result<Self> {
        assert!(!clusters.is_empty(), "need at least one cluster");
        let reps = clusters
            .iter()
            .map(|c| Representative::compile(c, scheme))
            .collect::<Result<Vec<_>>>()?;
        let total_mass = reps.iter().map(|r| r.mass).sum();
        let dim = reps[0].mean.len();
        Ok(DisjunctiveQuery {
            reps,
            total_mass,
            scratch: RefCell::new(Scratch {
                tile: Vec::new(),
                diff: vec![0.0; dim],
            }),
        })
    }

    /// Number of cluster representatives (the paper's `g`).
    pub fn num_representatives(&self) -> usize {
        self.reps.len()
    }

    /// The representatives' centroids.
    pub fn centers(&self) -> Vec<&[f64]> {
        self.reps.iter().map(|r| r.mean.as_slice()).collect()
    }

    /// Evaluates Eq. 5 given the per-cluster quadratic distances.
    ///
    /// Per-cluster distances are clamped at 0 before aggregating: a tiny
    /// negative artifact from a near-singular covariance behaves exactly
    /// like coinciding with the representative. The clamp rides on IEEE
    /// semantics — `d = 0` makes `m / d = +∞`, the sum stays `+∞`, and
    /// `total_mass / ∞ = 0.0` exactly — so no branch or early return is
    /// needed and the accumulation order is fixed regardless of which
    /// cluster (if any) hits zero.
    #[inline]
    fn aggregate(&self, dists: impl Iterator<Item = (f64, f64)>) -> f64 {
        // dists yields (m_i, d_i).
        let mut inv_sum = 0.0;
        for (m, d) in dists {
            inv_sum += m / d.max(0.0);
        }
        self.total_mass / inv_sum
    }
}

impl QueryDistance for DisjunctiveQuery {
    fn dim(&self) -> usize {
        self.reps[0].mean.len()
    }

    fn distance(&self, x: &[f64]) -> f64 {
        let mut scratch = self.scratch.borrow_mut();
        let diff = &mut scratch.diff;
        self.aggregate(self.reps.iter().map(|r| (r.mass, r.quadratic(x, diff))))
    }

    fn distance_batch(&self, block: &[f64], dim: usize, out: &mut [f64]) {
        use qcluster_linalg::vecops::{expanded_weighted_sq_tile, transpose_tile, TILE_LANES};
        assert_eq!(dim, self.dim(), "query dimensionality mismatch");
        assert_eq!(block.len(), out.len() * dim, "block/out length mismatch");
        let mut scratch = self.scratch.borrow_mut();
        let Scratch { tile, diff } = &mut *scratch;
        if self.reps[0].inv.diagonal_weights().is_some() {
            // Diagonal scheme: transpose eight points at a time into an
            // L1-resident column-major tile and evaluate every
            // representative against it while it is hot. The Σ mᵢ/dᵢ
            // accumulators live in registers; per lane, the adds happen
            // in the same representative order as the scalar path, so the
            // result is bit-for-bit identical to calling `distance`.
            tile.resize(dim * TILE_LANES, 0.0);
            let count = out.len();
            let mut p0 = 0;
            while p0 < count {
                let pn = TILE_LANES.min(count - p0);
                transpose_tile(&block[p0 * dim..(p0 + pn) * dim], dim, tile);
                let mut acc = [0.0f64; TILE_LANES];
                for r in &self.reps {
                    let w = r.inv.diagonal_weights().expect("uniform scheme");
                    let d8 = expanded_weighted_sq_tile(tile, w, &r.wc, r.c0);
                    for l in 0..TILE_LANES {
                        acc[l] += r.mass / d8[l].max(0.0);
                    }
                }
                for l in 0..pn {
                    out[p0 + l] = self.total_mass / acc[l];
                }
                p0 += TILE_LANES;
            }
        } else {
            // Full scheme: the dense row pass dominates, so evaluate the
            // aggregate point by point exactly as `distance` does — the
            // block only amortizes the dispatch and the arena borrow.
            for (p, o) in out.iter_mut().enumerate() {
                let x = &block[p * dim..(p + 1) * dim];
                *o = self.aggregate(self.reps.iter().map(|r| (r.mass, r.quadratic(x, diff))));
            }
        }
    }

    fn distance_tiles(&self, tiles: &[f64], dim: usize, out: &mut [f64]) {
        use qcluster_linalg::vecops::{expanded_weighted_sq_tile, untranspose_tile, TILE_LANES};
        assert_eq!(dim, self.dim(), "query dimensionality mismatch");
        let ntiles = out.len().div_ceil(TILE_LANES);
        assert_eq!(
            tiles.len(),
            ntiles * dim * TILE_LANES,
            "tiles/out length mismatch"
        );
        if self.reps[0].inv.diagonal_weights().is_some() {
            // Same per-lane arithmetic as `distance_batch`'s diagonal
            // path, consuming pre-transposed tiles directly.
            for (t, chunk) in out.chunks_mut(TILE_LANES).enumerate() {
                let tile = &tiles[t * dim * TILE_LANES..(t + 1) * dim * TILE_LANES];
                let mut acc = [0.0f64; TILE_LANES];
                for r in &self.reps {
                    let w = r.inv.diagonal_weights().expect("uniform scheme");
                    let d8 = expanded_weighted_sq_tile(tile, w, &r.wc, r.c0);
                    for l in 0..TILE_LANES {
                        acc[l] += r.mass / d8[l].max(0.0);
                    }
                }
                for (l, o) in chunk.iter_mut().enumerate() {
                    *o = self.total_mass / acc[l];
                }
            }
        } else {
            let mut rows = vec![0.0f64; TILE_LANES * dim];
            for (t, chunk) in out.chunks_mut(TILE_LANES).enumerate() {
                let tile = &tiles[t * dim * TILE_LANES..(t + 1) * dim * TILE_LANES];
                let pn = chunk.len();
                untranspose_tile(tile, dim, &mut rows[..pn * dim]);
                self.distance_batch(&rows[..pn * dim], dim, chunk);
            }
        }
    }

    fn quantized_plan(&self, params: &QuantParams) -> Option<QuantPlan> {
        if params.dim() != self.dim() {
            return None;
        }
        let specs = self
            .reps
            .iter()
            .map(|r| {
                Some(QuantSpec {
                    weights: Some(r.inv.diagonal_weights()?),
                    center: r.mean.as_slice(),
                    mass: r.mass,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        QuantPlan::build(params, &specs, self.total_mass)
    }

    fn min_distance(&self, b: &BoundingBox) -> f64 {
        let mut scratch = self.scratch.borrow_mut();
        let diff = &mut scratch.diff;
        self.aggregate(self.reps.iter().map(|r| (r.mass, r.lower_bound(b, diff))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::FeedbackPoint;

    fn pt(id: usize, v: &[f64], s: f64) -> FeedbackPoint {
        FeedbackPoint::new(id, v.to_vec(), s)
    }

    fn blob(cx: f64, cy: f64, ids: usize) -> Cluster {
        Cluster::from_points(vec![
            pt(ids, &[cx - 1.0, cy], 1.0),
            pt(ids + 1, &[cx + 1.0, cy], 1.0),
            pt(ids + 2, &[cx, cy - 1.0], 1.0),
            pt(ids + 3, &[cx, cy + 1.0], 1.0),
        ])
        .unwrap()
    }

    fn two_cluster_query(scheme: CovarianceScheme) -> DisjunctiveQuery {
        DisjunctiveQuery::new(&[blob(0.0, 0.0, 0), blob(10.0, 10.0, 4)], scheme).unwrap()
    }

    #[test]
    fn distance_is_zero_at_representatives() {
        let q = two_cluster_query(CovarianceScheme::default_diagonal());
        assert_eq!(q.distance(&[0.0, 0.0]), 0.0);
        assert_eq!(q.distance(&[10.0, 10.0]), 0.0);
    }

    #[test]
    fn disjunctive_shape_midpoint_is_far() {
        // The fuzzy-OR semantics: near either cluster beats the midpoint.
        let q = two_cluster_query(CovarianceScheme::default_diagonal());
        let near_a = q.distance(&[0.5, 0.5]);
        let near_b = q.distance(&[9.5, 9.5]);
        let mid = q.distance(&[5.0, 5.0]);
        assert!(near_a < mid);
        assert!(near_b < mid);
    }

    #[test]
    fn aggregate_below_smallest_component_times_count() {
        // Harmonic-mean property: d_agg ≤ min_i d_i · (Σm)/(m_min).
        let q = two_cluster_query(CovarianceScheme::default_diagonal());
        let x = [1.0, 1.0];
        let d_agg = q.distance(&x);
        let c0 =
            ClusterDistance::new(&blob(0.0, 0.0, 0), CovarianceScheme::default_diagonal()).unwrap();
        assert!(d_agg <= 2.0 * c0.distance(&x) + 1e-9);
    }

    #[test]
    fn mass_weighting_biases_toward_heavy_cluster() {
        let mut heavy_pts: Vec<FeedbackPoint> = Vec::new();
        for k in 0..4 {
            let p = blob(0.0, 0.0, 0).members()[k].clone();
            heavy_pts.push(FeedbackPoint::new(p.id, p.vector, 10.0));
        }
        let heavy = Cluster::from_points(heavy_pts).unwrap();
        let light = blob(10.0, 10.0, 4);
        let q =
            DisjunctiveQuery::new(&[heavy, light], CovarianceScheme::default_diagonal()).unwrap();
        let balanced = two_cluster_query(CovarianceScheme::default_diagonal());
        // At the midpoint the heavy query should pull the distance down
        // relative to cluster 1's side compared to the balanced query.
        let x = [5.0, 5.0];
        assert!(q.distance(&x).is_finite());
        assert!(balanced.distance(&x).is_finite());
    }

    #[test]
    fn lower_bound_contract_diagonal() {
        let q = two_cluster_query(CovarianceScheme::default_diagonal());
        let b = BoundingBox::new(vec![2.0, 2.0], vec![4.0, 4.0]);
        let lb = q.min_distance(&b);
        for i in 0..=10 {
            for j in 0..=10 {
                let x = [2.0 + 0.2 * i as f64, 2.0 + 0.2 * j as f64];
                assert!(
                    q.distance(&x) >= lb - 1e-9,
                    "x={x:?} d={} lb={lb}",
                    q.distance(&x)
                );
            }
        }
    }

    #[test]
    fn lower_bound_contract_full() {
        // Build clusters with correlated covariance to exercise λ_min.
        let a = Cluster::from_points(vec![
            pt(0, &[0.0, 0.0], 1.0),
            pt(1, &[1.0, 1.0], 1.0),
            pt(2, &[2.0, 2.2], 1.0),
            pt(3, &[-1.0, -0.9], 1.0),
        ])
        .unwrap();
        let b = Cluster::from_points(vec![
            pt(4, &[8.0, 0.0], 1.0),
            pt(5, &[9.0, 1.0], 1.0),
            pt(6, &[10.0, -1.0], 1.0),
        ])
        .unwrap();
        let q = DisjunctiveQuery::new(&[a, b], CovarianceScheme::default_full()).unwrap();
        let bx = BoundingBox::new(vec![3.0, -2.0], vec![6.0, 2.0]);
        let lb = q.min_distance(&bx);
        for i in 0..=10 {
            for j in 0..=10 {
                let x = [3.0 + 0.3 * i as f64, -2.0 + 0.4 * j as f64];
                assert!(q.distance(&x) >= lb - 1e-9);
            }
        }
    }

    #[test]
    fn single_cluster_query_reduces_to_quadratic() {
        let c = blob(0.0, 0.0, 0);
        let scheme = CovarianceScheme::default_diagonal();
        let dq = DisjunctiveQuery::new(std::slice::from_ref(&c), scheme).unwrap();
        let cd = ClusterDistance::new(&c, scheme).unwrap();
        for &x in &[[0.5, 0.5], [3.0, -1.0], [0.0, 2.0]] {
            assert!((dq.distance(&x) - cd.distance(&x)).abs() < 1e-12);
        }
    }

    #[test]
    fn box_containing_representative_has_zero_bound() {
        let q = two_cluster_query(CovarianceScheme::default_diagonal());
        let b = BoundingBox::new(vec![-1.0, -1.0], vec![1.0, 1.0]);
        assert_eq!(q.min_distance(&b), 0.0);
    }

    #[test]
    fn aggregate_clamps_negative_artifacts_to_zero() {
        // A tiny negative per-cluster distance (numerical artifact of a
        // near-singular covariance) must aggregate exactly like a zero
        // distance, not poison the harmonic mean with a negative term.
        let q = two_cluster_query(CovarianceScheme::default_diagonal());
        assert_eq!(q.aggregate([(1.0, -1e-14), (1.0, 3.0)].into_iter()), 0.0);
        assert_eq!(q.aggregate([(1.0, 0.0), (1.0, 3.0)].into_iter()), 0.0);
        // All-positive distances are unaffected by the clamp.
        let clean = q.aggregate([(1.0, 2.0), (1.0, 4.0)].into_iter());
        assert!((clean - q.total_mass / (1.0 / 2.0 + 1.0 / 4.0)).abs() < 1e-12);
    }

    #[test]
    fn near_singular_cluster_yields_finite_nonnegative_distances() {
        // Points nearly on a line: the sample covariance is close to
        // singular, so the full scheme leans on regularization and the
        // quadratic form can wobble near zero. Distances must stay finite
        // and non-negative everywhere.
        let a = Cluster::from_points(vec![
            pt(0, &[0.0, 0.0], 1.0),
            pt(1, &[1.0, 1.0 + 1e-9], 1.0),
            pt(2, &[2.0, 2.0 - 1e-9], 1.0),
            pt(3, &[3.0, 3.0], 1.0),
        ])
        .unwrap();
        let b = blob(10.0, 10.0, 4);
        for scheme in [
            CovarianceScheme::default_diagonal(),
            CovarianceScheme::default_full(),
        ] {
            let q = DisjunctiveQuery::new(&[a.clone(), b.clone()], scheme).unwrap();
            for &x in &[
                [0.0, 0.0],
                [1.5, 1.5],
                [1.5, 1.5 + 1e-10],
                [10.0, 10.0],
                [5.0, 4.0],
            ] {
                let d = q.distance(&x);
                assert!(d.is_finite(), "x={x:?} d={d}");
                assert!(d >= 0.0, "x={x:?} d={d}");
            }
        }
    }

    fn grid_block(dim: usize, n: usize) -> Vec<f64> {
        // Deterministic pseudo-random block via an LCG.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut block = Vec::with_capacity(n * dim);
        for _ in 0..n * dim {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            block.push(((state >> 11) as f64 / (1u64 << 53) as f64) * 12.0 - 1.0);
        }
        block
    }

    #[test]
    fn batch_matches_scalar_bit_for_bit() {
        for scheme in [
            CovarianceScheme::default_diagonal(),
            CovarianceScheme::default_full(),
        ] {
            let q = two_cluster_query(scheme);
            let cd = ClusterDistance::new(&blob(0.0, 0.0, 0), scheme).unwrap();
            for n in [1usize, 3, 7, 13] {
                let block = grid_block(2, n);
                let mut got = vec![0.0; n];
                q.distance_batch(&block, 2, &mut got);
                for p in 0..n {
                    let want = q.distance(&block[p * 2..(p + 1) * 2]);
                    assert_eq!(got[p], want, "disjunctive {scheme:?} n={n} p={p}");
                }
                cd.distance_batch(&block, 2, &mut got);
                for p in 0..n {
                    let want = cd.distance(&block[p * 2..(p + 1) * 2]);
                    assert_eq!(got[p], want, "cluster {scheme:?} n={n} p={p}");
                }
            }
        }
    }

    #[test]
    fn batch_distance_zero_at_representatives() {
        let q = two_cluster_query(CovarianceScheme::default_diagonal());
        let block = [0.0, 0.0, 5.0, 5.0, 10.0, 10.0];
        let mut out = [0.0; 3];
        q.distance_batch(&block, 2, &mut out);
        assert_eq!(out[0], 0.0);
        assert!(out[1] > 0.0);
        assert_eq!(out[2], 0.0);
    }

    fn tiles_of(block: &[f64], dim: usize, n: usize) -> Vec<f64> {
        use qcluster_linalg::vecops::{transpose_tile, TILE_LANES};
        let ntiles = n.div_ceil(TILE_LANES);
        let mut tiles = vec![0.0; ntiles * dim * TILE_LANES];
        for t in 0..ntiles {
            let lo = t * TILE_LANES;
            let hi = n.min(lo + TILE_LANES);
            transpose_tile(
                &block[lo * dim..hi * dim],
                dim,
                &mut tiles[t * dim * TILE_LANES..(t + 1) * dim * TILE_LANES],
            );
        }
        tiles
    }

    #[test]
    fn tiles_match_batch_bit_for_bit() {
        for scheme in [
            CovarianceScheme::default_diagonal(),
            CovarianceScheme::default_full(),
        ] {
            let q = two_cluster_query(scheme);
            let cd = ClusterDistance::new(&blob(0.0, 0.0, 0), scheme).unwrap();
            for n in [1usize, 7, 8, 13, 24] {
                let block = grid_block(2, n);
                let tiles = tiles_of(&block, 2, n);
                let mut want = vec![0.0; n];
                let mut got = vec![0.0; n];
                q.distance_batch(&block, 2, &mut want);
                q.distance_tiles(&tiles, 2, &mut got);
                assert_eq!(got, want, "disjunctive {scheme:?} n={n}");
                cd.distance_batch(&block, 2, &mut want);
                cd.distance_tiles(&tiles, 2, &mut got);
                assert_eq!(got, want, "cluster {scheme:?} n={n}");
            }
        }
    }

    #[test]
    fn two_phase_matches_exact_for_disjunctive_query() {
        use qcluster_index::{LinearScan, QuantizedScan};
        let n = 257;
        let data = grid_block(2, n);
        let exact = LinearScan::from_flat(data.clone(), 2);
        let quant = QuantizedScan::from_flat(&data, 2);
        let q = two_cluster_query(CovarianceScheme::default_diagonal());
        for k in [1usize, 5, 16] {
            let want = exact.knn(&q, k);
            let (got, stats) = quant.two_phase_knn(&q, k, None);
            assert_eq!(got, want, "k={k}");
            assert_eq!(stats.plan_misses, 0, "diagonal scheme must quantize");
        }
    }

    #[test]
    fn full_scheme_misses_plan_but_stays_exact() {
        use qcluster_index::{LinearScan, QuantizedScan};
        let n = 64;
        let data = grid_block(2, n);
        let exact = LinearScan::from_flat(data.clone(), 2);
        let quant = QuantizedScan::from_flat(&data, 2);
        let q = two_cluster_query(CovarianceScheme::default_full());
        assert!(q.quantized_plan(quant.params()).is_none());
        let (got, stats) = quant.two_phase_knn(&q, 4, None);
        assert_eq!(got, exact.knn(&q, 4));
        assert_eq!(stats.plan_misses, 1);
        assert_eq!(stats.phase1_points, 0);
    }
}
