//! The cluster summary: weighted centroid, covariance, and mass.
//!
//! A cluster represents one mode of the user's information need. Its
//! sufficient statistics are exactly the paper's:
//!
//! - the **score-weighted centroid** `x̄_i = Σ v_ik x_ik / Σ v_ik` (Def. 1),
//! - the **score-weighted covariance** (Def. 2, normalized — see below),
//! - the **mass** `m_i = Σ v_ik` (the sum of relevance scores) and the
//!   point count `n_i`.
//!
//! ### A note on Def. 2 vs. Eq. 13
//!
//! The paper's Def. 2 writes the *unnormalized* weighted scatter
//! `Σ v_ik (x−x̄)(x−x̄)ᵀ`, but its closed-form merge rule (Eq. 13) combines
//! `S_i` with `(m_i − 1)/(m_new − 1)` prefactors — the textbook combination
//! rule for **sample covariances** (Johnson & Wichern, the paper's
//! reference \[12\]). The two are only consistent if `S_i` is the scatter
//! normalized by `m_i − 1`. We therefore store the normalized covariance
//! `S_i = scatter / (m_i − 1)` (zero for `m_i ≤ 1`), which makes Eq. 13
//! exact — verified in the tests by recomputing from raw points.
//!
//! Clusters also retain their member points. The engine's measures only
//! need the summaries (that is the point of Eqs. 11–13), but the members
//! power the pairwise pooled covariance of the merge test (Eq. 15) and the
//! leave-one-out quality metric (Sec. 4.5).

use crate::error::{CoreError, Result};
use crate::scheme::{CovarianceScheme, InverseCovariance};
use crate::types::FeedbackPoint;
use qcluster_linalg::Matrix;

/// One adaptive cluster with its sufficient statistics and members.
///
/// ```
/// use qcluster_core::{Cluster, FeedbackPoint};
///
/// let cluster = Cluster::from_points(vec![
///     FeedbackPoint::new(0, vec![0.0, 0.0], 3.0),
///     FeedbackPoint::new(1, vec![2.0, 2.0], 1.0),
/// ])?;
/// // Score-weighted centroid (Def. 1): (3·(0,0) + 1·(2,2)) / 4.
/// assert_eq!(cluster.mean(), &[0.5, 0.5]);
/// assert_eq!(cluster.mass(), 4.0);
/// # Ok::<(), qcluster_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Cluster {
    members: Vec<FeedbackPoint>,
    mean: Vec<f64>,
    /// Normalized weighted covariance (see module docs).
    cov: Matrix,
    /// Mass `m_i`: sum of relevance scores.
    mass: f64,
}

impl Cluster {
    /// A singleton cluster seeded from one relevant point.
    pub fn from_point(p: FeedbackPoint) -> Self {
        let dim = p.dim();
        Cluster {
            mean: p.vector.clone(),
            cov: Matrix::zeros(dim, dim),
            mass: p.score,
            members: vec![p],
        }
    }

    /// Builds a cluster from a non-empty set of points (recomputing the
    /// statistics exactly).
    ///
    /// # Errors
    ///
    /// [`CoreError::EmptyFeedback`] for an empty set,
    /// [`CoreError::DimensionMismatch`] for ragged dimensionalities.
    pub fn from_points(points: Vec<FeedbackPoint>) -> Result<Self> {
        let first_dim = points.first().ok_or(CoreError::EmptyFeedback)?.dim();
        for p in &points {
            if p.dim() != first_dim {
                return Err(CoreError::DimensionMismatch {
                    expected: first_dim,
                    found: p.dim(),
                });
            }
        }
        let mut c = Cluster {
            members: points,
            mean: vec![0.0; first_dim],
            cov: Matrix::zeros(first_dim, first_dim),
            mass: 0.0,
        };
        c.recompute();
        Ok(c)
    }

    /// Adds one point, updating the statistics **incrementally** via the
    /// closed-form combination rules (Eqs. 11–13 with a singleton second
    /// cluster) — the paper's "constructs clusters and changes them
    /// without performing complete re-clustering". Cost O(p²) per point
    /// instead of O(n·p²); exactness against full recomputation is
    /// verified by tests.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch (callers validate dimensions at the
    /// engine boundary).
    pub fn push(&mut self, p: FeedbackPoint) {
        assert_eq!(p.dim(), self.dim(), "point dimension mismatch");
        let (mi, mj) = (self.mass, p.score);
        let m_new = mi + mj; // Eq. 11

        // Eq. 12 with the singleton's centroid = the point itself.
        let mut mean = vec![0.0; self.dim()];
        qcluster_linalg::vecops::axpy(&mut mean, &self.mean, mi / m_new);
        qcluster_linalg::vecops::axpy(&mut mean, &p.vector, mj / m_new);

        // Eq. 13 with S_j = 0 (a singleton has no scatter).
        if m_new > 1.0 {
            let denom = m_new - 1.0;
            let scale = if mi > 1.0 { (mi - 1.0) / denom } else { 0.0 };
            let mut cov = self.cov.scale(scale);
            let diff = qcluster_linalg::vecops::sub(&self.mean, &p.vector);
            let outer = Matrix::outer(&diff, &diff);
            cov.add_assign_scaled(&outer, mi * mj / (m_new * denom));
            self.cov = cov;
        }
        self.mean = mean;
        self.mass = m_new;
        self.members.push(p);
    }

    /// Recomputes mean/covariance/mass from the member list (Defs. 1–2).
    fn recompute(&mut self) {
        let dim = self.dim();
        let mass: f64 = self.members.iter().map(|p| p.score).sum();
        let mut mean = vec![0.0; dim];
        for p in &self.members {
            qcluster_linalg::vecops::axpy(&mut mean, &p.vector, p.score);
        }
        for m in &mut mean {
            *m /= mass;
        }
        let mut cov = Matrix::zeros(dim, dim);
        if mass > 1.0 {
            for p in &self.members {
                for a in 0..dim {
                    let da = p.vector[a] - mean[a];
                    if da == 0.0 {
                        continue;
                    }
                    for b in a..dim {
                        let db = p.vector[b] - mean[b];
                        let v = cov.get(a, b) + p.score * da * db;
                        cov.set(a, b, v);
                    }
                }
            }
            let denom = mass - 1.0;
            for a in 0..dim {
                for b in a..dim {
                    let v = cov.get(a, b) / denom;
                    cov.set(a, b, v);
                    cov.set(b, a, v);
                }
            }
        }
        self.mean = mean;
        self.cov = cov;
        self.mass = mass;
    }

    /// Merges two clusters in closed form from their statistics
    /// (paper Eqs. 11–13) and unions their members.
    pub fn merge(a: &Cluster, b: &Cluster) -> Cluster {
        assert_eq!(a.dim(), b.dim(), "cluster dimension mismatch");
        let (mi, mj) = (a.mass, b.mass);
        let m_new = mi + mj; // Eq. 11

        // Eq. 12: mass-weighted centroid combination.
        let mut mean = vec![0.0; a.dim()];
        qcluster_linalg::vecops::axpy(&mut mean, &a.mean, mi / m_new);
        qcluster_linalg::vecops::axpy(&mut mean, &b.mean, mj / m_new);

        // Eq. 13: covariance combination with the between-cluster term.
        let mut cov = Matrix::zeros(a.dim(), a.dim());
        if m_new > 1.0 {
            let denom = m_new - 1.0;
            cov.add_assign_scaled(&a.cov, (mi - 1.0) / denom);
            cov.add_assign_scaled(&b.cov, (mj - 1.0) / denom);
            let diff = qcluster_linalg::vecops::sub(&a.mean, &b.mean);
            let outer = Matrix::outer(&diff, &diff);
            cov.add_assign_scaled(&outer, mi * mj / (m_new * denom));
        }

        let mut members = a.members.clone();
        members.extend(b.members.iter().cloned());
        Cluster {
            members,
            mean,
            cov,
            mass: m_new,
        }
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Number of member points `n_i`.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` when the cluster holds no points (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The score-weighted centroid `x̄_i` (Def. 1).
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// The normalized weighted covariance `S_i`.
    pub fn covariance(&self) -> &Matrix {
        &self.cov
    }

    /// The mass `m_i = Σ v_ik` (sum of relevance scores).
    pub fn mass(&self) -> f64 {
        self.mass
    }

    /// The member points.
    pub fn members(&self) -> &[FeedbackPoint] {
        &self.members
    }

    /// `true` when the cluster already contains the image `id`.
    pub fn contains_id(&self, id: usize) -> bool {
        self.members.iter().any(|p| p.id == id)
    }

    /// Materializes `S_i⁻¹` under `scheme`.
    ///
    /// # Errors
    ///
    /// Propagates inversion failures from the scheme.
    pub fn inverse_covariance(&self, scheme: CovarianceScheme) -> Result<InverseCovariance> {
        scheme.invert(&self.cov).map_err(CoreError::from)
    }

    /// The squared Mahalanobis distance `(x − x̄)ᵀ S⁻¹ (x − x̄)` of `x`
    /// under this cluster's own covariance — the quantity compared against
    /// the effective radius `χ²_p(α)` in Lemma 1 / Algorithm 2 step 4.
    ///
    /// # Errors
    ///
    /// Propagates inversion failures.
    pub fn mahalanobis(&self, x: &[f64], scheme: CovarianceScheme) -> Result<f64> {
        let inv = self.inverse_covariance(scheme)?;
        let mut scratch = vec![0.0; self.dim()];
        Ok(inv.quadratic_form(x, &self.mean, &mut scratch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(id: usize, v: &[f64], s: f64) -> FeedbackPoint {
        FeedbackPoint::new(id, v.to_vec(), s)
    }

    #[test]
    fn singleton_statistics() {
        let c = Cluster::from_point(pt(0, &[1.0, 2.0], 3.0));
        assert_eq!(c.mean(), &[1.0, 2.0]);
        assert_eq!(c.mass(), 3.0);
        assert_eq!(c.len(), 1);
        assert_eq!(c.covariance().max_abs(), 0.0);
    }

    #[test]
    fn weighted_centroid_matches_def1() {
        // x̄ = (3·(0,0) + 1·(4,4)) / 4 = (1,1)
        let c =
            Cluster::from_points(vec![pt(0, &[0.0, 0.0], 3.0), pt(1, &[4.0, 4.0], 1.0)]).unwrap();
        assert_eq!(c.mean(), &[1.0, 1.0]);
        assert_eq!(c.mass(), 4.0);
    }

    #[test]
    fn push_is_equivalent_to_from_points() {
        let pts = vec![
            pt(0, &[0.0, 1.0], 3.0),
            pt(1, &[2.0, -1.0], 1.0),
            pt(2, &[0.5, 0.5], 2.0),
        ];
        let whole = Cluster::from_points(pts.clone()).unwrap();
        let mut inc = Cluster::from_point(pts[0].clone());
        inc.push(pts[1].clone());
        inc.push(pts[2].clone());
        for (a, b) in whole.mean().iter().zip(inc.mean().iter()) {
            assert!((a - b).abs() < 1e-12);
        }
        assert!((whole.covariance().max_abs() - inc.covariance().max_abs()).abs() < 1e-12);
        assert_eq!(whole.mass(), inc.mass());
    }

    #[test]
    fn merge_matches_recomputation_from_points() {
        // Eq. 11–13 combined statistics must equal recomputing from the
        // union of members — including non-uniform scores.
        let a = Cluster::from_points(vec![
            pt(0, &[0.0, 0.0], 3.0),
            pt(1, &[1.0, 0.5], 1.0),
            pt(2, &[0.5, 1.0], 2.0),
        ])
        .unwrap();
        let b =
            Cluster::from_points(vec![pt(3, &[5.0, 5.0], 3.0), pt(4, &[6.0, 4.5], 3.0)]).unwrap();
        let merged = Cluster::merge(&a, &b);
        let mut union = a.members().to_vec();
        union.extend(b.members().iter().cloned());
        let direct = Cluster::from_points(union).unwrap();

        assert_eq!(merged.mass(), direct.mass());
        for (x, y) in merged.mean().iter().zip(direct.mean().iter()) {
            assert!((x - y).abs() < 1e-12, "mean mismatch");
        }
        for i in 0..2 {
            for j in 0..2 {
                assert!(
                    (merged.covariance().get(i, j) - direct.covariance().get(i, j)).abs() < 1e-12,
                    "cov mismatch at ({i},{j})"
                );
            }
        }
        assert_eq!(merged.len(), 5);
    }

    #[test]
    fn merge_is_commutative() {
        let a = Cluster::from_points(vec![pt(0, &[0.0], 1.0), pt(1, &[1.0], 2.0)]).unwrap();
        let b = Cluster::from_points(vec![pt(2, &[5.0], 1.0)]).unwrap();
        let ab = Cluster::merge(&a, &b);
        let ba = Cluster::merge(&b, &a);
        assert!((ab.mean()[0] - ba.mean()[0]).abs() < 1e-12);
        assert!((ab.covariance().get(0, 0) - ba.covariance().get(0, 0)).abs() < 1e-12);
    }

    #[test]
    fn mahalanobis_at_mean_is_zero() {
        let c = Cluster::from_points(vec![
            pt(0, &[0.0, 0.0], 1.0),
            pt(1, &[2.0, 0.0], 1.0),
            pt(2, &[0.0, 2.0], 1.0),
        ])
        .unwrap();
        let d = c
            .mahalanobis(c.mean(), CovarianceScheme::default_diagonal())
            .unwrap();
        assert!(d.abs() < 1e-12);
    }

    #[test]
    fn mahalanobis_grows_with_distance() {
        let c = Cluster::from_points(vec![
            pt(0, &[-1.0, 0.0], 1.0),
            pt(1, &[1.0, 0.0], 1.0),
            pt(2, &[0.0, 1.0], 1.0),
            pt(3, &[0.0, -1.0], 1.0),
        ])
        .unwrap();
        for scheme in [
            CovarianceScheme::default_diagonal(),
            CovarianceScheme::default_full(),
        ] {
            let near = c.mahalanobis(&[0.1, 0.1], scheme).unwrap();
            let far = c.mahalanobis(&[3.0, 3.0], scheme).unwrap();
            assert!(far > near, "{scheme:?}");
        }
    }

    #[test]
    fn contains_id_checks_members() {
        let c = Cluster::from_point(pt(42, &[0.0], 1.0));
        assert!(c.contains_id(42));
        assert!(!c.contains_id(7));
    }

    #[test]
    fn from_points_rejects_empty_and_ragged() {
        assert!(matches!(
            Cluster::from_points(vec![]),
            Err(CoreError::EmptyFeedback)
        ));
        assert!(matches!(
            Cluster::from_points(vec![pt(0, &[1.0], 1.0), pt(1, &[1.0, 2.0], 1.0)]),
            Err(CoreError::DimensionMismatch { .. })
        ));
    }
}
