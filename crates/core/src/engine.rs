//! The relevance-feedback engine (paper Sec. 3.3, Algorithm 1).
//!
//! One engine instance owns one feedback session. Per iteration:
//!
//! 1. the caller runs the k-NN query (initially from the example image,
//!    afterwards from [`QclusterEngine::query`]) and collects the user's
//!    relevant set;
//! 2. [`QclusterEngine::feed`] ingests the relevant points — the first
//!    round seeds clusters by hierarchical agglomeration (Sec. 4.1), later
//!    rounds run the adaptive Bayesian classification (Algorithm 2) — and
//!    then reduces the cluster count with T² merging (Algorithm 3);
//! 3. [`QclusterEngine::query`] compiles the disjunctive multipoint query
//!    (Eq. 5) for the next round.

use crate::classify::{BayesianClassifier, Classification};
use crate::cluster::Cluster;
use crate::distance::DisjunctiveQuery;
use crate::error::{CoreError, Result};
use crate::hierarchical::hierarchical_clustering;
use crate::merge::{merge_clusters, MergeOutcome};
use crate::scheme::CovarianceScheme;
use crate::types::FeedbackPoint;

/// How the geometric merge threshold (used by the initial hierarchical
/// pass and by degenerate singleton pairs) is chosen.
///
/// The threshold is a *squared* centroid distance, so its right value is
/// inherently data-scale-dependent. [`ThresholdPolicy::Auto`] adapts it to
/// each round's relevant set: the threshold is
/// `(multiplier × median nearest-neighbor distance)²` over the marked
/// points, which merges points that are mutual neighbors while keeping
/// genuinely disjoint modes (many NN-distances apart) separate — at any
/// feature scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ThresholdPolicy {
    /// A fixed squared distance (caller knows the feature scale).
    Fixed(f64),
    /// `(multiplier × median NN distance of the relevant set)²`.
    Auto {
        /// Multiplier on the median nearest-neighbor distance.
        multiplier: f64,
    },
}

impl ThresholdPolicy {
    /// Resolves the policy against a concrete relevant set.
    pub fn resolve(&self, points: &[FeedbackPoint]) -> f64 {
        match *self {
            ThresholdPolicy::Fixed(t) => t,
            ThresholdPolicy::Auto { multiplier } => {
                let med = median_nn_distance(points);
                (multiplier * med).powi(2)
            }
        }
    }
}

/// Median nearest-neighbor (Euclidean) distance among the points;
/// `0.0` for fewer than two points.
fn median_nn_distance(points: &[FeedbackPoint]) -> f64 {
    if points.len() < 2 {
        return 0.0;
    }
    let mut nn: Vec<f64> = points
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let mut best = f64::INFINITY;
            for (j, q) in points.iter().enumerate() {
                if j == i {
                    continue;
                }
                let d = qcluster_linalg::vecops::sq_euclidean(&p.vector, &q.vector);
                if d == 0.0 {
                    // A duplicate point: nothing can be nearer.
                    best = 0.0;
                    break;
                }
                best = best.min(d);
            }
            best
        })
        .collect();
    nn.sort_by(f64::total_cmp);
    nn[nn.len() / 2].sqrt()
}

/// Tunable parameters of the engine.
#[derive(Debug, Clone, Copy)]
pub struct QclusterConfig {
    /// Significance level α for both the effective radius (Lemma 1) and
    /// the merge test (Eq. 16). Paper: typically 0.01–0.05.
    pub alpha: f64,
    /// Cluster-count threshold the merge stage drives toward ("repeat …
    /// until the number of clusters is reduced to a given size").
    pub target_clusters: usize,
    /// Maximum α-relaxations per merge pass (Algorithm 3 step 8). Zero
    /// disables forcing and keeps only statistically justified merges —
    /// forcing disjoint modes together destroys exactly the structure the
    /// disjunctive query exploits, so the default leaves it off.
    pub max_relaxations: usize,
    /// Geometric merge threshold policy (see [`ThresholdPolicy`]).
    pub threshold: ThresholdPolicy,
    /// Covariance handling (diagonal vs full inverse; Fig. 6's ablation).
    pub scheme: CovarianceScheme,
}

impl Default for QclusterConfig {
    fn default() -> Self {
        QclusterConfig {
            alpha: 0.05,
            target_clusters: 5,
            max_relaxations: 0,
            threshold: ThresholdPolicy::Auto { multiplier: 2.0 },
            scheme: CovarianceScheme::default_diagonal(),
        }
    }
}

/// The adaptive-clustering relevance-feedback engine.
#[derive(Debug, Clone)]
pub struct QclusterEngine {
    config: QclusterConfig,
    clusters: Vec<Cluster>,
    iteration: usize,
    last_merge: MergeOutcome,
    version: u64,
}

impl QclusterEngine {
    /// Creates an engine with no clusters yet.
    pub fn new(config: QclusterConfig) -> Self {
        QclusterEngine {
            config,
            clusters: Vec::new(),
            iteration: 0,
            last_merge: MergeOutcome::default(),
            version: 0,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &QclusterConfig {
        &self.config
    }

    /// Number of completed feedback iterations.
    pub fn iteration(&self) -> usize {
        self.iteration
    }

    /// The current clusters.
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }

    /// Current cluster count `g`.
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Statistics of the most recent merge pass.
    pub fn last_merge_outcome(&self) -> MergeOutcome {
        self.last_merge
    }

    /// Monotonic cluster-state version.
    ///
    /// Bumped exactly when the cluster set can change — on every
    /// successful [`QclusterEngine::feed`] and on
    /// [`QclusterEngine::reset`] — and never by [`QclusterEngine::query`].
    /// A compiled [`DisjunctiveQuery`] therefore stays valid for as long
    /// as the version it was compiled at matches, which is what the
    /// service layer's per-session plan cache keys on.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Drops all state, starting a fresh session.
    pub fn reset(&mut self) {
        self.clusters.clear();
        self.iteration = 0;
        self.last_merge = MergeOutcome::default();
        self.version += 1;
    }

    /// Ingests one round of user-marked relevant points (Algorithm 1
    /// steps 4–15).
    ///
    /// Points whose image id is already in some cluster are skipped — the
    /// same relevant image re-marked in a later round carries no new
    /// information. Dimensions and scores are validated.
    ///
    /// # Errors
    ///
    /// [`CoreError::EmptyFeedback`] when `relevant` is empty,
    /// [`CoreError::DimensionMismatch`] / [`CoreError::InvalidScore`] on
    /// malformed points; propagates numerical failures.
    pub fn feed(&mut self, relevant: &[FeedbackPoint]) -> Result<()> {
        if relevant.is_empty() {
            return Err(CoreError::EmptyFeedback);
        }
        let dim = self
            .clusters
            .first()
            .map(|c| c.dim())
            .unwrap_or_else(|| relevant[0].dim());
        for p in relevant {
            if p.dim() != dim {
                return Err(CoreError::DimensionMismatch {
                    expected: dim,
                    found: p.dim(),
                });
            }
            if p.score <= 0.0 || p.score.is_nan() {
                return Err(CoreError::InvalidScore(p.score));
            }
        }

        let threshold = self.config.threshold.resolve(relevant);
        if self.clusters.is_empty() {
            // Initial iteration: hierarchical clustering (Alg. 1 step 1).
            self.clusters =
                hierarchical_clustering(relevant.to_vec(), self.config.target_clusters, threshold)?;
        } else {
            // Adaptive classification (Alg. 2) against the clusters from
            // the previous iteration; the classifier is fitted once and the
            // winning cluster is updated incrementally per point.
            for p in relevant {
                if self.clusters.iter().any(|c| c.contains_id(p.id)) {
                    continue;
                }
                let classifier =
                    BayesianClassifier::fit(&self.clusters, self.config.scheme, self.config.alpha)?;
                match classifier.classify(&self.clusters, &p.vector) {
                    Classification::Assign(k) => self.clusters[k].push(p.clone()),
                    Classification::NewCluster => {
                        self.clusters.push(Cluster::from_point(p.clone()))
                    }
                }
            }
        }

        // Cluster-merging stage (Alg. 3).
        self.last_merge = merge_clusters(
            &mut self.clusters,
            self.config.scheme,
            self.config.alpha,
            self.config.target_clusters,
            self.config.max_relaxations,
            threshold,
        )?;
        self.iteration += 1;
        self.version += 1;
        Ok(())
    }

    /// Compiles the disjunctive multipoint query (Eq. 5) over the current
    /// cluster representatives.
    ///
    /// # Errors
    ///
    /// [`CoreError::NoClusters`] before the first `feed`.
    pub fn query(&self) -> Result<DisjunctiveQuery> {
        if self.clusters.is_empty() {
            return Err(CoreError::NoClusters);
        }
        DisjunctiveQuery::new(&self.clusters, self.config.scheme)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcluster_index::QueryDistance;

    fn pt(id: usize, v: &[f64]) -> FeedbackPoint {
        FeedbackPoint::new(id, v.to_vec(), 3.0)
    }

    fn group(cx: f64, cy: f64, base_id: usize, n: usize) -> Vec<FeedbackPoint> {
        (0..n)
            .map(|k| {
                let a = k as f64 * std::f64::consts::TAU / n as f64;
                pt(base_id + k, &[cx + 0.3 * a.cos(), cy + 0.3 * a.sin()])
            })
            .collect()
    }

    #[test]
    fn first_feed_builds_clusters() {
        let mut e = QclusterEngine::new(QclusterConfig::default());
        let mut pts = group(0.0, 0.0, 0, 5);
        pts.extend(group(8.0, 8.0, 5, 5));
        e.feed(&pts).unwrap();
        assert_eq!(e.num_clusters(), 2);
        assert_eq!(e.iteration(), 1);
    }

    #[test]
    fn second_feed_classifies_into_existing_clusters() {
        let mut e = QclusterEngine::new(QclusterConfig::default());
        let mut pts = group(0.0, 0.0, 0, 5);
        pts.extend(group(8.0, 8.0, 5, 5));
        e.feed(&pts).unwrap();
        // New points near cluster 0 join it.
        e.feed(&group(0.1, 0.1, 100, 3)).unwrap();
        assert_eq!(e.num_clusters(), 2);
        let sizes: Vec<usize> = e.clusters().iter().map(|c| c.len()).collect();
        assert!(sizes.contains(&8), "sizes {sizes:?}");
    }

    #[test]
    fn distant_feedback_opens_then_keeps_new_cluster() {
        let mut e = QclusterEngine::new(QclusterConfig {
            target_clusters: 2,
            max_relaxations: 50,
            ..QclusterConfig::default()
        });
        e.feed(&group(0.0, 0.0, 0, 5)).unwrap();
        assert_eq!(e.num_clusters(), 1);
        e.feed(&group(50.0, 50.0, 100, 5)).unwrap();
        assert_eq!(e.num_clusters(), 2);
        // The merge stage must not have mixed the two distant groups.
        for c in e.clusters() {
            let ids: Vec<usize> = c.members().iter().map(|p| p.id).collect();
            assert!(
                ids.iter().all(|&i| i < 100) || ids.iter().all(|&i| i >= 100),
                "mixed cluster: {ids:?}"
            );
        }
    }

    #[test]
    fn duplicate_ids_are_skipped() {
        let mut e = QclusterEngine::new(QclusterConfig::default());
        let pts = group(0.0, 0.0, 0, 5);
        e.feed(&pts).unwrap();
        let total: usize = e.clusters().iter().map(|c| c.len()).sum();
        e.feed(&pts).unwrap();
        let total2: usize = e.clusters().iter().map(|c| c.len()).sum();
        assert_eq!(total, total2);
    }

    #[test]
    fn query_reflects_disjunctive_structure() {
        let mut e = QclusterEngine::new(QclusterConfig::default());
        let mut pts = group(0.0, 0.0, 0, 6);
        pts.extend(group(10.0, 0.0, 6, 6));
        e.feed(&pts).unwrap();
        let q = e.query().unwrap();
        assert_eq!(q.num_representatives(), 2);
        assert!(q.distance(&[0.0, 0.0]) < q.distance(&[5.0, 0.0]));
        assert!(q.distance(&[10.0, 0.0]) < q.distance(&[5.0, 0.0]));
    }

    #[test]
    fn errors_on_empty_and_malformed_feedback() {
        let mut e = QclusterEngine::new(QclusterConfig::default());
        assert!(matches!(e.feed(&[]), Err(CoreError::EmptyFeedback)));
        assert!(matches!(e.query(), Err(CoreError::NoClusters)));
        e.feed(&group(0.0, 0.0, 0, 3)).unwrap();
        let bad = FeedbackPoint::new(99, vec![1.0, 2.0, 3.0], 1.0);
        assert!(matches!(
            e.feed(&[bad]),
            Err(CoreError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn reset_clears_session() {
        let mut e = QclusterEngine::new(QclusterConfig::default());
        e.feed(&group(0.0, 0.0, 0, 3)).unwrap();
        e.reset();
        assert_eq!(e.num_clusters(), 0);
        assert_eq!(e.iteration(), 0);
        assert!(e.query().is_err());
    }

    #[test]
    fn fixed_threshold_policy_is_honored() {
        // A fixed threshold so large that everything merges initially.
        let mut e = QclusterEngine::new(QclusterConfig {
            threshold: ThresholdPolicy::Fixed(1e6),
            ..QclusterConfig::default()
        });
        let mut pts = group(0.0, 0.0, 0, 4);
        pts.extend(group(50.0, 50.0, 10, 4));
        e.feed(&pts).unwrap();
        assert_eq!(e.num_clusters(), 1, "huge threshold must merge all");

        let mut e = QclusterEngine::new(QclusterConfig {
            threshold: ThresholdPolicy::Fixed(1e-12),
            target_clusters: 100,
            ..QclusterConfig::default()
        });
        let mut pts = group(0.0, 0.0, 0, 4);
        pts.extend(group(50.0, 50.0, 10, 4));
        e.feed(&pts).unwrap();
        // Tiny threshold with a huge target: singleton pairs never merge
        // geometrically, and with so few points per neighborhood the T²
        // test has no power either — clusters stay fine-grained.
        assert!(e.num_clusters() > 2, "got {}", e.num_clusters());
    }

    #[test]
    fn threshold_policy_resolves_scale() {
        // Auto threshold tracks the marked set's scale.
        let tight: Vec<FeedbackPoint> = (0..5).map(|i| pt(i, &[i as f64 * 0.01, 0.0])).collect();
        let wide: Vec<FeedbackPoint> = (0..5).map(|i| pt(i, &[i as f64 * 10.0, 0.0])).collect();
        let policy = ThresholdPolicy::Auto { multiplier: 2.0 };
        assert!(policy.resolve(&tight) < policy.resolve(&wide));
        // Fixed ignores the data.
        assert_eq!(ThresholdPolicy::Fixed(0.7).resolve(&tight), 0.7);
        // Degenerate inputs resolve to zero.
        assert_eq!(policy.resolve(&tight[..1]), 0.0);
    }

    #[test]
    fn median_nn_distance_handles_identical_points() {
        // All-duplicate marks: every nearest-neighbor distance is exactly
        // zero, so the auto threshold must resolve to zero instead of
        // panicking or producing NaN.
        let dupes: Vec<FeedbackPoint> = (0..4).map(|i| pt(i, &[1.5, -2.5])).collect();
        let policy = ThresholdPolicy::Auto { multiplier: 2.0 };
        assert_eq!(policy.resolve(&dupes), 0.0);
        assert_eq!(median_nn_distance(&dupes), 0.0);

        // A mixed set — one duplicate pair among spread points — keeps a
        // finite, non-NaN median.
        let mixed = vec![
            pt(0, &[0.0, 0.0]),
            pt(1, &[0.0, 0.0]),
            pt(2, &[3.0, 0.0]),
            pt(3, &[0.0, 4.0]),
        ];
        let med = median_nn_distance(&mixed);
        assert!(med.is_finite() && med >= 0.0);
    }

    #[test]
    fn graded_scores_weight_cluster_masses() {
        let mut e = QclusterEngine::new(QclusterConfig::default());
        let pts = vec![
            FeedbackPoint::new(0, vec![0.0, 0.0], 3.0),
            FeedbackPoint::new(1, vec![0.1, 0.0], 3.0),
            FeedbackPoint::new(2, vec![0.0, 0.1], 1.0),
        ];
        e.feed(&pts).unwrap();
        let total_mass: f64 = e.clusters().iter().map(|c| c.mass()).sum();
        assert!((total_mass - 7.0).abs() < 1e-12);
    }

    #[test]
    fn version_bumps_on_feed_and_reset_not_query() {
        let mut e = QclusterEngine::new(QclusterConfig::default());
        assert_eq!(e.version(), 0);
        e.feed(&group(0.0, 0.0, 0, 3)).unwrap();
        assert_eq!(e.version(), 1);
        let _ = e.query().unwrap();
        let _ = e.query().unwrap();
        assert_eq!(e.version(), 1, "query must not invalidate plans");
        e.feed(&group(0.2, 0.2, 10, 3)).unwrap();
        assert_eq!(e.version(), 2);
        e.reset();
        assert_eq!(e.version(), 3, "reset must invalidate plans");
        // A failed feed leaves the version untouched.
        assert!(e.feed(&[]).is_err());
        assert_eq!(e.version(), 3);
    }

    #[test]
    fn iteration_counter_tracks_feeds() {
        let mut e = QclusterEngine::new(QclusterConfig::default());
        assert_eq!(e.iteration(), 0);
        e.feed(&group(0.0, 0.0, 0, 3)).unwrap();
        assert_eq!(e.iteration(), 1);
        e.feed(&group(0.2, 0.2, 10, 3)).unwrap();
        assert_eq!(e.iteration(), 2);
    }

    #[test]
    fn full_inverse_scheme_end_to_end() {
        let mut e = QclusterEngine::new(QclusterConfig {
            scheme: CovarianceScheme::default_full(),
            ..QclusterConfig::default()
        });
        let mut pts = group(0.0, 0.0, 0, 6);
        pts.extend(group(6.0, 0.0, 10, 6));
        e.feed(&pts).unwrap();
        let q = e.query().unwrap();
        assert!(q.distance(&[0.0, 0.0]) < q.distance(&[3.0, 0.0]));
        // Second round still works under the full scheme.
        e.feed(&group(0.1, -0.1, 50, 3)).unwrap();
        assert!(e.query().is_ok());
    }

    #[test]
    fn merge_pass_respects_target() {
        let mut e = QclusterEngine::new(QclusterConfig {
            target_clusters: 2,
            max_relaxations: 100,
            ..QclusterConfig::default()
        });
        let mut pts = Vec::new();
        for (i, (x, y)) in [(0.0, 0.0), (20.0, 0.0), (0.0, 20.0), (20.0, 20.0)]
            .iter()
            .enumerate()
        {
            pts.extend(group(*x, *y, i * 10, 5));
        }
        e.feed(&pts).unwrap();
        assert!(e.num_clusters() <= 2);
    }
}
