//! Pooled covariance estimators (paper Eq. 7 and Eq. 15).
//!
//! Two pooled matrices appear in the paper:
//!
//! - the **classifier pool** over all `g` current clusters (under Eq. 7):
//!   `S_pooled = Σ (m_i − 1) S_i / (Σ m_i − g)`,
//! - the **merge-test pool** over one pair (Eq. 15):
//!   `S_pooled = (T_i + T_j) / (m_i + m_j)` where `T_i` is the
//!   score-weighted scatter of cluster `i` around its own mean.
//!
//! Since [`Cluster`] stores the normalized
//! covariance `S_i = T_i / (m_i − 1)`, both pools are closed-form in the
//! cluster summaries — no pass over raw points is needed, which is what
//! makes the adaptive (non-re-clustering) update cheap.

use crate::cluster::Cluster;
use qcluster_linalg::Matrix;

/// The classifier's pooled covariance over all clusters (paper Eq. 7).
///
/// Degenerate denominators (`Σ m_i ≤ g`, e.g. all singletons with score 1)
/// return the zero matrix; the covariance scheme's ridge keeps the
/// quadratic form finite.
///
/// # Panics
///
/// Panics on an empty cluster set or mismatched dimensionalities.
pub fn classifier_pooled_covariance(clusters: &[Cluster]) -> Matrix {
    assert!(!clusters.is_empty(), "need at least one cluster");
    let dim = clusters[0].dim();
    assert!(
        clusters.iter().all(|c| c.dim() == dim),
        "clusters must share one dimensionality"
    );
    let g = clusters.len() as f64;
    let total_mass: f64 = clusters.iter().map(|c| c.mass()).sum();
    let mut pooled = Matrix::zeros(dim, dim);
    let denom = total_mass - g;
    if denom <= 0.0 {
        return pooled;
    }
    for c in clusters {
        let w = (c.mass() - 1.0).max(0.0) / denom;
        if w > 0.0 {
            pooled.add_assign_scaled(c.covariance(), w);
        }
    }
    pooled
}

/// The merge test's pairwise pooled covariance (paper Eq. 15):
/// `(T_i + T_j) / (m_i + m_j)` reconstructed from the stored normalized
/// covariances.
///
/// # Panics
///
/// Panics on mismatched dimensionalities.
pub fn pairwise_pooled_covariance(a: &Cluster, b: &Cluster) -> Matrix {
    assert_eq!(a.dim(), b.dim(), "cluster dimension mismatch");
    let dim = a.dim();
    let mut pooled = Matrix::zeros(dim, dim);
    let total = a.mass() + b.mass();
    let wa = (a.mass() - 1.0).max(0.0) / total;
    let wb = (b.mass() - 1.0).max(0.0) / total;
    if wa > 0.0 {
        pooled.add_assign_scaled(a.covariance(), wa);
    }
    if wb > 0.0 {
        pooled.add_assign_scaled(b.covariance(), wb);
    }
    pooled
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::FeedbackPoint;

    fn pt(id: usize, v: &[f64], s: f64) -> FeedbackPoint {
        FeedbackPoint::new(id, v.to_vec(), s)
    }

    fn spread_cluster(base: f64, ids: usize) -> Cluster {
        Cluster::from_points(vec![
            pt(ids, &[base - 1.0, base], 1.0),
            pt(ids + 1, &[base + 1.0, base], 1.0),
            pt(ids + 2, &[base, base - 1.0], 1.0),
            pt(ids + 3, &[base, base + 1.0], 1.0),
        ])
        .unwrap()
    }

    #[test]
    fn pairwise_pool_matches_direct_scatter() {
        let a = spread_cluster(0.0, 0);
        let b = spread_cluster(10.0, 4);
        let pooled = pairwise_pooled_covariance(&a, &b);
        // Direct: each cluster's scatter around its own mean, summed, / (m_i+m_j).
        let mut direct = Matrix::zeros(2, 2);
        for (c, _) in [(&a, 0), (&b, 1)] {
            for p in c.members() {
                let d = qcluster_linalg::vecops::sub(&p.vector, c.mean());
                let outer = Matrix::outer(&d, &d);
                direct.add_assign_scaled(&outer, p.score);
            }
        }
        let direct = direct.scale(1.0 / (a.mass() + b.mass()));
        for i in 0..2 {
            for j in 0..2 {
                assert!(
                    (pooled.get(i, j) - direct.get(i, j)).abs() < 1e-12,
                    "mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn classifier_pool_is_weighted_average() {
        let a = spread_cluster(0.0, 0);
        let b = spread_cluster(5.0, 4);
        let pooled = classifier_pooled_covariance(&[a.clone(), b.clone()]);
        // Equal masses: pooled = ((m−1)Sa + (m−1)Sb)/(2m−2) = (Sa+Sb)/2.
        for i in 0..2 {
            for j in 0..2 {
                let want = 0.5 * (a.covariance().get(i, j) + b.covariance().get(i, j));
                assert!((pooled.get(i, j) - want).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn all_singletons_pool_to_zero() {
        let clusters = vec![
            Cluster::from_point(pt(0, &[0.0, 0.0], 1.0)),
            Cluster::from_point(pt(1, &[1.0, 1.0], 1.0)),
        ];
        let pooled = classifier_pooled_covariance(&clusters);
        assert_eq!(pooled.max_abs(), 0.0);
    }

    #[test]
    fn singleton_does_not_poison_pair_pool() {
        let a = spread_cluster(0.0, 0);
        let b = Cluster::from_point(pt(9, &[3.0, 3.0], 1.0));
        let pooled = pairwise_pooled_covariance(&a, &b);
        // Only a's scatter contributes; scaled by 1/(ma+mb)=1/5 vs its own
        // normalization — the matrix must stay PSD and finite.
        assert!(pooled.max_abs().is_finite());
        assert!(pooled.get(0, 0) > 0.0);
    }
}
