//! Clustering quality via leave-one-out error rate (paper Sec. 4.5).
//!
//! "After the number of clusters is fixed at the final iteration, take out
//! one element of a cluster. Check if the element is classified into the
//! previous cluster again … Let C be the number of elements classified
//! correctly to its own cluster and N be the total number of elements in
//! all clusters. The error-rate becomes 1 − C/N."

use crate::classify::{BayesianClassifier, Classification};
use crate::cluster::Cluster;
use crate::error::Result;
use crate::scheme::CovarianceScheme;

/// Leave-one-out misclassification rate of a clustering.
///
/// For every member point, the point is removed from its cluster, the
/// classifier is re-fitted on the modified clustering, and the point is
/// re-classified; it counts as correct only when it returns to its own
/// cluster. Clusters reduced to zero members by the removal are dropped
/// for that trial (their singleton member cannot possibly return and
/// counts as an error, matching the conservative reading of Sec. 4.5).
///
/// Uses the χ² radius at `alpha`; a point pushed outside every radius
/// (`NewCluster`) is an error.
///
/// # Errors
///
/// Propagates classifier fitting failures.
pub fn leave_one_out_error_rate(
    clusters: &[Cluster],
    scheme: CovarianceScheme,
    alpha: f64,
) -> Result<f64> {
    let total: usize = clusters.iter().map(|c| c.len()).sum();
    if total == 0 {
        return Ok(0.0);
    }
    let mut correct = 0usize;
    for (ci, cluster) in clusters.iter().enumerate() {
        for (pi, point) in cluster.members().iter().enumerate() {
            // Rebuild the clustering without this point.
            let mut trial: Vec<Cluster> = Vec::with_capacity(clusters.len());
            let mut own_index: Option<usize> = None;
            for (cj, other) in clusters.iter().enumerate() {
                if cj != ci {
                    trial.push(other.clone());
                    continue;
                }
                let remaining: Vec<_> = other
                    .members()
                    .iter()
                    .enumerate()
                    .filter(|&(k, _)| k != pi)
                    .map(|(_, p)| p.clone())
                    .collect();
                if remaining.is_empty() {
                    // Singleton cluster: its lone member cannot return.
                    own_index = None;
                } else {
                    own_index = Some(trial.len());
                    trial.push(Cluster::from_points(remaining)?);
                }
            }
            let Some(own) = own_index else {
                continue; // counted as error by not incrementing `correct`
            };
            if trial.is_empty() {
                continue;
            }
            let classifier = BayesianClassifier::fit(&trial, scheme, alpha)?;
            if classifier.classify(&trial, &point.vector) == Classification::Assign(own) {
                correct += 1;
            }
        }
    }
    Ok(1.0 - correct as f64 / total as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::FeedbackPoint;

    fn pt(id: usize, v: &[f64]) -> FeedbackPoint {
        FeedbackPoint::new(id, v.to_vec(), 1.0)
    }

    fn ring(cx: f64, cy: f64, r: f64, ids: usize, n: usize) -> Cluster {
        Cluster::from_points(
            (0..n)
                .map(|k| {
                    let a = k as f64 * std::f64::consts::TAU / n as f64;
                    pt(ids + k, &[cx + r * a.cos(), cy + r * a.sin()])
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn well_separated_clusters_have_zero_error() {
        let clusters = vec![ring(0.0, 0.0, 1.0, 0, 8), ring(20.0, 20.0, 1.0, 8, 8)];
        let err = leave_one_out_error_rate(&clusters, CovarianceScheme::default_diagonal(), 0.05)
            .unwrap();
        assert_eq!(err, 0.0);
    }

    #[test]
    fn heavily_overlapping_clusters_have_high_error() {
        let clusters = vec![ring(0.0, 0.0, 2.0, 0, 8), ring(0.3, 0.0, 2.0, 8, 8)];
        let err = leave_one_out_error_rate(&clusters, CovarianceScheme::default_diagonal(), 0.05)
            .unwrap();
        assert!(err > 0.2, "error rate {err} unexpectedly low");
    }

    #[test]
    fn error_rate_is_bounded() {
        let clusters = vec![ring(0.0, 0.0, 1.0, 0, 6), ring(3.0, 0.0, 1.5, 6, 6)];
        let err =
            leave_one_out_error_rate(&clusters, CovarianceScheme::default_full(), 0.05).unwrap();
        assert!((0.0..=1.0).contains(&err));
    }

    #[test]
    fn singleton_cluster_counts_as_error() {
        let clusters = vec![
            ring(0.0, 0.0, 1.0, 0, 8),
            Cluster::from_point(pt(99, &[0.2, 0.2])),
        ];
        let err = leave_one_out_error_rate(&clusters, CovarianceScheme::default_diagonal(), 0.05)
            .unwrap();
        // 9 points, the singleton is always wrong: error ≥ 1/9.
        assert!(err >= 1.0 / 9.0 - 1e-12);
    }

    #[test]
    fn empty_input_is_zero_error() {
        let err =
            leave_one_out_error_rate(&[], CovarianceScheme::default_diagonal(), 0.05).unwrap();
        assert_eq!(err, 0.0);
    }
}
