//! Concurrency smoke test: many client threads hammer one shared
//! service through the dispatcher, and afterwards no session is lost and
//! every metric is consistent with the work submitted.

use std::sync::Arc;
use std::thread;

use qcluster_service::{dispatch, Request, Response, Service, ServiceConfig};

const THREADS: usize = 8;
const SESSIONS_PER_THREAD: usize = 4;
const K: usize = 8;

fn make_service() -> Service {
    let points: Vec<Vec<f64>> = (0..256)
        .map(|i| {
            let a = i as f64 * 0.37;
            let blob = (i / 32) as f64 * 8.0;
            vec![blob + a.cos(), blob + a.sin()]
        })
        .collect();
    Service::new(
        &points,
        ServiceConfig {
            num_shards: 4,
            num_workers: 4,
            // Every session from every thread must fit: losing one to
            // LRU eviction would make "no lost sessions" unprovable.
            max_sessions: THREADS * SESSIONS_PER_THREAD + 1,
            ..ServiceConfig::default()
        },
    )
    .expect("spawn service worker pool")
}

/// One full create → query → feed → refined query → close lifecycle;
/// returns the session id it used.
fn lifecycle(service: &Service, seed: usize) -> u64 {
    let Response::SessionCreated { session } =
        dispatch(service, Request::CreateSession { engine: None })
    else {
        panic!("create failed");
    };

    let origin = (seed % 8) as f64 * 8.0;
    let Response::Neighbors { neighbors, .. } = dispatch(
        service,
        Request::Query {
            session,
            k: K,
            vector: Some(vec![origin + 0.5, origin]),
            deadline_ms: None,
        },
    ) else {
        panic!("initial query failed");
    };
    assert_eq!(neighbors.len(), K);

    let relevant_ids: Vec<usize> = neighbors.iter().take(4).map(|n| n.id).collect();
    let Response::FeedAccepted { iteration, .. } = dispatch(
        service,
        Request::Feed {
            session,
            relevant_ids,
            scores: None,
        },
    ) else {
        panic!("feed failed");
    };
    assert_eq!(iteration, 1);

    let Response::Neighbors {
        neighbors, stats, ..
    } = dispatch(
        service,
        Request::Query {
            session,
            k: K,
            vector: None,
            deadline_ms: None,
        },
    )
    else {
        panic!("refined query failed");
    };
    assert_eq!(neighbors.len(), K);
    assert!(stats.nodes_accessed > 0);

    session
}

#[test]
fn eight_threads_share_one_service_without_losing_sessions() {
    let service = Arc::new(make_service());

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let service = Arc::clone(&service);
            thread::spawn(move || {
                let mut sessions = Vec::new();
                for s in 0..SESSIONS_PER_THREAD {
                    let session = lifecycle(&service, t * SESSIONS_PER_THREAD + s);
                    // Interleave with other threads: the session must
                    // still be addressable after all the cross-talk.
                    let Response::Stats(_) = dispatch(&service, Request::Stats) else {
                        panic!("stats failed");
                    };
                    sessions.push(session);
                }
                sessions
            })
        })
        .collect();

    let mut all_sessions: Vec<u64> = Vec::new();
    for handle in handles {
        all_sessions.extend(handle.join().expect("client thread panicked"));
    }

    // No lost sessions: every id issued is unique and still live.
    let total = THREADS * SESSIONS_PER_THREAD;
    assert_eq!(all_sessions.len(), total);
    let mut unique = all_sessions.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), total, "duplicate session ids issued");
    assert_eq!(service.active_sessions(), total);
    for &session in &all_sessions {
        assert!(
            matches!(
                dispatch(&service, Request::CloseSession { session }),
                Response::SessionClosed { .. }
            ),
            "session {session} was lost"
        );
    }

    // Monotone, consistent metrics: exactly the submitted work, no more,
    // no less — concurrent recording dropped nothing.
    let Response::Stats(stats) = dispatch(&service, Request::Stats) else {
        panic!("stats failed");
    };
    let total = total as u64;
    assert_eq!(stats.sessions_created, total);
    assert_eq!(stats.sessions_closed, total);
    assert_eq!(stats.active_sessions, 0);
    assert_eq!(stats.evictions, 0);
    assert_eq!(stats.query.count, 2 * total, "2 queries per session");
    assert_eq!(stats.feed.count, total, "1 feed per session");
    assert_eq!(stats.fanout.count, stats.query.count);
    assert!(stats.query.sum_ns >= stats.query.count * stats.query.min_ns);
    assert!(stats.query.max_ns >= stats.query.min_ns);
    // Each session's refined query re-reads nodes its initial query
    // already cached, so hits must have accumulated.
    assert!(stats.cache_hits > 0);
    assert!(stats.cache_misses > 0);
    assert!(stats.cache_hit_ratio > 0.0 && stats.cache_hit_ratio < 1.0);
}

#[test]
fn stats_are_monotone_while_clients_run() {
    let service = Arc::new(make_service());
    let worker = {
        let service = Arc::clone(&service);
        thread::spawn(move || {
            for s in 0..SESSIONS_PER_THREAD {
                let session = lifecycle(&service, s);
                let Response::SessionClosed { .. } =
                    dispatch(&service, Request::CloseSession { session })
                else {
                    panic!("close failed");
                };
            }
        })
    };

    // Poll concurrently: counters may only grow.
    let mut last = (0u64, 0u64, 0u64);
    for _ in 0..200 {
        let Response::Stats(stats) = dispatch(&service, Request::Stats) else {
            panic!("stats failed");
        };
        let now = (stats.query.count, stats.feed.count, stats.sessions_created);
        assert!(now.0 >= last.0, "query count went backwards");
        assert!(now.1 >= last.1, "feed count went backwards");
        assert!(now.2 >= last.2, "session count went backwards");
        last = now;
    }
    worker.join().expect("worker panicked");
}
