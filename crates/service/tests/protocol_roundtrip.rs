//! Wire-protocol serde coverage: every `Request` and `Response` variant
//! must survive a JSON round-trip bit-for-bit, because any byte
//! transport fronting the service depends on it.

use qcluster_service::{
    MetricsSnapshot, NeighborDto, Request, Response, SearchStatsDto, Service, ServiceConfig,
    ServiceError,
};

fn roundtrip_request(req: &Request) {
    let json = serde_json::to_string(req).expect("serialize request");
    let back: Request = serde_json::from_str(&json).expect("deserialize request");
    assert_eq!(*req, back, "request mangled by round-trip: {json}");
}

fn roundtrip_response(resp: &Response) {
    let json = serde_json::to_string(resp).expect("serialize response");
    let back: Response = serde_json::from_str(&json).expect("deserialize response");
    assert_eq!(*resp, back, "response mangled by round-trip: {json}");
}

#[test]
fn every_request_variant_roundtrips() {
    for req in [
        Request::CreateSession { engine: None },
        Request::CreateSession {
            engine: Some("qpm".into()),
        },
        Request::Query {
            session: 42,
            k: 10,
            vector: Some(vec![0.25, -1.5, 3.0]),
            deadline_ms: None,
        },
        Request::Query {
            session: 42,
            k: 10,
            vector: None,
            deadline_ms: Some(150),
        },
        Request::Feed {
            session: 7,
            relevant_ids: vec![1, 5, 9],
            scores: Some(vec![3.0, 2.0, 1.0]),
        },
        Request::Feed {
            session: 7,
            relevant_ids: vec![],
            scores: None,
        },
        Request::CloseSession { session: 3 },
        Request::Stats,
    ] {
        roundtrip_request(&req);
    }
}

#[test]
fn every_response_variant_roundtrips() {
    let stats = SearchStatsDto {
        nodes_accessed: 12,
        cache_hits: 4,
        disk_reads: 8,
        distance_evaluations: 250,
    };
    for resp in [
        Response::SessionCreated { session: 11 },
        Response::Neighbors {
            session: 11,
            neighbors: vec![
                NeighborDto {
                    id: 3,
                    distance: 0.125,
                },
                NeighborDto {
                    id: 8,
                    distance: 2.5,
                },
            ],
            stats: stats.clone(),
            shards_ok: 2,
            shards_total: 4,
            nodes_ok: 1,
            nodes_total: 1,
            degraded: true,
        },
        Response::FeedAccepted {
            session: 11,
            iteration: 2,
            clusters: Some(3),
        },
        Response::FeedAccepted {
            session: 11,
            iteration: 1,
            clusters: None,
        },
        Response::SessionClosed { session: 11 },
    ] {
        roundtrip_response(&resp);
    }
}

#[test]
fn every_error_variant_roundtrips() {
    for err in [
        ServiceError::UnknownSession(99),
        ServiceError::DimensionMismatch {
            expected: 3,
            found: 2,
        },
        ServiceError::CapacityExhausted { max_sessions: 64 },
        ServiceError::EmptyFeedback,
        ServiceError::InvalidImageId {
            id: 1000,
            corpus_len: 512,
        },
        ServiceError::InvalidRequest("k must be positive".into()),
        ServiceError::Engine("no clusters yet".into()),
        ServiceError::Spawn("thread limit".into()),
        ServiceError::Overloaded {
            queued: 4096,
            capacity: 4096,
        },
        ServiceError::DeadlineExceeded {
            waited_ms: 150,
            shards_ok: 0,
            shards_total: 4,
        },
        ServiceError::Internal("channel disconnected".into()),
    ] {
        roundtrip_response(&Response::Error(err));
    }
}

#[test]
fn live_stats_snapshot_roundtrips() {
    // A snapshot off a real service, so float fields (mean latencies,
    // hit ratio) go through JSON with real values rather than zeros.
    let points: Vec<Vec<f64>> = (0..32)
        .map(|i| vec![i as f64, (i * i % 7) as f64])
        .collect();
    let service = Service::new(&points, ServiceConfig::default()).unwrap();
    let session = service.create_session().unwrap();
    service.query_vector(session, vec![4.0, 2.0], 5).unwrap();
    service.feed_ids(session, &[0, 1, 2], None).unwrap();
    service.query(session, 5).unwrap();

    let snapshot = service.stats();
    let json = serde_json::to_string(&snapshot).expect("serialize snapshot");
    let back: MetricsSnapshot = serde_json::from_str(&json).expect("deserialize snapshot");
    assert_eq!(back.query.count, 2);
    assert_eq!(back.feed.count, 1);
    assert_eq!(back.active_sessions, 1);
    assert_eq!(back.query.mean_ns, snapshot.query.mean_ns);
    assert_eq!(back.cache_hit_ratio, snapshot.cache_hit_ratio);

    roundtrip_response(&Response::Stats(Box::new(snapshot)));
}
