//! Fault-injection suite for the query path: panicking shards, slow
//! shards racing deadlines, circuit breakers, admission control, worker
//! death, and session eviction racing in-flight queries.
//!
//! Failpoints are process-global, so every test serializes through
//! `failpoint::test_lock()` and clears the registry on entry; the whole
//! suite also passes bit-for-bit against the plain kernels when no
//! failpoint is armed (see `degraded_query_meets_deadline_with_partial_coverage`,
//! which re-runs its query after disarming).

use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use qcluster_failpoint::{self as failpoint, Action};
use qcluster_index::{EuclideanQuery, LinearScan};
use qcluster_service::{
    dispatch, Executor, ExecutorConfig, Request, Response, Service, ServiceConfig, ServiceError,
    ShardKind, ShardedCorpus,
};

/// Four well-spread blobs, 64 points each — shard `i` of 4 holds ids
/// `[64 i, 64 (i + 1))`.
fn corpus() -> Vec<Vec<f64>> {
    (0..256)
        .map(|i| {
            let a = i as f64 * 0.37;
            let blob = (i / 64) as f64 * 10.0;
            vec![blob + a.cos(), blob + a.sin()]
        })
        .collect()
}

fn service(config: ServiceConfig) -> Service {
    Service::new(&corpus(), config).expect("spawn service worker pool")
}

/// The headline robustness scenario: with one shard panicking and one
/// shard sleeping past the deadline, a k-NN request returns *within*
/// the deadline (plus scheduling epsilon) as a degraded response whose
/// top-k is exact over the live shards — and the metrics counters
/// attribute every missing shard. Disarming the failpoints restores
/// full coverage with bit-for-bit kernel-identical results.
#[test]
fn degraded_query_meets_deadline_with_partial_coverage() {
    let _serial = failpoint::test_lock();
    failpoint::clear_all();

    let svc = service(ServiceConfig {
        num_shards: 4,
        num_workers: 4,
        // One panic and one timeout must not trip breakers here.
        breaker_threshold: 10,
        ..ServiceConfig::default()
    });
    let session = svc.create_session().unwrap();
    let query = vec![25.0, 0.5]; // nearest mass lives in shards 2 and 3

    failpoint::configure("executor.shard.0", Action::Panic("chaos".into()));
    failpoint::configure("executor.shard.1", Action::Sleep(600));

    let deadline = Duration::from_millis(150);
    let started = Instant::now();
    let out = svc
        .query_vector_with_deadline(session, query.clone(), 10, Some(deadline))
        .expect("two live shards must still answer");
    let elapsed = started.elapsed();
    failpoint::clear_all();

    // Returned within deadline + epsilon, and long before the sleeping
    // shard's 600 ms would have allowed.
    assert!(
        elapsed < Duration::from_millis(450),
        "degraded response took {elapsed:?}, deadline was {deadline:?}"
    );
    assert_eq!(out.shards_ok, 2);
    assert_eq!(out.shards_total, 4);
    assert!(out.degraded());

    // The merged top-k is exact over the shards that responded
    // (ids 128..256): identical ids, kernel-identical distances.
    let points = corpus();
    let mut expect = LinearScan::new(&points[128..]).knn(&EuclideanQuery::new(query.clone()), 10);
    for n in &mut expect {
        n.id += 128;
    }
    assert_eq!(out.neighbors.len(), expect.len());
    for (got, want) in out.neighbors.iter().zip(expect.iter()) {
        assert_eq!(got.id, want.id);
        assert!((got.distance - want.distance).abs() < 1e-12);
    }

    // Every missing shard is attributed in the metrics.
    let stats = svc.stats();
    assert_eq!(stats.faults.shard_panics, 1);
    assert_eq!(stats.faults.shard_timeouts, 1);
    assert_eq!(stats.faults.shard_failures, 0);
    assert_eq!(stats.faults.degraded_responses, 1);
    assert_eq!(stats.faults.deadline_exceeded, 0);
    assert_eq!(stats.faults.breaker_skips, 0);
    assert_eq!(stats.faults.breaker_trips, 0);

    // Failpoints disarmed: the same request under the same deadline is
    // whole again, and bit-for-bit equal to an undeadlined run.
    let healthy = svc
        .query_vector_with_deadline(session, query.clone(), 10, Some(Duration::from_secs(30)))
        .unwrap();
    assert!(!healthy.degraded());
    assert_eq!(healthy.shards_ok, 4);
    let plain = svc.query_vector(session, query, 10).unwrap();
    assert_eq!(healthy.neighbors.len(), plain.neighbors.len());
    for (a, b) in healthy.neighbors.iter().zip(plain.neighbors.iter()) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.distance.to_bits(), b.distance.to_bits());
    }
    // And no new fault was recorded by the healthy rounds.
    assert_eq!(svc.stats().faults.degraded_responses, 1);
}

/// Same scenario through the wire protocol: the response carries the
/// coverage annotation, and the deadline rides in `deadline_ms`.
#[test]
fn dispatch_surfaces_degraded_coverage_on_the_wire() {
    let _serial = failpoint::test_lock();
    failpoint::clear_all();

    let svc = service(ServiceConfig {
        num_shards: 4,
        num_workers: 4,
        breaker_threshold: 10,
        ..ServiceConfig::default()
    });
    let Response::SessionCreated { session } =
        dispatch(&svc, Request::CreateSession { engine: None })
    else {
        panic!("create failed");
    };

    let _panic = failpoint::scoped("executor.shard.0", Action::Panic("wire chaos".into()));
    let Response::Neighbors {
        neighbors,
        shards_ok,
        shards_total,
        degraded,
        ..
    } = dispatch(
        &svc,
        Request::Query {
            session,
            k: 5,
            vector: Some(vec![25.0, 0.5]),
            deadline_ms: Some(5_000),
        },
    )
    else {
        panic!("expected a (degraded) Neighbors response");
    };
    assert_eq!(neighbors.len(), 5);
    assert_eq!(shards_ok, 3);
    assert_eq!(shards_total, 4);
    assert!(degraded);
}

/// When *zero* shards make the deadline there is no partial ranking to
/// return: the request fails with the typed `DeadlineExceeded`, and the
/// wait stays bounded by the deadline, not by the slowest shard.
#[test]
fn all_shards_late_is_a_typed_deadline_error() {
    let _serial = failpoint::test_lock();
    failpoint::clear_all();

    let svc = service(ServiceConfig {
        num_shards: 2,
        num_workers: 2,
        breaker_threshold: 10,
        ..ServiceConfig::default()
    });
    let session = svc.create_session().unwrap();

    let _slow = failpoint::scoped("executor.shard", Action::Sleep(600));
    let started = Instant::now();
    let err = svc
        .query_vector_with_deadline(session, vec![0.5, 0.5], 5, Some(Duration::from_millis(100)))
        .unwrap_err();
    assert!(started.elapsed() < Duration::from_millis(450));
    assert!(
        matches!(
            err,
            ServiceError::DeadlineExceeded {
                shards_ok: 0,
                shards_total: 2,
                ..
            }
        ),
        "got {err:?}"
    );
    assert_eq!(svc.stats().faults.deadline_exceeded, 1);
    assert_eq!(svc.stats().faults.degraded_responses, 0);
}

/// A persistently failing shard trips its breaker after `threshold`
/// consecutive failures; tripped, the shard is skipped (cheap degraded
/// responses, no job submitted) until the cooldown elapses, after which
/// a half-open probe restores full coverage once the fault is gone.
#[test]
fn breaker_trips_on_repeated_failure_and_recovers_after_cooldown() {
    let _serial = failpoint::test_lock();
    failpoint::clear_all();

    let svc = service(ServiceConfig {
        num_shards: 2,
        num_workers: 2,
        breaker_threshold: 2,
        breaker_cooldown: Duration::from_millis(100),
        ..ServiceConfig::default()
    });
    let session = svc.create_session().unwrap();
    let query = vec![0.5, 0.5];

    failpoint::configure("executor.shard.0", Action::Error("shard down".into()));
    for round in 1..=2u64 {
        let out = svc.query_vector(session, query.clone(), 5).unwrap();
        assert_eq!(out.shards_ok, 1, "round {round}");
        assert_eq!(svc.stats().faults.shard_failures, round);
    }
    // Threshold reached: the breaker is open, so the failing shard is
    // skipped without running its (still armed) failpoint.
    let before = failpoint::hits("executor.shard.0");
    let out = svc.query_vector(session, query.clone(), 5).unwrap();
    assert!(out.degraded());
    assert_eq!(failpoint::hits("executor.shard.0"), before, "job never ran");
    let stats = svc.stats();
    assert_eq!(stats.faults.breaker_trips, 1);
    assert!(stats.faults.breaker_skips >= 1);

    // Fault repaired + cooldown elapsed: the half-open probe succeeds
    // and the shard rejoins the fan-out.
    failpoint::clear_all();
    thread::sleep(Duration::from_millis(120));
    let healed = svc.query_vector(session, query, 5).unwrap();
    assert!(!healed.degraded());
    assert_eq!(healed.shards_ok, 2);
    assert_eq!(svc.stats().faults.breaker_trips, 1, "no re-trip");
}

/// Admission control: a fan-out that cannot reserve queue slots for all
/// its shards is rejected with the typed `Overloaded` error before
/// anything is submitted, and the rejection is counted.
#[test]
fn overload_is_rejected_with_a_typed_error() {
    let _serial = failpoint::test_lock();
    failpoint::clear_all();

    let svc = service(ServiceConfig {
        num_shards: 2,
        num_workers: 2,
        max_queued_jobs: 1, // a 2-shard fan-out can never fit
        ..ServiceConfig::default()
    });
    let session = svc.create_session().unwrap();
    let err = svc.query_vector(session, vec![0.5, 0.5], 5).unwrap_err();
    assert!(
        matches!(err, ServiceError::Overloaded { capacity: 1, .. }),
        "got {err:?}"
    );
    assert_eq!(svc.stats().faults.overload_rejections, 1);
    assert_eq!(svc.stats().query.count, 0, "rejected before execution");
}

/// Workers killed mid-flight are respawned by the self-healing pool on
/// the next fan-out, and results stay exact throughout.
#[test]
fn dead_workers_are_respawned_on_the_next_fanout() {
    let _serial = failpoint::test_lock();
    failpoint::clear_all();

    let points = corpus();
    // Exactly one job per worker: each idle worker takes one shard job,
    // completes it, and dies — leaving no job stranded in the queue.
    let sharded = ShardedCorpus::build(&points, 2, ShardKind::Scan);
    let executor = Executor::with_config(ExecutorConfig {
        num_workers: 2,
        ..ExecutorConfig::default()
    })
    .unwrap();
    let q = EuclideanQuery::new(vec![25.0, 0.5]);
    let expect = LinearScan::new(&points).knn(&q, 10);

    // Both workers exit right after their next completed job.
    failpoint::configure_counted(
        "executor.worker.exit",
        Action::Error("die".into()),
        0,
        Some(2),
    );
    let first = executor.try_knn(&sharded, &q, 10, None, None).unwrap();
    failpoint::remove("executor.worker.exit");
    assert_eq!(first.shards_ok, 2, "jobs complete before the worker dies");

    // Wait for both dying workers to be replaced (worker exit is
    // asynchronous; `heal` only swaps threads that have finished).
    let patience = Instant::now() + Duration::from_secs(10);
    let mut respawned = 0;
    while respawned < 2 && Instant::now() < patience {
        respawned += executor.heal().unwrap();
        thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(respawned, 2, "both dead workers respawned");

    let healed = executor.try_knn(&sharded, &q, 10, None, None).unwrap();
    assert_eq!(healed.shards_ok, 2);
    assert!(executor.fault_stats().workers_respawned >= 2);
    for (got, want) in healed.neighbors.iter().zip(expect.iter()) {
        assert_eq!(got.id, want.id);
        assert!((got.distance - want.distance).abs() < 1e-12);
    }
}

/// LRU eviction racing an in-flight query: the query holds its session
/// handle, so eviction must neither deadlock nor corrupt the running
/// round — the evicted session's query completes exactly, and only
/// *subsequent* use of the evicted id fails.
#[test]
fn lru_eviction_racing_inflight_query_completes_cleanly() {
    let _serial = failpoint::test_lock();
    failpoint::clear_all();

    let svc = Arc::new(service(ServiceConfig {
        num_shards: 2,
        num_workers: 2,
        max_sessions: 1, // creating any second session evicts the first
        ..ServiceConfig::default()
    }));
    let victim = svc.create_session().unwrap();

    // Hold the victim's query in flight across the eviction.
    let _slow = failpoint::scoped("executor.shard", Action::Sleep(300));
    let inflight = {
        let svc = Arc::clone(&svc);
        thread::spawn(move || svc.query_vector(victim, vec![0.5, 0.5], 8))
    };
    thread::sleep(Duration::from_millis(100)); // let the fan-out start
    let usurper = svc.create_session().unwrap();
    assert_ne!(usurper, victim);
    assert_eq!(svc.active_sessions(), 1, "victim evicted while queried");

    let out = inflight
        .join()
        .expect("in-flight query must not panic")
        .expect("in-flight query must not fail");
    assert_eq!(out.neighbors.len(), 8);
    assert!(!out.degraded(), "eviction must not cost shard coverage");
    let expect = LinearScan::new(&corpus()).knn(&EuclideanQuery::new(vec![0.5, 0.5]), 8);
    for (got, want) in out.neighbors.iter().zip(expect.iter()) {
        assert_eq!(got.id, want.id);
    }

    // The evicted id is dead for *new* requests.
    assert!(matches!(
        svc.query_vector(victim, vec![0.5, 0.5], 1),
        Err(ServiceError::UnknownSession(id)) if id == victim
    ));
    assert_eq!(svc.stats().evictions, 1);
}
