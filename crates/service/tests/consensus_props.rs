//! Stale-term fencing properties: the service's consensus surface
//! (`handle_vote` / `fence_apply` / `consensus_status`) is checked
//! against an explicit reference model over arbitrary operation
//! sequences, plus deterministic pins of the individual rules.
//!
//! Leases in the generated sequences are either 0 (no lease) or far
//! longer than any test run, so the model never has to reason about
//! wall-clock expiry.

use proptest::prelude::*;
use qcluster_service::{Service, ServiceConfig};

/// A lease long enough to be "unexpired" for the whole test run.
const LONG_LEASE_MS: u64 = 600_000;

fn make_service() -> Service {
    let points: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64, (i * 2) as f64]).collect();
    Service::new(
        &points,
        ServiceConfig {
            num_shards: 1,
            num_workers: 1,
            ..ServiceConfig::default()
        },
    )
    .expect("spawn service")
}

/// One step a contending router might take against the node.
#[derive(Debug, Clone)]
enum Op {
    /// `handle_vote(term, lease)`.
    Vote { term: u64, lease: bool },
    /// `fence_apply(term, lease)` (an empty fenced ship).
    Apply { term: u64, lease: bool },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Small terms maximize stale/duplicate collisions; the leading
    // coin picks the operation, the trailing one the lease.
    (0u64..2, 0u64..6, 0u64..2).prop_map(|(kind, term, lease)| {
        let lease = lease == 1;
        if kind == 0 {
            Op::Vote { term, lease }
        } else {
            Op::Apply { term, lease }
        }
    })
}

/// The reference model of one node's consensus state.
#[derive(Debug, Default)]
struct Model {
    term: u64,
    /// A vote was granted with a (long) lease that has not expired.
    vote_leased: bool,
    /// A fenced apply was accepted with a (long) lease.
    leader_leased: bool,
}

impl Model {
    fn vote(&mut self, term: u64, lease: bool) -> bool {
        let granted = term > self.term && !self.vote_leased && !self.leader_leased;
        if granted {
            self.term = term;
            self.vote_leased = lease;
        }
        granted
    }

    /// Returns `None` when accepted, `Some(current)` when fenced.
    fn apply(&mut self, term: u64, lease: bool) -> Option<u64> {
        if term == 0 {
            if self.term == 0 {
                return None;
            }
            return Some(self.term);
        }
        if term < self.term {
            return Some(self.term);
        }
        if term > self.term {
            self.term = term;
            self.vote_leased = false;
        }
        if lease {
            self.leader_leased = true;
        }
        None
    }
}

proptest! {
    /// Every operation sequence leaves the service bit-for-bit in
    /// agreement with the model: same term, same grant/fence verdicts,
    /// and the term never regresses.
    #[test]
    fn fencing_agrees_with_reference_model(ops in prop::collection::vec(op_strategy(), 1..40)) {
        let _serial = qcluster_failpoint::test_lock();
        let service = make_service();
        let mut model = Model::default();
        let mut high_water = 0u64;
        for op in &ops {
            match *op {
                Op::Vote { term, lease } => {
                    let lease_ms = if lease { LONG_LEASE_MS } else { 0 };
                    let expected = model.vote(term, lease);
                    if term == 0 {
                        // Term 0 is reserved for the unfenced legacy
                        // path; bidding it is a caller error.
                        prop_assert!(service.handle_vote(0, lease_ms).is_err());
                    } else {
                        let (granted, current) = service.handle_vote(term, lease_ms).unwrap();
                        prop_assert_eq!(granted, expected, "vote {} on {:?}", term, model);
                        prop_assert_eq!(current, model.term);
                    }
                }
                Op::Apply { term, lease } => {
                    let lease_ms = if lease { LONG_LEASE_MS } else { 0 };
                    let expected = model.apply(term, lease);
                    let verdict = service.fence_apply(term, lease_ms).unwrap();
                    prop_assert_eq!(verdict, expected, "apply {} on {:?}", term, model);
                }
            }
            let (term, _) = service.consensus_status();
            prop_assert_eq!(term, model.term);
            prop_assert!(term >= high_water, "term regressed: {} -> {}", high_water, term);
            high_water = term;
        }
    }
}

#[test]
fn two_candidates_cannot_both_win_one_node() {
    let _serial = qcluster_failpoint::test_lock();
    let service = make_service();
    // Router A wins term 1 with a vote lease.
    let (granted, term) = service.handle_vote(1, LONG_LEASE_MS).unwrap();
    assert!(granted);
    assert_eq!(term, 1);
    // Router B's higher bid is refused while the vote lease holds.
    let (granted, term) = service.handle_vote(2, LONG_LEASE_MS).unwrap();
    assert!(!granted);
    assert_eq!(term, 1, "refusal reports the node's current term");
    // And B cannot ship at its unwon term either: term 2 was never
    // granted here, but the node is fenced at term 1, so B's legacy
    // (term 0) ship is rejected too.
    assert_eq!(service.fence_apply(0, 0).unwrap(), Some(1));
}

#[test]
fn active_leader_lease_blocks_deposition_but_newer_ship_supersedes() {
    let _serial = qcluster_failpoint::test_lock();
    let service = make_service();
    assert!(service.handle_vote(3, 0).unwrap().0);
    // Leader at term 3 renews its lease via an empty fenced ship.
    assert_eq!(service.fence_apply(3, LONG_LEASE_MS).unwrap(), None);
    // A contender cannot collect this node while the leader lease holds.
    assert!(!service.handle_vote(4, 0).unwrap().0);
    // But a ship from an already-elected term-5 leader (it won its
    // majority elsewhere) is adopted — ships never need votes.
    assert_eq!(service.fence_apply(5, 0).unwrap(), None);
    assert_eq!(service.consensus_status().0, 5);
    // The deposed term-3 leader is now fenced.
    assert_eq!(service.fence_apply(3, 0).unwrap(), Some(5));
}

#[test]
fn stale_term_failpoint_forces_the_fenced_verdict() {
    let _serial = qcluster_failpoint::test_lock();
    let _armed = qcluster_failpoint::scoped_counted(
        "repl.apply.stale_term",
        qcluster_failpoint::Action::Error("forced".into()),
        0,
        Some(1),
    );
    let service = make_service();
    // Disarmed state would accept this (node at term 0, ship term 0).
    assert_eq!(service.fence_apply(0, 0).unwrap(), Some(0));
    assert_eq!(qcluster_failpoint::hits("repl.apply.stale_term"), 1);
    // The failpoint is spent: the same ship is accepted again.
    assert_eq!(service.fence_apply(0, 0).unwrap(), None);
}
