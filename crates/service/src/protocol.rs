//! The wire protocol: serializable request/response enums and the
//! dispatcher that maps them onto [`Service`] calls.
//!
//! The protocol is transport-agnostic — any byte channel that can carry
//! JSON (or any other serde format) can front the service. Errors never
//! escape as `Err`: [`dispatch`] always returns a [`Response`], with
//! failures folded into [`Response::Error`] so a wire client sees every
//! outcome uniformly.

use crate::error::ServiceError;
use crate::metrics::MetricsSnapshot;
use crate::service::Service;
use qcluster_index::{Neighbor, SearchStats};
use serde::{Deserialize, Serialize};

/// A client request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Open a session. `engine` selects `"qcluster"` (default when
    /// `None`) or `"qpm"`.
    CreateSession {
        /// Engine name, or `None` for the default.
        engine: Option<String>,
    },
    /// Run a k-NN round. With `vector` set this is the initial
    /// example-image query; with `vector` omitted the session engine's
    /// refined (disjunctive) query runs.
    Query {
        /// Target session.
        session: u64,
        /// Result count.
        k: usize,
        /// Optional explicit query vector (initial round).
        vector: Option<Vec<f64>>,
        /// Optional per-request deadline in milliseconds. `None` falls
        /// back to the service's configured default deadline. On expiry
        /// the response is degraded (partial coverage), not an error,
        /// unless zero shards responded.
        deadline_ms: Option<u64>,
    },
    /// Mark corpus images as relevant, optionally graded.
    Feed {
        /// Target session.
        session: u64,
        /// Corpus ids of the marked images.
        relevant_ids: Vec<usize>,
        /// Optional per-id relevance scores (defaults when omitted).
        scores: Option<Vec<f64>>,
    },
    /// Close a session.
    CloseSession {
        /// Target session.
        session: u64,
    },
    /// Durably add one vector to the live corpus (durable services
    /// only): WAL-append, then index into the live overlay. The
    /// assigned id is immediately queryable and survives restarts.
    Ingest {
        /// The feature vector to add.
        vector: Vec<f64>,
    },
    /// Fold the WAL into a sealed segment and fsync (durable services
    /// only).
    Flush,
    /// Fetch the service metrics snapshot.
    Stats,
    /// Resolve corpus vectors by id (base corpus or live overlay). A
    /// cluster router uses this to materialize feedback vectors from
    /// the partition that owns them before broadcasting the feed.
    FetchVectors {
        /// Global corpus ids to resolve.
        ids: Vec<usize>,
    },
    /// Feed explicit `(id, vector, score)` triples into a session. The
    /// ids need not exist in this node's corpus — a router feeds
    /// vectors owned by *other* partitions under their global ids, and
    /// the engine only cares about the vectors and scores.
    FeedPoints {
        /// Target session.
        session: u64,
        /// The marked points, vectors included.
        points: Vec<FeedPointDto>,
    },
}

/// One feedback point on the wire, vector included.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeedPointDto {
    /// Global corpus id of the marked image.
    pub id: usize,
    /// Its feature vector.
    pub vector: Vec<f64>,
    /// Relevance score (positive, finite).
    pub score: f64,
}

/// One neighbor on the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NeighborDto {
    /// Corpus image id.
    pub id: usize,
    /// Distance under the round's query.
    pub distance: f64,
}

impl From<Neighbor> for NeighborDto {
    fn from(n: Neighbor) -> Self {
        NeighborDto {
            id: n.id,
            distance: n.distance,
        }
    }
}

/// Search work counters on the wire.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchStatsDto {
    /// Index nodes expanded, summed over shards.
    pub nodes_accessed: u64,
    /// Node accesses served from the session cache.
    pub cache_hits: u64,
    /// Node accesses charged as disk reads.
    pub disk_reads: u64,
    /// Point-level distance evaluations.
    pub distance_evaluations: u64,
}

impl From<SearchStats> for SearchStatsDto {
    fn from(s: SearchStats) -> Self {
        SearchStatsDto {
            nodes_accessed: s.nodes_accessed,
            cache_hits: s.cache_hits,
            disk_reads: s.disk_reads,
            distance_evaluations: s.distance_evaluations,
        }
    }
}

/// A service response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// A session was opened.
    SessionCreated {
        /// The new session id.
        session: u64,
    },
    /// A query round's results. `shards_ok < shards_total` marks a
    /// degraded response: the top-k is correct over the shards that
    /// responded, but silent misses from the failed shards are possible.
    Neighbors {
        /// The session that ran the query.
        session: u64,
        /// Global top-k, ascending by `(distance, id)`.
        neighbors: Vec<NeighborDto>,
        /// Search work, summed over the shards that responded.
        stats: SearchStatsDto,
        /// Shards whose results made it into the merge.
        shards_ok: usize,
        /// Shards the query fanned out to.
        shards_total: usize,
        /// Cluster nodes whose partial results made it into the merge.
        /// A single-node service always reports `1`; a router fronting
        /// N nodes reports its per-node coverage here.
        nodes_ok: usize,
        /// Cluster nodes the query was scattered to (`1` single-node).
        nodes_total: usize,
        /// `shards_ok < shards_total || nodes_ok < nodes_total`,
        /// precomputed for wire clients.
        degraded: bool,
    },
    /// A feed round was ingested.
    FeedAccepted {
        /// The session that was fed.
        session: u64,
        /// Feed rounds completed so far.
        iteration: u64,
        /// Cluster count, when the engine exposes one.
        clusters: Option<usize>,
    },
    /// A session was closed.
    SessionClosed {
        /// The closed session id.
        session: u64,
    },
    /// A vector was durably ingested.
    Ingested {
        /// The new vector's corpus id (stable across restarts).
        id: usize,
        /// Corpus size after the ingest.
        total: usize,
    },
    /// The WAL was folded into a sealed segment.
    Flushed {
        /// Vectors moved from the WAL into the new segment.
        folded_vectors: u64,
        /// Sealed segments after the fold.
        segments: u64,
        /// Records remaining in the rewritten WAL.
        wal_records: u64,
    },
    /// The metrics snapshot (boxed: much larger than every other variant).
    Stats(Box<MetricsSnapshot>),
    /// Resolved vectors, in request order.
    Vectors {
        /// One vector per requested id.
        vectors: Vec<Vec<f64>>,
    },
    /// The request failed.
    Error(ServiceError),
}

/// Upper bound on `k` accepted over the wire. Requests past it are
/// rejected with a typed error *before* any per-result allocation
/// happens — a hostile frame asking for `usize::MAX` neighbors must not
/// be able to abort the process on an allocation failure.
pub const MAX_WIRE_K: usize = 1 << 20;

/// Rejects wire-supplied vectors carrying NaN/±inf components. Distance
/// kernels stay well-defined only over finite inputs; a non-finite
/// query would silently poison every comparison in the scan.
fn check_finite(vector: &[f64]) -> Result<(), ServiceError> {
    match vector.iter().position(|v| !v.is_finite()) {
        None => Ok(()),
        Some(i) => Err(ServiceError::InvalidRequest(format!(
            "vector component {i} is not finite"
        ))),
    }
}

/// Maps one request onto the service. Infallible by construction: every
/// service error becomes [`Response::Error`] — including structurally
/// hostile field values (absurd `k`, non-finite vectors), which are
/// rejected here before they reach allocation or kernel code.
pub fn dispatch(service: &Service, request: Request) -> Response {
    match &request {
        Request::Query { k, vector, .. } => {
            if *k > MAX_WIRE_K {
                return Response::Error(ServiceError::InvalidRequest(format!(
                    "k {k} exceeds the wire maximum {MAX_WIRE_K}"
                )));
            }
            if let Some(v) = vector {
                if let Err(e) = check_finite(v) {
                    return Response::Error(e);
                }
            }
        }
        Request::Ingest { vector } => {
            if let Err(e) = check_finite(vector) {
                return Response::Error(e);
            }
        }
        Request::FetchVectors { ids } if ids.len() > MAX_WIRE_K => {
            return Response::Error(ServiceError::InvalidRequest(format!(
                "{} ids exceeds the wire maximum {MAX_WIRE_K}",
                ids.len()
            )));
        }
        Request::FeedPoints { points, .. } => {
            for p in points {
                if let Err(e) = check_finite(&p.vector) {
                    return Response::Error(e);
                }
                if p.score <= 0.0 || !p.score.is_finite() {
                    return Response::Error(ServiceError::InvalidRequest(format!(
                        "score {} for id {} must be positive and finite",
                        p.score, p.id
                    )));
                }
            }
        }
        _ => {}
    }
    let result = match request {
        Request::CreateSession { engine } => match engine {
            None => service.create_session(),
            Some(name) => service.create_session_named(&name),
        }
        .map(|session| Response::SessionCreated { session }),
        Request::Query {
            session,
            k,
            vector,
            deadline_ms,
        } => {
            let explicit = deadline_ms.map(std::time::Duration::from_millis);
            match (vector, explicit) {
                (Some(v), Some(d)) => service.query_vector_with_deadline(session, v, k, Some(d)),
                (Some(v), None) => service.query_vector(session, v, k),
                (None, Some(d)) => service.query_with_deadline(session, k, Some(d)),
                (None, None) => service.query(session, k),
            }
            .map(|out| {
                let degraded = out.degraded();
                Response::Neighbors {
                    session,
                    neighbors: out.neighbors.into_iter().map(NeighborDto::from).collect(),
                    stats: SearchStatsDto::from(out.stats),
                    shards_ok: out.shards_ok,
                    shards_total: out.shards_total,
                    nodes_ok: 1,
                    nodes_total: 1,
                    degraded,
                }
            })
        }
        Request::Feed {
            session,
            relevant_ids,
            scores,
        } => service
            .feed_ids(session, &relevant_ids, scores.as_deref())
            .map(|out| Response::FeedAccepted {
                session,
                iteration: out.iteration,
                clusters: out.clusters,
            }),
        Request::CloseSession { session } => service
            .close_session(session)
            .map(|()| Response::SessionClosed { session }),
        Request::Ingest { vector } => service.ingest(vector).map(|out| Response::Ingested {
            id: out.id,
            total: out.total,
        }),
        Request::Flush => service.flush().map(|stats| Response::Flushed {
            folded_vectors: stats.folded_vectors,
            segments: stats.segments,
            wal_records: stats.wal_records,
        }),
        Request::Stats => Ok(Response::Stats(Box::new(service.stats()))),
        Request::FetchVectors { ids } => service
            .vectors_by_id(&ids)
            .map(|vectors| Response::Vectors { vectors }),
        Request::FeedPoints { session, points } => {
            let points: Vec<qcluster_core::FeedbackPoint> = points
                .into_iter()
                .map(|p| qcluster_core::FeedbackPoint::new(p.id, p.vector, p.score))
                .collect();
            service
                .feed(session, &points)
                .map(|out| Response::FeedAccepted {
                    session,
                    iteration: out.iteration,
                    clusters: out.clusters,
                })
        }
    };
    result.unwrap_or_else(Response::Error)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;

    fn corpus() -> Vec<Vec<f64>> {
        (0..40)
            .map(|i| {
                let a = i as f64 * 0.37;
                let offset = if i < 20 { 0.0 } else { 9.0 };
                vec![offset + a.cos(), offset + a.sin()]
            })
            .collect()
    }

    fn service() -> Service {
        Service::new(
            &corpus(),
            ServiceConfig {
                num_shards: 2,
                num_workers: 2,
                ..ServiceConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn dispatch_drives_a_whole_session() {
        let svc = service();
        let Response::SessionCreated { session } =
            dispatch(&svc, Request::CreateSession { engine: None })
        else {
            panic!("expected SessionCreated");
        };

        let Response::Neighbors { neighbors, .. } = dispatch(
            &svc,
            Request::Query {
                session,
                k: 6,
                vector: Some(vec![0.5, 0.5]),
                deadline_ms: None,
            },
        ) else {
            panic!("expected Neighbors");
        };
        assert_eq!(neighbors.len(), 6);

        let ids: Vec<usize> = neighbors.iter().take(4).map(|n| n.id).collect();
        let Response::FeedAccepted { iteration, .. } = dispatch(
            &svc,
            Request::Feed {
                session,
                relevant_ids: ids,
                scores: None,
            },
        ) else {
            panic!("expected FeedAccepted");
        };
        assert_eq!(iteration, 1);

        let Response::Neighbors { stats, .. } = dispatch(
            &svc,
            Request::Query {
                session,
                k: 6,
                vector: None,
                deadline_ms: None,
            },
        ) else {
            panic!("expected refined Neighbors");
        };
        assert!(stats.nodes_accessed > 0);

        let Response::Stats(snapshot) = dispatch(&svc, Request::Stats) else {
            panic!("expected Stats");
        };
        assert_eq!(snapshot.query.count, 2);
        assert_eq!(snapshot.active_sessions, 1);

        assert_eq!(
            dispatch(&svc, Request::CloseSession { session }),
            Response::SessionClosed { session }
        );
    }

    #[test]
    fn dispatch_rejects_hostile_field_values_with_typed_errors() {
        let svc = service();
        let Response::SessionCreated { session } =
            dispatch(&svc, Request::CreateSession { engine: None })
        else {
            panic!("expected SessionCreated");
        };
        // An absurd k must be rejected before any allocation sized by it.
        assert!(matches!(
            dispatch(
                &svc,
                Request::Query {
                    session,
                    k: usize::MAX,
                    vector: Some(vec![0.0, 0.0]),
                    deadline_ms: None
                }
            ),
            Response::Error(ServiceError::InvalidRequest(_))
        ));
        // Non-finite query vectors are rejected, not fed to the kernels.
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(matches!(
                dispatch(
                    &svc,
                    Request::Query {
                        session,
                        k: 3,
                        vector: Some(vec![0.0, bad]),
                        deadline_ms: None
                    }
                ),
                Response::Error(ServiceError::InvalidRequest(_))
            ));
        }
        assert!(matches!(
            dispatch(
                &svc,
                Request::Ingest {
                    vector: vec![f64::NAN, 0.0]
                }
            ),
            Response::Error(_)
        ));
        // Infinite feedback scores are as invalid as NaN ones.
        assert!(matches!(
            dispatch(
                &svc,
                Request::Feed {
                    session,
                    relevant_ids: vec![0],
                    scores: Some(vec![f64::INFINITY]),
                }
            ),
            Response::Error(ServiceError::InvalidRequest(_))
        ));
        // The session survives every rejected request.
        assert!(matches!(
            dispatch(
                &svc,
                Request::Query {
                    session,
                    k: 3,
                    vector: Some(vec![0.0, 0.0]),
                    deadline_ms: None
                }
            ),
            Response::Neighbors { .. }
        ));
    }

    #[test]
    fn dispatch_folds_failures_into_error_responses() {
        let svc = service();
        assert_eq!(
            dispatch(
                &svc,
                Request::Query {
                    session: 7,
                    k: 1,
                    vector: None,
                    deadline_ms: None
                }
            ),
            Response::Error(ServiceError::UnknownSession(7))
        );
        assert!(matches!(
            dispatch(
                &svc,
                Request::CreateSession {
                    engine: Some("nope".into())
                }
            ),
            Response::Error(ServiceError::InvalidRequest(_))
        ));
        assert_eq!(
            dispatch(&svc, Request::CloseSession { session: 3 }),
            Response::Error(ServiceError::UnknownSession(3))
        );
    }
}
