//! # qcluster-service
//!
//! A concurrent multi-session retrieval service over the Qcluster
//! relevance-feedback engine: the paper's single-session loop
//! (example query → mark relevant → adaptive clustering → disjunctive
//! re-query) packaged as a shared, thread-safe server component.
//!
//! Subsystems:
//!
//! - [`shard`] — the corpus split into contiguous partitions, each with
//!   its own index (linear scan with bounded top-k heaps, or hybrid
//!   tree), answering k-NN with global ids.
//! - [`executor`] — a persistent worker pool fed through crossbeam
//!   channels; one query fans out across all shards (each job gets its
//!   own query clone, because refined queries are `Send` but not `Sync`)
//!   and the per-shard top-k lists merge into the global top-k.
//! - [`session`] — per-client state (engine + per-shard node caches)
//!   behind a registry with idle-TTL expiry and a max-sessions cap with
//!   LRU eviction.
//! - [`metrics`] — lock-free latency summaries and cache/eviction/session
//!   counters, snapshotable at any time.
//! - [`protocol`] — serializable `Request`/`Response` enums plus the
//!   [`dispatch`] function, so any byte transport can front the service.
//!
//! A service can also be **durable**: [`Service::open_durable`] backs it
//! with a `qcluster-store` segment + WAL directory, enabling live
//! `Request::Ingest` (WAL-append + in-memory overlay index, ids stable
//! across restarts), `Request::Flush` (WAL → segment compaction), and
//! crash recovery that restores the corpus and the session registry.
//!
//! ```
//! use qcluster_service::{dispatch, Request, Response, Service, ServiceConfig};
//!
//! let points: Vec<Vec<f64>> = (0..64)
//!     .map(|i| vec![(i % 8) as f64, (i / 8) as f64])
//!     .collect();
//! let service = Service::new(&points, ServiceConfig::default()).unwrap();
//!
//! let Response::SessionCreated { session } =
//!     dispatch(&service, Request::CreateSession { engine: None })
//! else { unreachable!() };
//! let Response::Neighbors { neighbors, .. } = dispatch(&service, Request::Query {
//!     session,
//!     k: 5,
//!     vector: Some(vec![3.0, 3.0]),
//!     deadline_ms: None,
//! }) else { unreachable!() };
//! assert_eq!(neighbors.len(), 5);
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod executor;
pub mod metrics;
pub mod protocol;
pub mod service;
pub mod session;
pub mod shard;

pub use error::ServiceError;
pub use executor::{
    Executor, ExecutorConfig, ExecutorFaults, FanoutQuery, FanoutReport, ShardFailure,
    ShardFailureKind,
};
pub use metrics::{
    ClusterGauges, FaultGauges, HistogramSummary, LatencyHistogram, MetricsSnapshot, OpHistogram,
    OpSummary, QuantGauges, ServiceMetrics, StorageGauges, TransportGauges,
};
pub use protocol::{dispatch, FeedPointDto, NeighborDto, Request, Response, SearchStatsDto};
pub use qcluster_store::{CompactionStats, StoreConfig};
pub use service::{FeedOutcome, IngestOutcome, QueryOutcome, Service, ServiceConfig};
pub use session::{RegistryConfig, ServiceEngine, Session, SessionHandle, SessionRegistry};
pub use shard::{Shard, ShardKind, ShardedCorpus};
