//! Structured, wire-serializable service errors.

use qcluster_core::CoreError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Everything that can go wrong handling a service request.
///
/// Serializable so it travels inside [`Response::Error`]
/// (crate::protocol::Response::Error) unchanged.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServiceError {
    /// The session id is unknown (never created, closed, or evicted).
    UnknownSession(u64),
    /// A vector's dimensionality disagrees with the corpus.
    DimensionMismatch {
        /// Corpus dimensionality.
        expected: usize,
        /// Offending dimensionality.
        found: usize,
    },
    /// The registry is full and LRU eviction is disabled.
    CapacityExhausted {
        /// The configured session cap.
        max_sessions: usize,
    },
    /// A feed carried no relevant points.
    EmptyFeedback,
    /// A feed referenced an image id outside the corpus.
    InvalidImageId {
        /// The offending id.
        id: usize,
        /// Corpus size (valid ids are `0..corpus_len`).
        corpus_len: usize,
    },
    /// A structurally invalid request (zero `k`, unknown engine name,
    /// mismatched score count, …).
    InvalidRequest(String),
    /// The session's engine rejected the operation (no clusters yet,
    /// numerical failure, invalid score, …).
    Engine(String),
    /// The durable store failed (I/O, corruption) or the request needs
    /// one and the service runs memory-only.
    Storage(String),
    /// Spawning an executor worker thread failed (resource exhaustion at
    /// construction time — the pool was not created).
    Spawn(String),
    /// Admission control rejected the request: the executor's job queue
    /// is at capacity. Retry after backoff; nothing was executed.
    Overloaded {
        /// Jobs already queued or running.
        queued: usize,
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The deadline elapsed before *any* shard produced a result, so
    /// there is not even a partial ranking to return. (When at least one
    /// shard arrives in time the service returns a degraded response
    /// instead of this error.)
    DeadlineExceeded {
        /// Milliseconds waited before giving up.
        waited_ms: u64,
        /// Shards that responded in time (always 0 for this error).
        shards_ok: usize,
        /// Shards the query fanned out to.
        shards_total: usize,
    },
    /// An internal invariant broke (disconnected channel, poisoned
    /// state). The request failed cleanly; the service keeps running.
    Internal(String),
}

impl ServiceError {
    /// Maps an engine error onto the service vocabulary, keeping the
    /// variants the protocol distinguishes structurally.
    pub fn from_core(e: CoreError) -> Self {
        match e {
            CoreError::EmptyFeedback => ServiceError::EmptyFeedback,
            CoreError::DimensionMismatch { expected, found } => {
                ServiceError::DimensionMismatch { expected, found }
            }
            other => ServiceError::Engine(other.to_string()),
        }
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownSession(id) => write!(f, "unknown session {id}"),
            ServiceError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            ServiceError::CapacityExhausted { max_sessions } => {
                write!(f, "session capacity exhausted ({max_sessions} max)")
            }
            ServiceError::EmptyFeedback => write!(f, "empty relevant set"),
            ServiceError::InvalidImageId { id, corpus_len } => {
                write!(f, "image id {id} outside corpus of {corpus_len}")
            }
            ServiceError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            ServiceError::Engine(msg) => write!(f, "engine error: {msg}"),
            ServiceError::Storage(msg) => write!(f, "storage error: {msg}"),
            ServiceError::Spawn(msg) => write!(f, "worker spawn failed: {msg}"),
            ServiceError::Overloaded { queued, capacity } => {
                write!(f, "overloaded: {queued} jobs queued (capacity {capacity})")
            }
            ServiceError::DeadlineExceeded {
                waited_ms,
                shards_ok,
                shards_total,
            } => write!(
                f,
                "deadline exceeded after {waited_ms}ms with {shards_ok}/{shards_total} shards"
            ),
            ServiceError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<CoreError> for ServiceError {
    fn from(e: CoreError) -> Self {
        ServiceError::from_core(e)
    }
}

impl From<qcluster_store::StoreError> for ServiceError {
    fn from(e: qcluster_store::StoreError) -> Self {
        ServiceError::Storage(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_errors_map_structurally() {
        assert_eq!(
            ServiceError::from_core(CoreError::EmptyFeedback),
            ServiceError::EmptyFeedback
        );
        assert_eq!(
            ServiceError::from_core(CoreError::DimensionMismatch {
                expected: 3,
                found: 2
            }),
            ServiceError::DimensionMismatch {
                expected: 3,
                found: 2
            }
        );
        assert!(matches!(
            ServiceError::from_core(CoreError::NoClusters),
            ServiceError::Engine(_)
        ));
    }

    #[test]
    fn display_is_informative() {
        let e = ServiceError::InvalidImageId {
            id: 9,
            corpus_len: 4,
        };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('4'));
    }
}
