//! Lock-free service metrics: per-operation latency summaries plus
//! cache, eviction, and session gauges — all plain atomics so the hot
//! query path never takes a lock to record.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A histogram-lite over one operation: count, sum, min, max (ns).
///
/// Min/max use `fetch_min`/`fetch_max`, so concurrent recorders never
/// lose an extremum; `sum`/`count` are independently atomic, which makes
/// the mean a *snapshot* mean (exact once recording quiesces).
#[derive(Debug)]
pub struct OpHistogram {
    count: AtomicU64,
    sum_ns: AtomicU64,
    /// Seeded to `u64::MAX` so the first `fetch_min` always wins.
    min_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for OpHistogram {
    fn default() -> Self {
        OpHistogram {
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
        }
    }
}

impl OpHistogram {
    /// Records one operation's duration.
    pub fn record(&self, elapsed: Duration) {
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.min_ns.fetch_min(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// A consistent-enough point-in-time summary.
    pub fn snapshot(&self) -> OpSummary {
        let count = self.count.load(Ordering::Relaxed);
        let sum_ns = self.sum_ns.load(Ordering::Relaxed);
        let min_ns = self.min_ns.load(Ordering::Relaxed);
        let max_ns = self.max_ns.load(Ordering::Relaxed);
        OpSummary {
            count,
            sum_ns,
            min_ns: if count == 0 { 0 } else { min_ns },
            max_ns,
            mean_ns: if count == 0 {
                0.0
            } else {
                sum_ns as f64 / count as f64
            },
        }
    }
}

/// Serializable summary of one [`OpHistogram`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpSummary {
    /// Operations recorded.
    pub count: u64,
    /// Total time across all operations, nanoseconds.
    pub sum_ns: u64,
    /// Fastest operation, nanoseconds (0 when `count == 0`).
    pub min_ns: u64,
    /// Slowest operation, nanoseconds (0 when `count == 0`).
    pub max_ns: u64,
    /// Mean latency, nanoseconds.
    pub mean_ns: f64,
}

/// Exact sub-8ns buckets before the logarithmic region starts.
const LINEAR_BUCKETS: usize = 8;
/// Sub-buckets per octave: 4 gives ≤ 25% relative quantile error.
const SUBS_PER_OCTAVE: usize = 4;
/// Octaves 3..=63 cover the full `u64` nanosecond range.
const NUM_BUCKETS: usize = LINEAR_BUCKETS + (64 - 3) * SUBS_PER_OCTAVE;

/// A lock-free log-bucketed latency histogram: every bucket is one
/// relaxed atomic, so concurrent recorders never contend on a lock and
/// never lose a sample. Buckets are logarithmic (4 sub-buckets per
/// power of two), bounding the relative error of a reported quantile at
/// 25% while keeping the whole histogram at a few KiB of atomics.
///
/// [`LatencyHistogram::summary`] reports p50/p95/p99 from the bucket
/// upper bounds and the maximum exactly (tracked via `fetch_max`).
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: Box<[AtomicU64; NUM_BUCKETS]>,
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

/// The bucket index holding `ns`: exact below [`LINEAR_BUCKETS`], then
/// `SUBS_PER_OCTAVE` geometric sub-buckets per octave.
fn bucket_of(ns: u64) -> usize {
    if ns < LINEAR_BUCKETS as u64 {
        return ns as usize;
    }
    let octave = 63 - ns.leading_zeros() as usize; // ≥ 3 here
    let sub = ((ns >> (octave - 2)) & 0b11) as usize;
    LINEAR_BUCKETS + (octave - 3) * SUBS_PER_OCTAVE + sub
}

/// The largest value stored in bucket `idx` (inverse of [`bucket_of`]).
fn bucket_upper_bound(idx: usize) -> u64 {
    if idx < LINEAR_BUCKETS {
        return idx as u64;
    }
    if idx >= NUM_BUCKETS - 1 {
        // The top sub-bucket of octave 63 would overflow the closed-form
        // bound; it holds everything up to u64::MAX by construction.
        return u64::MAX;
    }
    let octave = 3 + (idx - LINEAR_BUCKETS) / SUBS_PER_OCTAVE;
    let sub = ((idx - LINEAR_BUCKETS) % SUBS_PER_OCTAVE) as u64;
    let width = 1u64 << (octave - 2);
    (1u64 << octave) + (sub + 1) * width - 1
}

/// Lock-free saturating add: a CAS loop that pegs at `u64::MAX` instead
/// of wrapping. Only the (cold) merge path pays for the loop; recorders
/// keep their single `fetch_add`.
fn saturating_fetch_add(cell: &AtomicU64, add: u64) {
    if add == 0 {
        return;
    }
    let mut current = cell.load(Ordering::Relaxed);
    loop {
        let next = current.saturating_add(add);
        match cell.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(now) => current = now,
        }
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// A fresh, all-zero histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: Box::new(std::array::from_fn(|_| AtomicU64::new(0))),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Records one duration. Lock-free: three relaxed adds and a
    /// `fetch_max`.
    pub fn record(&self, elapsed: Duration) {
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.record_ns(ns);
    }

    /// Records one duration given directly in nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        self.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Folds every sample of `other` into `self` without locking either
    /// histogram: per-bucket relaxed loads on `other`, saturating
    /// atomic adds on `self`. Concurrent recorders on either side are
    /// never blocked and never lose a sample — a merge is just another
    /// writer. This is how a fleet of per-client histograms aggregates
    /// into one fleet-wide quantile summary: each client records into
    /// its own histogram on the hot path (no sharing, no contention)
    /// and the reporter merges them once at the end.
    ///
    /// Counts saturate at `u64::MAX` instead of wrapping, so a merge
    /// can never make a bucket count travel backwards.
    pub fn merge(&self, other: &LatencyHistogram) {
        for (bucket, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            saturating_fetch_add(bucket, theirs.load(Ordering::Relaxed));
        }
        saturating_fetch_add(&self.count, other.count.load(Ordering::Relaxed));
        saturating_fetch_add(&self.sum_ns, other.sum_ns.load(Ordering::Relaxed));
        self.max_ns
            .fetch_max(other.max_ns.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// A point-in-time quantile summary. Quantiles are bucket upper
    /// bounds (≤ 25% relative error); the max is exact.
    pub fn summary(&self) -> HistogramSummary {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = counts.iter().sum();
        let max_ns = self.max_ns.load(Ordering::Relaxed);
        if count == 0 {
            return HistogramSummary::default();
        }
        let quantile = |q: f64| -> u64 {
            // Rank of the q-quantile, 1-based, clamped into range.
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (idx, &c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    // Never report past the exactly-tracked maximum.
                    return bucket_upper_bound(idx).min(max_ns);
                }
            }
            max_ns
        };
        HistogramSummary {
            count,
            mean_ns: self.sum_ns.load(Ordering::Relaxed) as f64 / count as f64,
            p50_ns: quantile(0.50),
            p95_ns: quantile(0.95),
            p99_ns: quantile(0.99),
            max_ns,
        }
    }
}

/// Serializable quantile summary of one [`LatencyHistogram`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Mean latency, nanoseconds.
    pub mean_ns: f64,
    /// Median latency, nanoseconds (bucket upper bound, ≤ 25% error).
    pub p50_ns: u64,
    /// 95th-percentile latency, nanoseconds.
    pub p95_ns: u64,
    /// 99th-percentile latency, nanoseconds.
    pub p99_ns: u64,
    /// Slowest sample, nanoseconds (exact).
    pub max_ns: u64,
}

/// All counters the service maintains.
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    /// End-to-end `query` latency (engine compile + fan-out + merge).
    pub query_latency: OpHistogram,
    /// End-to-end `feed` latency (clustering + merging).
    pub feed_latency: OpHistogram,
    /// Shard fan-out time alone (submit → all shard results merged).
    pub shard_fanout: OpHistogram,
    /// End-to-end query latency quantiles (same samples as
    /// `query_latency`, but log-bucketed for p50/p95/p99).
    pub query_hist: LatencyHistogram,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    plan_cache_hits: AtomicU64,
    plan_cache_misses: AtomicU64,
    quant_phase1_points: AtomicU64,
    quant_reranked: AtomicU64,
    quant_fallbacks: AtomicU64,
    quant_plan_misses: AtomicU64,
    evictions: AtomicU64,
    sessions_created: AtomicU64,
    sessions_closed: AtomicU64,
    ingests: AtomicU64,
    flushes: AtomicU64,
    recoveries: AtomicU64,
    shard_panics: AtomicU64,
    shard_failures: AtomicU64,
    shard_timeouts: AtomicU64,
    breaker_skips: AtomicU64,
    degraded_responses: AtomicU64,
    deadline_exceeded: AtomicU64,
    overload_rejections: AtomicU64,
    connections_accepted: AtomicU64,
    connections_active: AtomicU64,
    connections_rejected: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    decode_errors: AtomicU64,
    write_queue_sheds: AtomicU64,
    shutdown_drains: AtomicU64,
}

impl ServiceMetrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        ServiceMetrics::default()
    }

    /// Folds one query's cache accounting into the totals.
    pub fn record_cache(&self, hits: u64, misses: u64) {
        self.cache_hits.fetch_add(hits, Ordering::Relaxed);
        self.cache_misses.fetch_add(misses, Ordering::Relaxed);
    }

    /// Counts one query served from a session's compiled-plan cache
    /// (engine version unchanged since the plan was compiled).
    pub fn record_plan_cache_hit(&self) {
        self.plan_cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one query that had to (re)compile its plan — first query,
    /// post-feed version bump, or an engine without plan versioning.
    pub fn record_plan_cache_miss(&self) {
        self.plan_cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Folds one query's two-phase quantized-scan accounting into the
    /// totals (all zero when no shard ran a quantized scan).
    pub fn record_quant(&self, phase1_points: u64, reranked: u64, fallbacks: u64, misses: u64) {
        self.quant_phase1_points
            .fetch_add(phase1_points, Ordering::Relaxed);
        self.quant_reranked.fetch_add(reranked, Ordering::Relaxed);
        self.quant_fallbacks.fetch_add(fallbacks, Ordering::Relaxed);
        self.quant_plan_misses.fetch_add(misses, Ordering::Relaxed);
    }

    /// Counts `n` evicted sessions (TTL or LRU).
    pub fn record_evictions(&self, n: u64) {
        self.evictions.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts one created session.
    pub fn record_session_created(&self) {
        self.sessions_created.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one explicitly closed session.
    pub fn record_session_closed(&self) {
        self.sessions_closed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one ingested vector.
    pub fn record_ingest(&self) {
        self.ingests.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one WAL → segment flush (compaction).
    pub fn record_flush(&self) {
        self.flushes.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one crash recovery (a durable open that found prior state).
    pub fn record_recovery(&self) {
        self.recoveries.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one shard job that panicked during a fan-out.
    pub fn record_shard_panic(&self) {
        self.shard_panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one shard job that failed without unwinding (injected
    /// fault, or lost with a dying worker).
    pub fn record_shard_failure(&self) {
        self.shard_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one shard that missed a query's deadline.
    pub fn record_shard_timeout(&self) {
        self.shard_timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one shard skipped because its circuit breaker was open.
    pub fn record_breaker_skip(&self) {
        self.breaker_skips.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one query answered with partial shard coverage.
    pub fn record_degraded_response(&self) {
        self.degraded_responses.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one query that returned nothing before its deadline.
    pub fn record_deadline_exceeded(&self) {
        self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one query rejected by admission control.
    pub fn record_overload_rejection(&self) {
        self.overload_rejections.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one accepted transport connection (and raises the active
    /// gauge).
    pub fn record_connection_opened(&self) {
        self.connections_accepted.fetch_add(1, Ordering::Relaxed);
        self.connections_active.fetch_add(1, Ordering::Relaxed);
    }

    /// Lowers the active-connection gauge when a connection closes.
    pub fn record_connection_closed(&self) {
        self.connections_active.fetch_sub(1, Ordering::Relaxed);
    }

    /// Counts one connection turned away at the transport's capacity
    /// limit (never admitted, the active gauge never moved).
    pub fn record_connection_rejected(&self) {
        self.connections_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one request frame decoded off a transport connection.
    pub fn record_frame_in(&self) {
        self.frames_in.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one response frame written to a transport connection.
    pub fn record_frame_out(&self) {
        self.frames_out.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one frame that failed to decode (bad magic, bad CRC,
    /// oversize, unknown version, or malformed payload).
    pub fn record_decode_error(&self) {
        self.decode_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one request shed with a typed `Overloaded` reply because
    /// its connection's writer queue was full.
    pub fn record_write_queue_shed(&self) {
        self.write_queue_sheds.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts `n` in-flight requests that completed during a graceful
    /// shutdown's drain window.
    pub fn record_shutdown_drains(&self, n: u64) {
        self.shutdown_drains.fetch_add(n, Ordering::Relaxed);
    }

    /// A serializable snapshot; `active_sessions` is supplied by the
    /// session registry (the metrics object does not track liveness
    /// itself, so the gauge can never drift from the registry's truth),
    /// and `storage` by the durable store / live-ingest overlay for the
    /// same reason (all zero for a memory-only service). `breaker_trips`
    /// and `workers_respawned` are sampled from the executor, which owns
    /// those counters, and `shard_latency` likewise (the executor's
    /// workers record per-shard execution time at the job site).
    pub fn snapshot(
        &self,
        active_sessions: u64,
        storage: StorageGauges,
        breaker_trips: u64,
        workers_respawned: u64,
        shard_latency: HistogramSummary,
    ) -> MetricsSnapshot {
        let cache_hits = self.cache_hits.load(Ordering::Relaxed);
        let cache_misses = self.cache_misses.load(Ordering::Relaxed);
        let touched = cache_hits + cache_misses;
        MetricsSnapshot {
            query: self.query_latency.snapshot(),
            feed: self.feed_latency.snapshot(),
            fanout: self.shard_fanout.snapshot(),
            query_percentiles: self.query_hist.summary(),
            shard_latency,
            cache_hits,
            cache_misses,
            cache_hit_ratio: if touched == 0 {
                0.0
            } else {
                cache_hits as f64 / touched as f64
            },
            plan_cache_hits: self.plan_cache_hits.load(Ordering::Relaxed),
            plan_cache_misses: self.plan_cache_misses.load(Ordering::Relaxed),
            quant: QuantGauges {
                phase1_points: self.quant_phase1_points.load(Ordering::Relaxed),
                reranked: self.quant_reranked.load(Ordering::Relaxed),
                fallback_rescans: self.quant_fallbacks.load(Ordering::Relaxed),
                plan_misses: self.quant_plan_misses.load(Ordering::Relaxed),
            },
            evictions: self.evictions.load(Ordering::Relaxed),
            sessions_created: self.sessions_created.load(Ordering::Relaxed),
            sessions_closed: self.sessions_closed.load(Ordering::Relaxed),
            active_sessions,
            ingests: self.ingests.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            recoveries: self.recoveries.load(Ordering::Relaxed),
            storage,
            faults: FaultGauges {
                shard_panics: self.shard_panics.load(Ordering::Relaxed),
                shard_failures: self.shard_failures.load(Ordering::Relaxed),
                shard_timeouts: self.shard_timeouts.load(Ordering::Relaxed),
                breaker_skips: self.breaker_skips.load(Ordering::Relaxed),
                breaker_trips,
                degraded_responses: self.degraded_responses.load(Ordering::Relaxed),
                deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
                overload_rejections: self.overload_rejections.load(Ordering::Relaxed),
                workers_respawned,
            },
            transport: TransportGauges {
                connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
                connections_active: self.connections_active.load(Ordering::Relaxed),
                connections_rejected: self.connections_rejected.load(Ordering::Relaxed),
                frames_in: self.frames_in.load(Ordering::Relaxed),
                frames_out: self.frames_out.load(Ordering::Relaxed),
                decode_errors: self.decode_errors.load(Ordering::Relaxed),
                write_queue_sheds: self.write_queue_sheds.load(Ordering::Relaxed),
                shutdown_drains: self.shutdown_drains.load(Ordering::Relaxed),
            },
            cluster: ClusterGauges::default(),
        }
    }
}

/// Cluster (multi-node router) counters. All zero for a single-node
/// service; a router fronting N nodes fills these in when it aggregates
/// node snapshots with [`MetricsSnapshot::absorb`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterGauges {
    /// Nodes in the shard map (gauge; 0 single-node).
    pub nodes_total: u64,
    /// Scatter legs that failed with a transport or service error.
    pub node_failures: u64,
    /// Scatter legs that missed the per-node deadline.
    pub node_timeouts: u64,
    /// Scatter legs skipped because the node's breaker was open.
    pub node_breaker_skips: u64,
    /// Node circuit-breaker open transitions.
    pub node_breaker_trips: u64,
    /// Queries answered with partial node coverage.
    pub degraded_responses: u64,
    /// Follower-to-leader promotions performed.
    pub promotions: u64,
    /// WAL records shipped to followers.
    pub replication_records_shipped: u64,
    /// WAL records applied from a leader.
    pub replication_records_applied: u64,
    /// Queries served from a replica under a stale-bounded read.
    pub stale_reads: u64,
    /// Current replication term per partition, as this router last won
    /// or observed it (gauge; empty single-node, 0 = unfenced legacy).
    #[serde(default)]
    pub terms: Vec<u64>,
    /// Leader elections this router won (term/vote handshakes that
    /// reached a majority).
    #[serde(default)]
    pub elections_won: u64,
    /// Leader elections this router lost (vote refused by a majority,
    /// typically because another router holds the term or a lease).
    #[serde(default)]
    pub elections_lost: u64,
    /// Replication ships (or fence probes) rejected by a follower with
    /// `StaleTerm` — each one is a fenced zombie-leader write.
    #[serde(default)]
    pub fenced_stale_ships: u64,
    /// Catch-up chunks shipped by the background anti-entropy thread
    /// (off the ingest path).
    #[serde(default)]
    pub anti_entropy_chunks_shipped: u64,
    /// Query legs re-routed to the partition leader because no replica
    /// satisfied the session's read-your-writes mark.
    #[serde(default)]
    pub ryw_leader_fallbacks: u64,
}

fn absorb_op(a: &mut OpSummary, b: &OpSummary) {
    if b.count == 0 {
        return;
    }
    if a.count == 0 {
        *a = *b;
        return;
    }
    a.count += b.count;
    a.sum_ns += b.sum_ns;
    a.min_ns = a.min_ns.min(b.min_ns);
    a.max_ns = a.max_ns.max(b.max_ns);
    a.mean_ns = a.sum_ns as f64 / a.count as f64;
}

fn absorb_hist(a: &mut HistogramSummary, b: &HistogramSummary) {
    if b.count == 0 {
        return;
    }
    if a.count == 0 {
        *a = *b;
        return;
    }
    let total = a.count + b.count;
    a.mean_ns = (a.mean_ns * a.count as f64 + b.mean_ns * b.count as f64) / total as f64;
    a.count = total;
    // Quantiles of a merge are not derivable from per-node quantiles;
    // the max of the per-node values is a safe upper bound.
    a.p50_ns = a.p50_ns.max(b.p50_ns);
    a.p95_ns = a.p95_ns.max(b.p95_ns);
    a.p99_ns = a.p99_ns.max(b.p99_ns);
    a.max_ns = a.max_ns.max(b.max_ns);
}

impl MetricsSnapshot {
    /// Folds another snapshot into this one: counters sum, means are
    /// recomputed from the summed totals, and latency quantiles take
    /// the per-node maximum (a safe upper bound — exact quantiles of a
    /// union are not derivable from per-node quantiles). A cluster
    /// router uses this to aggregate its nodes' snapshots into one
    /// fleet-wide `Stats` answer.
    pub fn absorb(&mut self, other: &MetricsSnapshot) {
        absorb_op(&mut self.query, &other.query);
        absorb_op(&mut self.feed, &other.feed);
        absorb_op(&mut self.fanout, &other.fanout);
        absorb_hist(&mut self.query_percentiles, &other.query_percentiles);
        absorb_hist(&mut self.shard_latency, &other.shard_latency);
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        let touched = self.cache_hits + self.cache_misses;
        self.cache_hit_ratio = if touched == 0 {
            0.0
        } else {
            self.cache_hits as f64 / touched as f64
        };
        self.plan_cache_hits += other.plan_cache_hits;
        self.plan_cache_misses += other.plan_cache_misses;
        self.quant.phase1_points += other.quant.phase1_points;
        self.quant.reranked += other.quant.reranked;
        self.quant.fallback_rescans += other.quant.fallback_rescans;
        self.quant.plan_misses += other.quant.plan_misses;
        self.evictions += other.evictions;
        self.sessions_created += other.sessions_created;
        self.sessions_closed += other.sessions_closed;
        self.active_sessions += other.active_sessions;
        self.ingests += other.ingests;
        self.flushes += other.flushes;
        self.recoveries += other.recoveries;
        self.storage.wal_appends += other.storage.wal_appends;
        self.storage.wal_fsyncs += other.storage.wal_fsyncs;
        self.storage.segments += other.storage.segments;
        self.storage.segment_vectors += other.storage.segment_vectors;
        self.storage.wal_vectors += other.storage.wal_vectors;
        self.storage.index_rebuilds += other.storage.index_rebuilds;
        self.storage.index_buffered += other.storage.index_buffered;
        self.faults.shard_panics += other.faults.shard_panics;
        self.faults.shard_failures += other.faults.shard_failures;
        self.faults.shard_timeouts += other.faults.shard_timeouts;
        self.faults.breaker_skips += other.faults.breaker_skips;
        self.faults.breaker_trips += other.faults.breaker_trips;
        self.faults.degraded_responses += other.faults.degraded_responses;
        self.faults.deadline_exceeded += other.faults.deadline_exceeded;
        self.faults.overload_rejections += other.faults.overload_rejections;
        self.faults.workers_respawned += other.faults.workers_respawned;
        self.transport.connections_accepted += other.transport.connections_accepted;
        self.transport.connections_active += other.transport.connections_active;
        self.transport.connections_rejected += other.transport.connections_rejected;
        self.transport.frames_in += other.transport.frames_in;
        self.transport.frames_out += other.transport.frames_out;
        self.transport.decode_errors += other.transport.decode_errors;
        self.transport.write_queue_sheds += other.transport.write_queue_sheds;
        self.transport.shutdown_drains += other.transport.shutdown_drains;
        self.cluster.nodes_total += other.cluster.nodes_total;
        self.cluster.node_failures += other.cluster.node_failures;
        self.cluster.node_timeouts += other.cluster.node_timeouts;
        self.cluster.node_breaker_skips += other.cluster.node_breaker_skips;
        self.cluster.node_breaker_trips += other.cluster.node_breaker_trips;
        self.cluster.degraded_responses += other.cluster.degraded_responses;
        self.cluster.promotions += other.cluster.promotions;
        self.cluster.replication_records_shipped += other.cluster.replication_records_shipped;
        self.cluster.replication_records_applied += other.cluster.replication_records_applied;
        self.cluster.stale_reads += other.cluster.stale_reads;
        // Terms merge element-wise by maximum: absorbing two views of
        // the same partition keeps the highest term either side saw.
        if self.cluster.terms.len() < other.cluster.terms.len() {
            self.cluster.terms.resize(other.cluster.terms.len(), 0);
        }
        for (slot, &term) in self.cluster.terms.iter_mut().zip(&other.cluster.terms) {
            *slot = (*slot).max(term);
        }
        self.cluster.elections_won += other.cluster.elections_won;
        self.cluster.elections_lost += other.cluster.elections_lost;
        self.cluster.fenced_stale_ships += other.cluster.fenced_stale_ships;
        self.cluster.anti_entropy_chunks_shipped += other.cluster.anti_entropy_chunks_shipped;
        self.cluster.ryw_leader_fallbacks += other.cluster.ryw_leader_fallbacks;
    }
}

/// Two-phase quantized-scan counters, summed over every query served by
/// [`crate::ShardKind::Quantized`] shards. All zero when no quantized
/// shard exists. `phase1_points / reranked` is the pruning ratio; a
/// non-zero `fallback_rescans` means candidate sets failed
/// certification and were rescanned exactly (results stay exact either
/// way).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuantGauges {
    /// Points lower-bounded from u8 codes in phase 1.
    pub phase1_points: u64,
    /// Candidates exactly reranked in phase 2.
    pub reranked: u64,
    /// Full exact rescans after a failed window certification.
    pub fallback_rescans: u64,
    /// Queries whose distance could not be soundly bounded (served
    /// exactly instead).
    pub plan_misses: u64,
}

/// Transport (TCP front-end) counters sampled at snapshot time. All
/// zero for a service that is only ever called in-process.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransportGauges {
    /// Connections accepted and admitted by the server.
    pub connections_accepted: u64,
    /// Connections currently open (gauge).
    pub connections_active: u64,
    /// Connections turned away at the capacity limit.
    pub connections_rejected: u64,
    /// Request frames decoded off connections.
    pub frames_in: u64,
    /// Response frames written to connections.
    pub frames_out: u64,
    /// Frames that failed to decode (bad magic/CRC/version/payload).
    pub decode_errors: u64,
    /// Requests shed with a typed `Overloaded` reply (writer queue full).
    pub write_queue_sheds: u64,
    /// In-flight requests drained to completion during graceful shutdown.
    pub shutdown_drains: u64,
}

/// Fault-path counters sampled at snapshot time. Shard-level counters
/// come from the service's own recorders; `breaker_trips` and
/// `workers_respawned` are owned by the executor and sampled from it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultGauges {
    /// Shard jobs that panicked and were isolated (query kept running).
    pub shard_panics: u64,
    /// Shard jobs that failed without unwinding, or were lost with a
    /// dying worker.
    pub shard_failures: u64,
    /// Shards that missed a query's deadline.
    pub shard_timeouts: u64,
    /// Shards skipped because their circuit breaker was open.
    pub breaker_skips: u64,
    /// Circuit-breaker open transitions (closed/half-open → open).
    pub breaker_trips: u64,
    /// Queries answered with partial shard coverage.
    pub degraded_responses: u64,
    /// Queries that produced nothing before their deadline.
    pub deadline_exceeded: u64,
    /// Queries rejected by admission control.
    pub overload_rejections: u64,
    /// Dead executor workers replaced by the self-healing pool.
    pub workers_respawned: u64,
}

/// Storage and live-index gauges sampled at snapshot time (the durable
/// subsystem owns these; the metrics object never caches them).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StorageGauges {
    /// WAL frames appended since the store opened.
    pub wal_appends: u64,
    /// WAL fsyncs since the store opened.
    pub wal_fsyncs: u64,
    /// Sealed segment files.
    pub segments: u64,
    /// Vectors sealed in segments.
    pub segment_vectors: u64,
    /// Vectors durable only in the WAL.
    pub wal_vectors: u64,
    /// Live-ingest overlay rebuilds (side-buffer folds) so far.
    pub index_rebuilds: u64,
    /// Overlay points awaiting the next rebuild.
    pub index_buffered: u64,
}

/// Point-in-time view of every service metric, as returned by the
/// `Stats` request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Query latency summary.
    pub query: OpSummary,
    /// Feed latency summary.
    pub feed: OpSummary,
    /// Shard fan-out time summary.
    pub fanout: OpSummary,
    /// End-to-end query latency quantiles (p50/p95/p99/max).
    pub query_percentiles: HistogramSummary,
    /// Per-shard k-NN execution latency quantiles, recorded at the
    /// worker job site (excludes queueing and merge time).
    pub shard_latency: HistogramSummary,
    /// Node-cache hits across all sessions.
    pub cache_hits: u64,
    /// Node-cache misses (simulated disk reads).
    pub cache_misses: u64,
    /// `hits / (hits + misses)`; 0 before any access.
    pub cache_hit_ratio: f64,
    /// Queries served from a session's compiled-plan cache.
    pub plan_cache_hits: u64,
    /// Queries that compiled (or recompiled) their plan.
    pub plan_cache_misses: u64,
    /// Two-phase quantized-scan counters (all zero without quantized
    /// shards).
    pub quant: QuantGauges,
    /// Sessions evicted by TTL or LRU pressure.
    pub evictions: u64,
    /// Sessions ever created.
    pub sessions_created: u64,
    /// Sessions explicitly closed by clients.
    pub sessions_closed: u64,
    /// Sessions currently live.
    pub active_sessions: u64,
    /// Vectors ingested through the live path.
    pub ingests: u64,
    /// WAL → segment flushes (compactions) requested.
    pub flushes: u64,
    /// Crash recoveries performed (durable opens that found state).
    pub recoveries: u64,
    /// Storage + overlay gauges (all zero for a memory-only service).
    pub storage: StorageGauges,
    /// Fault-path counters (panics, timeouts, breaker activity, …).
    pub faults: FaultGauges,
    /// TCP transport counters (all zero without a network front-end).
    pub transport: TransportGauges,
    /// Cluster-router counters (all zero for a single-node service).
    pub cluster: ClusterGauges,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_tracks_extrema_and_mean() {
        let h = OpHistogram::default();
        h.record(Duration::from_nanos(100));
        h.record(Duration::from_nanos(300));
        h.record(Duration::from_nanos(200));
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.sum_ns, 600);
        assert_eq!(s.min_ns, 100);
        assert_eq!(s.max_ns, 300);
        assert!((s.mean_ns - 200.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_snapshot_is_zero() {
        let m = ServiceMetrics::new();
        let s = m.snapshot(
            0,
            StorageGauges::default(),
            0,
            0,
            HistogramSummary::default(),
        );
        assert_eq!(s.query.count, 0);
        assert_eq!(s.query.min_ns, 0);
        assert_eq!(s.query.mean_ns, 0.0);
        assert_eq!(s.cache_hit_ratio, 0.0);
    }

    #[test]
    fn cache_ratio_and_counters() {
        let m = ServiceMetrics::new();
        m.record_cache(3, 1);
        m.record_cache(0, 4);
        m.record_plan_cache_miss();
        m.record_plan_cache_hit();
        m.record_plan_cache_hit();
        m.record_evictions(2);
        m.record_session_created();
        m.record_session_created();
        m.record_session_closed();
        let s = m.snapshot(
            1,
            StorageGauges::default(),
            0,
            0,
            HistogramSummary::default(),
        );
        assert_eq!(s.cache_hits, 3);
        assert_eq!(s.cache_misses, 5);
        assert!((s.cache_hit_ratio - 0.375).abs() < 1e-12);
        assert_eq!(s.plan_cache_hits, 2);
        assert_eq!(s.plan_cache_misses, 1);
        assert_eq!(s.evictions, 2);
        assert_eq!(s.sessions_created, 2);
        assert_eq!(s.sessions_closed, 1);
        assert_eq!(s.active_sessions, 1);
    }

    #[test]
    fn fault_counters_surface_in_snapshot() {
        let m = ServiceMetrics::new();
        m.record_shard_panic();
        m.record_shard_failure();
        m.record_shard_failure();
        m.record_shard_timeout();
        m.record_breaker_skip();
        m.record_degraded_response();
        m.record_deadline_exceeded();
        m.record_overload_rejection();
        let s = m.snapshot(
            0,
            StorageGauges::default(),
            5,
            2,
            HistogramSummary::default(),
        );
        assert_eq!(
            s.faults,
            FaultGauges {
                shard_panics: 1,
                shard_failures: 2,
                shard_timeouts: 1,
                breaker_skips: 1,
                breaker_trips: 5,
                degraded_responses: 1,
                deadline_exceeded: 1,
                overload_rejections: 1,
                workers_respawned: 2,
            }
        );
    }

    #[test]
    fn latency_histogram_buckets_are_a_partition() {
        // Every value maps into exactly one bucket whose bounds contain it.
        for ns in [0u64, 1, 7, 8, 9, 15, 16, 100, 1_000, 123_456, u64::MAX] {
            let idx = bucket_of(ns);
            assert!(ns <= bucket_upper_bound(idx), "ns={ns} idx={idx}");
            if idx > 0 {
                assert!(bucket_upper_bound(idx - 1) < ns, "ns={ns} idx={idx}");
            }
        }
        // Upper bounds are strictly increasing across the whole table.
        for idx in 1..NUM_BUCKETS {
            assert!(bucket_upper_bound(idx) > bucket_upper_bound(idx - 1));
        }
    }

    #[test]
    fn latency_histogram_quantiles_are_close_and_max_exact() {
        let h = LatencyHistogram::new();
        for ns in 1..=10_000u64 {
            h.record_ns(ns);
        }
        let s = h.summary();
        assert_eq!(s.count, 10_000);
        assert_eq!(s.max_ns, 10_000);
        // Log-bucketing bounds the quantile error at 25%.
        assert!(s.p50_ns >= 5_000 && s.p50_ns <= 6_250, "p50={}", s.p50_ns);
        assert!(s.p95_ns >= 9_500 && s.p95_ns <= 10_000, "p95={}", s.p95_ns);
        assert!(s.p99_ns >= 9_900 && s.p99_ns <= 10_000, "p99={}", s.p99_ns);
        assert!(s.p50_ns <= s.p95_ns && s.p95_ns <= s.p99_ns);
        assert!((s.mean_ns - 5_000.5).abs() < 1e-6);
    }

    #[test]
    fn latency_histogram_empty_and_single_sample() {
        let h = LatencyHistogram::new();
        assert_eq!(h.summary(), HistogramSummary::default());
        h.record(Duration::from_nanos(777));
        let s = h.summary();
        assert_eq!(s.count, 1);
        assert_eq!(s.max_ns, 777);
        // A single sample is every quantile, clamped to the exact max.
        assert_eq!(s.p50_ns, 777);
        assert_eq!(s.p99_ns, 777);
    }

    #[test]
    fn histogram_merge_of_empties_is_empty() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        a.merge(&b);
        assert_eq!(a.summary(), HistogramSummary::default());
        // Merging an empty histogram into a populated one is a no-op.
        a.record_ns(42);
        let before = a.summary();
        a.merge(&b);
        assert_eq!(a.summary(), before);
    }

    #[test]
    fn histogram_merge_single_bucket_quantiles() {
        // All samples of both sides land in one bucket: every quantile
        // is that bucket, clamped to the exact merged max.
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        a.record_ns(5);
        b.record_ns(5);
        b.record_ns(5);
        a.merge(&b);
        let s = a.summary();
        assert_eq!(s.count, 3);
        assert_eq!(s.p50_ns, 5);
        assert_eq!(s.p95_ns, 5);
        assert_eq!(s.p99_ns, 5);
        assert_eq!(s.max_ns, 5);
        assert!((s.mean_ns - 5.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_merge_matches_recording_into_one() {
        let merged = LatencyHistogram::new();
        let parts: Vec<LatencyHistogram> = (0..4).map(|_| LatencyHistogram::new()).collect();
        let reference = LatencyHistogram::new();
        for (t, part) in parts.iter().enumerate() {
            for i in 0..500u64 {
                let ns = (t as u64) * 1_000 + i * 7;
                part.record_ns(ns);
                reference.record_ns(ns);
            }
        }
        for part in &parts {
            merged.merge(part);
        }
        assert_eq!(merged.summary(), reference.summary());
    }

    #[test]
    fn histogram_merge_saturates_instead_of_wrapping() {
        // Doubling a histogram into itself 64+ times would wrap every
        // counter if merge used plain fetch_add; saturation pegs them
        // at u64::MAX so counts never travel backwards.
        let h = LatencyHistogram::new();
        h.record_ns(100);
        for _ in 0..70 {
            let snapshot = {
                // Merge a copy, not &h into itself, so loads and adds
                // cannot interleave on the same cells mid-merge.
                let copy = LatencyHistogram::new();
                copy.merge(&h);
                copy
            };
            h.merge(&snapshot);
        }
        let s = h.summary();
        assert_eq!(s.count, u64::MAX, "count saturates");
        assert_eq!(s.max_ns, 100, "max is unaffected by saturation");
        // The single populated bucket also saturated, so quantiles
        // still resolve to that bucket.
        assert_eq!(s.p50_ns, 100);
        assert_eq!(s.p99_ns, 100);
    }

    #[test]
    fn histogram_merge_is_lock_free_under_concurrent_recording() {
        // Recorders keep recording into `src` while another thread
        // repeatedly merges into `dst`: nothing deadlocks and the final
        // catch-up merge observes every sample recorded before it.
        let src = std::sync::Arc::new(LatencyHistogram::new());
        let dst = std::sync::Arc::new(LatencyHistogram::new());
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let src = std::sync::Arc::clone(&src);
                scope.spawn(move || {
                    for i in 0..1_000u64 {
                        src.record_ns(i);
                    }
                });
            }
            let src = std::sync::Arc::clone(&src);
            let dst = std::sync::Arc::clone(&dst);
            scope.spawn(move || {
                for _ in 0..50 {
                    dst.merge(&src);
                }
            });
        });
        // After recording quiesces, one fresh merge sees all samples.
        let total = LatencyHistogram::new();
        total.merge(&src);
        assert_eq!(total.summary().count, 2_000);
        assert_eq!(total.summary().max_ns, 999);
    }

    #[test]
    fn latency_histogram_concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        std::thread::scope(|scope| {
            for t in 0..4 {
                let h = std::sync::Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..500u64 {
                        h.record_ns(t * 1_000 + i);
                    }
                });
            }
        });
        let s = h.summary();
        assert_eq!(s.count, 2_000);
        assert_eq!(s.max_ns, 3_499);
    }

    #[test]
    fn transport_counters_surface_in_snapshot() {
        let m = ServiceMetrics::new();
        m.record_connection_opened();
        m.record_connection_opened();
        m.record_connection_closed();
        m.record_connection_rejected();
        m.record_frame_in();
        m.record_frame_in();
        m.record_frame_out();
        m.record_decode_error();
        m.record_write_queue_shed();
        m.record_shutdown_drains(3);
        let s = m.snapshot(
            0,
            StorageGauges::default(),
            0,
            0,
            HistogramSummary::default(),
        );
        assert_eq!(
            s.transport,
            TransportGauges {
                connections_accepted: 2,
                connections_active: 1,
                connections_rejected: 1,
                frames_in: 2,
                frames_out: 1,
                decode_errors: 1,
                write_queue_sheds: 1,
                shutdown_drains: 3,
            }
        );
    }

    #[test]
    fn absorb_sums_counters_and_bounds_quantiles() {
        let a_metrics = ServiceMetrics::new();
        a_metrics.query_latency.record(Duration::from_nanos(100));
        a_metrics.query_hist.record(Duration::from_nanos(100));
        a_metrics.record_cache(3, 1);
        a_metrics.record_ingest();
        let b_metrics = ServiceMetrics::new();
        b_metrics.query_latency.record(Duration::from_nanos(300));
        b_metrics.query_hist.record(Duration::from_nanos(300));
        b_metrics.record_cache(1, 3);
        b_metrics.record_shard_timeout();
        let mut a = a_metrics.snapshot(
            1,
            StorageGauges::default(),
            0,
            0,
            HistogramSummary::default(),
        );
        let b = b_metrics.snapshot(
            2,
            StorageGauges::default(),
            1,
            0,
            HistogramSummary::default(),
        );
        a.absorb(&b);
        assert_eq!(a.query.count, 2);
        assert_eq!(a.query.min_ns, 100);
        assert_eq!(a.query.max_ns, 300);
        assert!((a.query.mean_ns - 200.0).abs() < 1e-9);
        assert_eq!(a.query_percentiles.count, 2);
        assert_eq!(a.query_percentiles.max_ns, 300);
        assert_eq!(a.cache_hits, 4);
        assert_eq!(a.cache_misses, 4);
        assert!((a.cache_hit_ratio - 0.5).abs() < 1e-12);
        assert_eq!(a.active_sessions, 3);
        assert_eq!(a.ingests, 1);
        assert_eq!(a.faults.shard_timeouts, 1);
        assert_eq!(a.faults.breaker_trips, 1);
        // Absorbing an all-zero snapshot changes nothing.
        let before = a.clone();
        a.absorb(&ServiceMetrics::new().snapshot(
            0,
            StorageGauges::default(),
            0,
            0,
            HistogramSummary::default(),
        ));
        assert_eq!(a, before);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let m = std::sync::Arc::new(ServiceMetrics::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let m = std::sync::Arc::clone(&m);
                scope.spawn(move || {
                    for i in 1..=250u64 {
                        m.query_latency.record(Duration::from_nanos(i));
                        m.record_cache(1, 1);
                    }
                });
            }
        });
        let s = m.snapshot(
            0,
            StorageGauges::default(),
            0,
            0,
            HistogramSummary::default(),
        );
        assert_eq!(s.query.count, 1000);
        assert_eq!(s.cache_hits, 1000);
        assert_eq!(s.cache_misses, 1000);
        assert_eq!(s.query.min_ns, 1);
        assert_eq!(s.query.max_ns, 250);
    }
}
