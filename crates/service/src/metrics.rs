//! Lock-free service metrics: per-operation latency summaries plus
//! cache, eviction, and session gauges — all plain atomics so the hot
//! query path never takes a lock to record.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A histogram-lite over one operation: count, sum, min, max (ns).
///
/// Min/max use `fetch_min`/`fetch_max`, so concurrent recorders never
/// lose an extremum; `sum`/`count` are independently atomic, which makes
/// the mean a *snapshot* mean (exact once recording quiesces).
#[derive(Debug)]
pub struct OpHistogram {
    count: AtomicU64,
    sum_ns: AtomicU64,
    /// Seeded to `u64::MAX` so the first `fetch_min` always wins.
    min_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for OpHistogram {
    fn default() -> Self {
        OpHistogram {
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
        }
    }
}

impl OpHistogram {
    /// Records one operation's duration.
    pub fn record(&self, elapsed: Duration) {
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.min_ns.fetch_min(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// A consistent-enough point-in-time summary.
    pub fn snapshot(&self) -> OpSummary {
        let count = self.count.load(Ordering::Relaxed);
        let sum_ns = self.sum_ns.load(Ordering::Relaxed);
        let min_ns = self.min_ns.load(Ordering::Relaxed);
        let max_ns = self.max_ns.load(Ordering::Relaxed);
        OpSummary {
            count,
            sum_ns,
            min_ns: if count == 0 { 0 } else { min_ns },
            max_ns,
            mean_ns: if count == 0 {
                0.0
            } else {
                sum_ns as f64 / count as f64
            },
        }
    }
}

/// Serializable summary of one [`OpHistogram`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpSummary {
    /// Operations recorded.
    pub count: u64,
    /// Total time across all operations, nanoseconds.
    pub sum_ns: u64,
    /// Fastest operation, nanoseconds (0 when `count == 0`).
    pub min_ns: u64,
    /// Slowest operation, nanoseconds (0 when `count == 0`).
    pub max_ns: u64,
    /// Mean latency, nanoseconds.
    pub mean_ns: f64,
}

/// All counters the service maintains.
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    /// End-to-end `query` latency (engine compile + fan-out + merge).
    pub query_latency: OpHistogram,
    /// End-to-end `feed` latency (clustering + merging).
    pub feed_latency: OpHistogram,
    /// Shard fan-out time alone (submit → all shard results merged).
    pub shard_fanout: OpHistogram,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    plan_cache_hits: AtomicU64,
    plan_cache_misses: AtomicU64,
    evictions: AtomicU64,
    sessions_created: AtomicU64,
    sessions_closed: AtomicU64,
    ingests: AtomicU64,
    flushes: AtomicU64,
    recoveries: AtomicU64,
    shard_panics: AtomicU64,
    shard_failures: AtomicU64,
    shard_timeouts: AtomicU64,
    breaker_skips: AtomicU64,
    degraded_responses: AtomicU64,
    deadline_exceeded: AtomicU64,
    overload_rejections: AtomicU64,
}

impl ServiceMetrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        ServiceMetrics::default()
    }

    /// Folds one query's cache accounting into the totals.
    pub fn record_cache(&self, hits: u64, misses: u64) {
        self.cache_hits.fetch_add(hits, Ordering::Relaxed);
        self.cache_misses.fetch_add(misses, Ordering::Relaxed);
    }

    /// Counts one query served from a session's compiled-plan cache
    /// (engine version unchanged since the plan was compiled).
    pub fn record_plan_cache_hit(&self) {
        self.plan_cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one query that had to (re)compile its plan — first query,
    /// post-feed version bump, or an engine without plan versioning.
    pub fn record_plan_cache_miss(&self) {
        self.plan_cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts `n` evicted sessions (TTL or LRU).
    pub fn record_evictions(&self, n: u64) {
        self.evictions.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts one created session.
    pub fn record_session_created(&self) {
        self.sessions_created.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one explicitly closed session.
    pub fn record_session_closed(&self) {
        self.sessions_closed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one ingested vector.
    pub fn record_ingest(&self) {
        self.ingests.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one WAL → segment flush (compaction).
    pub fn record_flush(&self) {
        self.flushes.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one crash recovery (a durable open that found prior state).
    pub fn record_recovery(&self) {
        self.recoveries.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one shard job that panicked during a fan-out.
    pub fn record_shard_panic(&self) {
        self.shard_panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one shard job that failed without unwinding (injected
    /// fault, or lost with a dying worker).
    pub fn record_shard_failure(&self) {
        self.shard_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one shard that missed a query's deadline.
    pub fn record_shard_timeout(&self) {
        self.shard_timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one shard skipped because its circuit breaker was open.
    pub fn record_breaker_skip(&self) {
        self.breaker_skips.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one query answered with partial shard coverage.
    pub fn record_degraded_response(&self) {
        self.degraded_responses.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one query that returned nothing before its deadline.
    pub fn record_deadline_exceeded(&self) {
        self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one query rejected by admission control.
    pub fn record_overload_rejection(&self) {
        self.overload_rejections.fetch_add(1, Ordering::Relaxed);
    }

    /// A serializable snapshot; `active_sessions` is supplied by the
    /// session registry (the metrics object does not track liveness
    /// itself, so the gauge can never drift from the registry's truth),
    /// and `storage` by the durable store / live-ingest overlay for the
    /// same reason (all zero for a memory-only service). `breaker_trips`
    /// and `workers_respawned` are sampled from the executor, which owns
    /// those counters.
    pub fn snapshot(
        &self,
        active_sessions: u64,
        storage: StorageGauges,
        breaker_trips: u64,
        workers_respawned: u64,
    ) -> MetricsSnapshot {
        let cache_hits = self.cache_hits.load(Ordering::Relaxed);
        let cache_misses = self.cache_misses.load(Ordering::Relaxed);
        let touched = cache_hits + cache_misses;
        MetricsSnapshot {
            query: self.query_latency.snapshot(),
            feed: self.feed_latency.snapshot(),
            fanout: self.shard_fanout.snapshot(),
            cache_hits,
            cache_misses,
            cache_hit_ratio: if touched == 0 {
                0.0
            } else {
                cache_hits as f64 / touched as f64
            },
            plan_cache_hits: self.plan_cache_hits.load(Ordering::Relaxed),
            plan_cache_misses: self.plan_cache_misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            sessions_created: self.sessions_created.load(Ordering::Relaxed),
            sessions_closed: self.sessions_closed.load(Ordering::Relaxed),
            active_sessions,
            ingests: self.ingests.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            recoveries: self.recoveries.load(Ordering::Relaxed),
            storage,
            faults: FaultGauges {
                shard_panics: self.shard_panics.load(Ordering::Relaxed),
                shard_failures: self.shard_failures.load(Ordering::Relaxed),
                shard_timeouts: self.shard_timeouts.load(Ordering::Relaxed),
                breaker_skips: self.breaker_skips.load(Ordering::Relaxed),
                breaker_trips,
                degraded_responses: self.degraded_responses.load(Ordering::Relaxed),
                deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
                overload_rejections: self.overload_rejections.load(Ordering::Relaxed),
                workers_respawned,
            },
        }
    }
}

/// Fault-path counters sampled at snapshot time. Shard-level counters
/// come from the service's own recorders; `breaker_trips` and
/// `workers_respawned` are owned by the executor and sampled from it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultGauges {
    /// Shard jobs that panicked and were isolated (query kept running).
    pub shard_panics: u64,
    /// Shard jobs that failed without unwinding, or were lost with a
    /// dying worker.
    pub shard_failures: u64,
    /// Shards that missed a query's deadline.
    pub shard_timeouts: u64,
    /// Shards skipped because their circuit breaker was open.
    pub breaker_skips: u64,
    /// Circuit-breaker open transitions (closed/half-open → open).
    pub breaker_trips: u64,
    /// Queries answered with partial shard coverage.
    pub degraded_responses: u64,
    /// Queries that produced nothing before their deadline.
    pub deadline_exceeded: u64,
    /// Queries rejected by admission control.
    pub overload_rejections: u64,
    /// Dead executor workers replaced by the self-healing pool.
    pub workers_respawned: u64,
}

/// Storage and live-index gauges sampled at snapshot time (the durable
/// subsystem owns these; the metrics object never caches them).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StorageGauges {
    /// WAL frames appended since the store opened.
    pub wal_appends: u64,
    /// WAL fsyncs since the store opened.
    pub wal_fsyncs: u64,
    /// Sealed segment files.
    pub segments: u64,
    /// Vectors sealed in segments.
    pub segment_vectors: u64,
    /// Vectors durable only in the WAL.
    pub wal_vectors: u64,
    /// Live-ingest overlay rebuilds (side-buffer folds) so far.
    pub index_rebuilds: u64,
    /// Overlay points awaiting the next rebuild.
    pub index_buffered: u64,
}

/// Point-in-time view of every service metric, as returned by the
/// `Stats` request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Query latency summary.
    pub query: OpSummary,
    /// Feed latency summary.
    pub feed: OpSummary,
    /// Shard fan-out time summary.
    pub fanout: OpSummary,
    /// Node-cache hits across all sessions.
    pub cache_hits: u64,
    /// Node-cache misses (simulated disk reads).
    pub cache_misses: u64,
    /// `hits / (hits + misses)`; 0 before any access.
    pub cache_hit_ratio: f64,
    /// Queries served from a session's compiled-plan cache.
    pub plan_cache_hits: u64,
    /// Queries that compiled (or recompiled) their plan.
    pub plan_cache_misses: u64,
    /// Sessions evicted by TTL or LRU pressure.
    pub evictions: u64,
    /// Sessions ever created.
    pub sessions_created: u64,
    /// Sessions explicitly closed by clients.
    pub sessions_closed: u64,
    /// Sessions currently live.
    pub active_sessions: u64,
    /// Vectors ingested through the live path.
    pub ingests: u64,
    /// WAL → segment flushes (compactions) requested.
    pub flushes: u64,
    /// Crash recoveries performed (durable opens that found state).
    pub recoveries: u64,
    /// Storage + overlay gauges (all zero for a memory-only service).
    pub storage: StorageGauges,
    /// Fault-path counters (panics, timeouts, breaker activity, …).
    pub faults: FaultGauges,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_tracks_extrema_and_mean() {
        let h = OpHistogram::default();
        h.record(Duration::from_nanos(100));
        h.record(Duration::from_nanos(300));
        h.record(Duration::from_nanos(200));
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.sum_ns, 600);
        assert_eq!(s.min_ns, 100);
        assert_eq!(s.max_ns, 300);
        assert!((s.mean_ns - 200.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_snapshot_is_zero() {
        let m = ServiceMetrics::new();
        let s = m.snapshot(0, StorageGauges::default(), 0, 0);
        assert_eq!(s.query.count, 0);
        assert_eq!(s.query.min_ns, 0);
        assert_eq!(s.query.mean_ns, 0.0);
        assert_eq!(s.cache_hit_ratio, 0.0);
    }

    #[test]
    fn cache_ratio_and_counters() {
        let m = ServiceMetrics::new();
        m.record_cache(3, 1);
        m.record_cache(0, 4);
        m.record_plan_cache_miss();
        m.record_plan_cache_hit();
        m.record_plan_cache_hit();
        m.record_evictions(2);
        m.record_session_created();
        m.record_session_created();
        m.record_session_closed();
        let s = m.snapshot(1, StorageGauges::default(), 0, 0);
        assert_eq!(s.cache_hits, 3);
        assert_eq!(s.cache_misses, 5);
        assert!((s.cache_hit_ratio - 0.375).abs() < 1e-12);
        assert_eq!(s.plan_cache_hits, 2);
        assert_eq!(s.plan_cache_misses, 1);
        assert_eq!(s.evictions, 2);
        assert_eq!(s.sessions_created, 2);
        assert_eq!(s.sessions_closed, 1);
        assert_eq!(s.active_sessions, 1);
    }

    #[test]
    fn fault_counters_surface_in_snapshot() {
        let m = ServiceMetrics::new();
        m.record_shard_panic();
        m.record_shard_failure();
        m.record_shard_failure();
        m.record_shard_timeout();
        m.record_breaker_skip();
        m.record_degraded_response();
        m.record_deadline_exceeded();
        m.record_overload_rejection();
        let s = m.snapshot(0, StorageGauges::default(), 5, 2);
        assert_eq!(
            s.faults,
            FaultGauges {
                shard_panics: 1,
                shard_failures: 2,
                shard_timeouts: 1,
                breaker_skips: 1,
                breaker_trips: 5,
                degraded_responses: 1,
                deadline_exceeded: 1,
                overload_rejections: 1,
                workers_respawned: 2,
            }
        );
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let m = std::sync::Arc::new(ServiceMetrics::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let m = std::sync::Arc::clone(&m);
                scope.spawn(move || {
                    for i in 1..=250u64 {
                        m.query_latency.record(Duration::from_nanos(i));
                        m.record_cache(1, 1);
                    }
                });
            }
        });
        let s = m.snapshot(0, StorageGauges::default(), 0, 0);
        assert_eq!(s.query.count, 1000);
        assert_eq!(s.cache_hits, 1000);
        assert_eq!(s.cache_misses, 1000);
        assert_eq!(s.query.min_ns, 1);
        assert_eq!(s.query.max_ns, 250);
    }
}
