//! Session lifecycle: per-client engine + node-cache state, a registry
//! keyed by session id, idle-TTL expiry, and a max-sessions cap with
//! optional least-recently-used eviction.
//!
//! Locking protocol: the registry's map lock is only ever held to look up
//! or remove entries — never across an engine operation. Each session's
//! own mutex serializes its feed/query stream, so two clients hammering
//! different sessions never contend, and recency is tracked in a
//! registry-level atomic so eviction decisions need no session locks.

use crate::error::ServiceError;
use crate::executor::FanoutQuery;
use qcluster_baselines::{QueryPointMovement, RetrievalMethod};
use qcluster_core::{FeedbackPoint, QclusterEngine, Result as CoreResult};
use qcluster_index::{NodeCache, WeightedEuclideanQuery};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// A retrieval engine the service can host: the [`RetrievalMethod`]
/// lifecycle, with queries that can be fanned out across worker threads.
///
/// (The baseline trait's `query` returns a non-`Send` trait object, so
/// the service needs this parallel-safe variant.)
pub trait ServiceEngine: Send {
    /// Short display name ("qcluster", "qpm", …).
    fn name(&self) -> &'static str;

    /// Ingests one round of user-marked relevant points.
    ///
    /// # Errors
    ///
    /// Engine-specific validation failures.
    fn feed(&mut self, relevant: &[FeedbackPoint]) -> CoreResult<()>;

    /// Compiles the refined query for the next round.
    ///
    /// # Errors
    ///
    /// `NoClusters`-like errors before any feedback.
    fn query(&self) -> CoreResult<Box<dyn FanoutQuery>>;

    /// Clears all session state.
    fn reset(&mut self);

    /// Current cluster count, for engines that expose one.
    fn num_clusters(&self) -> Option<usize> {
        None
    }

    /// Monotonic version of the engine state the compiled query depends
    /// on, for engines that track one. While two calls report the same
    /// version, [`ServiceEngine::query`] is guaranteed to compile an
    /// equivalent plan, so the service may reuse a cached one. `None`
    /// (the default) disables plan caching for this engine.
    fn plan_version(&self) -> Option<u64> {
        None
    }
}

impl ServiceEngine for QclusterEngine {
    fn name(&self) -> &'static str {
        "qcluster"
    }

    fn feed(&mut self, relevant: &[FeedbackPoint]) -> CoreResult<()> {
        QclusterEngine::feed(self, relevant)
    }

    fn query(&self) -> CoreResult<Box<dyn FanoutQuery>> {
        Ok(Box::new(QclusterEngine::query(self)?))
    }

    fn reset(&mut self) {
        QclusterEngine::reset(self)
    }

    fn num_clusters(&self) -> Option<usize> {
        Some(QclusterEngine::num_clusters(self))
    }

    fn plan_version(&self) -> Option<u64> {
        Some(QclusterEngine::version(self))
    }
}

impl ServiceEngine for QueryPointMovement {
    fn name(&self) -> &'static str {
        "qpm"
    }

    fn feed(&mut self, relevant: &[FeedbackPoint]) -> CoreResult<()> {
        RetrievalMethod::feed(self, relevant)
    }

    fn query(&self) -> CoreResult<Box<dyn FanoutQuery>> {
        let center = self
            .current_point()
            .ok_or(qcluster_core::CoreError::NoClusters)?;
        let weights = self.current_weights().expect("weights follow point");
        Ok(Box::new(WeightedEuclideanQuery::new(center, weights)))
    }

    fn reset(&mut self) {
        RetrievalMethod::reset(self)
    }
}

/// A compiled query plan retained across queries of one session, valid
/// while the engine's [`ServiceEngine::plan_version`] stays unchanged.
struct CachedPlan {
    version: u64,
    query: Box<dyn FanoutQuery>,
}

/// One client's retrieval state.
pub struct Session {
    id: u64,
    engine: Box<dyn ServiceEngine>,
    /// One node cache per shard, shared with in-flight executor jobs.
    caches: Vec<Arc<Mutex<NodeCache>>>,
    /// Last compiled plan, keyed on the engine's plan version.
    plan: Option<CachedPlan>,
    feeds: u64,
    queries: u64,
}

impl Session {
    /// Assembles a session around an engine and its per-shard caches.
    pub fn new(
        id: u64,
        engine: Box<dyn ServiceEngine>,
        caches: Vec<Arc<Mutex<NodeCache>>>,
    ) -> Self {
        Session {
            id,
            engine,
            caches,
            plan: None,
            feeds: 0,
            queries: 0,
        }
    }

    /// Reassembles a recovered session: like [`Session::new`] but with
    /// the feed counter restored from a durable snapshot, so feed
    /// iteration numbers keep counting from where the crash left them.
    pub fn restored(
        id: u64,
        engine: Box<dyn ServiceEngine>,
        caches: Vec<Arc<Mutex<NodeCache>>>,
        feeds: u64,
    ) -> Self {
        Session {
            id,
            engine,
            caches,
            plan: None,
            feeds,
            queries: 0,
        }
    }

    /// The session id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The hosted engine.
    pub fn engine(&self) -> &dyn ServiceEngine {
        &*self.engine
    }

    /// Mutable access for feeds; bumps the feed counter.
    pub fn engine_mut_for_feed(&mut self) -> &mut dyn ServiceEngine {
        self.feeds += 1;
        &mut *self.engine
    }

    /// The per-shard caches; bumps the query counter.
    pub fn caches_for_query(&mut self) -> &[Arc<Mutex<NodeCache>>] {
        self.queries += 1;
        &self.caches
    }

    /// A clone of the cached plan, if one exists for exactly `version`.
    pub fn cached_plan(&self, version: u64) -> Option<Box<dyn FanoutQuery>> {
        self.plan
            .as_ref()
            .filter(|p| p.version == version)
            .map(|p| p.query.clone_fanout())
    }

    /// Retains `query` as the plan for `version`, replacing any prior one.
    pub fn store_plan(&mut self, version: u64, query: Box<dyn FanoutQuery>) {
        self.plan = Some(CachedPlan { version, query });
    }

    /// Feed rounds so far.
    pub fn feeds(&self) -> u64 {
        self.feeds
    }

    /// Queries served so far.
    pub fn queries(&self) -> u64 {
        self.queries
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("id", &self.id)
            .field("engine", &self.engine.name())
            .field("feeds", &self.feeds)
            .field("queries", &self.queries)
            .finish()
    }
}

/// Registry eviction policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct RegistryConfig {
    /// Maximum live sessions.
    pub max_sessions: usize,
    /// Idle time after which a session may be reaped (`None` = never).
    pub idle_ttl: Option<Duration>,
    /// At capacity: evict the least-recently-used session (`true`) or
    /// refuse creation with `CapacityExhausted` (`false`).
    pub evict_lru_at_capacity: bool,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            max_sessions: 64,
            idle_ttl: None,
            evict_lru_at_capacity: true,
        }
    }
}

struct Entry {
    session: Mutex<Session>,
    /// Milliseconds since registry start at last touch (atomic so the
    /// eviction scan needs no session locks). Drives the TTL sweep.
    last_touched_ms: AtomicU64,
    /// Strictly increasing logical touch tick; wall-clock milliseconds
    /// tie when touches land in the same millisecond, so the LRU scan
    /// orders by this instead.
    touch_seq: AtomicU64,
}

/// Concurrent session table with TTL and LRU eviction.
pub struct SessionRegistry {
    entries: Mutex<HashMap<u64, Arc<Entry>>>,
    next_id: AtomicU64,
    touch_clock: AtomicU64,
    epoch: Instant,
    config: RegistryConfig,
}

/// A checked-out session: keeps the entry alive even if it is evicted
/// from the registry mid-operation.
pub struct SessionHandle {
    entry: Arc<Entry>,
}

impl SessionHandle {
    /// Locks the session for one operation.
    pub fn lock(&self) -> MutexGuard<'_, Session> {
        self.entry.session.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl SessionRegistry {
    /// An empty registry.
    ///
    /// # Panics
    ///
    /// Panics when `config.max_sessions` is zero.
    pub fn new(config: RegistryConfig) -> Self {
        assert!(config.max_sessions > 0, "max_sessions must be positive");
        SessionRegistry {
            entries: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            touch_clock: AtomicU64::new(0),
            epoch: Instant::now(),
            config,
        }
    }

    /// The registry's configuration.
    pub fn config(&self) -> &RegistryConfig {
        &self.config
    }

    fn now_ms(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    fn next_tick(&self) -> u64 {
        self.touch_clock.fetch_add(1, Ordering::Relaxed)
    }

    fn lock_entries(&self) -> MutexGuard<'_, HashMap<u64, Arc<Entry>>> {
        self.entries.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Live session count.
    pub fn len(&self) -> usize {
        self.lock_entries().len()
    }

    /// `true` when no sessions are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` when `id` is currently live. Does **not** refresh the
    /// session's recency, so eviction tests and monitoring probes can
    /// observe liveness without perturbing the LRU order.
    pub fn contains(&self, id: u64) -> bool {
        self.lock_entries().contains_key(&id)
    }

    /// Removes every session idle longer than the TTL; returns how many
    /// were reaped.
    pub fn sweep_expired(&self) -> u64 {
        let Some(ttl) = self.config.idle_ttl else {
            return 0;
        };
        let cutoff = self
            .now_ms()
            .saturating_sub(u64::try_from(ttl.as_millis()).unwrap_or(u64::MAX));
        let mut entries = self.lock_entries();
        let before = entries.len();
        entries.retain(|_, e| e.last_touched_ms.load(Ordering::Relaxed) >= cutoff);
        (before - entries.len()) as u64
    }

    /// Creates a session via `make` (which receives the fresh id).
    ///
    /// Expired sessions are reaped first; at capacity the LRU session is
    /// evicted when the policy allows. Returns the new id and the number
    /// of sessions evicted to make room.
    ///
    /// # Errors
    ///
    /// [`ServiceError::CapacityExhausted`] at capacity with LRU eviction
    /// disabled.
    pub fn create(&self, make: impl FnOnce(u64) -> Session) -> Result<(u64, u64), ServiceError> {
        let mut evicted = self.sweep_expired();
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let now = self.now_ms();
        let mut entries = self.lock_entries();
        if entries.len() >= self.config.max_sessions {
            if !self.config.evict_lru_at_capacity {
                return Err(ServiceError::CapacityExhausted {
                    max_sessions: self.config.max_sessions,
                });
            }
            // Evict the stalest entries until one slot is free.
            while entries.len() >= self.config.max_sessions {
                let victim = entries
                    .iter()
                    .min_by_key(|(_, e)| e.touch_seq.load(Ordering::Relaxed))
                    .map(|(&id, _)| id)
                    .expect("non-empty map at capacity");
                entries.remove(&victim);
                evicted += 1;
            }
        }
        entries.insert(
            id,
            Arc::new(Entry {
                session: Mutex::new(make(id)),
                last_touched_ms: AtomicU64::new(now),
                touch_seq: AtomicU64::new(self.next_tick()),
            }),
        );
        Ok((id, evicted))
    }

    /// Re-inserts a session under a **specific** id — the recovery path,
    /// where ids must survive a restart because clients still hold them.
    /// Advances the id allocator past `id` so future creations never
    /// collide. Replaces any live session with the same id.
    pub fn restore(&self, id: u64, make: impl FnOnce(u64) -> Session) {
        self.next_id.fetch_max(id + 1, Ordering::Relaxed);
        let now = self.now_ms();
        let entry = Arc::new(Entry {
            session: Mutex::new(make(id)),
            last_touched_ms: AtomicU64::new(now),
            touch_seq: AtomicU64::new(self.next_tick()),
        });
        self.lock_entries().insert(id, entry);
    }

    /// Checks out a session, refreshing its recency.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownSession`] when the id is not live (expired
    /// ids are reaped on the way in).
    pub fn get(&self, id: u64) -> Result<SessionHandle, ServiceError> {
        self.sweep_expired();
        let entries = self.lock_entries();
        let entry = entries.get(&id).ok_or(ServiceError::UnknownSession(id))?;
        entry
            .last_touched_ms
            .store(self.now_ms(), Ordering::Relaxed);
        entry.touch_seq.store(self.next_tick(), Ordering::Relaxed);
        Ok(SessionHandle {
            entry: Arc::clone(entry),
        })
    }

    /// Removes a session.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownSession`] when the id is not live.
    pub fn close(&self, id: u64) -> Result<(), ServiceError> {
        self.lock_entries()
            .remove(&id)
            .map(|_| ())
            .ok_or(ServiceError::UnknownSession(id))
    }
}

impl std::fmt::Debug for SessionRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionRegistry")
            .field("live", &self.len())
            .field("config", &self.config)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcluster_core::QclusterConfig;

    fn mk_session(id: u64) -> Session {
        Session::new(
            id,
            Box::new(QclusterEngine::new(QclusterConfig::default())),
            vec![Arc::new(Mutex::new(NodeCache::new(4)))],
        )
    }

    fn registry(max: usize, evict: bool) -> SessionRegistry {
        SessionRegistry::new(RegistryConfig {
            max_sessions: max,
            idle_ttl: None,
            evict_lru_at_capacity: evict,
        })
    }

    #[test]
    fn create_get_close_lifecycle() {
        let r = registry(4, true);
        let (id, evicted) = r.create(mk_session).unwrap();
        assert_eq!(evicted, 0);
        assert_eq!(r.len(), 1);
        let handle = r.get(id).unwrap();
        assert_eq!(handle.lock().id(), id);
        assert_eq!(handle.lock().engine().name(), "qcluster");
        r.close(id).unwrap();
        assert!(matches!(
            r.get(id),
            Err(ServiceError::UnknownSession(got)) if got == id
        ));
        assert!(r.close(id).is_err());
    }

    #[test]
    fn ids_are_unique_and_monotone() {
        let r = registry(16, true);
        let (a, _) = r.create(mk_session).unwrap();
        let (b, _) = r.create(mk_session).unwrap();
        let (c, _) = r.create(mk_session).unwrap();
        assert!(a < b && b < c);
    }

    #[test]
    fn capacity_with_lru_evicts_stalest() {
        let r = registry(2, true);
        let (a, _) = r.create(mk_session).unwrap();
        let (b, _) = r.create(mk_session).unwrap();
        // Touch `a` so `b` is now the LRU.
        let _ = r.get(a).unwrap();
        let (c, evicted) = r.create(mk_session).unwrap();
        assert_eq!(evicted, 1);
        assert_eq!(r.len(), 2);
        assert!(r.get(a).is_ok(), "recently touched survives");
        assert!(r.get(b).is_err(), "LRU evicted");
        assert!(r.get(c).is_ok());
    }

    #[test]
    fn capacity_without_lru_errors() {
        let r = registry(1, false);
        let _ = r.create(mk_session).unwrap();
        assert!(matches!(
            r.create(mk_session),
            Err(ServiceError::CapacityExhausted { max_sessions: 1 })
        ));
    }

    #[test]
    fn ttl_reaps_idle_sessions() {
        let r = SessionRegistry::new(RegistryConfig {
            max_sessions: 8,
            idle_ttl: Some(Duration::from_millis(30)),
            evict_lru_at_capacity: true,
        });
        let (a, _) = r.create(mk_session).unwrap();
        std::thread::sleep(Duration::from_millis(60));
        let (b, _) = r.create(mk_session).unwrap();
        // `a` idled past the TTL and was reaped during the create sweep;
        // `b` is fresh.
        assert!(r.get(a).is_err());
        assert!(r.get(b).is_ok());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn restore_preserves_ids_and_advances_allocator() {
        let r = registry(8, true);
        r.restore(41, mk_session);
        assert_eq!(r.get(41).unwrap().lock().id(), 41);
        let (next, _) = r.create(mk_session).unwrap();
        assert!(next > 41, "allocator must clear restored ids");
    }

    #[test]
    fn qpm_engine_is_hostable() {
        let mut engine: Box<dyn ServiceEngine> = Box::new(QueryPointMovement::new());
        assert_eq!(engine.name(), "qpm");
        assert!(engine.query().is_err(), "no feedback yet");
        let pts = vec![
            FeedbackPoint::new(0, vec![1.0, 0.0], 2.0),
            FeedbackPoint::new(1, vec![0.0, 1.0], 2.0),
        ];
        engine.feed(&pts).unwrap();
        let q = engine.query().unwrap();
        assert_eq!(q.dim(), 2);
        assert_eq!(engine.num_clusters(), None);
    }
}
