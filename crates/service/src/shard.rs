//! Corpus sharding: contiguous partitions of the point set, each backed by
//! its own index, answering k-NN with **global** point ids.
//!
//! Shard `i` holds the contiguous id range `[i·chunk, min((i+1)·chunk, n))`,
//! so translating a shard-local hit back to the corpus id is a single
//! addition and [`ShardedCorpus::point`] locates any vector with one
//! division. Contiguity also means the shards together are exactly the
//! corpus — the merged per-shard top-k equals the global top-k.

use qcluster_index::{
    HybridTree, LinearScan, Neighbor, NodeCache, QuantizedScan, QueryDistance, SearchStats,
};
use std::sync::Arc;

/// Which index structure backs each shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardKind {
    /// Brute-force scan with a bounded top-k heap (`O(n log k)` per
    /// query). No interior nodes, so the node cache degenerates to one
    /// sequential-read slot.
    Scan,
    /// Bulk-loaded hybrid tree: pruned best-first search plus real
    /// node-granular cache accounting (the multipoint approach).
    #[default]
    Tree,
    /// Two-phase quantized scan: phase 1 bounds every point from its u8
    /// codes, phase 2 exactly reranks the surviving window — results
    /// bit-for-bit equal to [`ShardKind::Scan`], at a fraction of the
    /// memory bandwidth. Falls back to the exact scan whenever the
    /// query cannot be soundly bounded.
    Quantized,
}

#[derive(Debug)]
enum ShardIndex {
    Scan(LinearScan),
    Tree(HybridTree),
    Quantized(QuantizedScan),
}

/// One corpus partition: an index over a contiguous slice of the points.
#[derive(Debug)]
pub struct Shard {
    index: ShardIndex,
    /// Global id of this shard's first point.
    base: usize,
    /// Phase-2 rerank window override for quantized shards (`None` =
    /// `qcluster_index::default_rerank_window`).
    rerank_window: Option<usize>,
}

impl Shard {
    fn build(
        points: &[Vec<f64>],
        base: usize,
        kind: ShardKind,
        rerank_window: Option<usize>,
    ) -> Self {
        let index = match kind {
            ShardKind::Scan => ShardIndex::Scan(LinearScan::new(points)),
            ShardKind::Tree => ShardIndex::Tree(HybridTree::bulk_load(points)),
            ShardKind::Quantized => ShardIndex::Quantized(QuantizedScan::from_rows(points)),
        };
        Shard {
            index,
            base,
            rerank_window,
        }
    }

    /// Number of points in this shard.
    pub fn len(&self) -> usize {
        match &self.index {
            ShardIndex::Scan(s) => s.len(),
            ShardIndex::Tree(t) => t.len(),
            ShardIndex::Quantized(q) => q.len(),
        }
    }

    /// `true` when the shard holds no points (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Global id of the shard's first point.
    pub fn base(&self) -> usize {
        self.base
    }

    /// Node count for sizing a per-session [`NodeCache`]: the tree's node
    /// count, or a single slot for a scan shard (one sequential read).
    pub fn num_nodes(&self) -> usize {
        match &self.index {
            ShardIndex::Scan(_) | ShardIndex::Quantized(_) => 1,
            ShardIndex::Tree(t) => t.num_nodes(),
        }
    }

    /// Exact k-NN within this shard, returned with **global** ids, sorted
    /// ascending by `(distance, id)`.
    ///
    /// # Panics
    ///
    /// Panics when `k == 0` or the query dimensionality disagrees.
    pub fn knn<Q: QueryDistance + ?Sized>(
        &self,
        query: &Q,
        k: usize,
        cache: Option<&mut NodeCache>,
    ) -> (Vec<Neighbor>, SearchStats) {
        let (mut neighbors, stats) = match &self.index {
            ShardIndex::Scan(s) => scan_top_k(s, query, k, cache),
            ShardIndex::Tree(t) => t.knn(&query, k, cache),
            ShardIndex::Quantized(q) => quantized_top_k(q, query, k, self.rerank_window, cache),
        };
        for n in &mut neighbors {
            n.id += self.base;
        }
        (neighbors, stats)
    }
}

/// Bounded-heap top-k over a linear scan, delegating to the blocked
/// [`LinearScan::knn`]: corpus points stream through
/// [`QueryDistance::distance_batch`] in cache-sized blocks into a bounded
/// top-k heap — `O(n log k)` selection, one virtual dispatch per block.
fn scan_top_k<Q: QueryDistance + ?Sized>(
    scan: &LinearScan,
    query: &Q,
    k: usize,
    cache: Option<&mut NodeCache>,
) -> (Vec<Neighbor>, SearchStats) {
    let mut stats = SearchStats {
        nodes_accessed: 1,
        ..SearchStats::default()
    };
    // The whole scan is one "node": a session's repeat scan is a buffer hit.
    let hit = cache.is_some_and(|c| c.access(0));
    if hit {
        stats.cache_hits = 1;
    }
    stats.disk_reads = stats.nodes_accessed - stats.cache_hits;
    let neighbors = scan.knn(query, k);
    stats.distance_evaluations = scan.len() as u64;
    (neighbors, stats)
}

/// Two-phase top-k over a quantized shard. Cache accounting matches
/// [`scan_top_k`] (one sequential "node"); the quantization counters
/// record how much exact-distance work phase 1 saved.
fn quantized_top_k<Q: QueryDistance + ?Sized>(
    scan: &QuantizedScan,
    query: &Q,
    k: usize,
    window: Option<usize>,
    cache: Option<&mut NodeCache>,
) -> (Vec<Neighbor>, SearchStats) {
    let mut stats = SearchStats {
        nodes_accessed: 1,
        ..SearchStats::default()
    };
    let hit = cache.is_some_and(|c| c.access(0));
    if hit {
        stats.cache_hits = 1;
    }
    stats.disk_reads = stats.nodes_accessed - stats.cache_hits;
    let (neighbors, q) = scan.two_phase_knn(query, k, window);
    // Exact f64 distance evaluations actually performed: the reranked
    // window, plus full scans when the plan was unusable (miss) or its
    // candidate set failed certification (fallback rescan).
    stats.distance_evaluations =
        q.reranked + (q.fallback_rescans + q.plan_misses) * scan.len() as u64;
    stats.quant_phase1_points = q.phase1_points;
    stats.quant_reranked = q.reranked;
    stats.quant_fallbacks = q.fallback_rescans;
    stats.quant_plan_misses = q.plan_misses;
    (neighbors, stats)
}

/// The corpus split into contiguous shards behind [`Arc`]s, ready to be
/// fanned out across the executor's workers.
#[derive(Debug, Clone)]
pub struct ShardedCorpus {
    shards: Vec<Arc<Shard>>,
    /// Flat copy of every point for O(1) id → vector lookups (the shards'
    /// own buffers are permuted by tree bulk-loading).
    data: Arc<Vec<f64>>,
    dim: usize,
    len: usize,
}

impl ShardedCorpus {
    /// Partitions `points` into at most `num_shards` contiguous shards.
    ///
    /// The effective shard count is `ceil(n / ceil(n / num_shards))`,
    /// which may be smaller than requested for tiny corpora — shards are
    /// never empty.
    ///
    /// # Panics
    ///
    /// Panics on an empty corpus, `num_shards == 0`, or ragged
    /// dimensionalities.
    pub fn build(points: &[Vec<f64>], num_shards: usize, kind: ShardKind) -> Self {
        Self::build_with_window(points, num_shards, kind, None)
    }

    /// [`ShardedCorpus::build`] with an explicit phase-2 rerank window
    /// for [`ShardKind::Quantized`] shards (`None` = the
    /// `default_rerank_window` heuristic; ignored by other kinds).
    ///
    /// # Panics
    ///
    /// See [`ShardedCorpus::build`].
    pub fn build_with_window(
        points: &[Vec<f64>],
        num_shards: usize,
        kind: ShardKind,
        rerank_window: Option<usize>,
    ) -> Self {
        assert!(!points.is_empty(), "cannot shard an empty corpus");
        assert!(num_shards > 0, "need at least one shard");
        let dim = points[0].len();
        assert!(
            points.iter().all(|p| p.len() == dim),
            "all points must share one dimensionality"
        );
        let chunk = points.len().div_ceil(num_shards);
        let shards = points
            .chunks(chunk)
            .enumerate()
            .map(|(i, slice)| Arc::new(Shard::build(slice, i * chunk, kind, rerank_window)))
            .collect();
        let mut data = Vec::with_capacity(points.len() * dim);
        for p in points {
            data.extend_from_slice(p);
        }
        ShardedCorpus {
            shards,
            data: Arc::new(data),
            dim,
            len: points.len(),
        }
    }

    /// Number of shards actually built.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Corpus dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Total number of points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the corpus is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The shards, in id order.
    pub fn shards(&self) -> &[Arc<Shard>] {
        &self.shards
    }

    /// The vector of the point with global id `id`.
    ///
    /// # Panics
    ///
    /// Panics when `id` is out of range.
    pub fn point(&self, id: usize) -> &[f64] {
        assert!(id < self.len, "point id out of range");
        &self.data[id * self.dim..(id + 1) * self.dim]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcluster_index::EuclideanQuery;

    fn ring(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                let a = i as f64 * std::f64::consts::TAU / n as f64;
                vec![a.cos() * (1.0 + i as f64 * 0.01), a.sin()]
            })
            .collect()
    }

    #[test]
    fn sharded_knn_matches_global_scan_for_all_kinds() {
        let pts = ring(97);
        let q = EuclideanQuery::new(vec![0.4, -0.3]);
        let expect = LinearScan::new(&pts).knn(&q, 12);
        for kind in [ShardKind::Scan, ShardKind::Tree, ShardKind::Quantized] {
            let corpus = ShardedCorpus::build(&pts, 5, kind);
            let per_shard: Vec<Vec<Neighbor>> = corpus
                .shards()
                .iter()
                .map(|s| s.knn(&q, 12, None).0)
                .collect();
            let merged = qcluster_index::merge_top_k(per_shard, 12);
            assert_eq!(merged.len(), expect.len());
            for (a, b) in merged.iter().zip(expect.iter()) {
                assert_eq!(a.id, b.id, "{kind:?}");
                assert!((a.distance - b.distance).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn global_ids_and_point_lookup_round_trip() {
        let pts = ring(23);
        let corpus = ShardedCorpus::build(&pts, 4, ShardKind::Tree);
        assert_eq!(corpus.len(), 23);
        for (id, p) in pts.iter().enumerate() {
            assert_eq!(corpus.point(id), p.as_slice());
        }
        let total: usize = corpus.shards().iter().map(|s| s.len()).sum();
        assert_eq!(total, 23);
    }

    #[test]
    fn tiny_corpus_clamps_shard_count() {
        let corpus = ShardedCorpus::build(&ring(3), 8, ShardKind::Scan);
        assert!(corpus.num_shards() <= 3);
        assert!(corpus.shards().iter().all(|s| !s.is_empty()));
    }

    #[test]
    fn scan_shard_cache_models_sequential_reads() {
        let pts = ring(10);
        let corpus = ShardedCorpus::build(&pts, 1, ShardKind::Scan);
        let shard = &corpus.shards()[0];
        let mut cache = NodeCache::new(shard.num_nodes());
        let q = EuclideanQuery::new(vec![1.0, 0.0]);
        let (_, s1) = shard.knn(&q, 3, Some(&mut cache));
        assert_eq!(s1.disk_reads, 1);
        let (_, s2) = shard.knn(&q, 3, Some(&mut cache));
        assert_eq!(s2.cache_hits, 1);
        assert_eq!(s2.disk_reads, 0);
    }

    #[test]
    fn quantized_shard_is_bit_for_bit_exact_and_counts_phases() {
        let pts = ring(200);
        let q = EuclideanQuery::new(vec![0.4, -0.3]);
        let exact = ShardedCorpus::build(&pts, 1, ShardKind::Scan);
        let quant = ShardedCorpus::build(&pts, 1, ShardKind::Quantized);
        let (want, _) = exact.shards()[0].knn(&q, 9, None);
        let (got, stats) = quant.shards()[0].knn(&q, 9, None);
        assert_eq!(got, want, "two-phase results must be bit-for-bit exact");
        assert_eq!(stats.quant_plan_misses, 0);
        assert_eq!(stats.quant_phase1_points, 200);
        assert!(stats.quant_reranked >= 9);
        assert!(
            stats.distance_evaluations < 200,
            "phase 1 must prune exact work"
        );
        // An explicit window ≥ n degenerates to rerank-everything, still
        // exact.
        let wide = ShardedCorpus::build_with_window(&pts, 1, ShardKind::Quantized, Some(500));
        assert_eq!(wide.shards()[0].knn(&q, 9, None).0, want);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let corpus = ShardedCorpus::build(&ring(5), 1, ShardKind::Scan);
        let q = EuclideanQuery::new(vec![0.0, 0.0]);
        let _ = corpus.shards()[0].knn(&q, 0, None);
    }
}
