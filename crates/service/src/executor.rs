//! The parallel k-NN executor: a persistent worker pool fed through
//! crossbeam channels, fanning one query out across all shards and
//! merging the per-shard top-k lists into the global result.
//!
//! Refined queries (e.g. [`DisjunctiveQuery`](qcluster_core::DisjunctiveQuery))
//! carry interior scratch buffers, so they are `Send` but not `Sync`: the
//! executor never shares one query between workers — each shard job gets
//! its own clone via [`FanoutQuery::clone_fanout`].

use crate::shard::ShardedCorpus;
use crossbeam::channel::{self, Sender};
use qcluster_index::{merge_top_k, Neighbor, NodeCache, QueryDistance, SearchStats};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// A query that can be fanned out to worker threads: evaluable, sendable,
/// and cloneable per shard.
///
/// Blanket-implemented for every `Clone + Send` [`QueryDistance`], which
/// covers all query types in this workspace (Euclidean, weighted
/// Euclidean, cluster, and disjunctive queries).
pub trait FanoutQuery: QueryDistance + Send {
    /// A boxed clone for one shard job.
    fn clone_fanout(&self) -> Box<dyn FanoutQuery>;
}

impl<T: QueryDistance + Clone + Send + 'static> FanoutQuery for T {
    fn clone_fanout(&self) -> Box<dyn FanoutQuery> {
        Box::new(self.clone())
    }
}

/// A unit of work for the pool.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// A persistent pool of worker threads consuming shard jobs from a
/// shared channel. Dropping the executor closes the channel; workers
/// drain outstanding jobs and exit.
#[derive(Debug)]
pub struct Executor {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl Executor {
    /// Spawns a pool of `num_workers` threads (at least one).
    pub fn new(num_workers: usize) -> Self {
        let (tx, rx) = channel::unbounded::<Job>();
        let workers = (0..num_workers.max(1))
            .map(|i| {
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("qcluster-knn-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job();
                        }
                    })
                    .expect("spawn k-NN worker")
            })
            .collect();
        Executor {
            tx: Some(tx),
            workers,
        }
    }

    /// Number of worker threads.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    fn submit(&self, job: Job) {
        self.tx
            .as_ref()
            .expect("executor channel open while alive")
            .send(job)
            .expect("workers alive while executor alive");
    }

    /// Runs `query` against every shard of `corpus` in parallel and merges
    /// the per-shard top-`k` into the global top-`k` (ties by id).
    ///
    /// `caches` optionally supplies one per-shard session cache; pass the
    /// same slice across a session's queries to model the multipoint
    /// approach's cross-iteration node buffer. The returned
    /// [`SearchStats`] are summed over all shards.
    ///
    /// # Panics
    ///
    /// Panics when `k == 0`, the query dimensionality disagrees with the
    /// corpus, or `caches` is present with the wrong length.
    pub fn knn(
        &self,
        corpus: &ShardedCorpus,
        query: &dyn FanoutQuery,
        k: usize,
        caches: Option<&[Arc<Mutex<NodeCache>>]>,
    ) -> (Vec<Neighbor>, SearchStats) {
        assert!(k > 0, "k must be positive");
        assert_eq!(query.dim(), corpus.dim(), "query dimensionality mismatch");
        if let Some(caches) = caches {
            assert_eq!(
                caches.len(),
                corpus.num_shards(),
                "one cache per shard required"
            );
        }

        let num_shards = corpus.num_shards();
        let (result_tx, result_rx) = channel::unbounded();
        for (i, shard) in corpus.shards().iter().enumerate() {
            let shard = Arc::clone(shard);
            let shard_query = query.clone_fanout();
            let cache = caches.map(|c| Arc::clone(&c[i]));
            let result_tx = result_tx.clone();
            self.submit(Box::new(move || {
                let result = match cache {
                    Some(cache) => {
                        let mut cache = cache.lock().unwrap_or_else(|e| e.into_inner());
                        shard.knn(&*shard_query, k, Some(&mut cache))
                    }
                    None => shard.knn(&*shard_query, k, None),
                };
                // A send failure means the requester gave up; drop quietly.
                let _ = result_tx.send(result);
            }));
        }
        drop(result_tx);

        let mut per_shard = Vec::with_capacity(num_shards);
        let mut stats = SearchStats::default();
        for _ in 0..num_shards {
            let (neighbors, shard_stats) = result_rx.recv().expect("all shard jobs complete");
            stats.nodes_accessed += shard_stats.nodes_accessed;
            stats.cache_hits += shard_stats.cache_hits;
            stats.disk_reads += shard_stats.disk_reads;
            stats.distance_evaluations += shard_stats.distance_evaluations;
            per_shard.push(neighbors);
        }
        (merge_top_k(per_shard, k), stats)
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        // Close the job channel so workers exit, then join them.
        self.tx = None;
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::ShardKind;
    use qcluster_index::{EuclideanQuery, LinearScan};

    fn spiral(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                let t = i as f64 * 0.1;
                vec![t * t.cos(), t * t.sin(), (i % 7) as f64]
            })
            .collect()
    }

    #[test]
    fn parallel_knn_is_exact() {
        let pts = spiral(500);
        let expect = LinearScan::new(&pts).knn(&EuclideanQuery::new(vec![1.0, -2.0, 3.0]), 25);
        let executor = Executor::new(3);
        for kind in [ShardKind::Scan, ShardKind::Tree] {
            for shards in [1, 2, 4, 7] {
                let corpus = ShardedCorpus::build(&pts, shards, kind);
                let q = EuclideanQuery::new(vec![1.0, -2.0, 3.0]);
                let (got, stats) = executor.knn(&corpus, &q, 25, None);
                assert_eq!(got.len(), 25, "{kind:?}/{shards}");
                for (a, b) in got.iter().zip(expect.iter()) {
                    assert_eq!(a.id, b.id, "{kind:?}/{shards}");
                    assert!((a.distance - b.distance).abs() < 1e-12);
                }
                assert!(stats.nodes_accessed >= corpus.num_shards() as u64);
            }
        }
    }

    #[test]
    fn session_caches_accumulate_hits_across_queries() {
        let pts = spiral(400);
        let corpus = ShardedCorpus::build(&pts, 4, ShardKind::Tree);
        let executor = Executor::new(2);
        let caches: Vec<Arc<Mutex<NodeCache>>> = corpus
            .shards()
            .iter()
            .map(|s| Arc::new(Mutex::new(NodeCache::new(s.num_nodes()))))
            .collect();
        let q = EuclideanQuery::new(vec![0.0, 0.0, 2.0]);
        let (_, first) = executor.knn(&corpus, &q, 10, Some(&caches));
        assert_eq!(first.cache_hits, 0);
        let q2 = EuclideanQuery::new(vec![0.1, -0.1, 2.0]);
        let (_, second) = executor.knn(&corpus, &q2, 10, Some(&caches));
        assert!(second.cache_hits > 0, "refined query must reuse nodes");
        assert!(second.disk_reads < first.disk_reads);
    }

    #[test]
    fn executor_outlives_many_rounds_and_drops_cleanly() {
        let pts = spiral(120);
        let corpus = ShardedCorpus::build(&pts, 3, ShardKind::Scan);
        let executor = Executor::new(4);
        assert_eq!(executor.num_workers(), 4);
        for round in 0..50 {
            let q = EuclideanQuery::new(vec![round as f64 * 0.05, 0.0, 1.0]);
            let (got, _) = executor.knn(&corpus, &q, 5, None);
            assert_eq!(got.len(), 5);
        }
        drop(executor); // must join workers without hanging
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn dimension_mismatch_panics() {
        let corpus = ShardedCorpus::build(&spiral(10), 2, ShardKind::Scan);
        let executor = Executor::new(1);
        let q = EuclideanQuery::new(vec![0.0]);
        let _ = executor.knn(&corpus, &q, 1, None);
    }
}
