//! The parallel k-NN executor: a persistent worker pool fed through
//! crossbeam channels, fanning one query out across all shards and
//! merging the per-shard top-k lists into the global result.
//!
//! Refined queries (e.g. [`DisjunctiveQuery`](qcluster_core::DisjunctiveQuery))
//! carry interior scratch buffers, so they are `Send` but not `Sync`: the
//! executor never shares one query between workers — each shard job gets
//! its own clone via [`FanoutQuery::clone_fanout`].
//!
//! ## Fault tolerance
//!
//! [`Executor::try_knn`] is the fault-tolerant fan-out. Each shard job
//! runs under `catch_unwind`, so a panicking shard becomes a per-shard
//! failure instead of a poisoned pool; an optional deadline bounds the
//! collection wait, and whatever arrived in time is merged into a
//! *degraded* result annotated with `shards_ok / shards_total` coverage
//! ([`FanoutReport`]). A per-shard circuit breaker trips after
//! consecutive failures and skips that shard (degraded coverage) until
//! a cooldown elapses, then half-opens to probe it with a single job.
//! Admission control bounds the total jobs in flight, rejecting new
//! fan-outs with [`ServiceError::Overloaded`] instead of queueing
//! without bound. Dead workers are respawned transparently on the next
//! fan-out ([`Executor::heal`]).
//!
//! ## Failpoints
//!
//! Chaos tests inject faults through `qcluster-failpoint`:
//! `executor.shard` (any shard job) and `executor.shard.<i>` (one
//! shard) support `panic:<msg>`, `error:<msg>`, and `sleep:<ms>`;
//! `executor.worker.exit` makes a worker thread exit after completing
//! its next job (exercising [`Executor::heal`]).

use crate::error::ServiceError;
use crate::metrics::{HistogramSummary, LatencyHistogram};
use crate::shard::ShardedCorpus;
use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender};
use qcluster_failpoint as failpoint;
use qcluster_index::{merge_top_k, Neighbor, NodeCache, QueryDistance, SearchStats};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A query that can be fanned out to worker threads: evaluable, sendable,
/// and cloneable per shard.
///
/// Blanket-implemented for every `Clone + Send` [`QueryDistance`], which
/// covers all query types in this workspace (Euclidean, weighted
/// Euclidean, cluster, and disjunctive queries).
pub trait FanoutQuery: QueryDistance + Send {
    /// A boxed clone for one shard job.
    fn clone_fanout(&self) -> Box<dyn FanoutQuery>;
}

impl<T: QueryDistance + Clone + Send + 'static> FanoutQuery for T {
    fn clone_fanout(&self) -> Box<dyn FanoutQuery> {
        Box::new(self.clone())
    }
}

/// A unit of work for the pool.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Fault-tolerance tunables for the executor pool.
#[derive(Debug, Clone)]
pub struct ExecutorConfig {
    /// Worker threads (at least one).
    pub num_workers: usize,
    /// Admission cap: shard jobs queued or running at once. A fan-out
    /// that would exceed it is rejected with
    /// [`ServiceError::Overloaded`] before submitting anything.
    pub max_queued_jobs: usize,
    /// Consecutive failures (panics, injected errors, timeouts) that
    /// trip one shard's circuit breaker.
    pub breaker_threshold: u32,
    /// How long a tripped breaker stays open before half-opening to
    /// probe the shard with a single job.
    pub breaker_cooldown: Duration,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            num_workers: 4,
            max_queued_jobs: 4096,
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_secs(1),
        }
    }
}

/// Why one shard contributed nothing to a fan-out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardFailureKind {
    /// The shard job panicked; the payload message is preserved.
    Panic(String),
    /// The shard job failed without unwinding (injected fault).
    Failed(String),
    /// The shard had not responded when the deadline elapsed.
    Timeout,
    /// The shard's circuit breaker was open; the job was never run.
    BreakerOpen,
    /// The job was lost before producing a result (worker died with the
    /// job in hand).
    Lost,
}

/// One shard's failure in a fan-out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardFailure {
    /// Shard index within the corpus.
    pub shard: usize,
    /// What went wrong.
    pub kind: ShardFailureKind,
}

/// The outcome of one fault-tolerant fan-out: the merged top-k over
/// every shard that responded, plus coverage and per-shard failures.
#[derive(Debug, Clone)]
pub struct FanoutReport {
    /// Merged global top-k over the shards in `shards_ok`.
    pub neighbors: Vec<Neighbor>,
    /// Search statistics summed over the responding shards.
    pub stats: SearchStats,
    /// Shards whose results made it into `neighbors`.
    pub shards_ok: usize,
    /// Shards the query addressed (`shards_ok < shards_total` ⇒ the
    /// response is degraded).
    pub shards_total: usize,
    /// Failures for the `shards_total - shards_ok` missing shards.
    pub failures: Vec<ShardFailure>,
}

impl FanoutReport {
    /// `true` when at least one shard is missing from the merge.
    pub fn degraded(&self) -> bool {
        self.shards_ok < self.shards_total
    }
}

/// Executor-level fault counters, sampled into metrics snapshots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecutorFaults {
    /// Circuit-breaker trips (closed/half-open → open transitions).
    pub breaker_trips: u64,
    /// Dead worker threads respawned by [`Executor::heal`].
    pub workers_respawned: u64,
}

/// Circuit-breaker state for one shard.
///
/// Closed → (threshold consecutive failures) → Open(until) →
/// (cooldown) → HalfOpen (one probe) → Closed on success, re-Open on
/// failure.
#[derive(Debug, Default)]
struct BreakerInner {
    consecutive_failures: u32,
    open_until: Option<Instant>,
    probing: bool,
}

#[derive(Debug, Default)]
struct ShardBreaker {
    state: Mutex<BreakerInner>,
    trips: AtomicU64,
}

impl ShardBreaker {
    fn lock(&self) -> std::sync::MutexGuard<'_, BreakerInner> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Whether a job for this shard may run now. In the open state this
    /// admits exactly one half-open probe once the cooldown elapsed.
    fn admit(&self, now: Instant) -> bool {
        let mut s = self.lock();
        match s.open_until {
            None => true,
            Some(until) if now < until => false,
            Some(_) if s.probing => false,
            Some(_) => {
                s.probing = true;
                true
            }
        }
    }

    fn record_success(&self) {
        let mut s = self.lock();
        s.consecutive_failures = 0;
        s.open_until = None;
        s.probing = false;
    }

    /// Returns `true` when this failure tripped (or re-tripped) the
    /// breaker.
    fn record_failure(&self, now: Instant, threshold: u32, cooldown: Duration) -> bool {
        let mut s = self.lock();
        s.consecutive_failures = s.consecutive_failures.saturating_add(1);
        let trip = s.probing || s.consecutive_failures >= threshold;
        s.probing = false;
        if trip {
            s.open_until = Some(now + cooldown);
            self.trips.fetch_add(1, Ordering::Relaxed);
        }
        trip
    }
}

/// What one shard job sends back to the collector.
type ShardOutcome = (
    usize,
    Result<(Vec<Neighbor>, SearchStats), ShardFailureKind>,
);

/// Decrements the in-flight job counter when the job finishes — on the
/// success path, the failure path, and the unwind path alike.
struct QueueSlot(Arc<AtomicUsize>);

impl Drop for QueueSlot {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// A persistent pool of worker threads consuming shard jobs from a
/// shared channel, with panic isolation, per-shard circuit breakers,
/// bounded admission, and deadline-aware collection. Dropping the
/// executor closes the channel; workers drain outstanding jobs and
/// exit.
#[derive(Debug)]
pub struct Executor {
    tx: Option<Sender<Job>>,
    /// Kept so submissions cannot race worker deaths: as long as this
    /// receiver lives, `send` succeeds and [`Executor::heal`] can hand
    /// the queue to fresh workers.
    rx: Receiver<Job>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    config: ExecutorConfig,
    /// Shard jobs queued or running (admission control).
    queued: Arc<AtomicUsize>,
    /// Per-shard breakers, grown on demand to the corpus size.
    breakers: Mutex<Vec<Arc<ShardBreaker>>>,
    respawned: AtomicU64,
    next_worker_id: AtomicUsize,
    /// Per-shard k-NN execution latency, recorded at the job site
    /// (excludes queueing); sampled into metrics snapshots.
    shard_latency: Arc<LatencyHistogram>,
}

fn spawn_worker(id: usize, rx: Receiver<Job>) -> Result<JoinHandle<()>, ServiceError> {
    std::thread::Builder::new()
        .name(format!("qcluster-knn-{id}"))
        .spawn(move || {
            while let Ok(job) = rx.recv() {
                job();
                // Failpoint `executor.worker.exit`: the worker dies
                // after completing a job; `heal` must respawn it.
                if failpoint::evaluate("executor.worker.exit").is_some() {
                    return;
                }
            }
        })
        .map_err(|e| ServiceError::Spawn(format!("k-NN worker {id}: {e}")))
}

impl Executor {
    /// Spawns a pool of `num_workers` threads (at least one) with
    /// default fault-tolerance tunables.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Spawn`] when the OS refuses a thread; any workers
    /// already spawned are shut down cleanly.
    pub fn new(num_workers: usize) -> Result<Self, ServiceError> {
        Executor::with_config(ExecutorConfig {
            num_workers,
            ..ExecutorConfig::default()
        })
    }

    /// Spawns a pool with explicit fault-tolerance tunables.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Spawn`] when the OS refuses a thread.
    pub fn with_config(config: ExecutorConfig) -> Result<Self, ServiceError> {
        let (tx, rx) = channel::unbounded::<Job>();
        let num_workers = config.num_workers.max(1);
        let mut workers = Vec::with_capacity(num_workers);
        for i in 0..num_workers {
            match spawn_worker(i, rx.clone()) {
                Ok(handle) => workers.push(handle),
                Err(e) => {
                    // Shut down the partial pool before reporting.
                    drop(tx);
                    for handle in workers {
                        let _ = handle.join();
                    }
                    return Err(e);
                }
            }
        }
        Ok(Executor {
            tx: Some(tx),
            rx,
            workers: Mutex::new(workers),
            next_worker_id: AtomicUsize::new(num_workers),
            config,
            queued: Arc::new(AtomicUsize::new(0)),
            breakers: Mutex::new(Vec::new()),
            respawned: AtomicU64::new(0),
            shard_latency: Arc::new(LatencyHistogram::new()),
        })
    }

    /// Quantile summary of per-shard k-NN execution latency across all
    /// fan-outs this executor has run.
    pub fn shard_latency(&self) -> HistogramSummary {
        self.shard_latency.summary()
    }

    /// Number of worker threads.
    pub fn num_workers(&self) -> usize {
        self.workers.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Executor-level fault counters (breaker trips across all shards,
    /// workers respawned).
    pub fn fault_stats(&self) -> ExecutorFaults {
        let trips = self
            .breakers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|b| b.trips.load(Ordering::Relaxed))
            .sum();
        ExecutorFaults {
            breaker_trips: trips,
            workers_respawned: self.respawned.load(Ordering::Relaxed),
        }
    }

    /// Respawns any worker thread that has died, returning how many
    /// were replaced. Called automatically at the start of every
    /// fan-out, so the pool self-heals without operator action.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Spawn`] when a replacement thread cannot be
    /// created (the dead slot is left for the next attempt).
    pub fn heal(&self) -> Result<usize, ServiceError> {
        let mut workers = self.workers.lock().unwrap_or_else(|e| e.into_inner());
        let mut respawned = 0usize;
        for slot in workers.iter_mut() {
            if slot.is_finished() {
                let id = self.next_worker_id.fetch_add(1, Ordering::Relaxed);
                let fresh = spawn_worker(id, self.rx.clone())?;
                let dead = std::mem::replace(slot, fresh);
                let _ = dead.join();
                respawned += 1;
            }
        }
        if respawned > 0 {
            self.respawned
                .fetch_add(respawned as u64, Ordering::Relaxed);
        }
        Ok(respawned)
    }

    fn submit(&self, job: Job) -> Result<(), ServiceError> {
        let tx = self
            .tx
            .as_ref()
            .ok_or_else(|| ServiceError::Internal("executor already shut down".into()))?;
        tx.send(job)
            .map_err(|_| ServiceError::Internal("executor job channel disconnected".into()))
    }

    /// One breaker per shard index, growing the table on demand.
    fn breakers_for(&self, num_shards: usize) -> Vec<Arc<ShardBreaker>> {
        let mut breakers = self.breakers.lock().unwrap_or_else(|e| e.into_inner());
        while breakers.len() < num_shards {
            breakers.push(Arc::new(ShardBreaker::default()));
        }
        breakers[..num_shards].to_vec()
    }

    /// Runs `query` against every shard of `corpus` in parallel and
    /// merges the per-shard top-`k` into the global top-`k` (ties by
    /// id), panicking on failure. Prefer [`Executor::try_knn`] on
    /// request paths — this wrapper keeps the original infallible
    /// contract for tests and benchmarks.
    ///
    /// # Panics
    ///
    /// Panics when `k == 0`, the query dimensionality disagrees with the
    /// corpus, `caches` is present with the wrong length, or the
    /// fan-out fails.
    pub fn knn(
        &self,
        corpus: &ShardedCorpus,
        query: &dyn FanoutQuery,
        k: usize,
        caches: Option<&[Arc<Mutex<NodeCache>>]>,
    ) -> (Vec<Neighbor>, SearchStats) {
        assert!(k > 0, "k must be positive");
        assert_eq!(query.dim(), corpus.dim(), "query dimensionality mismatch");
        if let Some(caches) = caches {
            assert_eq!(
                caches.len(),
                corpus.num_shards(),
                "one cache per shard required"
            );
        }
        let report = self
            .try_knn(corpus, query, k, caches, None)
            .expect("undeadlined fan-out on a healthy pool");
        (report.neighbors, report.stats)
    }

    /// The fault-tolerant fan-out: runs `query` against every shard of
    /// `corpus`, collecting per-shard results until `deadline` (forever
    /// when `None`), and merges whatever arrived. See [`FanoutReport`]
    /// for coverage semantics; shards skipped by an open circuit
    /// breaker or lost to panics/timeouts appear in
    /// [`FanoutReport::failures`].
    ///
    /// `caches` optionally supplies one per-shard session cache; pass
    /// the same slice across a session's queries to model the
    /// multipoint approach's cross-iteration node buffer.
    ///
    /// # Errors
    ///
    /// - [`ServiceError::InvalidRequest`] for `k == 0` or a bad cache
    ///   slice length.
    /// - [`ServiceError::DimensionMismatch`] when the query and corpus
    ///   disagree.
    /// - [`ServiceError::Overloaded`] when admission control rejects
    ///   the fan-out (nothing was submitted).
    /// - [`ServiceError::DeadlineExceeded`] when the deadline elapsed
    ///   with *zero* shards responding (no partial result to return).
    /// - [`ServiceError::Internal`] when every shard failed for
    ///   non-deadline reasons.
    pub fn try_knn(
        &self,
        corpus: &ShardedCorpus,
        query: &dyn FanoutQuery,
        k: usize,
        caches: Option<&[Arc<Mutex<NodeCache>>]>,
        deadline: Option<Instant>,
    ) -> Result<FanoutReport, ServiceError> {
        if k == 0 {
            return Err(ServiceError::InvalidRequest("k must be positive".into()));
        }
        if query.dim() != corpus.dim() {
            return Err(ServiceError::DimensionMismatch {
                expected: corpus.dim(),
                found: query.dim(),
            });
        }
        if let Some(caches) = caches {
            if caches.len() != corpus.num_shards() {
                return Err(ServiceError::InvalidRequest(format!(
                    "{} session caches for {} shards",
                    caches.len(),
                    corpus.num_shards()
                )));
            }
        }
        self.heal()?;

        let num_shards = corpus.num_shards();
        let breakers = self.breakers_for(num_shards);
        let started = Instant::now();
        let mut failures: Vec<ShardFailure> = Vec::new();

        // Circuit breakers decide which shards run at all.
        let admitted: Vec<usize> = (0..num_shards)
            .filter(|&i| {
                if breakers[i].admit(started) {
                    true
                } else {
                    failures.push(ShardFailure {
                        shard: i,
                        kind: ShardFailureKind::BreakerOpen,
                    });
                    false
                }
            })
            .collect();

        // Admission control: reserve queue slots for the whole fan-out
        // or reject it outright.
        if !admitted.is_empty() {
            let prev = self.queued.fetch_add(admitted.len(), Ordering::AcqRel);
            if prev + admitted.len() > self.config.max_queued_jobs {
                self.queued.fetch_sub(admitted.len(), Ordering::AcqRel);
                return Err(ServiceError::Overloaded {
                    queued: prev,
                    capacity: self.config.max_queued_jobs,
                });
            }
        }

        let (result_tx, result_rx) = channel::unbounded::<ShardOutcome>();
        for &i in &admitted {
            let shard = Arc::clone(&corpus.shards()[i]);
            let shard_query = query.clone_fanout();
            let cache = caches.map(|c| Arc::clone(&c[i]));
            let result_tx = result_tx.clone();
            let slot = QueueSlot(Arc::clone(&self.queued));
            let shard_latency = Arc::clone(&self.shard_latency);
            self.submit(Box::new(move || {
                let _slot = slot;
                let job_start = Instant::now();
                let outcome = run_shard_job(i, &shard, &*shard_query, k, cache.as_ref());
                if outcome.is_ok() {
                    shard_latency.record(job_start.elapsed());
                }
                // A send failure means the requester gave up; drop quietly.
                let _ = result_tx.send((i, outcome));
            }))?;
        }
        drop(result_tx);

        // Collect until every admitted shard reported or the deadline
        // elapsed. `arrived` attributes timeouts to specific shards.
        let mut arrived = vec![false; num_shards];
        let mut per_shard: Vec<Vec<Neighbor>> = Vec::with_capacity(admitted.len());
        let mut stats = SearchStats::default();
        let mut shards_ok = 0usize;
        let mut received = 0usize;
        let mut lost = false;
        while received < admitted.len() {
            let outcome = match deadline {
                None => match result_rx.recv() {
                    Ok(o) => o,
                    Err(_) => {
                        lost = true;
                        break;
                    }
                },
                Some(d) => {
                    let now = Instant::now();
                    let Some(wait) = d.checked_duration_since(now).filter(|w| !w.is_zero()) else {
                        break; // deadline elapsed
                    };
                    match result_rx.recv_timeout(wait) {
                        Ok(o) => o,
                        Err(RecvTimeoutError::Timeout) => break,
                        Err(RecvTimeoutError::Disconnected) => {
                            lost = true;
                            break;
                        }
                    }
                }
            };
            received += 1;
            let (shard, result) = outcome;
            arrived[shard] = true;
            match result {
                Ok((neighbors, shard_stats)) => {
                    breakers[shard].record_success();
                    stats.nodes_accessed += shard_stats.nodes_accessed;
                    stats.cache_hits += shard_stats.cache_hits;
                    stats.disk_reads += shard_stats.disk_reads;
                    stats.distance_evaluations += shard_stats.distance_evaluations;
                    stats.quant_phase1_points += shard_stats.quant_phase1_points;
                    stats.quant_reranked += shard_stats.quant_reranked;
                    stats.quant_fallbacks += shard_stats.quant_fallbacks;
                    stats.quant_plan_misses += shard_stats.quant_plan_misses;
                    per_shard.push(neighbors);
                    shards_ok += 1;
                }
                Err(kind) => {
                    breakers[shard].record_failure(
                        Instant::now(),
                        self.config.breaker_threshold,
                        self.config.breaker_cooldown,
                    );
                    failures.push(ShardFailure { shard, kind });
                }
            }
        }

        // Shards that never reported: timed out (deadline path) or lost
        // with a dying worker (disconnect path).
        for &i in &admitted {
            if !arrived[i] {
                let kind = if lost {
                    ShardFailureKind::Lost
                } else {
                    breakers[i].record_failure(
                        Instant::now(),
                        self.config.breaker_threshold,
                        self.config.breaker_cooldown,
                    );
                    ShardFailureKind::Timeout
                };
                failures.push(ShardFailure { shard: i, kind });
            }
        }

        if shards_ok == 0 {
            let waited_ms = started.elapsed().as_millis() as u64;
            return if deadline.is_some_and(|d| Instant::now() >= d) {
                Err(ServiceError::DeadlineExceeded {
                    waited_ms,
                    shards_ok: 0,
                    shards_total: num_shards,
                })
            } else {
                Err(ServiceError::Internal(format!(
                    "all {num_shards} shards failed: {failures:?}"
                )))
            };
        }

        failures.sort_by_key(|f| f.shard);
        Ok(FanoutReport {
            neighbors: merge_top_k(per_shard, k),
            stats,
            shards_ok,
            shards_total: num_shards,
            failures,
        })
    }
}

/// The body of one shard job: failpoint evaluation, then the shard
/// k-NN under `catch_unwind` so a panic becomes a per-shard failure.
fn run_shard_job(
    shard_index: usize,
    shard: &crate::shard::Shard,
    query: &dyn FanoutQuery,
    k: usize,
    cache: Option<&Arc<Mutex<NodeCache>>>,
) -> Result<(Vec<Neighbor>, SearchStats), ShardFailureKind> {
    let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
        || -> Result<(Vec<Neighbor>, SearchStats), ShardFailureKind> {
            // Failpoints: the shard-specific name wins over the generic
            // one; formatting only happens while any failpoint is armed.
            if failpoint::active() {
                let action = failpoint::evaluate_sleepy(&format!("executor.shard.{shard_index}"))
                    .or_else(|| failpoint::evaluate_sleepy("executor.shard"));
                match action {
                    Some(failpoint::Action::Panic(msg)) => {
                        panic!("injected panic in shard {shard_index}: {msg}")
                    }
                    Some(failpoint::Action::Error(msg)) => {
                        return Err(ShardFailureKind::Failed(format!(
                            "injected failure in shard {shard_index}: {msg}"
                        )))
                    }
                    Some(failpoint::Action::Partial(n)) => {
                        return Err(ShardFailureKind::Failed(format!(
                            "injected partial({n}) in shard {shard_index}"
                        )))
                    }
                    Some(failpoint::Action::Sleep(_)) | None => {}
                }
            }
            Ok(match cache {
                Some(cache) => {
                    let mut cache = cache.lock().unwrap_or_else(|e| e.into_inner());
                    shard.knn(query, k, Some(&mut cache))
                }
                None => shard.knn(query, k, None),
            })
        },
    ));
    match unwound {
        Ok(result) => result,
        Err(payload) => Err(ShardFailureKind::Panic(panic_message(payload.as_ref()))),
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        // Close the job channel so workers exit, then join them.
        self.tx = None;
        let mut workers = self.workers.lock().unwrap_or_else(|e| e.into_inner());
        for handle in workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::ShardKind;
    use qcluster_index::{EuclideanQuery, LinearScan};

    fn spiral(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                let t = i as f64 * 0.1;
                vec![t * t.cos(), t * t.sin(), (i % 7) as f64]
            })
            .collect()
    }

    #[test]
    fn parallel_knn_is_exact() {
        let pts = spiral(500);
        let expect = LinearScan::new(&pts).knn(&EuclideanQuery::new(vec![1.0, -2.0, 3.0]), 25);
        let executor = Executor::new(3).unwrap();
        for kind in [ShardKind::Scan, ShardKind::Tree] {
            for shards in [1, 2, 4, 7] {
                let corpus = ShardedCorpus::build(&pts, shards, kind);
                let q = EuclideanQuery::new(vec![1.0, -2.0, 3.0]);
                let (got, stats) = executor.knn(&corpus, &q, 25, None);
                assert_eq!(got.len(), 25, "{kind:?}/{shards}");
                for (a, b) in got.iter().zip(expect.iter()) {
                    assert_eq!(a.id, b.id, "{kind:?}/{shards}");
                    assert!((a.distance - b.distance).abs() < 1e-12);
                }
                assert!(stats.nodes_accessed >= corpus.num_shards() as u64);
            }
        }
    }

    #[test]
    fn session_caches_accumulate_hits_across_queries() {
        let pts = spiral(400);
        let corpus = ShardedCorpus::build(&pts, 4, ShardKind::Tree);
        let executor = Executor::new(2).unwrap();
        let caches: Vec<Arc<Mutex<NodeCache>>> = corpus
            .shards()
            .iter()
            .map(|s| Arc::new(Mutex::new(NodeCache::new(s.num_nodes()))))
            .collect();
        let q = EuclideanQuery::new(vec![0.0, 0.0, 2.0]);
        let (_, first) = executor.knn(&corpus, &q, 10, Some(&caches));
        assert_eq!(first.cache_hits, 0);
        let q2 = EuclideanQuery::new(vec![0.1, -0.1, 2.0]);
        let (_, second) = executor.knn(&corpus, &q2, 10, Some(&caches));
        assert!(second.cache_hits > 0, "refined query must reuse nodes");
        assert!(second.disk_reads < first.disk_reads);
    }

    #[test]
    fn executor_outlives_many_rounds_and_drops_cleanly() {
        let pts = spiral(120);
        let corpus = ShardedCorpus::build(&pts, 3, ShardKind::Scan);
        let executor = Executor::new(4).unwrap();
        assert_eq!(executor.num_workers(), 4);
        for round in 0..50 {
            let q = EuclideanQuery::new(vec![round as f64 * 0.05, 0.0, 1.0]);
            let (got, _) = executor.knn(&corpus, &q, 5, None);
            assert_eq!(got.len(), 5);
        }
        drop(executor); // must join workers without hanging
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn dimension_mismatch_panics() {
        let corpus = ShardedCorpus::build(&spiral(10), 2, ShardKind::Scan);
        let executor = Executor::new(1).unwrap();
        let q = EuclideanQuery::new(vec![0.0]);
        let _ = executor.knn(&corpus, &q, 1, None);
    }

    #[test]
    fn try_knn_reports_full_coverage_on_healthy_pool() {
        let pts = spiral(200);
        let corpus = ShardedCorpus::build(&pts, 4, ShardKind::Scan);
        let executor = Executor::new(2).unwrap();
        let q = EuclideanQuery::new(vec![0.5, 0.5, 1.0]);
        let report = executor.try_knn(&corpus, &q, 10, None, None).unwrap();
        assert_eq!(report.shards_ok, 4);
        assert_eq!(report.shards_total, 4);
        assert!(!report.degraded());
        assert!(report.failures.is_empty());
        assert_eq!(report.neighbors.len(), 10);
        assert_eq!(executor.fault_stats(), ExecutorFaults::default());
    }

    #[test]
    fn try_knn_rejects_invalid_requests_with_typed_errors() {
        let corpus = ShardedCorpus::build(&spiral(20), 2, ShardKind::Scan);
        let executor = Executor::new(1).unwrap();
        let q = EuclideanQuery::new(vec![0.0, 0.0, 0.0]);
        assert!(matches!(
            executor.try_knn(&corpus, &q, 0, None, None),
            Err(ServiceError::InvalidRequest(_))
        ));
        let bad = EuclideanQuery::new(vec![0.0]);
        assert!(matches!(
            executor.try_knn(&corpus, &bad, 3, None, None),
            Err(ServiceError::DimensionMismatch {
                expected: 3,
                found: 1
            })
        ));
        let short_caches = vec![Arc::new(Mutex::new(NodeCache::new(4)))];
        assert!(matches!(
            executor.try_knn(&corpus, &q, 3, Some(&short_caches), None),
            Err(ServiceError::InvalidRequest(_))
        ));
    }

    #[test]
    fn generous_deadline_changes_nothing() {
        let pts = spiral(300);
        let corpus = ShardedCorpus::build(&pts, 3, ShardKind::Tree);
        let executor = Executor::new(2).unwrap();
        let q = EuclideanQuery::new(vec![1.0, 0.0, 2.0]);
        let (plain, _) = executor.knn(&corpus, &q, 15, None);
        let deadline = Instant::now() + Duration::from_secs(60);
        let report = executor
            .try_knn(&corpus, &q, 15, None, Some(deadline))
            .unwrap();
        assert!(!report.degraded());
        assert_eq!(report.neighbors.len(), plain.len());
        for (a, b) in report.neighbors.iter().zip(plain.iter()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.distance.to_bits(), b.distance.to_bits());
        }
    }

    #[test]
    fn breaker_admits_closed_trips_then_half_opens() {
        let breaker = ShardBreaker::default();
        let t0 = Instant::now();
        let cooldown = Duration::from_millis(50);
        assert!(breaker.admit(t0));
        assert!(!breaker.record_failure(t0, 2, cooldown));
        assert!(breaker.admit(t0));
        assert!(
            breaker.record_failure(t0, 2, cooldown),
            "second failure trips"
        );
        assert!(!breaker.admit(t0), "open: skip");
        assert!(!breaker.admit(t0 + Duration::from_millis(10)), "still open");
        // Cooldown elapsed: exactly one half-open probe.
        let after = t0 + Duration::from_millis(60);
        assert!(breaker.admit(after), "half-open probe admitted");
        assert!(!breaker.admit(after), "only one probe at a time");
        // Probe failure re-trips immediately (no threshold wait).
        assert!(breaker.record_failure(after, 2, cooldown));
        assert!(!breaker.admit(after + Duration::from_millis(10)));
        // Next probe succeeds: breaker closes fully.
        let later = after + Duration::from_millis(60);
        assert!(breaker.admit(later));
        breaker.record_success();
        assert!(breaker.admit(later), "closed again: everyone admitted");
        assert_eq!(breaker.trips.load(Ordering::Relaxed), 2);
    }
}
