//! The retrieval service: corpus shards + executor + session registry +
//! metrics behind one concurrency-safe façade.
//!
//! Every public method takes `&self` — a single [`Service`] value wrapped
//! in an [`Arc`](std::sync::Arc) is the intended deployment shape, with
//! any number of client threads calling into it concurrently.

use crate::error::ServiceError;
use crate::executor::{Executor, FanoutQuery};
use crate::metrics::{MetricsSnapshot, ServiceMetrics};
use crate::session::{RegistryConfig, ServiceEngine, Session, SessionRegistry};
use crate::shard::{ShardKind, ShardedCorpus};
use qcluster_baselines::QueryPointMovement;
use qcluster_core::{FeedbackPoint, QclusterConfig, QclusterEngine};
use qcluster_index::{EuclideanQuery, Neighbor, NodeCache, SearchStats};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Everything tunable about a service instance.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Number of corpus shards (clamped so shards are never empty).
    pub num_shards: usize,
    /// Worker threads in the k-NN pool.
    pub num_workers: usize,
    /// Index structure per shard.
    pub shard_kind: ShardKind,
    /// Maximum live sessions.
    pub max_sessions: usize,
    /// Idle TTL before a session may be reaped (`None` = never).
    pub idle_ttl: Option<Duration>,
    /// At capacity, evict the LRU session instead of failing creation.
    pub evict_lru_at_capacity: bool,
    /// Per-shard node-cache capacity (`None` = unbounded residency).
    pub cache_capacity: Option<usize>,
    /// Configuration for default (Qcluster) engines.
    pub engine: QclusterConfig,
    /// Relevance score assigned to id-only feedback.
    pub default_score: f64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            num_shards: 4,
            num_workers: 4,
            shard_kind: ShardKind::Tree,
            max_sessions: 64,
            idle_ttl: None,
            evict_lru_at_capacity: true,
            cache_capacity: None,
            engine: QclusterConfig::default(),
            default_score: 3.0,
        }
    }
}

/// Result of one feed round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeedOutcome {
    /// Feed rounds this session has completed.
    pub iteration: u64,
    /// Cluster count, for engines that expose one.
    pub clusters: Option<usize>,
}

/// Result of one query round.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The global top-k, ascending by `(distance, id)`.
    pub neighbors: Vec<Neighbor>,
    /// Search work summed across shards.
    pub stats: SearchStats,
}

/// The concurrent multi-session retrieval service.
#[derive(Debug)]
pub struct Service {
    corpus: ShardedCorpus,
    executor: Executor,
    registry: SessionRegistry,
    metrics: ServiceMetrics,
    config: ServiceConfig,
}

impl Service {
    /// Builds the service over `points`: shards the corpus, spawns the
    /// worker pool, and readies an empty session registry.
    ///
    /// # Panics
    ///
    /// Panics on an empty corpus, ragged dimensionalities, or zero
    /// shards/sessions.
    pub fn new(points: &[Vec<f64>], config: ServiceConfig) -> Self {
        let corpus = ShardedCorpus::build(points, config.num_shards, config.shard_kind);
        let executor = Executor::new(config.num_workers);
        let registry = SessionRegistry::new(RegistryConfig {
            max_sessions: config.max_sessions,
            idle_ttl: config.idle_ttl,
            evict_lru_at_capacity: config.evict_lru_at_capacity,
        });
        Service {
            corpus,
            executor,
            registry,
            metrics: ServiceMetrics::new(),
            config,
        }
    }

    /// The sharded corpus.
    pub fn corpus(&self) -> &ShardedCorpus {
        &self.corpus
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Live metrics (for direct embedding; wire clients use `stats`).
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.metrics
    }

    /// Number of live sessions.
    pub fn active_sessions(&self) -> usize {
        self.registry.len()
    }

    fn fresh_caches(&self) -> Vec<Arc<Mutex<NodeCache>>> {
        self.corpus
            .shards()
            .iter()
            .map(|s| {
                let cache = match self.config.cache_capacity {
                    Some(cap) => NodeCache::with_capacity(s.num_nodes(), cap),
                    None => NodeCache::new(s.num_nodes()),
                };
                Arc::new(Mutex::new(cache))
            })
            .collect()
    }

    /// Opens a session hosting the default Qcluster engine.
    ///
    /// # Errors
    ///
    /// [`ServiceError::CapacityExhausted`] when full and LRU eviction is
    /// disabled.
    pub fn create_session(&self) -> Result<u64, ServiceError> {
        self.create_session_with(Box::new(QclusterEngine::new(self.config.engine)))
    }

    /// Opens a session hosting an engine selected by name
    /// (`"qcluster"` or `"qpm"`).
    ///
    /// # Errors
    ///
    /// [`ServiceError::InvalidRequest`] for unknown names, plus the
    /// capacity errors of [`Service::create_session`].
    pub fn create_session_named(&self, engine: &str) -> Result<u64, ServiceError> {
        match engine {
            "qcluster" => self.create_session(),
            "qpm" => self.create_session_with(Box::new(QueryPointMovement::new())),
            other => Err(ServiceError::InvalidRequest(format!(
                "unknown engine '{other}'"
            ))),
        }
    }

    /// Opens a session hosting the given engine.
    ///
    /// # Errors
    ///
    /// [`ServiceError::CapacityExhausted`] when full and LRU eviction is
    /// disabled.
    pub fn create_session_with(&self, engine: Box<dyn ServiceEngine>) -> Result<u64, ServiceError> {
        let caches = self.fresh_caches();
        let (id, evicted) = self
            .registry
            .create(move |id| Session::new(id, engine, caches))?;
        self.metrics.record_session_created();
        self.metrics.record_evictions(evicted);
        Ok(id)
    }

    /// Closes a session explicitly.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownSession`] when the id is not live.
    pub fn close_session(&self, session: u64) -> Result<(), ServiceError> {
        self.registry.close(session)?;
        self.metrics.record_session_closed();
        Ok(())
    }

    /// Feeds one round of relevant points into a session's engine.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownSession`], [`ServiceError::EmptyFeedback`],
    /// [`ServiceError::DimensionMismatch`], or engine failures.
    pub fn feed(
        &self,
        session: u64,
        relevant: &[FeedbackPoint],
    ) -> Result<FeedOutcome, ServiceError> {
        if relevant.is_empty() {
            return Err(ServiceError::EmptyFeedback);
        }
        for p in relevant {
            if p.dim() != self.corpus.dim() {
                return Err(ServiceError::DimensionMismatch {
                    expected: self.corpus.dim(),
                    found: p.dim(),
                });
            }
        }
        let handle = self.registry.get(session)?;
        let start = Instant::now();
        let outcome = {
            let mut guard = handle.lock();
            let engine = guard.engine_mut_for_feed();
            engine.feed(relevant).map_err(ServiceError::from_core)?;
            FeedOutcome {
                iteration: guard.feeds(),
                clusters: guard.engine().num_clusters(),
            }
        };
        self.metrics.feed_latency.record(start.elapsed());
        Ok(outcome)
    }

    /// Feeds relevant points identified by corpus image id. `scores`
    /// optionally grades each id; omitted scores default to the
    /// configured `default_score`.
    ///
    /// # Errors
    ///
    /// [`ServiceError::InvalidImageId`] for out-of-range ids,
    /// [`ServiceError::InvalidRequest`] on a score-count mismatch, plus
    /// everything [`Service::feed`] returns.
    pub fn feed_ids(
        &self,
        session: u64,
        relevant_ids: &[usize],
        scores: Option<&[f64]>,
    ) -> Result<FeedOutcome, ServiceError> {
        if let Some(scores) = scores {
            if scores.len() != relevant_ids.len() {
                return Err(ServiceError::InvalidRequest(format!(
                    "{} ids but {} scores",
                    relevant_ids.len(),
                    scores.len()
                )));
            }
        }
        let points = relevant_ids
            .iter()
            .enumerate()
            .map(|(i, &id)| {
                if id >= self.corpus.len() {
                    return Err(ServiceError::InvalidImageId {
                        id,
                        corpus_len: self.corpus.len(),
                    });
                }
                let score = scores.map_or(self.config.default_score, |s| s[i]);
                if score <= 0.0 || score.is_nan() {
                    return Err(ServiceError::InvalidRequest(format!(
                        "score {score} for id {id} must be positive"
                    )));
                }
                Ok(FeedbackPoint::new(
                    id,
                    self.corpus.point(id).to_vec(),
                    score,
                ))
            })
            .collect::<Result<Vec<_>, _>>()?;
        self.feed(session, &points)
    }

    /// Runs the session's refined query: compiles the engine's current
    /// query (e.g. the disjunctive multipoint query) and fans it out
    /// across the shards through the session's node caches.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownSession`], [`ServiceError::InvalidRequest`]
    /// for `k == 0`, or [`ServiceError::Engine`] before any feedback.
    pub fn query(&self, session: u64, k: usize) -> Result<QueryOutcome, ServiceError> {
        let handle = self.registry.get(session)?;
        let start = Instant::now();
        let mut guard = handle.lock();
        let query = guard.engine().query().map_err(ServiceError::from_core)?;
        self.run_query(&mut guard, &*query, k, start)
    }

    /// Runs an ad-hoc query from an explicit vector — the session's
    /// initial example-image round, before any feedback exists. The
    /// session's node caches still warm up, so the following refined
    /// rounds get the multipoint approach's buffer reuse.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownSession`],
    /// [`ServiceError::DimensionMismatch`], or
    /// [`ServiceError::InvalidRequest`] for `k == 0`.
    pub fn query_vector(
        &self,
        session: u64,
        vector: Vec<f64>,
        k: usize,
    ) -> Result<QueryOutcome, ServiceError> {
        if vector.len() != self.corpus.dim() {
            return Err(ServiceError::DimensionMismatch {
                expected: self.corpus.dim(),
                found: vector.len(),
            });
        }
        let handle = self.registry.get(session)?;
        let start = Instant::now();
        let mut guard = handle.lock();
        let query = EuclideanQuery::new(vector);
        self.run_query(&mut guard, &query, k, start)
    }

    fn run_query(
        &self,
        session: &mut Session,
        query: &dyn FanoutQuery,
        k: usize,
        start: Instant,
    ) -> Result<QueryOutcome, ServiceError> {
        if k == 0 {
            return Err(ServiceError::InvalidRequest("k must be positive".into()));
        }
        let caches = session.caches_for_query().to_vec();
        let fanout_start = Instant::now();
        let (neighbors, stats) = self.executor.knn(&self.corpus, query, k, Some(&caches));
        self.metrics.shard_fanout.record(fanout_start.elapsed());
        self.metrics
            .record_cache(stats.cache_hits, stats.disk_reads);
        self.metrics.query_latency.record(start.elapsed());
        Ok(QueryOutcome { neighbors, stats })
    }

    /// A point-in-time snapshot of every service metric.
    pub fn stats(&self) -> MetricsSnapshot {
        self.metrics.snapshot(self.registry.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blob_corpus(n_per: usize) -> Vec<Vec<f64>> {
        // Two well-separated blobs; ids < n_per are blob A.
        (0..n_per)
            .map(|i| {
                let a = i as f64 * 0.7;
                vec![a.cos() * 0.5, a.sin() * 0.5]
            })
            .chain((0..n_per).map(|i| {
                let a = i as f64 * 0.9;
                vec![10.0 + a.cos() * 0.5, 10.0 + a.sin() * 0.5]
            }))
            .collect()
    }

    fn small_service() -> Service {
        Service::new(
            &two_blob_corpus(24),
            ServiceConfig {
                num_shards: 3,
                num_workers: 2,
                ..ServiceConfig::default()
            },
        )
    }

    #[test]
    fn full_session_lifecycle_end_to_end() {
        let svc = small_service();
        let id = svc.create_session().unwrap();

        // Round 0: example-image query near blob A.
        let initial = svc.query_vector(id, vec![0.4, 0.1], 8).unwrap();
        assert_eq!(initial.neighbors.len(), 8);
        assert!(initial.neighbors.iter().all(|n| n.id < 24), "blob A only");

        // Mark some blob-A images relevant, then re-query refined.
        let marked: Vec<usize> = initial.neighbors.iter().take(5).map(|n| n.id).collect();
        let fed = svc.feed_ids(id, &marked, None).unwrap();
        assert_eq!(fed.iteration, 1);
        assert!(fed.clusters.unwrap() >= 1);

        let refined = svc.query(id, 8).unwrap();
        assert_eq!(refined.neighbors.len(), 8);
        assert!(refined.neighbors.iter().all(|n| n.id < 24));
        // Refined rounds reuse the session's node buffer.
        assert!(refined.stats.cache_hits > 0);

        svc.close_session(id).unwrap();
        assert!(svc.query(id, 3).is_err());

        let stats = svc.stats();
        assert_eq!(stats.sessions_created, 1);
        assert_eq!(stats.sessions_closed, 1);
        assert_eq!(stats.active_sessions, 0);
        assert_eq!(stats.query.count, 2);
        assert_eq!(stats.feed.count, 1);
        assert!(stats.cache_hit_ratio > 0.0);
    }

    #[test]
    fn error_paths_are_structured() {
        let svc = small_service();
        assert!(matches!(
            svc.query(999, 5),
            Err(ServiceError::UnknownSession(999))
        ));
        let id = svc.create_session().unwrap();
        assert!(matches!(svc.query(id, 5), Err(ServiceError::Engine(_)),));
        assert!(matches!(
            svc.feed(id, &[]),
            Err(ServiceError::EmptyFeedback)
        ));
        assert!(matches!(
            svc.query_vector(id, vec![1.0, 2.0, 3.0], 5),
            Err(ServiceError::DimensionMismatch {
                expected: 2,
                found: 3
            })
        ));
        assert!(matches!(
            svc.feed_ids(id, &[99999], None),
            Err(ServiceError::InvalidImageId { id: 99999, .. })
        ));
        assert!(matches!(
            svc.feed_ids(id, &[0, 1], Some(&[1.0])),
            Err(ServiceError::InvalidRequest(_))
        ));
        assert!(matches!(
            svc.query_vector(id, vec![0.0, 0.0], 0),
            Err(ServiceError::InvalidRequest(_))
        ));
    }

    #[test]
    fn named_engines_and_unknown_names() {
        let svc = small_service();
        let q = svc.create_session_named("qcluster").unwrap();
        let m = svc.create_session_named("qpm").unwrap();
        assert!(svc.create_session_named("falcon9").is_err());
        svc.feed_ids(q, &[0, 1, 2], None).unwrap();
        svc.feed_ids(m, &[0, 1, 2], None).unwrap();
        assert!(svc.query(q, 4).is_ok());
        assert!(svc.query(m, 4).is_ok());
    }

    #[test]
    fn graded_scores_flow_through() {
        let svc = small_service();
        let id = svc.create_session().unwrap();
        let out = svc
            .feed_ids(id, &[0, 1, 2], Some(&[3.0, 2.0, 1.0]))
            .unwrap();
        assert_eq!(out.iteration, 1);
        assert!(
            svc.feed_ids(id, &[3], Some(&[0.0])).is_err(),
            "non-positive score rejected"
        );
    }

    #[test]
    fn capacity_eviction_shows_in_metrics() {
        let svc = Service::new(
            &two_blob_corpus(8),
            ServiceConfig {
                num_shards: 2,
                num_workers: 1,
                max_sessions: 2,
                ..ServiceConfig::default()
            },
        );
        let a = svc.create_session().unwrap();
        let _b = svc.create_session().unwrap();
        let _c = svc.create_session().unwrap(); // evicts `a`
        assert_eq!(svc.active_sessions(), 2);
        assert!(svc.query_vector(a, vec![0.0, 0.0], 1).is_err());
        let stats = svc.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.sessions_created, 3);
    }
}
