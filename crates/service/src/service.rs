//! The retrieval service: corpus shards + executor + session registry +
//! metrics behind one concurrency-safe façade.
//!
//! Every public method takes `&self` — a single [`Service`] value wrapped
//! in an [`Arc`](std::sync::Arc) is the intended deployment shape, with
//! any number of client threads calling into it concurrently.

use crate::error::ServiceError;
use crate::executor::{Executor, ExecutorConfig, FanoutQuery, ShardFailureKind};
use crate::metrics::{MetricsSnapshot, ServiceMetrics, StorageGauges};
use crate::session::{RegistryConfig, ServiceEngine, Session, SessionRegistry};
use crate::shard::{ShardKind, ShardedCorpus};
use qcluster_baselines::QueryPointMovement;
use qcluster_core::{FeedbackPoint, QclusterConfig, QclusterEngine};
use qcluster_index::{merge_top_k, DynamicIndex, EuclideanQuery, Neighbor, NodeCache, SearchStats};
use qcluster_store::{
    decode_record_frames, encode_record_frame, CompactionStats, StoreConfig, VectorStore, WalRecord,
};
use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Everything tunable about a service instance.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Number of corpus shards (clamped so shards are never empty).
    pub num_shards: usize,
    /// Worker threads in the k-NN pool.
    pub num_workers: usize,
    /// Index structure per shard ([`ShardKind::Quantized`] turns on the
    /// two-phase u8 scan; results stay bit-for-bit exact).
    pub shard_kind: ShardKind,
    /// Phase-2 rerank window for quantized shards (`None` = the
    /// `default_rerank_window` heuristic; ignored by other kinds).
    pub quant_rerank_window: Option<usize>,
    /// Maximum live sessions.
    pub max_sessions: usize,
    /// Idle TTL before a session may be reaped (`None` = never).
    pub idle_ttl: Option<Duration>,
    /// At capacity, evict the LRU session instead of failing creation.
    pub evict_lru_at_capacity: bool,
    /// Per-shard node-cache capacity (`None` = unbounded residency).
    pub cache_capacity: Option<usize>,
    /// Configuration for default (Qcluster) engines.
    pub engine: QclusterConfig,
    /// Relevance score assigned to id-only feedback.
    pub default_score: f64,
    /// Side-buffer size at which the live-ingest overlay index rebuilds
    /// (only relevant for durable services; see [`Service::ingest`]).
    pub overlay_rebuild_threshold: usize,
    /// Deadline applied to queries that do not carry their own
    /// (`None` = wait for every shard). On expiry the query returns a
    /// degraded partial result over the shards that responded.
    pub default_deadline: Option<Duration>,
    /// Consecutive shard failures that trip its circuit breaker.
    pub breaker_threshold: u32,
    /// How long a tripped breaker skips its shard before half-opening.
    pub breaker_cooldown: Duration,
    /// Admission cap on shard jobs queued or running at once; fan-outs
    /// beyond it are rejected with [`ServiceError::Overloaded`].
    pub max_queued_jobs: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            num_shards: 4,
            num_workers: 4,
            shard_kind: ShardKind::Tree,
            quant_rerank_window: None,
            max_sessions: 64,
            idle_ttl: None,
            evict_lru_at_capacity: true,
            cache_capacity: None,
            engine: QclusterConfig::default(),
            default_score: 3.0,
            overlay_rebuild_threshold: 256,
            default_deadline: None,
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_secs(1),
            max_queued_jobs: 4096,
        }
    }
}

/// Result of one feed round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeedOutcome {
    /// Feed rounds this session has completed.
    pub iteration: u64,
    /// Cluster count, for engines that expose one.
    pub clusters: Option<usize>,
}

/// Result of one query round.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The global top-k, ascending by `(distance, id)`.
    pub neighbors: Vec<Neighbor>,
    /// Search work summed across shards.
    pub stats: SearchStats,
    /// Shards whose results made it into the merge.
    pub shards_ok: usize,
    /// Shards the query addressed.
    pub shards_total: usize,
}

impl QueryOutcome {
    /// `true` when shard timeouts, panics, or open breakers kept some
    /// shards out of the merge — the ranking covers only
    /// `shards_ok / shards_total` of the corpus.
    pub fn degraded(&self) -> bool {
        self.shards_ok < self.shards_total
    }
}

/// Result of one live ingest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestOutcome {
    /// The new vector's corpus id (stable across restarts).
    pub id: usize,
    /// Total corpus size after the ingest (base + overlay).
    pub total: usize,
}

/// Mutable live-ingest state: the durable store plus the in-memory
/// overlay index holding every vector ingested since this process
/// opened the store. The overlay is created lazily on the first ingest
/// because the underlying tree cannot be bulk-loaded empty.
///
/// Lock order: a session lock (registry → session) is always taken
/// *before* this mutex, never after — queries hold their session guard
/// while merging overlay results.
#[derive(Debug, Default)]
struct LiveState {
    store: Option<VectorStore>,
    overlay: Option<DynamicIndex>,
    consensus: ConsensusState,
}

/// Replication-consensus state for this node: the highest term it has
/// acknowledged (persisted through the store when durable, so a
/// SIGKILLed node cannot forget a fence across restarts) plus the two
/// leases that make leadership safe. The leader lease marks applies at
/// the current term as live leadership; the vote lease stops this node
/// from granting two contending candidates in the same window.
#[derive(Debug, Default)]
struct ConsensusState {
    /// Highest term acknowledged (0 = never fenced).
    term: u64,
    /// While unexpired, a leader at `term` holds this node.
    lease_until: Option<Instant>,
    /// While unexpired, competing vote requests are refused.
    vote_until: Option<Instant>,
}

/// The concurrent multi-session retrieval service.
#[derive(Debug)]
pub struct Service {
    corpus: ShardedCorpus,
    executor: Executor,
    registry: SessionRegistry,
    metrics: ServiceMetrics,
    config: ServiceConfig,
    /// Vectors in the sharded base corpus; overlay ids start here.
    base_len: usize,
    live: Mutex<LiveState>,
}

impl Service {
    /// Builds the service over `points`: shards the corpus, spawns the
    /// worker pool, and readies an empty session registry.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Spawn`] when a worker thread cannot be created.
    ///
    /// # Panics
    ///
    /// Panics on an empty corpus, ragged dimensionalities, or zero
    /// shards/sessions.
    pub fn new(points: &[Vec<f64>], config: ServiceConfig) -> Result<Self, ServiceError> {
        let corpus = ShardedCorpus::build_with_window(
            points,
            config.num_shards,
            config.shard_kind,
            config.quant_rerank_window,
        );
        let executor = Executor::with_config(ExecutorConfig {
            num_workers: config.num_workers,
            max_queued_jobs: config.max_queued_jobs,
            breaker_threshold: config.breaker_threshold,
            breaker_cooldown: config.breaker_cooldown,
        })?;
        let registry = SessionRegistry::new(RegistryConfig {
            max_sessions: config.max_sessions,
            idle_ttl: config.idle_ttl,
            evict_lru_at_capacity: config.evict_lru_at_capacity,
        });
        Ok(Service {
            corpus,
            executor,
            registry,
            metrics: ServiceMetrics::new(),
            config,
            base_len: points.len(),
            live: Mutex::new(LiveState::default()),
        })
    }

    /// Opens a durable service over a store directory.
    ///
    /// On a fresh directory the store is bootstrapped from `seed` (which
    /// becomes ids `0..seed.len()`). On a directory with prior state the
    /// full durable corpus — sealed segments plus the WAL tail, torn
    /// final record discarded — is recovered as the base shards, live
    /// sessions are restored under their original ids (engines come back
    /// *fresh*: feedback state is not persisted, so clients re-feed
    /// after a crash), and `seed` is ignored.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Storage`] for I/O or corruption, and
    /// [`ServiceError::InvalidRequest`] when the directory is empty and
    /// no seed was given (the service cannot shard an empty corpus).
    pub fn open_durable(
        dir: &Path,
        seed: &[Vec<f64>],
        config: ServiceConfig,
        store_config: StoreConfig,
    ) -> Result<Self, ServiceError> {
        let (mut store, recovered) = VectorStore::open(dir, store_config)?;
        let had_prior = !recovered.vectors.is_empty() || !recovered.sessions.is_empty();
        let recovered_term = recovered.term;
        let base = if recovered.vectors.is_empty() {
            if seed.is_empty() {
                return Err(ServiceError::InvalidRequest(
                    "durable open needs prior state or a non-empty seed".into(),
                ));
            }
            store.bootstrap(seed)?;
            seed.to_vec()
        } else {
            recovered.vectors
        };
        let service = {
            let mut s = Service::new(&base, config)?;
            s.live = Mutex::new(LiveState {
                store: Some(store),
                overlay: None,
                consensus: ConsensusState {
                    term: recovered_term,
                    ..ConsensusState::default()
                },
            });
            s
        };
        for snap in &recovered.sessions {
            let engine = service.engine_by_name(&snap.engine);
            let caches = service.fresh_caches();
            let feeds = snap.feeds;
            service.registry.restore(snap.session, move |id| {
                Session::restored(id, engine, caches, feeds)
            });
        }
        if had_prior {
            service.metrics.record_recovery();
        }
        Ok(service)
    }

    /// Instantiates an engine for a recovered session. Unknown names
    /// (from a newer writer's WAL) degrade to the default engine rather
    /// than failing the whole recovery.
    fn engine_by_name(&self, name: &str) -> Box<dyn ServiceEngine> {
        match name {
            "qpm" => Box::new(QueryPointMovement::new()),
            _ => Box::new(QclusterEngine::new(self.config.engine)),
        }
    }

    fn lock_live(&self) -> MutexGuard<'_, LiveState> {
        self.live.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// `true` when the service is backed by a durable store.
    pub fn is_durable(&self) -> bool {
        self.lock_live().store.is_some()
    }

    /// Total corpus size: base shards plus the live-ingest overlay.
    pub fn total_vectors(&self) -> usize {
        self.base_len + self.lock_live().overlay.as_ref().map_or(0, |o| o.len())
    }

    /// The sharded corpus.
    pub fn corpus(&self) -> &ShardedCorpus {
        &self.corpus
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Live metrics (for direct embedding; wire clients use `stats`).
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.metrics
    }

    /// Number of live sessions.
    pub fn active_sessions(&self) -> usize {
        self.registry.len()
    }

    fn fresh_caches(&self) -> Vec<Arc<Mutex<NodeCache>>> {
        self.corpus
            .shards()
            .iter()
            .map(|s| {
                let cache = match self.config.cache_capacity {
                    Some(cap) => NodeCache::with_capacity(s.num_nodes(), cap),
                    None => NodeCache::new(s.num_nodes()),
                };
                Arc::new(Mutex::new(cache))
            })
            .collect()
    }

    /// Opens a session hosting the default Qcluster engine.
    ///
    /// # Errors
    ///
    /// [`ServiceError::CapacityExhausted`] when full and LRU eviction is
    /// disabled.
    pub fn create_session(&self) -> Result<u64, ServiceError> {
        self.create_session_with(Box::new(QclusterEngine::new(self.config.engine)))
    }

    /// Opens a session hosting an engine selected by name
    /// (`"qcluster"` or `"qpm"`).
    ///
    /// # Errors
    ///
    /// [`ServiceError::InvalidRequest`] for unknown names, plus the
    /// capacity errors of [`Service::create_session`].
    pub fn create_session_named(&self, engine: &str) -> Result<u64, ServiceError> {
        match engine {
            "qcluster" => self.create_session(),
            "qpm" => self.create_session_with(Box::new(QueryPointMovement::new())),
            other => Err(ServiceError::InvalidRequest(format!(
                "unknown engine '{other}'"
            ))),
        }
    }

    /// Opens a session hosting the given engine.
    ///
    /// # Errors
    ///
    /// [`ServiceError::CapacityExhausted`] when full and LRU eviction is
    /// disabled.
    pub fn create_session_with(&self, engine: Box<dyn ServiceEngine>) -> Result<u64, ServiceError> {
        let engine_name = engine.name();
        let caches = self.fresh_caches();
        let (id, evicted) = self
            .registry
            .create(move |id| Session::new(id, engine, caches))?;
        self.metrics.record_session_created();
        self.metrics.record_evictions(evicted);
        self.snapshot_session(id, engine_name, 0, true)?;
        Ok(id)
    }

    /// Best-effort durable session snapshot (no-op for a memory-only
    /// service). Takes the live lock, so callers must not hold it.
    fn snapshot_session(
        &self,
        session: u64,
        engine: &str,
        feeds: u64,
        live: bool,
    ) -> Result<(), ServiceError> {
        let mut state = self.lock_live();
        if let Some(store) = state.store.as_mut() {
            store.record_session(session, engine, feeds, live)?;
        }
        Ok(())
    }

    /// Closes a session explicitly.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownSession`] when the id is not live.
    pub fn close_session(&self, session: u64) -> Result<(), ServiceError> {
        self.registry.close(session)?;
        self.metrics.record_session_closed();
        self.snapshot_session(session, "", 0, false)?;
        Ok(())
    }

    /// Feeds one round of relevant points into a session's engine.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownSession`], [`ServiceError::EmptyFeedback`],
    /// [`ServiceError::DimensionMismatch`], or engine failures.
    pub fn feed(
        &self,
        session: u64,
        relevant: &[FeedbackPoint],
    ) -> Result<FeedOutcome, ServiceError> {
        if relevant.is_empty() {
            return Err(ServiceError::EmptyFeedback);
        }
        for p in relevant {
            if p.dim() != self.corpus.dim() {
                return Err(ServiceError::DimensionMismatch {
                    expected: self.corpus.dim(),
                    found: p.dim(),
                });
            }
        }
        let handle = self.registry.get(session)?;
        let start = Instant::now();
        let (outcome, engine_name) = {
            let mut guard = handle.lock();
            let engine = guard.engine_mut_for_feed();
            engine.feed(relevant).map_err(ServiceError::from_core)?;
            (
                FeedOutcome {
                    iteration: guard.feeds(),
                    clusters: guard.engine().num_clusters(),
                },
                guard.engine().name(),
            )
        };
        self.metrics.feed_latency.record(start.elapsed());
        self.snapshot_session(session, engine_name, outcome.iteration, true)?;
        Ok(outcome)
    }

    /// Feeds relevant points identified by corpus image id. `scores`
    /// optionally grades each id; omitted scores default to the
    /// configured `default_score`.
    ///
    /// # Errors
    ///
    /// [`ServiceError::InvalidImageId`] for out-of-range ids,
    /// [`ServiceError::InvalidRequest`] on a score-count mismatch, plus
    /// everything [`Service::feed`] returns.
    pub fn feed_ids(
        &self,
        session: u64,
        relevant_ids: &[usize],
        scores: Option<&[f64]>,
    ) -> Result<FeedOutcome, ServiceError> {
        if let Some(scores) = scores {
            if scores.len() != relevant_ids.len() {
                return Err(ServiceError::InvalidRequest(format!(
                    "{} ids but {} scores",
                    relevant_ids.len(),
                    scores.len()
                )));
            }
        }
        let points = {
            // Scoped: the live lock must be released before `feed` takes
            // the session lock (lock order is session → live).
            let live = self.lock_live();
            let total = self.base_len + live.overlay.as_ref().map_or(0, |o| o.len());
            relevant_ids
                .iter()
                .enumerate()
                .map(|(i, &id)| {
                    if id >= total {
                        return Err(ServiceError::InvalidImageId {
                            id,
                            corpus_len: total,
                        });
                    }
                    let score = scores.map_or(self.config.default_score, |s| s[i]);
                    if score <= 0.0 || !score.is_finite() {
                        return Err(ServiceError::InvalidRequest(format!(
                            "score {score} for id {id} must be positive and finite"
                        )));
                    }
                    let vector = if id < self.base_len {
                        self.corpus.point(id).to_vec()
                    } else {
                        let overlay = live.overlay.as_ref().ok_or_else(|| {
                            ServiceError::Internal(format!(
                                "id {id} past base corpus {} but no overlay exists",
                                self.base_len
                            ))
                        })?;
                        overlay.point(id - self.base_len).to_vec()
                    };
                    Ok(FeedbackPoint::new(id, vector, score))
                })
                .collect::<Result<Vec<_>, _>>()?
        };
        self.feed(session, &points)
    }

    /// Runs the session's refined query: compiles the engine's current
    /// query (e.g. the disjunctive multipoint query) and fans it out
    /// across the shards through the session's node caches.
    ///
    /// Compiled plans are cached per session, keyed on the engine's
    /// [`ServiceEngine::plan_version`]: repeat queries between feedback
    /// rounds skip recompilation (covariance inversion and expanded-form
    /// precomputation) and only re-run the k-NN. A feed or reset bumps
    /// the version, so the next query recompiles. Hits and misses show
    /// up in the service metrics as `plan_cache_hits` / `plan_cache_misses`.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownSession`], [`ServiceError::InvalidRequest`]
    /// for `k == 0`, or [`ServiceError::Engine`] before any feedback.
    pub fn query(&self, session: u64, k: usize) -> Result<QueryOutcome, ServiceError> {
        self.query_with_deadline(session, k, self.config.default_deadline)
    }

    /// [`Service::query`] with an explicit per-request deadline
    /// (`None` = wait for every shard, overriding any configured
    /// default). On expiry, whatever shards responded are merged into a
    /// degraded partial result — see [`QueryOutcome::degraded`]; only
    /// when *zero* shards made the deadline does this return
    /// [`ServiceError::DeadlineExceeded`].
    ///
    /// # Errors
    ///
    /// Everything [`Service::query`] returns, plus
    /// [`ServiceError::DeadlineExceeded`] and
    /// [`ServiceError::Overloaded`].
    pub fn query_with_deadline(
        &self,
        session: u64,
        k: usize,
        deadline: Option<Duration>,
    ) -> Result<QueryOutcome, ServiceError> {
        let handle = self.registry.get(session)?;
        let start = Instant::now();
        let mut guard = handle.lock();
        let query = match guard.engine().plan_version() {
            Some(version) => match guard.cached_plan(version) {
                Some(cached) => {
                    self.metrics.record_plan_cache_hit();
                    cached
                }
                None => {
                    let compiled = guard.engine().query().map_err(ServiceError::from_core)?;
                    self.metrics.record_plan_cache_miss();
                    guard.store_plan(version, compiled.clone_fanout());
                    compiled
                }
            },
            None => {
                self.metrics.record_plan_cache_miss();
                guard.engine().query().map_err(ServiceError::from_core)?
            }
        };
        self.run_query(&mut guard, &*query, k, start, deadline)
    }

    /// Runs an ad-hoc query from an explicit vector — the session's
    /// initial example-image round, before any feedback exists. The
    /// session's node caches still warm up, so the following refined
    /// rounds get the multipoint approach's buffer reuse.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownSession`],
    /// [`ServiceError::DimensionMismatch`], or
    /// [`ServiceError::InvalidRequest`] for `k == 0`.
    pub fn query_vector(
        &self,
        session: u64,
        vector: Vec<f64>,
        k: usize,
    ) -> Result<QueryOutcome, ServiceError> {
        self.query_vector_with_deadline(session, vector, k, self.config.default_deadline)
    }

    /// [`Service::query_vector`] with an explicit per-request deadline;
    /// see [`Service::query_with_deadline`] for the degraded-result
    /// semantics.
    ///
    /// # Errors
    ///
    /// Everything [`Service::query_vector`] returns, plus
    /// [`ServiceError::DeadlineExceeded`] and
    /// [`ServiceError::Overloaded`].
    pub fn query_vector_with_deadline(
        &self,
        session: u64,
        vector: Vec<f64>,
        k: usize,
        deadline: Option<Duration>,
    ) -> Result<QueryOutcome, ServiceError> {
        if vector.len() != self.corpus.dim() {
            return Err(ServiceError::DimensionMismatch {
                expected: self.corpus.dim(),
                found: vector.len(),
            });
        }
        let handle = self.registry.get(session)?;
        let start = Instant::now();
        let mut guard = handle.lock();
        let query = EuclideanQuery::new(vector);
        self.run_query(&mut guard, &query, k, start, deadline)
    }

    fn run_query(
        &self,
        session: &mut Session,
        query: &dyn FanoutQuery,
        k: usize,
        start: Instant,
        deadline: Option<Duration>,
    ) -> Result<QueryOutcome, ServiceError> {
        if k == 0 {
            return Err(ServiceError::InvalidRequest("k must be positive".into()));
        }
        let caches = session.caches_for_query().to_vec();
        let fanout_start = Instant::now();
        // The deadline covers the whole request, so it anchors at
        // `start` (session lookup and plan compilation count against it).
        let fanout_deadline = deadline.map(|d| start + d);
        let report =
            match self
                .executor
                .try_knn(&self.corpus, query, k, Some(&caches), fanout_deadline)
            {
                Ok(report) => report,
                Err(e) => {
                    match &e {
                        ServiceError::DeadlineExceeded { .. } => {
                            self.metrics.record_deadline_exceeded()
                        }
                        ServiceError::Overloaded { .. } => self.metrics.record_overload_rejection(),
                        _ => {}
                    }
                    return Err(e);
                }
            };
        self.metrics.shard_fanout.record(fanout_start.elapsed());
        for failure in &report.failures {
            match failure.kind {
                ShardFailureKind::Panic(_) => self.metrics.record_shard_panic(),
                ShardFailureKind::Failed(_) | ShardFailureKind::Lost => {
                    self.metrics.record_shard_failure()
                }
                ShardFailureKind::Timeout => self.metrics.record_shard_timeout(),
                ShardFailureKind::BreakerOpen => self.metrics.record_breaker_skip(),
            }
        }
        if report.degraded() {
            self.metrics.record_degraded_response();
        }
        let (mut neighbors, mut stats) = (report.neighbors, report.stats);
        {
            // Merge in live-ingested vectors (ids offset past the base
            // corpus). Session lock is already held; live comes second.
            let live = self.lock_live();
            if let Some(overlay) = live.overlay.as_ref() {
                let (mut extra, extra_stats) = overlay.knn(&query, k, None);
                for n in &mut extra {
                    n.id += self.base_len;
                }
                stats.nodes_accessed += extra_stats.nodes_accessed;
                stats.cache_hits += extra_stats.cache_hits;
                stats.disk_reads += extra_stats.disk_reads;
                stats.distance_evaluations += extra_stats.distance_evaluations;
                neighbors = merge_top_k(vec![neighbors, extra], k);
            }
        }
        self.metrics
            .record_cache(stats.cache_hits, stats.disk_reads);
        self.metrics.record_quant(
            stats.quant_phase1_points,
            stats.quant_reranked,
            stats.quant_fallbacks,
            stats.quant_plan_misses,
        );
        let elapsed = start.elapsed();
        self.metrics.query_latency.record(elapsed);
        self.metrics.query_hist.record(elapsed);
        Ok(QueryOutcome {
            neighbors,
            stats,
            shards_ok: report.shards_ok,
            shards_total: report.shards_total,
        })
    }

    /// Durably ingests one vector into the live corpus: WAL-append (fsync
    /// per [`StoreConfig::fsync_on_commit`]), then insert into the
    /// in-memory overlay index. The returned id is immediately queryable
    /// and feedable, and survives restarts — recovery folds overlay
    /// vectors into the base shards under the same ids.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Storage`] when the service is memory-only or the
    /// WAL append fails, [`ServiceError::DimensionMismatch`], or
    /// [`ServiceError::InvalidRequest`] for non-finite components.
    pub fn ingest(&self, vector: Vec<f64>) -> Result<IngestOutcome, ServiceError> {
        if vector.len() != self.corpus.dim() {
            return Err(ServiceError::DimensionMismatch {
                expected: self.corpus.dim(),
                found: vector.len(),
            });
        }
        if vector.iter().any(|v| !v.is_finite()) {
            return Err(ServiceError::InvalidRequest(
                "vector components must be finite".into(),
            ));
        }
        let mut live = self.lock_live();
        let store = live.store.as_mut().ok_or_else(|| {
            ServiceError::Storage("service is memory-only; ingest needs open_durable".into())
        })?;
        let store_id = store.ingest(vector.clone())?;
        match live.overlay.as_mut() {
            Some(overlay) => {
                overlay.insert(vector);
            }
            None => {
                live.overlay = Some(DynamicIndex::with_rebuild_threshold(
                    vec![vector],
                    self.config.overlay_rebuild_threshold,
                ));
            }
        }
        let total = self.base_len + live.overlay.as_ref().map_or(0, |o| o.len());
        debug_assert_eq!(store_id as usize + 1, total, "store and overlay ids agree");
        drop(live);
        self.metrics.record_ingest();
        Ok(IngestOutcome {
            id: store_id as usize,
            total,
        })
    }

    /// Folds the WAL into a sealed segment (compaction) and fsyncs
    /// everything durable.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Storage`] when the service is memory-only or the
    /// fold fails.
    pub fn flush(&self) -> Result<CompactionStats, ServiceError> {
        let mut live = self.lock_live();
        let store = live.store.as_mut().ok_or_else(|| {
            ServiceError::Storage("service is memory-only; flush needs open_durable".into())
        })?;
        let stats = store.compact()?;
        drop(live);
        self.metrics.record_flush();
        Ok(stats)
    }

    /// Resolves corpus vectors by global id (base corpus or live
    /// overlay). Used by a cluster router to materialize feedback
    /// vectors owned by this node before broadcasting them.
    ///
    /// # Errors
    ///
    /// [`ServiceError::InvalidImageId`] for any out-of-range id.
    pub fn vectors_by_id(&self, ids: &[usize]) -> Result<Vec<Vec<f64>>, ServiceError> {
        let live = self.lock_live();
        let total = self.base_len + live.overlay.as_ref().map_or(0, |o| o.len());
        ids.iter()
            .map(|&id| {
                if id >= total {
                    return Err(ServiceError::InvalidImageId {
                        id,
                        corpus_len: total,
                    });
                }
                if id < self.base_len {
                    Ok(self.corpus.point(id).to_vec())
                } else {
                    let overlay = live.overlay.as_ref().ok_or_else(|| {
                        ServiceError::Internal(format!(
                            "id {id} past base corpus {} but no overlay exists",
                            self.base_len
                        ))
                    })?;
                    Ok(overlay.point(id - self.base_len).to_vec())
                }
            })
            .collect()
    }

    /// Serves a replication chunk for a follower catching up from
    /// vector id `from`: up to `max` ingest records, re-encoded as
    /// CRC-framed WAL frames byte-identical to what a local
    /// [`WalWriter`](qcluster_store::WalWriter) would have produced.
    /// Returns `(committed_total, frames)`; an empty `frames` with
    /// `from == committed_total` means the follower is caught up.
    ///
    /// The chunk covers the *whole* corpus (base + overlay), so a
    /// follower can bootstrap from zero over the wire.
    ///
    /// # Errors
    ///
    /// [`ServiceError::InvalidRequest`] when `from` lies beyond this
    /// node's committed total (the requester is ahead — it should not
    /// be fetching from us).
    pub fn replication_chunk(&self, from: u64, max: u32) -> Result<(u64, Vec<u8>), ServiceError> {
        let live = self.lock_live();
        let total = (self.base_len + live.overlay.as_ref().map_or(0, |o| o.len())) as u64;
        if from > total {
            return Err(ServiceError::InvalidRequest(format!(
                "replication fetch from {from} but committed total is {total}"
            )));
        }
        let end = total.min(from.saturating_add(max as u64));
        let mut frames = Vec::new();
        for id in from..end {
            let idx = id as usize;
            let vector = if idx < self.base_len {
                self.corpus.point(idx).to_vec()
            } else {
                let overlay = live.overlay.as_ref().ok_or_else(|| {
                    ServiceError::Internal(format!(
                        "id {id} past base corpus {} but no overlay exists",
                        self.base_len
                    ))
                })?;
                overlay.point(idx - self.base_len).to_vec()
            };
            frames.extend_from_slice(&encode_record_frame(&WalRecord::Ingest { id, vector }));
        }
        Ok((total, frames))
    }

    /// Applies a replication chunk shipped by a leader: the same
    /// idempotent loop store recovery uses. Records with ids below the
    /// local committed total are skipped (duplicate delivery is safe);
    /// the record at exactly the total is ingested durably; a record
    /// beyond it is a gap and fails the whole chunk without applying
    /// anything past it.
    ///
    /// Returns `(committed_total_after, newly_applied)`.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Storage`] for torn/corrupt chunks or WAL-append
    /// failures, [`ServiceError::InvalidRequest`] for gaps or
    /// non-ingest records.
    pub fn apply_replication(&self, frames: &[u8]) -> Result<(u64, u64), ServiceError> {
        let records = decode_record_frames(frames)?;
        let mut applied = 0u64;
        for record in records {
            let WalRecord::Ingest { id, vector } = record else {
                return Err(ServiceError::InvalidRequest(
                    "replication chunk carried a non-ingest record".into(),
                ));
            };
            let total = self.total_vectors() as u64;
            if id < total {
                continue; // Idempotent re-delivery.
            }
            if id > total {
                return Err(ServiceError::InvalidRequest(format!(
                    "replication gap: record id {id} but local total is {total}"
                )));
            }
            self.ingest(vector)?;
            applied += 1;
        }
        Ok((self.total_vectors() as u64, applied))
    }

    /// This node's replication position: `(committed_total, durable)`.
    /// `durable` equals the total when a store backs the service and 0
    /// when it runs memory-only (such a node can serve reads but will
    /// lose everything on restart).
    pub fn replication_status(&self) -> (u64, u64) {
        let total = self.total_vectors() as u64;
        let durable = if self.is_durable() { total } else { 0 };
        (total, durable)
    }

    /// This node's consensus position: `(term, leased)`. `term` is the
    /// highest term it has acknowledged via a vote or a fenced apply
    /// (persisted when durable); `leased` is whether a leader at that
    /// term currently holds an unexpired lease here.
    pub fn consensus_status(&self) -> (u64, bool) {
        let live = self.lock_live();
        let leased = live
            .consensus
            .lease_until
            .is_some_and(|until| until > Instant::now());
        (live.consensus.term, leased)
    }

    /// Considers a vote request from a candidate leader at `term`.
    /// Granted iff `term` is strictly above every term this node has
    /// acknowledged AND neither lease is outstanding: an unexpired
    /// **vote-lease** means another candidate just collected this
    /// node's vote (stops two routers contending over the same node
    /// from both collecting it), and an unexpired **leader lease**
    /// means a live leader renewed its hold recently (a healthy,
    /// actively-shipping leader cannot be deposed; a dead one is
    /// deposable one lease window after its last renewal). A granted
    /// vote durably advances the node's term, so the fence survives a
    /// crash.
    ///
    /// Returns `(granted, current_term)` where `current_term` is the
    /// node's term after considering the request.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Storage`] when persisting the advanced term
    /// fails (the vote is not granted in that case).
    pub fn handle_vote(&self, term: u64, lease_ms: u64) -> Result<(bool, u64), ServiceError> {
        if term == 0 {
            return Err(ServiceError::InvalidRequest(
                "vote term must be positive (0 is the unfenced bootstrap term)".into(),
            ));
        }
        let mut guard = self.lock_live();
        let live = &mut *guard;
        let now = Instant::now();
        let leased = live.consensus.vote_until.is_some_and(|t| t > now)
            || live.consensus.lease_until.is_some_and(|t| t > now);
        if term <= live.consensus.term || leased {
            return Ok((false, live.consensus.term));
        }
        if let Some(store) = live.store.as_mut() {
            store.set_term(term)?;
        }
        live.consensus.term = term;
        live.consensus.vote_until = (lease_ms > 0).then(|| now + Duration::from_millis(lease_ms));
        Ok((true, term))
    }

    /// Fences one replication `Apply` at the shipper's `term`. Returns
    /// `Some(current_term)` when the ship is **stale** (the shipper
    /// lost leadership — it must stop and re-discover) and `None` when
    /// the ship may be applied. A ship at or above this node's term
    /// adopts the term (durably, when advancing) and refreshes the
    /// leader lease by `lease_ms`; `term == 0` is the legacy unfenced
    /// path, accepted only while this node has never seen a fenced
    /// leader (after that, an unfenced shipper is a zombie).
    ///
    /// Failpoint `repl.apply.stale_term` (any armed action) forces the
    /// stale verdict, for fencing-path tests.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Storage`] when persisting an advanced term fails.
    pub fn fence_apply(&self, term: u64, lease_ms: u64) -> Result<Option<u64>, ServiceError> {
        if qcluster_failpoint::active()
            && qcluster_failpoint::evaluate_sleepy("repl.apply.stale_term").is_some()
        {
            return Ok(Some(self.lock_live().consensus.term));
        }
        let mut guard = self.lock_live();
        let live = &mut *guard;
        if term == 0 {
            // Legacy unfenced ship: accepted only while this node has
            // never been fenced. Once any leader won a term here, an
            // unfenced shipper is by definition a zombie.
            return if live.consensus.term == 0 {
                Ok(None)
            } else {
                Ok(Some(live.consensus.term))
            };
        }
        if term < live.consensus.term {
            return Ok(Some(live.consensus.term));
        }
        if term > live.consensus.term {
            if let Some(store) = live.store.as_mut() {
                store.set_term(term)?;
            }
            live.consensus.term = term;
            // A live leader at a newer term supersedes any vote-lease.
            live.consensus.vote_until = None;
        }
        if lease_ms > 0 {
            live.consensus.lease_until = Some(Instant::now() + Duration::from_millis(lease_ms));
        }
        Ok(None)
    }

    /// A point-in-time snapshot of every service metric, with storage
    /// and overlay gauges sampled live.
    pub fn stats(&self) -> MetricsSnapshot {
        let storage = {
            let live = self.lock_live();
            let mut g = StorageGauges::default();
            if let Some(store) = live.store.as_ref() {
                let s = store.stats();
                g.wal_appends = s.wal_appends;
                g.wal_fsyncs = s.wal_fsyncs;
                g.segments = s.segments;
                g.segment_vectors = s.segment_vectors;
                g.wal_vectors = s.wal_vectors;
            }
            if let Some(overlay) = live.overlay.as_ref() {
                let d = overlay.stats();
                g.index_rebuilds = d.rebuilds as u64;
                g.index_buffered = d.buffered as u64;
            }
            g
        };
        let faults = self.executor.fault_stats();
        self.metrics.snapshot(
            self.registry.len() as u64,
            storage,
            faults.breaker_trips,
            faults.workers_respawned,
            self.executor.shard_latency(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blob_corpus(n_per: usize) -> Vec<Vec<f64>> {
        // Two well-separated blobs; ids < n_per are blob A.
        (0..n_per)
            .map(|i| {
                let a = i as f64 * 0.7;
                vec![a.cos() * 0.5, a.sin() * 0.5]
            })
            .chain((0..n_per).map(|i| {
                let a = i as f64 * 0.9;
                vec![10.0 + a.cos() * 0.5, 10.0 + a.sin() * 0.5]
            }))
            .collect()
    }

    fn small_service() -> Service {
        Service::new(
            &two_blob_corpus(24),
            ServiceConfig {
                num_shards: 3,
                num_workers: 2,
                ..ServiceConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn full_session_lifecycle_end_to_end() {
        let svc = small_service();
        let id = svc.create_session().unwrap();

        // Round 0: example-image query near blob A.
        let initial = svc.query_vector(id, vec![0.4, 0.1], 8).unwrap();
        assert_eq!(initial.neighbors.len(), 8);
        assert!(initial.neighbors.iter().all(|n| n.id < 24), "blob A only");

        // Mark some blob-A images relevant, then re-query refined.
        let marked: Vec<usize> = initial.neighbors.iter().take(5).map(|n| n.id).collect();
        let fed = svc.feed_ids(id, &marked, None).unwrap();
        assert_eq!(fed.iteration, 1);
        assert!(fed.clusters.unwrap() >= 1);

        let refined = svc.query(id, 8).unwrap();
        assert_eq!(refined.neighbors.len(), 8);
        assert!(refined.neighbors.iter().all(|n| n.id < 24));
        // Refined rounds reuse the session's node buffer.
        assert!(refined.stats.cache_hits > 0);

        svc.close_session(id).unwrap();
        assert!(svc.query(id, 3).is_err());

        let stats = svc.stats();
        assert_eq!(stats.sessions_created, 1);
        assert_eq!(stats.sessions_closed, 1);
        assert_eq!(stats.active_sessions, 0);
        assert_eq!(stats.query.count, 2);
        assert_eq!(stats.feed.count, 1);
        assert!(stats.cache_hit_ratio > 0.0);
    }

    #[test]
    fn quantized_service_matches_exact_and_reports_gauges() {
        let points = two_blob_corpus(40);
        let exact = Service::new(
            &points,
            ServiceConfig {
                num_shards: 3,
                num_workers: 2,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        let quant = Service::new(
            &points,
            ServiceConfig {
                num_shards: 3,
                num_workers: 2,
                shard_kind: crate::shard::ShardKind::Quantized,
                ..ServiceConfig::default()
            },
        )
        .unwrap();

        let e = exact.create_session().unwrap();
        let q = quant.create_session().unwrap();

        // Initial vector query and a refined disjunctive round must both be
        // bit-for-bit identical to the exact service.
        let ve = exact.query_vector(e, vec![0.4, 0.1], 9).unwrap();
        let vq = quant.query_vector(q, vec![0.4, 0.1], 9).unwrap();
        assert_eq!(ve.neighbors, vq.neighbors);

        let marked: Vec<usize> = ve.neighbors.iter().take(5).map(|n| n.id).collect();
        exact.feed_ids(e, &marked, None).unwrap();
        quant.feed_ids(q, &marked, None).unwrap();
        let re = exact.query(e, 9).unwrap();
        let rq = quant.query(q, 9).unwrap();
        assert_eq!(re.neighbors, rq.neighbors);

        let stats = quant.stats();
        assert!(stats.quant.phase1_points > 0, "phase 1 should have run");
        assert!(stats.quant.reranked > 0, "phase 2 should have reranked");
        assert_eq!(stats.quant.plan_misses, 0, "diagonal queries plan cleanly");
        let exact_stats = exact.stats();
        assert_eq!(exact_stats.quant.phase1_points, 0);
    }

    #[test]
    fn error_paths_are_structured() {
        let svc = small_service();
        assert!(matches!(
            svc.query(999, 5),
            Err(ServiceError::UnknownSession(999))
        ));
        let id = svc.create_session().unwrap();
        assert!(matches!(svc.query(id, 5), Err(ServiceError::Engine(_)),));
        assert!(matches!(
            svc.feed(id, &[]),
            Err(ServiceError::EmptyFeedback)
        ));
        assert!(matches!(
            svc.query_vector(id, vec![1.0, 2.0, 3.0], 5),
            Err(ServiceError::DimensionMismatch {
                expected: 2,
                found: 3
            })
        ));
        assert!(matches!(
            svc.feed_ids(id, &[99999], None),
            Err(ServiceError::InvalidImageId { id: 99999, .. })
        ));
        assert!(matches!(
            svc.feed_ids(id, &[0, 1], Some(&[1.0])),
            Err(ServiceError::InvalidRequest(_))
        ));
        assert!(matches!(
            svc.query_vector(id, vec![0.0, 0.0], 0),
            Err(ServiceError::InvalidRequest(_))
        ));
    }

    #[test]
    fn named_engines_and_unknown_names() {
        let svc = small_service();
        let q = svc.create_session_named("qcluster").unwrap();
        let m = svc.create_session_named("qpm").unwrap();
        assert!(svc.create_session_named("falcon9").is_err());
        svc.feed_ids(q, &[0, 1, 2], None).unwrap();
        svc.feed_ids(m, &[0, 1, 2], None).unwrap();
        assert!(svc.query(q, 4).is_ok());
        assert!(svc.query(m, 4).is_ok());
    }

    #[test]
    fn graded_scores_flow_through() {
        let svc = small_service();
        let id = svc.create_session().unwrap();
        let out = svc
            .feed_ids(id, &[0, 1, 2], Some(&[3.0, 2.0, 1.0]))
            .unwrap();
        assert_eq!(out.iteration, 1);
        assert!(
            svc.feed_ids(id, &[3], Some(&[0.0])).is_err(),
            "non-positive score rejected"
        );
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("qsvc_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn durable_config() -> ServiceConfig {
        ServiceConfig {
            num_shards: 2,
            num_workers: 2,
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn memory_only_service_rejects_ingest_and_flush() {
        let svc = small_service();
        assert!(!svc.is_durable());
        assert!(matches!(
            svc.ingest(vec![0.0, 0.0]),
            Err(ServiceError::Storage(_))
        ));
        assert!(matches!(svc.flush(), Err(ServiceError::Storage(_))));
    }

    #[test]
    fn ingested_vectors_are_queryable_and_feedable() {
        let dir = tmp_dir("live_ingest");
        let seed = two_blob_corpus(16);
        let svc =
            Service::open_durable(&dir, &seed, durable_config(), StoreConfig::default()).unwrap();
        assert!(svc.is_durable());
        assert_eq!(svc.total_vectors(), 32);

        // A third blob, ingested live.
        let mut ids = Vec::new();
        for i in 0..6 {
            let a = i as f64 * 0.8;
            let out = svc
                .ingest(vec![-10.0 + a.cos() * 0.3, -10.0 + a.sin() * 0.3])
                .unwrap();
            ids.push(out.id);
        }
        assert_eq!(ids, vec![32, 33, 34, 35, 36, 37]);
        assert_eq!(svc.total_vectors(), 38);

        let session = svc.create_session().unwrap();
        let near = svc.query_vector(session, vec![-10.0, -10.0], 6).unwrap();
        let got: Vec<usize> = near.neighbors.iter().map(|n| n.id).collect();
        assert_eq!(got.len(), 6);
        assert!(got.iter().all(|&id| id >= 32), "live blob wins: {got:?}");

        // Overlay ids are feedable (their vectors come from the overlay).
        svc.feed_ids(session, &got, None).unwrap();
        let refined = svc.query(session, 6).unwrap();
        assert!(refined.neighbors.iter().all(|n| n.id >= 32));

        // Out-of-range uses the *total* corpus length.
        assert!(matches!(
            svc.feed_ids(session, &[38], None),
            Err(ServiceError::InvalidImageId {
                id: 38,
                corpus_len: 38
            })
        ));

        let stats = svc.stats();
        assert_eq!(stats.ingests, 6);
        assert_eq!(stats.storage.wal_vectors, 6);
        assert!(stats.storage.wal_appends >= 6);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restart_recovers_identical_topk_and_sessions() {
        let dir = tmp_dir("restart");
        let seed = two_blob_corpus(12);
        let probe = vec![-5.0, -5.0];
        let (pre_crash, session_id) = {
            let svc = Service::open_durable(&dir, &seed, durable_config(), StoreConfig::default())
                .unwrap();
            for i in 0..9 {
                let a = i as f64 * 1.1;
                svc.ingest(vec![-5.0 + a.cos(), -5.0 + a.sin()]).unwrap();
            }
            svc.flush().unwrap(); // seal some, then ingest more into the WAL
            for i in 0..5 {
                let a = i as f64 * 0.6;
                svc.ingest(vec![-5.0 + a.sin() * 2.0, -5.0 + a.cos() * 2.0])
                    .unwrap();
            }
            let session = svc.create_session().unwrap();
            svc.feed_ids(session, &[24, 25, 26], None).unwrap();
            let s = svc.create_session_named("qpm").unwrap();
            svc.close_session(s).unwrap();
            let out = svc.query_vector(session, probe.clone(), 10).unwrap();
            (out.neighbors, session)
            // Drop = crash: nothing beyond the WAL survives the process.
        };

        let svc =
            Service::open_durable(&dir, &[], durable_config(), StoreConfig::default()).unwrap();
        assert_eq!(svc.total_vectors(), 38);
        assert_eq!(svc.active_sessions(), 1, "closed session stays closed");
        let handle_feeds = {
            let out = svc.query_vector(session_id, probe.clone(), 10).unwrap();
            assert_eq!(out.neighbors.len(), pre_crash.len());
            for (a, b) in out.neighbors.iter().zip(pre_crash.iter()) {
                assert_eq!(a.id, b.id, "recovered top-k must match pre-crash");
                assert!((a.distance - b.distance).abs() < 1e-12);
            }
            // Feed numbering continues from the recovered snapshot.
            svc.feed_ids(session_id, &[24, 25], None).unwrap().iteration
        };
        assert_eq!(handle_feeds, 2);
        assert_eq!(svc.stats().recoveries, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restart_with_torn_wal_tail_drops_only_the_torn_record() {
        let dir = tmp_dir("torn_tail");
        let seed = two_blob_corpus(10);
        let committed = {
            let svc = Service::open_durable(&dir, &seed, durable_config(), StoreConfig::default())
                .unwrap();
            for i in 0..4 {
                svc.ingest(vec![50.0 + i as f64, 50.0]).unwrap();
            }
            svc.total_vectors()
        };
        // Tear the last WAL record mid-frame.
        let wal = dir.join("wal.log");
        let len = std::fs::metadata(&wal).unwrap().len();
        let file = std::fs::OpenOptions::new().write(true).open(&wal).unwrap();
        file.set_len(len - 7).unwrap();
        drop(file);

        let svc =
            Service::open_durable(&dir, &[], durable_config(), StoreConfig::default()).unwrap();
        assert_eq!(
            svc.total_vectors(),
            committed - 1,
            "only the torn record is lost"
        );
        let session = svc.create_session().unwrap();
        let out = svc.query_vector(session, vec![50.0, 50.0], 3).unwrap();
        assert!(out.neighbors.iter().all(|n| n.id >= 20 && n.id < 23));
        // The store stays writable after healing the tail.
        assert_eq!(svc.ingest(vec![50.0, 51.0]).unwrap().id, committed - 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn durable_open_with_no_seed_and_no_state_is_invalid() {
        let dir = tmp_dir("empty_open");
        assert!(matches!(
            Service::open_durable(&dir, &[], durable_config(), StoreConfig::default()),
            Err(ServiceError::InvalidRequest(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn plan_cache_hits_between_feeds_and_invalidates_on_feed() {
        let svc = small_service();
        let id = svc.create_session().unwrap();
        svc.feed_ids(id, &[0, 1, 2], None).unwrap();

        // First refined query compiles; repeats reuse the cached plan.
        let first = svc.query(id, 5).unwrap();
        let second = svc.query(id, 5).unwrap();
        let third = svc.query(id, 5).unwrap();
        assert_eq!(first.neighbors, second.neighbors);
        assert_eq!(first.neighbors, third.neighbors);
        let s = svc.stats();
        assert_eq!(s.plan_cache_misses, 1);
        assert_eq!(s.plan_cache_hits, 2);

        // Feedback bumps the engine version: next query recompiles.
        svc.feed_ids(id, &[3, 4], None).unwrap();
        svc.query(id, 5).unwrap();
        svc.query(id, 5).unwrap();
        let s = svc.stats();
        assert_eq!(s.plan_cache_misses, 2);
        assert_eq!(s.plan_cache_hits, 3);
    }

    #[test]
    fn unversioned_engine_always_misses_plan_cache() {
        let svc = small_service();
        let id = svc.create_session_named("qpm").unwrap();
        svc.feed_ids(id, &[0, 1, 2], None).unwrap();
        svc.query(id, 4).unwrap();
        svc.query(id, 4).unwrap();
        let s = svc.stats();
        assert_eq!(s.plan_cache_hits, 0);
        assert_eq!(s.plan_cache_misses, 2);
    }

    #[test]
    fn capacity_eviction_shows_in_metrics() {
        let svc = Service::new(
            &two_blob_corpus(8),
            ServiceConfig {
                num_shards: 2,
                num_workers: 1,
                max_sessions: 2,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        let a = svc.create_session().unwrap();
        let _b = svc.create_session().unwrap();
        let _c = svc.create_session().unwrap(); // evicts `a`
        assert_eq!(svc.active_sessions(), 2);
        assert!(svc.query_vector(a, vec![0.0, 0.0], 1).is_err());
        let stats = svc.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.sessions_created, 3);
    }
}
