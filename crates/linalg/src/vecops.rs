//! Allocation-free vector kernels used on the retrieval hot path.
//!
//! Distance evaluation dominates Qcluster's query cost: every k-NN search
//! evaluates the disjunctive distance (paper Eq. 5) against every candidate
//! feature vector. These helpers therefore take plain slices, never allocate,
//! and are `#[inline]` so the caller's loop can fuse them.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics when the slice lengths differ.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm.
#[inline]
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Squared Euclidean distance between two points.
///
/// # Panics
///
/// Panics when the slice lengths differ.
#[inline]
pub fn sq_euclidean(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "sq_euclidean length mismatch");
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Weighted squared Euclidean distance `Σ w_i (a_i − b_i)²`.
///
/// This is the quadratic form `(a−b)ᵀ D (a−b)` for a diagonal matrix `D`,
/// i.e. the paper's diagonal-covariance scheme for `d²` (Eq. 1).
///
/// # Panics
///
/// Panics when the slice lengths differ.
#[inline]
pub fn weighted_sq_euclidean(a: &[f64], b: &[f64], w: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "weighted_sq_euclidean length mismatch");
    assert_eq!(a.len(), w.len(), "weight length mismatch");
    let mut acc = 0.0;
    for i in 0..a.len() {
        let d = a[i] - b[i];
        acc += w[i] * d * d;
    }
    acc
}

/// Full quadratic form `(x−c)ᵀ M (x−c)` for a dense row-major `p × p`
/// matrix `M` stored flat in `m`.
///
/// This is the generalized Euclidean distance of MindReader and the paper's
/// `d²` (Eq. 1) with a full inverse covariance. `scratch` must have length
/// `p` and is used to hold `x − c` without allocating.
///
/// # Panics
///
/// Panics when any length disagrees with `p = x.len()`.
#[inline]
pub fn quadratic_form(x: &[f64], c: &[f64], m: &[f64], scratch: &mut [f64]) -> f64 {
    let p = x.len();
    assert_eq!(c.len(), p, "center length mismatch");
    assert_eq!(scratch.len(), p, "scratch length mismatch");
    assert_eq!(m.len(), p * p, "matrix length mismatch");
    for i in 0..p {
        scratch[i] = x[i] - c[i];
    }
    let mut acc = 0.0;
    for i in 0..p {
        let di = scratch[i];
        if di == 0.0 {
            continue;
        }
        let row = &m[i * p..(i + 1) * p];
        let mut inner = 0.0;
        for j in 0..p {
            inner += row[j] * scratch[j];
        }
        acc += di * inner;
    }
    acc
}

/// Element-wise `a − b` into a fresh vector.
///
/// # Panics
///
/// Panics when the slice lengths differ.
#[inline]
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x - y).collect()
}

/// Element-wise `a + b` into a fresh vector.
///
/// # Panics
///
/// Panics when the slice lengths differ.
#[inline]
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "add length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x + y).collect()
}

/// `a * s` into a fresh vector.
#[inline]
pub fn scale(a: &[f64], s: f64) -> Vec<f64> {
    a.iter().map(|x| x * s).collect()
}

/// In-place `a += b * s`.
///
/// # Panics
///
/// Panics when the slice lengths differ.
#[inline]
pub fn axpy(a: &mut [f64], b: &[f64], s: f64) {
    assert_eq!(a.len(), b.len(), "axpy length mismatch");
    for (x, &y) in a.iter_mut().zip(b.iter()) {
        *x += y * s;
    }
}

/// Arithmetic mean of a set of equal-length points, one slice per point.
///
/// Returns `None` for an empty input.
pub fn mean(points: &[&[f64]]) -> Option<Vec<f64>> {
    let first = points.first()?;
    let mut acc = vec![0.0; first.len()];
    for p in points {
        axpy(&mut acc, p, 1.0);
    }
    let inv = 1.0 / points.len() as f64;
    for v in &mut acc {
        *v *= inv;
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn squared_distances() {
        assert_eq!(sq_euclidean(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(
            weighted_sq_euclidean(&[0.0, 0.0], &[1.0, 2.0], &[2.0, 0.5]),
            2.0 + 2.0
        );
    }

    #[test]
    fn quadratic_form_identity_matches_euclidean() {
        let x = [1.0, 2.0, 3.0];
        let c = [0.0, 1.0, -1.0];
        let id = [1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0];
        let mut scratch = [0.0; 3];
        let q = quadratic_form(&x, &c, &id, &mut scratch);
        assert!((q - sq_euclidean(&x, &c)).abs() < 1e-12);
    }

    #[test]
    fn quadratic_form_dense() {
        // M = [[2,1],[1,3]], d = (1,1): q = 2+1+1+3 = 7
        let m = [2.0, 1.0, 1.0, 3.0];
        let mut scratch = [0.0; 2];
        let q = quadratic_form(&[1.0, 1.0], &[0.0, 0.0], &m, &mut scratch);
        assert!((q - 7.0).abs() < 1e-12);
    }

    #[test]
    fn elementwise_helpers() {
        assert_eq!(sub(&[3.0, 2.0], &[1.0, 1.0]), vec![2.0, 1.0]);
        assert_eq!(add(&[3.0, 2.0], &[1.0, 1.0]), vec![4.0, 3.0]);
        assert_eq!(scale(&[3.0, 2.0], 2.0), vec![6.0, 4.0]);
        let mut a = vec![1.0, 1.0];
        axpy(&mut a, &[1.0, 2.0], 2.0);
        assert_eq!(a, vec![3.0, 5.0]);
    }

    #[test]
    fn mean_of_points() {
        let p1 = [0.0, 0.0];
        let p2 = [2.0, 4.0];
        let m = mean(&[&p1, &p2]).unwrap();
        assert_eq!(m, vec![1.0, 2.0]);
        assert!(mean(&[]).is_none());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }
}
