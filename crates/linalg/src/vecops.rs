//! Allocation-free vector kernels used on the retrieval hot path.
//!
//! Distance evaluation dominates Qcluster's query cost: every k-NN search
//! evaluates the disjunctive distance (paper Eq. 5) against every candidate
//! feature vector. These helpers therefore take plain slices, never allocate,
//! and are `#[inline]` so the caller's loop can fuse them.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics when the slice lengths differ.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm.
#[inline]
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Squared Euclidean distance between two points.
///
/// # Panics
///
/// Panics when the slice lengths differ.
#[inline]
pub fn sq_euclidean(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "sq_euclidean length mismatch");
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Weighted squared Euclidean distance `Σ w_i (a_i − b_i)²`.
///
/// This is the quadratic form `(a−b)ᵀ D (a−b)` for a diagonal matrix `D`,
/// i.e. the paper's diagonal-covariance scheme for `d²` (Eq. 1).
///
/// # Panics
///
/// Panics when the slice lengths differ.
#[inline]
pub fn weighted_sq_euclidean(a: &[f64], b: &[f64], w: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "weighted_sq_euclidean length mismatch");
    assert_eq!(a.len(), w.len(), "weight length mismatch");
    let mut acc = 0.0;
    for i in 0..a.len() {
        let d = a[i] - b[i];
        acc += w[i] * d * d;
    }
    acc
}

/// Full quadratic form `(x−c)ᵀ M (x−c)` for a dense row-major `p × p`
/// matrix `M` stored flat in `m`.
///
/// This is the generalized Euclidean distance of MindReader and the paper's
/// `d²` (Eq. 1) with a full inverse covariance. `scratch` must have length
/// `p` and is used to hold `x − c` without allocating.
///
/// # Panics
///
/// Panics when any length disagrees with `p = x.len()`.
#[inline]
pub fn quadratic_form(x: &[f64], c: &[f64], m: &[f64], scratch: &mut [f64]) -> f64 {
    let p = x.len();
    assert_eq!(c.len(), p, "center length mismatch");
    assert_eq!(scratch.len(), p, "scratch length mismatch");
    assert_eq!(m.len(), p * p, "matrix length mismatch");
    for i in 0..p {
        scratch[i] = x[i] - c[i];
    }
    let mut acc = 0.0;
    for i in 0..p {
        let di = scratch[i];
        if di == 0.0 {
            continue;
        }
        let row = &m[i * p..(i + 1) * p];
        let mut inner = 0.0;
        for j in 0..p {
            inner += row[j] * scratch[j];
        }
        acc += di * inner;
    }
    acc
}

/// Expanded-form weighted quadratic `Σ (w_j·x_j)·x_j − 2·Σ wc_j·x_j + c0`.
///
/// With `wc_j = w_j·c_j` and `c0 = Σ wc_j·c_j` this equals the diagonal
/// quadratic form `Σ w_j (x_j − c_j)²` algebraically, but needs no
/// per-point subtraction against the center. The per-dimension
/// accumulation order here is the contract the batch kernel below
/// reproduces exactly, so batch and scalar evaluation agree bit-for-bit.
///
/// # Panics
///
/// Panics when the slice lengths differ.
#[inline]
pub fn expanded_weighted_sq(x: &[f64], w: &[f64], wc: &[f64], c0: f64) -> f64 {
    assert_eq!(x.len(), w.len(), "expanded_weighted_sq length mismatch");
    assert_eq!(x.len(), wc.len(), "expanded_weighted_sq length mismatch");
    let mut sq = 0.0;
    let mut lin = 0.0;
    for j in 0..x.len() {
        let xj = x[j];
        sq += (w[j] * xj) * xj;
        lin += wc[j] * xj;
    }
    sq - 2.0 * lin + c0
}

/// [`expanded_weighted_sq`] over a contiguous block of `out.len()` points
/// stored row-major in `block` (`block.len() == out.len() * dim`).
///
/// Unrolled 4-wide **across points**: each point keeps its own accumulator
/// pair, fed in the same per-dimension order as the scalar kernel, so the
/// results are bit-for-bit identical to calling [`expanded_weighted_sq`]
/// per point while the independent chains give the FP units the
/// instruction-level parallelism a single serial sum cannot.
///
/// # Panics
///
/// Panics when `block.len() != out.len() * dim` or weight lengths differ
/// from `dim`.
pub fn expanded_weighted_sq_batch(
    block: &[f64],
    dim: usize,
    w: &[f64],
    wc: &[f64],
    c0: f64,
    out: &mut [f64],
) {
    assert!(dim > 0, "dim must be positive");
    assert_eq!(w.len(), dim, "weight length mismatch");
    assert_eq!(wc.len(), dim, "weighted-center length mismatch");
    assert_eq!(block.len(), out.len() * dim, "block/out length mismatch");
    let n = out.len();
    let mut p = 0;
    while p + 4 <= n {
        let base = p * dim;
        let x0 = &block[base..base + dim];
        let x1 = &block[base + dim..base + 2 * dim];
        let x2 = &block[base + 2 * dim..base + 3 * dim];
        let x3 = &block[base + 3 * dim..base + 4 * dim];
        let (mut sq0, mut sq1, mut sq2, mut sq3) = (0.0, 0.0, 0.0, 0.0);
        let (mut l0, mut l1, mut l2, mut l3) = (0.0, 0.0, 0.0, 0.0);
        for j in 0..dim {
            let wj = w[j];
            let wcj = wc[j];
            sq0 += (wj * x0[j]) * x0[j];
            l0 += wcj * x0[j];
            sq1 += (wj * x1[j]) * x1[j];
            l1 += wcj * x1[j];
            sq2 += (wj * x2[j]) * x2[j];
            l2 += wcj * x2[j];
            sq3 += (wj * x3[j]) * x3[j];
            l3 += wcj * x3[j];
        }
        out[p] = sq0 - 2.0 * l0 + c0;
        out[p + 1] = sq1 - 2.0 * l1 + c0;
        out[p + 2] = sq2 - 2.0 * l2 + c0;
        out[p + 3] = sq3 - 2.0 * l3 + c0;
        p += 4;
    }
    while p < n {
        out[p] = expanded_weighted_sq(&block[p * dim..(p + 1) * dim], w, wc, c0);
        p += 1;
    }
}

/// Lane width of the transposed evaluation tile: eight `f64` points, one
/// AVX-512 vector (or a ymm pair) per lane-wise statement.
pub const TILE_LANES: usize = 8;

/// Transposes up to [`TILE_LANES`] row-major points into a column-major
/// tile: `tile[j * TILE_LANES + l] = rows[l * dim + j]`. Lanes past the
/// supplied rows are zeroed.
///
/// The tile (`dim * TILE_LANES` elements, ~1.5 KiB at 24 dimensions)
/// stays resident in L1 while every component of a compiled query is
/// evaluated against it, so the transpose is a short burst of in-cache
/// moves rather than a strided pass over a whole block — a full-block
/// column-major layout puts columns kilobytes apart and loses more to
/// cache-set conflicts than it gains from unit-stride loads.
///
/// # Panics
///
/// Panics when `dim == 0`, `rows.len()` is not a multiple of `dim` or
/// holds more than [`TILE_LANES`] points, or
/// `tile.len() != dim * TILE_LANES`.
pub fn transpose_tile(rows: &[f64], dim: usize, tile: &mut [f64]) {
    assert!(dim > 0, "dim must be positive");
    assert_eq!(rows.len() % dim, 0, "rows length not a multiple of dim");
    let pn = rows.len() / dim;
    assert!(pn <= TILE_LANES, "too many points for one tile");
    assert_eq!(tile.len(), dim * TILE_LANES, "tile length mismatch");
    if pn < TILE_LANES {
        tile.fill(0.0);
    }
    for (l, row) in rows.chunks_exact(dim).enumerate() {
        for j in 0..dim {
            tile[j * TILE_LANES + l] = row[j];
        }
    }
}

/// [`expanded_weighted_sq`] over one column-major tile (see
/// [`transpose_tile`]), bit-for-bit identical to the scalar kernel per
/// lane.
///
/// Keeps all accumulators in registers across the dimension loop and
/// reads one unit-stride eight-lane column slice per dimension; the
/// single-purpose lane loops are clean elementwise patterns the SLP
/// vectorizer turns into whole-vector ops. Each lane accumulates its
/// `sq`/`lin` terms in ascending-`j` order (the scalar contract), so
/// vectorizing across lanes changes no result bits. Zero-padded lanes
/// evaluate to `c0`, the squared distance of the origin.
///
/// # Panics
///
/// Panics when `dim == 0` or any length disagrees.
pub fn expanded_weighted_sq_tile(
    tile: &[f64],
    w: &[f64],
    wc: &[f64],
    c0: f64,
) -> [f64; TILE_LANES] {
    let dim = w.len();
    assert!(dim > 0, "dim must be positive");
    assert_eq!(wc.len(), dim, "weighted-center length mismatch");
    assert_eq!(tile.len(), dim * TILE_LANES, "tile length mismatch");
    let mut sq = [0.0f64; TILE_LANES];
    let mut li = [0.0f64; TILE_LANES];
    for j in 0..dim {
        let col = &tile[j * TILE_LANES..(j + 1) * TILE_LANES];
        let wj = w[j];
        let wcj = wc[j];
        for l in 0..TILE_LANES {
            sq[l] += (wj * col[l]) * col[l];
        }
        for l in 0..TILE_LANES {
            li[l] += wcj * col[l];
        }
    }
    let mut out = [0.0f64; TILE_LANES];
    for l in 0..TILE_LANES {
        out[l] = sq[l] - 2.0 * li[l] + c0;
    }
    out
}

/// Inverse of [`transpose_tile`]: scatters a column-major tile back into
/// row-major points, `rows[l * dim + j] = tile[j * TILE_LANES + l]`.
///
/// Only `rows.len() / dim` lanes are read, so a short final tile
/// round-trips without exposing its zero padding. This is the bridge for
/// consumers that hold tile-native memory (segment format v2) but need a
/// row-major view for a kernel without a tile form.
///
/// # Panics
///
/// Panics when `dim == 0`, `rows.len()` is not a multiple of `dim` or
/// holds more than [`TILE_LANES`] points, or
/// `tile.len() != dim * TILE_LANES`.
pub fn untranspose_tile(tile: &[f64], dim: usize, rows: &mut [f64]) {
    assert!(dim > 0, "dim must be positive");
    assert_eq!(rows.len() % dim, 0, "rows length not a multiple of dim");
    let pn = rows.len() / dim;
    assert!(pn <= TILE_LANES, "too many points for one tile");
    assert_eq!(tile.len(), dim * TILE_LANES, "tile length mismatch");
    for (l, row) in rows.chunks_exact_mut(dim).enumerate() {
        for j in 0..dim {
            row[j] = tile[j * TILE_LANES + l];
        }
    }
}

/// [`sq_euclidean`] against `center` over one column-major tile,
/// bit-for-bit identical to the scalar kernel per lane.
///
/// Each lane subtracts and accumulates in ascending-`j` order exactly as
/// the scalar loop does, so vectorizing across lanes changes no result
/// bits. Zero-padded lanes evaluate to `‖center‖²`.
///
/// # Panics
///
/// Panics when `center.len() == 0` or
/// `tile.len() != center.len() * TILE_LANES`.
pub fn sq_euclidean_tile(tile: &[f64], center: &[f64]) -> [f64; TILE_LANES] {
    let dim = center.len();
    assert!(dim > 0, "dim must be positive");
    assert_eq!(tile.len(), dim * TILE_LANES, "tile length mismatch");
    let mut acc = [0.0f64; TILE_LANES];
    for j in 0..dim {
        let col = &tile[j * TILE_LANES..(j + 1) * TILE_LANES];
        let cj = center[j];
        for l in 0..TILE_LANES {
            let d = col[l] - cj;
            acc[l] += d * d;
        }
    }
    acc
}

/// [`weighted_sq_euclidean`] against `center` over one column-major tile,
/// bit-for-bit identical to the scalar kernel per lane (same
/// ascending-`j` `w·d·d` accumulation).
///
/// # Panics
///
/// Panics when `center.len() == 0` or any length disagrees.
pub fn weighted_sq_euclidean_tile(tile: &[f64], center: &[f64], w: &[f64]) -> [f64; TILE_LANES] {
    let dim = center.len();
    assert!(dim > 0, "dim must be positive");
    assert_eq!(w.len(), dim, "weight length mismatch");
    assert_eq!(tile.len(), dim * TILE_LANES, "tile length mismatch");
    let mut acc = [0.0f64; TILE_LANES];
    for j in 0..dim {
        let col = &tile[j * TILE_LANES..(j + 1) * TILE_LANES];
        let cj = center[j];
        let wj = w[j];
        for l in 0..TILE_LANES {
            let d = col[l] - cj;
            acc[l] += wj * d * d;
        }
    }
    acc
}

/// [`sq_euclidean`] against `center` over a contiguous row-major block.
///
/// Same 4-wide across-points unrolling (and therefore the same bit-for-bit
/// scalar agreement) as [`expanded_weighted_sq_batch`].
///
/// # Panics
///
/// Panics when `block.len() != out.len() * dim` or `center.len() != dim`.
pub fn sq_euclidean_batch(block: &[f64], dim: usize, center: &[f64], out: &mut [f64]) {
    assert!(dim > 0, "dim must be positive");
    assert_eq!(center.len(), dim, "center length mismatch");
    assert_eq!(block.len(), out.len() * dim, "block/out length mismatch");
    let n = out.len();
    let mut p = 0;
    while p + 4 <= n {
        let base = p * dim;
        let x0 = &block[base..base + dim];
        let x1 = &block[base + dim..base + 2 * dim];
        let x2 = &block[base + 2 * dim..base + 3 * dim];
        let x3 = &block[base + 3 * dim..base + 4 * dim];
        let (mut a0, mut a1, mut a2, mut a3) = (0.0, 0.0, 0.0, 0.0);
        for j in 0..dim {
            let cj = center[j];
            let d0 = x0[j] - cj;
            let d1 = x1[j] - cj;
            let d2 = x2[j] - cj;
            let d3 = x3[j] - cj;
            a0 += d0 * d0;
            a1 += d1 * d1;
            a2 += d2 * d2;
            a3 += d3 * d3;
        }
        out[p] = a0;
        out[p + 1] = a1;
        out[p + 2] = a2;
        out[p + 3] = a3;
        p += 4;
    }
    while p < n {
        out[p] = sq_euclidean(&block[p * dim..(p + 1) * dim], center);
        p += 1;
    }
}

/// [`weighted_sq_euclidean`] against `center` over a contiguous row-major
/// block, with the same across-points unrolling contract.
///
/// # Panics
///
/// Panics when `block.len() != out.len() * dim` or `center`/`w` lengths
/// differ from `dim`.
pub fn weighted_sq_euclidean_batch(
    block: &[f64],
    dim: usize,
    center: &[f64],
    w: &[f64],
    out: &mut [f64],
) {
    assert!(dim > 0, "dim must be positive");
    assert_eq!(center.len(), dim, "center length mismatch");
    assert_eq!(w.len(), dim, "weight length mismatch");
    assert_eq!(block.len(), out.len() * dim, "block/out length mismatch");
    let n = out.len();
    let mut p = 0;
    while p + 4 <= n {
        let base = p * dim;
        let x0 = &block[base..base + dim];
        let x1 = &block[base + dim..base + 2 * dim];
        let x2 = &block[base + 2 * dim..base + 3 * dim];
        let x3 = &block[base + 3 * dim..base + 4 * dim];
        let (mut a0, mut a1, mut a2, mut a3) = (0.0, 0.0, 0.0, 0.0);
        for j in 0..dim {
            let cj = center[j];
            let wj = w[j];
            let d0 = x0[j] - cj;
            let d1 = x1[j] - cj;
            let d2 = x2[j] - cj;
            let d3 = x3[j] - cj;
            a0 += wj * d0 * d0;
            a1 += wj * d1 * d1;
            a2 += wj * d2 * d2;
            a3 += wj * d3 * d3;
        }
        out[p] = a0;
        out[p + 1] = a1;
        out[p + 2] = a2;
        out[p + 3] = a3;
        p += 4;
    }
    while p < n {
        out[p] = weighted_sq_euclidean(&block[p * dim..(p + 1) * dim], center, w);
        p += 1;
    }
}

/// [`quadratic_form`] over a contiguous row-major block, reusing one
/// `dim`-sized scratch arena for every point instead of borrowing a
/// scratch buffer per call.
///
/// # Panics
///
/// Panics when `block.len() != out.len() * dim` or `c`/`scratch`/`m`
/// lengths disagree with `dim`.
pub fn quadratic_form_batch(
    block: &[f64],
    dim: usize,
    c: &[f64],
    m: &[f64],
    scratch: &mut [f64],
    out: &mut [f64],
) {
    assert!(dim > 0, "dim must be positive");
    assert_eq!(block.len(), out.len() * dim, "block/out length mismatch");
    for (p, o) in out.iter_mut().enumerate() {
        *o = quadratic_form(&block[p * dim..(p + 1) * dim], c, m, scratch);
    }
}

/// Element-wise `a − b` into a fresh vector.
///
/// # Panics
///
/// Panics when the slice lengths differ.
#[inline]
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x - y).collect()
}

/// Element-wise `a + b` into a fresh vector.
///
/// # Panics
///
/// Panics when the slice lengths differ.
#[inline]
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "add length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x + y).collect()
}

/// `a * s` into a fresh vector.
#[inline]
pub fn scale(a: &[f64], s: f64) -> Vec<f64> {
    a.iter().map(|x| x * s).collect()
}

/// In-place `a += b * s`.
///
/// # Panics
///
/// Panics when the slice lengths differ.
#[inline]
pub fn axpy(a: &mut [f64], b: &[f64], s: f64) {
    assert_eq!(a.len(), b.len(), "axpy length mismatch");
    for (x, &y) in a.iter_mut().zip(b.iter()) {
        *x += y * s;
    }
}

/// Arithmetic mean of a set of equal-length points, one slice per point.
///
/// Returns `None` for an empty input.
pub fn mean(points: &[&[f64]]) -> Option<Vec<f64>> {
    let first = points.first()?;
    let mut acc = vec![0.0; first.len()];
    for p in points {
        axpy(&mut acc, p, 1.0);
    }
    let inv = 1.0 / points.len() as f64;
    for v in &mut acc {
        *v *= inv;
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn squared_distances() {
        assert_eq!(sq_euclidean(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(
            weighted_sq_euclidean(&[0.0, 0.0], &[1.0, 2.0], &[2.0, 0.5]),
            2.0 + 2.0
        );
    }

    #[test]
    fn quadratic_form_identity_matches_euclidean() {
        let x = [1.0, 2.0, 3.0];
        let c = [0.0, 1.0, -1.0];
        let id = [1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0];
        let mut scratch = [0.0; 3];
        let q = quadratic_form(&x, &c, &id, &mut scratch);
        assert!((q - sq_euclidean(&x, &c)).abs() < 1e-12);
    }

    #[test]
    fn quadratic_form_dense() {
        // M = [[2,1],[1,3]], d = (1,1): q = 2+1+1+3 = 7
        let m = [2.0, 1.0, 1.0, 3.0];
        let mut scratch = [0.0; 2];
        let q = quadratic_form(&[1.0, 1.0], &[0.0, 0.0], &m, &mut scratch);
        assert!((q - 7.0).abs() < 1e-12);
    }

    #[test]
    fn elementwise_helpers() {
        assert_eq!(sub(&[3.0, 2.0], &[1.0, 1.0]), vec![2.0, 1.0]);
        assert_eq!(add(&[3.0, 2.0], &[1.0, 1.0]), vec![4.0, 3.0]);
        assert_eq!(scale(&[3.0, 2.0], 2.0), vec![6.0, 4.0]);
        let mut a = vec![1.0, 1.0];
        axpy(&mut a, &[1.0, 2.0], 2.0);
        assert_eq!(a, vec![3.0, 5.0]);
    }

    #[test]
    fn mean_of_points() {
        let p1 = [0.0, 0.0];
        let p2 = [2.0, 4.0];
        let m = mean(&[&p1, &p2]).unwrap();
        assert_eq!(m, vec![1.0, 2.0]);
        assert!(mean(&[]).is_none());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    /// A deterministic pseudo-random block of `n` points in `dim` dims.
    fn test_block(n: usize, dim: usize) -> Vec<f64> {
        let mut state = 0x9e3779b97f4a7c15u64;
        (0..n * dim)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
            })
            .collect()
    }

    #[test]
    fn expanded_form_matches_difference_form() {
        let dim = 7;
        let c: Vec<f64> = (0..dim).map(|j| 0.3 * j as f64 - 1.0).collect();
        let w: Vec<f64> = (0..dim).map(|j| 0.5 + j as f64).collect();
        let wc: Vec<f64> = w.iter().zip(&c).map(|(&w, &c)| w * c).collect();
        let c0: f64 = wc.iter().zip(&c).map(|(&wc, &c)| wc * c).sum();
        let block = test_block(9, dim);
        for p in 0..9 {
            let x = &block[p * dim..(p + 1) * dim];
            let expanded = expanded_weighted_sq(x, &w, &wc, c0);
            let diff = weighted_sq_euclidean(x, &c, &w);
            assert!((expanded - diff).abs() <= 1e-12 * (1.0 + diff.abs()));
        }
        // At the center the cancellation is exact: C − 2C + C == 0.
        assert_eq!(expanded_weighted_sq(&c, &w, &wc, c0), 0.0);
    }

    #[test]
    fn batch_kernels_match_scalar_bit_for_bit() {
        let dim = 5;
        let c: Vec<f64> = (0..dim).map(|j| (j as f64).sin()).collect();
        let w: Vec<f64> = (0..dim).map(|j| 0.25 + (j as f64).cos().abs()).collect();
        let wc: Vec<f64> = w.iter().zip(&c).map(|(&w, &c)| w * c).collect();
        let c0: f64 = wc.iter().zip(&c).map(|(&wc, &c)| wc * c).sum();
        // Sizes straddling the 4-wide unroll boundary.
        for n in [1usize, 3, 4, 7, 8, 13] {
            let block = test_block(n, dim);
            let mut out = vec![0.0; n];

            expanded_weighted_sq_batch(&block, dim, &w, &wc, c0, &mut out);
            for p in 0..n {
                let x = &block[p * dim..(p + 1) * dim];
                assert_eq!(out[p], expanded_weighted_sq(x, &w, &wc, c0));
            }

            sq_euclidean_batch(&block, dim, &c, &mut out);
            for p in 0..n {
                let x = &block[p * dim..(p + 1) * dim];
                assert_eq!(out[p], sq_euclidean(x, &c));
            }

            weighted_sq_euclidean_batch(&block, dim, &c, &w, &mut out);
            for p in 0..n {
                let x = &block[p * dim..(p + 1) * dim];
                assert_eq!(out[p], weighted_sq_euclidean(x, &c, &w));
            }

            let mut tile = vec![f64::NAN; dim * TILE_LANES];
            let mut p0 = 0;
            while p0 < n {
                let pn = TILE_LANES.min(n - p0);
                transpose_tile(&block[p0 * dim..(p0 + pn) * dim], dim, &mut tile);
                let d8 = expanded_weighted_sq_tile(&tile, &w, &wc, c0);
                for (l, &got) in d8.iter().take(pn).enumerate() {
                    let x = &block[(p0 + l) * dim..(p0 + l + 1) * dim];
                    assert_eq!(got, expanded_weighted_sq(x, &w, &wc, c0));
                }
                p0 += TILE_LANES;
            }
        }
    }

    #[test]
    fn transpose_tile_round_trips_and_zeroes_missing_lanes() {
        let dim = 3;
        let block = test_block(5, dim);
        let mut tile = vec![f64::NAN; dim * TILE_LANES];
        transpose_tile(&block, dim, &mut tile);
        for p in 0..5 {
            for j in 0..dim {
                assert_eq!(tile[j * TILE_LANES + p], block[p * dim + j]);
            }
        }
        // Missing lanes are zeroed so partial tiles can be evaluated.
        for j in 0..dim {
            for l in 5..TILE_LANES {
                assert_eq!(tile[j * TILE_LANES + l], 0.0);
            }
        }
    }

    #[test]
    fn untranspose_tile_inverts_transpose() {
        let dim = 4;
        for pn in [1usize, 3, 8] {
            let block = test_block(pn, dim);
            let mut tile = vec![f64::NAN; dim * TILE_LANES];
            transpose_tile(&block, dim, &mut tile);
            let mut back = vec![f64::NAN; pn * dim];
            untranspose_tile(&tile, dim, &mut back);
            assert_eq!(back, block, "round trip through tile layout");
        }
    }

    #[test]
    fn euclidean_tile_kernels_match_scalar_bit_for_bit() {
        let dim = 6;
        let c: Vec<f64> = (0..dim).map(|j| (j as f64 * 0.7).sin()).collect();
        let w: Vec<f64> = (0..dim).map(|j| 0.1 + (j as f64).cos().abs()).collect();
        for n in [1usize, 5, 8, 13] {
            let block = test_block(n, dim);
            let mut tile = vec![f64::NAN; dim * TILE_LANES];
            let mut p0 = 0;
            while p0 < n {
                let pn = TILE_LANES.min(n - p0);
                transpose_tile(&block[p0 * dim..(p0 + pn) * dim], dim, &mut tile);
                let e8 = sq_euclidean_tile(&tile, &c);
                let w8 = weighted_sq_euclidean_tile(&tile, &c, &w);
                for l in 0..pn {
                    let x = &block[(p0 + l) * dim..(p0 + l + 1) * dim];
                    assert_eq!(e8[l], sq_euclidean(x, &c));
                    assert_eq!(w8[l], weighted_sq_euclidean(x, &c, &w));
                }
                p0 += TILE_LANES;
            }
        }
    }

    #[test]
    fn quadratic_form_batch_matches_scalar() {
        let dim = 3;
        let m = [2.0, 0.5, 0.0, 0.5, 1.0, 0.2, 0.0, 0.2, 3.0];
        let c = [0.1, -0.2, 0.3];
        let block = test_block(6, dim);
        let mut scratch = [0.0; 3];
        let mut out = [0.0; 6];
        quadratic_form_batch(&block, dim, &c, &m, &mut scratch, &mut out);
        for p in 0..6 {
            let x = &block[p * dim..(p + 1) * dim];
            assert_eq!(out[p], quadratic_form(x, &c, &m, &mut scratch));
        }
    }

    #[test]
    #[should_panic(expected = "block/out length mismatch")]
    fn batch_block_length_mismatch_panics() {
        let mut out = [0.0; 2];
        sq_euclidean_batch(&[1.0, 2.0, 3.0], 2, &[0.0, 0.0], &mut out);
    }
}
