//! LU decomposition with partial pivoting.
//!
//! Used for inverting full (non-diagonal) covariance matrices in the
//! paper's "inverse matrix scheme" (MindReader-style `d²`, Eq. 1) and for
//! the determinants that appear in the Bayesian classification function.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// An LU factorization `P·A = L·U` of a square matrix.
///
/// `L` is unit lower triangular, `U` upper triangular, and `P` a row
/// permutation recorded in `perm`. Both factors are stored packed in one
/// matrix (the unit diagonal of `L` is implicit).
#[derive(Debug, Clone)]
pub struct Lu {
    lu: Matrix,
    perm: Vec<usize>,
    /// +1.0 or −1.0 depending on the parity of the permutation.
    sign: f64,
}

/// Pivot magnitudes below this threshold are treated as exact zeros,
/// i.e. the matrix is declared singular.
const PIVOT_EPS: f64 = 1e-12;

impl Lu {
    /// Factorizes `a`, which must be square.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] when `a` is not square,
    /// [`LinalgError::Singular`] when a pivot collapses below threshold.
    pub fn decompose(a: &Matrix) -> Result<Lu> {
        if !a.is_square() {
            return Err(LinalgError::DimensionMismatch {
                expected: "square matrix".into(),
                found: format!("{}x{}", a.rows(), a.cols()),
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;

        // Scale factors for implicit scaled partial pivoting: without them a
        // covariance matrix whose features have wildly different variances
        // picks bad pivots.
        let mut scales = vec![0.0; n];
        for i in 0..n {
            let big = lu.row(i).iter().fold(0.0_f64, |m, v| m.max(v.abs()));
            if big == 0.0 {
                return Err(LinalgError::Singular);
            }
            scales[i] = 1.0 / big;
        }

        for k in 0..n {
            // Choose pivot row.
            let mut pivot_row = k;
            let mut best = 0.0;
            for i in k..n {
                let cand = scales[i] * lu.get(i, k).abs();
                if cand > best {
                    best = cand;
                    pivot_row = i;
                }
            }
            if lu.get(pivot_row, k).abs() < PIVOT_EPS {
                return Err(LinalgError::Singular);
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = lu.get(k, j);
                    lu.set(k, j, lu.get(pivot_row, j));
                    lu.set(pivot_row, j, tmp);
                }
                perm.swap(k, pivot_row);
                scales.swap(k, pivot_row);
                sign = -sign;
            }
            let pivot = lu.get(k, k);
            for i in (k + 1)..n {
                let factor = lu.get(i, k) / pivot;
                lu.set(i, k, factor);
                if factor != 0.0 {
                    for j in (k + 1)..n {
                        let v = lu.get(i, j) - factor * lu.get(k, j);
                        lu.set(i, j, v);
                    }
                }
            }
        }
        Ok(Lu { lu, perm, sign })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A·x = b` for a single right-hand side.
    ///
    /// # Panics
    ///
    /// Panics when `b.len()` differs from the matrix dimension.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n, "rhs length mismatch");
        // Apply permutation, then forward substitution (L has unit diagonal).
        let mut x: Vec<f64> = self.perm.iter().map(|&pi| b[pi]).collect();
        for i in 1..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self.lu.get(i, j) * x[j];
            }
            x[i] = acc;
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self.lu.get(i, j) * x[j];
            }
            x[i] = acc / self.lu.get(i, i);
        }
        x
    }

    /// Inverse matrix, solved column by column.
    ///
    /// # Errors
    ///
    /// Currently infallible after a successful decomposition, but returns
    /// `Result` for interface symmetry with [`Matrix::inverse`].
    pub fn inverse(&self) -> Result<Matrix> {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e);
            for i in 0..n {
                inv.set(i, j, col[i]);
            }
            e[j] = 0.0;
        }
        Ok(inv)
    }

    /// Determinant: product of `U`'s diagonal times the permutation sign.
    pub fn determinant(&self) -> f64 {
        let mut det = self.sign;
        for i in 0..self.dim() {
            det *= self.lu.get(i, i);
        }
        det
    }

    /// Natural log of `|det A|` — numerically safe for high-dimensional
    /// covariance matrices whose determinant under/overflows `f64`.
    pub fn ln_abs_determinant(&self) -> f64 {
        (0..self.dim()).map(|i| self.lu.get(i, i).abs().ln()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a}");
    }

    #[test]
    fn solve_known_system() {
        // 2x + y = 5 ; x + 3y = 10 → x = 1, y = 3
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let lu = Lu::decompose(&a).unwrap();
        let x = lu.solve(&[5.0, 10.0]);
        assert_close(x[0], 1.0, 1e-12);
        assert_close(x[1], 3.0, 1e-12);
    }

    #[test]
    fn determinant_2x2() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]);
        let lu = Lu::decompose(&a).unwrap();
        assert_close(lu.determinant(), 5.0, 1e-12);
        assert_close(lu.ln_abs_determinant(), 5.0_f64.ln(), 1e-12);
    }

    #[test]
    fn determinant_sign_with_pivoting() {
        // Requires a row swap; det = -2.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[2.0, 0.0]]);
        let lu = Lu::decompose(&a).unwrap();
        assert_close(lu.determinant(), -2.0, 1e-12);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, -1.0], &[0.5, -1.0, 5.0]]);
        let inv = a.inverse().unwrap();
        let id = a.matmul(&inv);
        for i in 0..3 {
            for j in 0..3 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert_close(id.get(i, j), want, 1e-10);
            }
        }
    }

    #[test]
    fn singular_matrix_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(Lu::decompose(&a).unwrap_err(), LinalgError::Singular);
    }

    #[test]
    fn zero_row_rejected() {
        let a = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 1.0]]);
        assert_eq!(Lu::decompose(&a).unwrap_err(), LinalgError::Singular);
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Lu::decompose(&a),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn badly_scaled_rows_still_solve() {
        // Row scales differ by 1e8; scaled pivoting keeps this accurate.
        let a = Matrix::from_rows(&[&[1e8, 2e8], &[1.0, 3.0]]);
        let lu = Lu::decompose(&a).unwrap();
        let x = lu.solve(&[3e8, 4.0]); // solution x=1, y=1
        assert_close(x[0], 1.0, 1e-8);
        assert_close(x[1], 1.0, 1e-8);
    }
}
