//! Error type shared by every decomposition in this crate.

use std::fmt;

/// Errors produced by linear-algebra routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand shapes are incompatible for the requested operation.
    DimensionMismatch {
        /// Human-readable description of the expected shape.
        expected: String,
        /// Human-readable description of the shape actually supplied.
        found: String,
    },
    /// The matrix is singular (or numerically singular) and cannot be
    /// factored or inverted.
    Singular,
    /// A Cholesky factorization was requested for a matrix that is not
    /// positive definite.
    NotPositiveDefinite,
    /// An iterative method (e.g. Jacobi eigendecomposition) failed to
    /// converge within its sweep budget.
    NoConvergence {
        /// Number of iterations or sweeps performed before giving up.
        iterations: usize,
    },
    /// The input was empty where at least one element is required.
    EmptyInput,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            LinalgError::Singular => write!(f, "matrix is singular"),
            LinalgError::NotPositiveDefinite => {
                write!(f, "matrix is not positive definite")
            }
            LinalgError::NoConvergence { iterations } => {
                write!(f, "no convergence after {iterations} iterations")
            }
            LinalgError::EmptyInput => write!(f, "empty input"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
