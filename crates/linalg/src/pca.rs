//! Principal component analysis (paper Sec. 4.4).
//!
//! Qcluster reduces the 9-dim color-moment vector to 3 dimensions and the
//! 16-dim co-occurrence texture vector to 4 dimensions with PCA, and the
//! synthetic classification experiments (Figs. 14–17) project 16-dim
//! Gaussian clusters to 12/9/6/3 dimensions. Section 4.4.4 picks the number
//! of components `k` as the smallest prefix whose retained variance ratio
//! `Σ_{i≤k} λ_i / Σ λ_i` reaches `1 − ε` (ε ≤ 0.15 in the paper).

use crate::eigen::SymmetricEigen;
use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// A fitted PCA model: the sample mean, the eigenvectors of the sample
/// covariance (columns of `components`, descending eigenvalue), and the
/// eigenvalues themselves.
#[derive(Debug, Clone)]
pub struct Pca {
    mean: Vec<f64>,
    /// `p × p` matrix `G`; column `i` is the `i`-th principal axis.
    components: Matrix,
    /// Eigenvalues λ₁ ≥ … ≥ λ_p of the sample covariance.
    eigenvalues: Vec<f64>,
}

impl Pca {
    /// Fits PCA on a data matrix with one sample per row.
    ///
    /// Uses the unbiased (n−1) sample covariance `S = Xᶜᵀ Xᶜ / (n−1)` of the
    /// centered data, matching the paper's "sample principal components"
    /// (Sec. 4.4.2).
    ///
    /// # Errors
    ///
    /// [`LinalgError::EmptyInput`] with fewer than two samples, or the
    /// eigensolver's error if the covariance fails to decompose.
    pub fn fit(data: &Matrix) -> Result<Pca> {
        let n = data.rows();
        let p = data.cols();
        if n < 2 {
            return Err(LinalgError::EmptyInput);
        }
        let mut mean = vec![0.0; p];
        for i in 0..n {
            for (m, &x) in mean.iter_mut().zip(data.row(i).iter()) {
                *m += x;
            }
        }
        for m in &mut mean {
            *m /= n as f64;
        }

        let mut cov = Matrix::zeros(p, p);
        let mut centered = vec![0.0; p];
        for i in 0..n {
            for (c, (&x, &m)) in centered.iter_mut().zip(data.row(i).iter().zip(mean.iter())) {
                *c = x - m;
            }
            for a in 0..p {
                let ca = centered[a];
                if ca == 0.0 {
                    continue;
                }
                for b in a..p {
                    let v = cov.get(a, b) + ca * centered[b];
                    cov.set(a, b, v);
                }
            }
        }
        let denom = (n - 1) as f64;
        for a in 0..p {
            for b in a..p {
                let v = cov.get(a, b) / denom;
                cov.set(a, b, v);
                cov.set(b, a, v);
            }
        }

        let eig = SymmetricEigen::decompose(&cov)?;
        Ok(Pca {
            mean,
            components: eig.eigenvectors,
            // Clamp tiny negative eigenvalues introduced by round-off.
            eigenvalues: eig.eigenvalues.iter().map(|&l| l.max(0.0)).collect(),
        })
    }

    /// The sample mean the model was centered on.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// Eigenvalues λ₁ ≥ … ≥ λ_p of the sample covariance.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// The full `p × p` eigenvector matrix `G` (principal axes as columns).
    pub fn components(&self) -> &Matrix {
        &self.components
    }

    /// Original dimensionality `p`.
    pub fn input_dim(&self) -> usize {
        self.mean.len()
    }

    /// Fraction of total variance captured by the first `k` components:
    /// `(λ₁ + … + λ_k) / (λ₁ + … + λ_p)`.
    ///
    /// Returns `1.0` for degenerate zero-variance data.
    ///
    /// # Panics
    ///
    /// Panics when `k > p`.
    pub fn retained_variance(&self, k: usize) -> f64 {
        assert!(k <= self.eigenvalues.len(), "k exceeds dimensionality");
        let total: f64 = self.eigenvalues.iter().sum();
        if total <= 0.0 {
            return 1.0;
        }
        self.eigenvalues[..k].iter().sum::<f64>() / total
    }

    /// Smallest `k` with retained variance ≥ `1 − epsilon` (Sec. 4.4.4).
    ///
    /// # Panics
    ///
    /// Panics when `epsilon` is outside `[0, 1)`.
    pub fn components_for_epsilon(&self, epsilon: f64) -> usize {
        assert!((0.0..1.0).contains(&epsilon), "epsilon must be in [0,1)");
        let target = 1.0 - epsilon;
        for k in 1..=self.eigenvalues.len() {
            if self.retained_variance(k) >= target {
                return k;
            }
        }
        self.eigenvalues.len()
    }

    /// Projects one point onto the first `k` principal components:
    /// `z = G_kᵀ (x − mean)`.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != p` or `k > p`.
    pub fn transform(&self, x: &[f64], k: usize) -> Vec<f64> {
        let p = self.input_dim();
        assert_eq!(x.len(), p, "point dimension mismatch");
        assert!(k <= p, "k exceeds dimensionality");
        let mut out = vec![0.0; k];
        for (j, o) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for i in 0..p {
                acc += (x[i] - self.mean[i]) * self.components.get(i, j);
            }
            *o = acc;
        }
        out
    }

    /// Projects every row of `data` onto the first `k` components.
    pub fn transform_matrix(&self, data: &Matrix, k: usize) -> Matrix {
        let mut out = Matrix::zeros(data.rows(), k);
        for i in 0..data.rows() {
            let z = self.transform(data.row(i), k);
            out.row_mut(i).copy_from_slice(&z);
        }
        out
    }

    /// Maps a `k`-dim score vector back to the original space:
    /// `x ≈ mean + G_k z`.
    ///
    /// # Panics
    ///
    /// Panics when `z.len() > p`.
    pub fn inverse_transform(&self, z: &[f64]) -> Vec<f64> {
        let p = self.input_dim();
        assert!(z.len() <= p, "score dimension exceeds p");
        let mut out = self.mean.clone();
        for (j, &zj) in z.iter().enumerate() {
            for i in 0..p {
                out[i] += self.components.get(i, j) * zj;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Data on the line y = 2x: one dominant component.
    fn line_data() -> Matrix {
        let pts: Vec<Vec<f64>> = (0..20)
            .map(|i| {
                let t = i as f64 / 5.0;
                vec![t, 2.0 * t]
            })
            .collect();
        let rows: Vec<&[f64]> = pts.iter().map(|r| r.as_slice()).collect();
        Matrix::from_rows(&rows)
    }

    #[test]
    fn one_dominant_component_on_a_line() {
        let pca = Pca::fit(&line_data()).unwrap();
        assert!(pca.eigenvalues()[0] > 1.0);
        assert!(pca.eigenvalues()[1].abs() < 1e-10);
        assert!((pca.retained_variance(1) - 1.0).abs() < 1e-10);
        assert_eq!(pca.components_for_epsilon(0.05), 1);
    }

    #[test]
    fn first_axis_is_line_direction() {
        let pca = Pca::fit(&line_data()).unwrap();
        let g0 = pca.components().column(0);
        // Direction (1,2)/√5, up to sign.
        let expected = [1.0 / 5.0_f64.sqrt(), 2.0 / 5.0_f64.sqrt()];
        let dotp: f64 = g0.iter().zip(expected.iter()).map(|(a, b)| a * b).sum();
        assert!((dotp.abs() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn transform_then_inverse_recovers_on_subspace() {
        let pca = Pca::fit(&line_data()).unwrap();
        let x = [1.0, 2.0];
        let z = pca.transform(&x, 1);
        let back = pca.inverse_transform(&z);
        assert!((back[0] - x[0]).abs() < 1e-10);
        assert!((back[1] - x[1]).abs() < 1e-10);
    }

    #[test]
    fn transformed_data_is_centered_and_decorrelated() {
        // Correlated 2-D blob.
        let pts: Vec<Vec<f64>> = (0..50)
            .map(|i| {
                let t = i as f64 * 0.37;
                vec![t.sin() + 0.3 * t.cos(), t.sin() * 0.5 + (t * 1.3).cos()]
            })
            .collect();
        let rows: Vec<&[f64]> = pts.iter().map(|r| r.as_slice()).collect();
        let data = Matrix::from_rows(&rows);
        let pca = Pca::fit(&data).unwrap();
        let z = pca.transform_matrix(&data, 2);
        let n = z.rows() as f64;
        let mean0: f64 = (0..z.rows()).map(|i| z.get(i, 0)).sum::<f64>() / n;
        let mean1: f64 = (0..z.rows()).map(|i| z.get(i, 1)).sum::<f64>() / n;
        assert!(mean0.abs() < 1e-10);
        assert!(mean1.abs() < 1e-10);
        let cross: f64 = (0..z.rows())
            .map(|i| z.get(i, 0) * z.get(i, 1))
            .sum::<f64>()
            / (n - 1.0);
        assert!(cross.abs() < 1e-8, "components should be uncorrelated");
        // Variance of component i equals eigenvalue i.
        let var0: f64 = (0..z.rows())
            .map(|i| z.get(i, 0) * z.get(i, 0))
            .sum::<f64>()
            / (n - 1.0);
        assert!((var0 - pca.eigenvalues()[0]).abs() < 1e-8);
    }

    #[test]
    fn needs_two_samples() {
        let data = Matrix::from_rows(&[&[1.0, 2.0]]);
        assert!(matches!(Pca::fit(&data), Err(LinalgError::EmptyInput)));
    }

    #[test]
    fn epsilon_zero_keeps_enough_for_full_variance() {
        let pca = Pca::fit(&line_data()).unwrap();
        // Line data: one component already reaches 100% variance.
        assert_eq!(pca.components_for_epsilon(0.0), 1);
    }
}
