//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! Principal component analysis (paper Sec. 4.4) needs the eigenvectors and
//! eigenvalues of sample covariance matrices. Covariances are symmetric, so
//! the Jacobi method is a good fit: it is simple, unconditionally convergent
//! for symmetric input, and accurate to machine precision — and the matrices
//! involved are small (feature dimensions of 9, 16, or the synthetic 16-dim
//! data), so its O(n³) per sweep cost is irrelevant.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// Eigenvalues and eigenvectors of a symmetric matrix, sorted by
/// **descending** eigenvalue (the order PCA wants: λ₁ ≥ λ₂ ≥ … ≥ λ_p).
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues in descending order.
    pub eigenvalues: Vec<f64>,
    /// Matrix whose **columns** are the corresponding unit eigenvectors.
    pub eigenvectors: Matrix,
}

/// Maximum number of full Jacobi sweeps before declaring non-convergence.
const MAX_SWEEPS: usize = 64;

impl SymmetricEigen {
    /// Computes the eigendecomposition of a symmetric matrix.
    ///
    /// Only requires `a` to be symmetric up to `1e-8` in absolute terms; the
    /// strictly upper triangle drives the rotations.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] when `a` is not square or not
    /// symmetric; [`LinalgError::NoConvergence`] if the off-diagonal mass
    /// fails to vanish within the sweep budget (does not happen for finite
    /// symmetric input in practice).
    pub fn decompose(a: &Matrix) -> Result<SymmetricEigen> {
        if !a.is_square() {
            return Err(LinalgError::DimensionMismatch {
                expected: "square matrix".into(),
                found: format!("{}x{}", a.rows(), a.cols()),
            });
        }
        if !a.is_symmetric(1e-8 * (1.0 + a.max_abs())) {
            return Err(LinalgError::DimensionMismatch {
                expected: "symmetric matrix".into(),
                found: "asymmetric matrix".into(),
            });
        }
        let n = a.rows();
        let mut m = a.clone();
        let mut v = Matrix::identity(n);

        for sweep in 0..MAX_SWEEPS {
            let mut off = 0.0;
            for i in 0..n {
                for j in (i + 1)..n {
                    off += m.get(i, j).abs();
                }
            }
            if off == 0.0 || off < 1e-14 * (1.0 + m.max_abs()) * (n * n) as f64 {
                return Ok(Self::collect(&m, &v, n));
            }
            let _ = sweep;
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = m.get(p, q);
                    if apq.abs() < 1e-300 {
                        continue;
                    }
                    let app = m.get(p, p);
                    let aqq = m.get(q, q);
                    // Rotation angle from the standard Jacobi formulas.
                    let theta = (aqq - app) / (2.0 * apq);
                    let t = if theta >= 0.0 {
                        1.0 / (theta + (1.0 + theta * theta).sqrt())
                    } else {
                        1.0 / (theta - (1.0 + theta * theta).sqrt())
                    };
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = t * c;

                    // Apply rotation to rows/columns p and q of m.
                    for k in 0..n {
                        let akp = m.get(k, p);
                        let akq = m.get(k, q);
                        m.set(k, p, c * akp - s * akq);
                        m.set(k, q, s * akp + c * akq);
                    }
                    for k in 0..n {
                        let apk = m.get(p, k);
                        let aqk = m.get(q, k);
                        m.set(p, k, c * apk - s * aqk);
                        m.set(q, k, s * apk + c * aqk);
                    }
                    // Accumulate eigenvectors.
                    for k in 0..n {
                        let vkp = v.get(k, p);
                        let vkq = v.get(k, q);
                        v.set(k, p, c * vkp - s * vkq);
                        v.set(k, q, s * vkp + c * vkq);
                    }
                }
            }
        }
        Err(LinalgError::NoConvergence {
            iterations: MAX_SWEEPS,
        })
    }

    fn collect(m: &Matrix, v: &Matrix, n: usize) -> SymmetricEigen {
        let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (m.get(i, i), i)).collect();
        // Descending eigenvalue order, NaN-free by construction.
        pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("non-NaN eigenvalues"));
        let eigenvalues: Vec<f64> = pairs.iter().map(|&(l, _)| l).collect();
        let mut eigenvectors = Matrix::zeros(n, n);
        for (new_col, &(_, old_col)) in pairs.iter().enumerate() {
            for row in 0..n {
                eigenvectors.set(row, new_col, v.get(row, old_col));
            }
        }
        SymmetricEigen {
            eigenvalues,
            eigenvectors,
        }
    }

    /// Dimension of the decomposed matrix.
    pub fn dim(&self) -> usize {
        self.eigenvalues.len()
    }

    /// Reconstructs the original matrix `V·Λ·Vᵀ` (useful for testing).
    pub fn reconstruct(&self) -> Matrix {
        let lambda = Matrix::from_diagonal(&self.eigenvalues);
        self.eigenvectors
            .matmul(&lambda)
            .matmul(&self.eigenvectors.transpose())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_eigenvalues_sorted() {
        let a = Matrix::from_diagonal(&[1.0, 5.0, 3.0]);
        let e = SymmetricEigen::decompose(&a).unwrap();
        assert_eq!(e.eigenvalues, vec![5.0, 3.0, 1.0]);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = SymmetricEigen::decompose(&a).unwrap();
        assert!((e.eigenvalues[0] - 3.0).abs() < 1e-12);
        assert!((e.eigenvalues[1] - 1.0).abs() < 1e-12);
        // Eigenvector for λ=3 is (1,1)/√2 up to sign.
        let v0 = e.eigenvectors.column(0);
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
        assert!((v0[0] - v0[1]).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_matches_original() {
        let a = Matrix::from_rows(&[
            &[4.0, 1.0, 0.5, 0.0],
            &[1.0, 3.0, -1.0, 0.2],
            &[0.5, -1.0, 5.0, 0.7],
            &[0.0, 0.2, 0.7, 2.0],
        ]);
        let e = SymmetricEigen::decompose(&a).unwrap();
        let r = e.reconstruct();
        for i in 0..4 {
            for j in 0..4 {
                assert!(
                    (r.get(i, j) - a.get(i, j)).abs() < 1e-10,
                    "mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = Matrix::from_rows(&[&[2.0, 0.5, 0.1], &[0.5, 1.0, 0.3], &[0.1, 0.3, 3.0]]);
        let e = SymmetricEigen::decompose(&a).unwrap();
        let vtv = e.eigenvectors.transpose().matmul(&e.eigenvectors);
        for i in 0..3 {
            for j in 0..3 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((vtv.get(i, j) - want).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let a = Matrix::from_rows(&[&[2.5, 0.7], &[0.7, 1.5]]);
        let e = SymmetricEigen::decompose(&a).unwrap();
        let sum: f64 = e.eigenvalues.iter().sum();
        assert!((sum - a.trace()).abs() < 1e-12);
    }

    #[test]
    fn rejects_asymmetric() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]);
        assert!(SymmetricEigen::decompose(&a).is_err());
    }

    #[test]
    fn handles_identity() {
        let e = SymmetricEigen::decompose(&Matrix::identity(5)).unwrap();
        assert!(e.eigenvalues.iter().all(|&l| (l - 1.0).abs() < 1e-14));
    }
}
