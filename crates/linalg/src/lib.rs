//! Dense linear-algebra substrate for the Qcluster reproduction.
//!
//! Qcluster (Kim & Chung, SIGMOD 2003) relies on a small but non-trivial set
//! of matrix computations: weighted covariance matrices and their inverses,
//! pooled covariances, quadratic forms, eigendecompositions for principal
//! component analysis, and determinants for Bayesian classification. This
//! crate implements all of them from scratch on row-major `f64` storage.
//!
//! # Contents
//!
//! - [`Matrix`] — a dense row-major matrix with the usual algebra.
//! - [`lu`] — LU decomposition with partial pivoting (solve, inverse,
//!   determinant).
//! - [`cholesky`] — Cholesky decomposition for symmetric positive-definite
//!   matrices (solve, inverse, log-determinant, sampling square roots).
//! - [`eigen`] — cyclic Jacobi eigendecomposition for symmetric matrices.
//! - [`pca`] — principal component analysis built on [`eigen`].
//! - [`vecops`] — free functions on `&[f64]` slices for the hot paths
//!   (dot products, quadratic forms) that must not allocate.
//!
//! # Example
//!
//! ```
//! use qcluster_linalg::Matrix;
//!
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
//! let inv = a.inverse().unwrap();
//! let id = a.matmul(&inv);
//! assert!((id.get(0, 0) - 1.0).abs() < 1e-12);
//! assert!(id.get(0, 1).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
// Indexed loops over multiple parallel buffers are the clearest (and often
// fastest) form for the dense numeric kernels in this workspace.
#![allow(clippy::needless_range_loop)]

pub mod cholesky;
pub mod eigen;
pub mod error;
pub mod lu;
pub mod matrix;
pub mod pca;
pub mod vecops;

pub use cholesky::Cholesky;
pub use eigen::SymmetricEigen;
pub use error::{LinalgError, Result};
pub use lu::Lu;
pub use matrix::Matrix;
pub use pca::Pca;
