//! Cholesky decomposition for symmetric positive-definite matrices.
//!
//! Covariance matrices are symmetric positive (semi-)definite, so a Cholesky
//! factorization is both the cheapest way to invert them and the standard
//! way to sample correlated Gaussian data (`y = A·z` with `A·Aᵀ = Σ`, the
//! construction the paper uses for its elliptical synthetic clusters in
//! Section 5).

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// A lower-triangular Cholesky factor `L` with `L·Lᵀ = A`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factorizes a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; the caller is responsible
    /// for `a` being symmetric.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] when `a` is not square,
    /// [`LinalgError::NotPositiveDefinite`] when a diagonal pivot is not
    /// strictly positive.
    pub fn decompose(a: &Matrix) -> Result<Cholesky> {
        if !a.is_square() {
            return Err(LinalgError::DimensionMismatch {
                expected: "square matrix".into(),
                found: format!("{}x{}", a.rows(), a.cols()),
            });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a.get(i, j);
                for k in 0..j {
                    sum -= l.get(i, k) * l.get(j, k);
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(LinalgError::NotPositiveDefinite);
                    }
                    l.set(i, j, sum.sqrt());
                } else {
                    l.set(i, j, sum / l.get(j, j));
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// The lower-triangular factor `L`.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solves `A·x = b` via forward then backward substitution.
    ///
    /// # Panics
    ///
    /// Panics when `b.len()` differs from the matrix dimension.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n, "rhs length mismatch");
        // L·y = b
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut acc = b[i];
            for j in 0..i {
                acc -= self.l.get(i, j) * y[j];
            }
            y[i] = acc / self.l.get(i, i);
        }
        // Lᵀ·x = y
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in (i + 1)..n {
                acc -= self.l.get(j, i) * x[j];
            }
            x[i] = acc / self.l.get(i, i);
        }
        x
    }

    /// Inverse of the original matrix.
    pub fn inverse(&self) -> Matrix {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e);
            for i in 0..n {
                inv.set(i, j, col[i]);
            }
            e[j] = 0.0;
        }
        inv
    }

    /// `ln det A = 2 · Σ ln L_ii` — used by the Bayesian classifier's
    /// `−½ ln |S_i|` term without forming the determinant itself.
    pub fn ln_determinant(&self) -> f64 {
        (0..self.dim()).map(|i| self.l.get(i, i).ln()).sum::<f64>() * 2.0
    }

    /// Applies the factor to a vector: `L·z`.
    ///
    /// When `z` is standard normal, `L·z` is a zero-mean Gaussian with
    /// covariance `A` — the sampling square root.
    ///
    /// # Panics
    ///
    /// Panics when `z.len()` differs from the matrix dimension.
    pub fn apply(&self, z: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(z.len(), n, "vector length mismatch");
        let mut out = vec![0.0; n];
        for i in 0..n {
            let mut acc = 0.0;
            for j in 0..=i {
                acc += self.l.get(i, j) * z[j];
            }
            out[i] = acc;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        Matrix::from_rows(&[&[4.0, 2.0, 0.6], &[2.0, 5.0, 1.0], &[0.6, 1.0, 3.0]])
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let a = spd3();
        let ch = Cholesky::decompose(&a).unwrap();
        let l = ch.factor();
        let recon = l.matmul(&l.transpose());
        for i in 0..3 {
            for j in 0..3 {
                assert!((recon.get(i, j) - a.get(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn solve_matches_lu() {
        let a = spd3();
        let b = [1.0, -2.0, 0.5];
        let x_ch = Cholesky::decompose(&a).unwrap().solve(&b);
        let x_lu = crate::lu::Lu::decompose(&a).unwrap().solve(&b);
        for (c, l) in x_ch.iter().zip(x_lu.iter()) {
            assert!((c - l).abs() < 1e-10);
        }
    }

    #[test]
    fn inverse_matches_lu_inverse() {
        let a = spd3();
        let inv_ch = Cholesky::decompose(&a).unwrap().inverse();
        let inv_lu = a.inverse().unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((inv_ch.get(i, j) - inv_lu.get(i, j)).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn ln_determinant_matches_lu() {
        let a = spd3();
        let ld = Cholesky::decompose(&a).unwrap().ln_determinant();
        let det = a.determinant().unwrap();
        assert!((ld - det.ln()).abs() < 1e-10);
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert_eq!(
            Cholesky::decompose(&a).unwrap_err(),
            LinalgError::NotPositiveDefinite
        );
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Cholesky::decompose(&a),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn apply_is_lower_triangular_product() {
        let a = spd3();
        let ch = Cholesky::decompose(&a).unwrap();
        let z = [1.0, 1.0, 1.0];
        let got = ch.apply(&z);
        let want = ch.factor().matvec(&z);
        for (g, w) in got.iter().zip(want.iter()) {
            assert!((g - w).abs() < 1e-14);
        }
    }
}
