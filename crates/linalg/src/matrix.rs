//! Dense row-major matrix type.

use crate::error::{LinalgError, Result};
use crate::vecops;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense, row-major matrix of `f64` values.
///
/// The storage layout is a single `Vec<f64>` of length `rows * cols`, with
/// element `(i, j)` at offset `i * cols + j`. Row-major layout keeps
/// row slices contiguous, which is what the covariance and quadratic-form
/// kernels in the Qcluster engine iterate over.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix of the given shape filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a square diagonal matrix with `diag` on the main diagonal.
    pub fn from_diagonal(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m.data[i * n + i] = d;
        }
        m
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths or the input is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "at least one row required");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "all rows must have equal length");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Returns element `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics when the index is out of bounds.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        self.data[i * self.cols + j]
    }

    /// Sets element `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics when the index is out of bounds.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        self.data[i * self.cols + j] = v;
    }

    /// Returns row `i` as a contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Returns row `i` as a mutable contiguous slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index out of bounds");
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    pub fn column(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "column index out of bounds");
        (0..self.rows)
            .map(|i| self.data[i * self.cols + j])
            .collect()
    }

    /// Returns the flat row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Consumes the matrix and returns the flat row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        t
    }

    /// Matrix–matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics when the inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        // ikj loop order: streams over contiguous rows of `other` and `out`.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let orow = &other.data[k * other.cols..(k + 1) * other.cols];
                let crow = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (c, &o) in crow.iter_mut().zip(orow.iter()) {
                    *c += a * o;
                }
            }
        }
        out
    }

    /// Matrix–vector product `self * x`.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec shape mismatch");
        (0..self.rows)
            .map(|i| vecops::dot(self.row(i), x))
            .collect()
    }

    /// Transposed matrix–vector product `selfᵀ * x`.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != self.rows()`.
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "matvec_t shape mismatch");
        let mut out = vec![0.0; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            for (o, &a) in out.iter_mut().zip(self.row(i).iter()) {
                *o += xi * a;
            }
        }
        out
    }

    /// Returns `self * scalar` as a new matrix.
    pub fn scale(&self, scalar: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| v * scalar).collect(),
        }
    }

    /// In-place `self += other * scalar`; the shapes must match.
    ///
    /// # Panics
    ///
    /// Panics when the shapes differ.
    pub fn add_assign_scaled(&mut self, other: &Matrix, scalar: f64) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch in add_assign_scaled"
        );
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b * scalar;
        }
    }

    /// Sum of the main diagonal.
    ///
    /// # Panics
    ///
    /// Panics when the matrix is not square.
    pub fn trace(&self) -> f64 {
        assert!(self.is_square(), "trace requires a square matrix");
        (0..self.rows).map(|i| self.data[i * self.cols + i]).sum()
    }

    /// Copies the main diagonal into a vector.
    ///
    /// # Panics
    ///
    /// Panics when the matrix is not square.
    pub fn diagonal(&self) -> Vec<f64> {
        assert!(self.is_square(), "diagonal requires a square matrix");
        (0..self.rows)
            .map(|i| self.data[i * self.cols + i])
            .collect()
    }

    /// `true` when `|a_ij - a_ji| <= tol` for all pairs.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self.get(i, j) - self.get(j, i)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Adds `lambda` to every diagonal element (ridge regularization).
    ///
    /// The paper (Sec. 3.2) notes that when the number of relevant images is
    /// smaller than the feature dimension, the sample covariance is singular
    /// and "regularization terms should be added on the diagonal of the
    /// covariance matrix before the inversion".
    ///
    /// # Panics
    ///
    /// Panics when the matrix is not square.
    pub fn regularize(&mut self, lambda: f64) {
        assert!(self.is_square(), "regularize requires a square matrix");
        for i in 0..self.rows {
            self.data[i * self.cols + i] += lambda;
        }
    }

    /// The outer product `x * yᵀ` as a `len(x) × len(y)` matrix.
    pub fn outer(x: &[f64], y: &[f64]) -> Matrix {
        let mut m = Matrix::zeros(x.len(), y.len());
        for (i, &xi) in x.iter().enumerate() {
            for (j, &yj) in y.iter().enumerate() {
                m.data[i * y.len() + j] = xi * yj;
            }
        }
        m
    }

    /// Inverse via LU decomposition with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] when the matrix is numerically
    /// singular and [`LinalgError::DimensionMismatch`] when not square.
    pub fn inverse(&self) -> Result<Matrix> {
        if !self.is_square() {
            return Err(LinalgError::DimensionMismatch {
                expected: "square matrix".into(),
                found: format!("{}x{}", self.rows, self.cols),
            });
        }
        crate::lu::Lu::decompose(self)?.inverse()
    }

    /// Determinant via LU decomposition.
    ///
    /// Returns `0.0` for singular matrices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when not square.
    pub fn determinant(&self) -> Result<f64> {
        if !self.is_square() {
            return Err(LinalgError::DimensionMismatch {
                expected: "square matrix".into(),
                found: format!("{}x{}", self.rows, self.cols),
            });
        }
        match crate::lu::Lu::decompose(self) {
            Ok(lu) => Ok(lu.determinant()),
            Err(LinalgError::Singular) => Ok(0.0),
            Err(e) => Err(e),
        }
    }

    /// The Frobenius norm `sqrt(sum a_ij^2)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute element.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "add shape mismatch"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "sub shape mismatch"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: f64) -> Matrix {
        self.scale(rhs)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:10.4}", self.get(i, j))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));

        let i = Matrix::identity(3);
        assert_eq!(i.get(0, 0), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
        assert_eq!(i.trace(), 3.0);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zeros_rejects_empty() {
        let _ = Matrix::zeros(0, 3);
    }

    #[test]
    fn from_rows_and_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.column(0), vec![1.0, 3.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, -2.5], &[0.25, 4.0]]);
        assert_eq!(a.matmul(&Matrix::identity(2)), a);
        assert_eq!(Matrix::identity(2).matmul(&a), a);
    }

    #[test]
    fn matvec_matches_manual() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
        assert_eq!(a.matvec_t(&[1.0, 1.0]), vec![4.0, 6.0]);
    }

    #[test]
    fn outer_product() {
        let m = Matrix::outer(&[1.0, 2.0], &[3.0, 4.0, 5.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.get(1, 2), 10.0);
    }

    #[test]
    fn symmetric_detection() {
        let s = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        assert!(s.is_symmetric(0.0));
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 2.0]]);
        assert!(!a.is_symmetric(1e-12));
        let r = Matrix::zeros(2, 3);
        assert!(!r.is_symmetric(1.0));
    }

    #[test]
    fn regularize_adds_to_diagonal() {
        let mut m = Matrix::zeros(2, 2);
        m.regularize(0.5);
        assert_eq!(m.diagonal(), vec![0.5, 0.5]);
        assert_eq!(m.get(0, 1), 0.0);
    }

    #[test]
    fn determinant_of_singular_is_zero() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(m.determinant().unwrap(), 0.0);
    }

    #[test]
    fn add_sub_scale() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::identity(2);
        let sum = &a + &b;
        assert_eq!(sum.get(0, 0), 2.0);
        let diff = &sum - &b;
        assert_eq!(diff, a);
        let scaled = &a * 2.0;
        assert_eq!(scaled.get(1, 1), 8.0);
    }

    #[test]
    fn from_diagonal_layout() {
        let m = Matrix::from_diagonal(&[1.0, 2.0, 3.0]);
        assert_eq!(m.trace(), 6.0);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(2, 2), 3.0);
    }
}
