//! Edge-case unit tests complementing the property tests: numerically
//! delicate inputs the decompositions must handle gracefully.

use qcluster_linalg::{Cholesky, LinalgError, Lu, Matrix, Pca, SymmetricEigen};

#[test]
fn lu_one_by_one() {
    let m = Matrix::from_rows(&[&[4.0]]);
    let lu = Lu::decompose(&m).unwrap();
    assert_eq!(lu.determinant(), 4.0);
    assert_eq!(lu.solve(&[8.0]), vec![2.0]);
}

#[test]
fn cholesky_one_by_one() {
    let m = Matrix::from_rows(&[&[9.0]]);
    let ch = Cholesky::decompose(&m).unwrap();
    assert_eq!(ch.factor().get(0, 0), 3.0);
    assert!((ch.ln_determinant() - 9.0_f64.ln()).abs() < 1e-14);
}

#[test]
fn eigen_one_by_one() {
    let m = Matrix::from_rows(&[&[7.0]]);
    let e = SymmetricEigen::decompose(&m).unwrap();
    assert_eq!(e.eigenvalues, vec![7.0]);
}

#[test]
fn lu_near_singular_is_rejected_not_garbage() {
    // Rows differ by 1e-15 of each other: numerically singular.
    let m = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0 + 1e-16]]);
    assert!(matches!(
        Lu::decompose(&m),
        Err(LinalgError::Singular) | Ok(_)
    ));
    // Either verdict is acceptable, but an Ok decomposition must still
    // solve its own system consistently.
    if let Ok(lu) = Lu::decompose(&m) {
        let x = lu.solve(&[2.0, 2.0]);
        let back = m.matvec(&x);
        assert!((back[0] - 2.0).abs() < 1e-6);
    }
}

#[test]
fn eigen_handles_tiny_and_huge_scales_together() {
    let m = Matrix::from_diagonal(&[1e12, 1e-9, 1.0]);
    let e = SymmetricEigen::decompose(&m).unwrap();
    assert!((e.eigenvalues[0] - 1e12).abs() / 1e12 < 1e-12);
    assert!((e.eigenvalues[2] - 1e-9).abs() < 1e-15);
}

#[test]
fn pca_on_constant_data_is_degenerate_but_finite() {
    let rows: Vec<Vec<f64>> = (0..10).map(|_| vec![3.0, -1.0, 2.0]).collect();
    let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    let pca = Pca::fit(&Matrix::from_rows(&refs)).unwrap();
    // Zero variance everywhere: eigenvalues clamp to zero, retained
    // variance reports 1.0 by convention, transforms stay finite.
    assert!(pca.eigenvalues().iter().all(|&l| l == 0.0));
    assert_eq!(pca.retained_variance(1), 1.0);
    let z = pca.transform(&[3.0, -1.0, 2.0], 2);
    assert!(z.iter().all(|v| v.is_finite()));
}

#[test]
fn matrix_negative_and_zero_entries_roundtrip_algebra() {
    let a = Matrix::from_rows(&[&[0.0, -2.0], &[-3.0, 0.0]]);
    let det = a.determinant().unwrap();
    assert!((det - (-6.0)).abs() < 1e-12);
    let inv = a.inverse().unwrap();
    let id = a.matmul(&inv);
    assert!((id.get(0, 0) - 1.0).abs() < 1e-12);
    assert!(id.get(1, 0).abs() < 1e-12);
}

#[test]
fn outer_product_rank_one_structure() {
    let m = Matrix::outer(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]);
    // Rank-1 symmetric: eigenvalues are (‖x‖², 0, 0).
    let e = SymmetricEigen::decompose(&m).unwrap();
    assert!((e.eigenvalues[0] - 14.0).abs() < 1e-10);
    assert!(e.eigenvalues[1].abs() < 1e-10);
    assert!(e.eigenvalues[2].abs() < 1e-10);
}
