//! Property-based tests for the linear-algebra substrate.

use proptest::prelude::*;
use qcluster_linalg::{Cholesky, Lu, Matrix, Pca, SymmetricEigen};

/// Strategy: a square matrix of the given size with bounded entries.
fn square_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-10.0..10.0f64, n * n).prop_map(move |data| Matrix::from_vec(n, n, data))
}

/// Strategy: a symmetric positive-definite matrix `AᵀA + I`.
fn spd_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    square_matrix(n).prop_map(move |a| {
        let mut m = a.transpose().matmul(&a);
        m.regularize(1.0);
        m
    })
}

fn vector(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-10.0..10.0f64, n)
}

proptest! {
    #[test]
    fn lu_solve_satisfies_system(a in spd_matrix(4), b in vector(4)) {
        let lu = Lu::decompose(&a).unwrap();
        let x = lu.solve(&b);
        let ax = a.matvec(&x);
        for (got, want) in ax.iter().zip(b.iter()) {
            prop_assert!((got - want).abs() < 1e-6 * (1.0 + want.abs()));
        }
    }

    #[test]
    fn inverse_roundtrip(a in spd_matrix(3)) {
        let inv = a.inverse().unwrap();
        let id = a.matmul(&inv);
        for i in 0..3 {
            for j in 0..3 {
                let want = if i == j { 1.0 } else { 0.0 };
                prop_assert!((id.get(i, j) - want).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn determinant_of_product_is_product_of_determinants(
        a in spd_matrix(3),
        b in spd_matrix(3),
    ) {
        let da = a.determinant().unwrap();
        let db = b.determinant().unwrap();
        let dab = a.matmul(&b).determinant().unwrap();
        prop_assert!((dab - da * db).abs() < 1e-6 * (1.0 + dab.abs()));
    }

    #[test]
    fn cholesky_matches_lu_solve(a in spd_matrix(4), b in vector(4)) {
        let ch = Cholesky::decompose(&a).unwrap();
        let lu = Lu::decompose(&a).unwrap();
        let xc = ch.solve(&b);
        let xl = lu.solve(&b);
        for (c, l) in xc.iter().zip(xl.iter()) {
            prop_assert!((c - l).abs() < 1e-6 * (1.0 + l.abs()));
        }
    }

    #[test]
    fn eigen_reconstruction(a in spd_matrix(4)) {
        let e = SymmetricEigen::decompose(&a).unwrap();
        let r = e.reconstruct();
        for i in 0..4 {
            for j in 0..4 {
                prop_assert!((r.get(i, j) - a.get(i, j)).abs() < 1e-7 * (1.0 + a.max_abs()));
            }
        }
        // SPD ⇒ all eigenvalues strictly positive, sorted descending.
        for w in e.eigenvalues.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
        prop_assert!(e.eigenvalues.iter().all(|&l| l > 0.0));
    }

    #[test]
    fn eigen_trace_identity(a in spd_matrix(5)) {
        let e = SymmetricEigen::decompose(&a).unwrap();
        let sum: f64 = e.eigenvalues.iter().sum();
        prop_assert!((sum - a.trace()).abs() < 1e-7 * (1.0 + a.trace().abs()));
    }

    #[test]
    fn matmul_associative(a in square_matrix(3), b in square_matrix(3), c in square_matrix(3)) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for i in 0..3 {
            for j in 0..3 {
                let scale = 1.0 + left.max_abs();
                prop_assert!((left.get(i, j) - right.get(i, j)).abs() < 1e-8 * scale);
            }
        }
    }

    #[test]
    fn transpose_of_product(a in square_matrix(3), b in square_matrix(3)) {
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        for i in 0..3 {
            for j in 0..3 {
                prop_assert!((lhs.get(i, j) - rhs.get(i, j)).abs() < 1e-9 * (1.0 + lhs.max_abs()));
            }
        }
    }

    #[test]
    fn pca_retained_variance_is_monotone(data in prop::collection::vec(vector(4), 5..40)) {
        let rows: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
        let m = Matrix::from_rows(&rows);
        if let Ok(pca) = Pca::fit(&m) {
            let mut prev = 0.0;
            for k in 1..=4 {
                let rv = pca.retained_variance(k);
                prop_assert!(rv + 1e-12 >= prev);
                prop_assert!(rv <= 1.0 + 1e-9);
                prev = rv;
            }
            prop_assert!((pca.retained_variance(4) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn quadratic_form_nonnegative_for_spd(a in spd_matrix(4), x in vector(4), c in vector(4)) {
        let mut scratch = vec![0.0; 4];
        let q = qcluster_linalg::vecops::quadratic_form(&x, &c, a.as_slice(), &mut scratch);
        prop_assert!(q >= -1e-9);
    }
}
