//! Fault-injection chaos tests for the storage layer.
//!
//! These tests live in their own binary (= their own process) because
//! failpoints are process-global: arming one here must never leak into
//! the ordinary unit/property tests. Within this binary, every test
//! serializes through `failpoint::test_lock()`.
//!
//! What must hold under injected faults:
//!
//! - A torn WAL append (short write) surfaces as an error, the writer
//!   rolls the file back to the committed prefix, and the *next* append
//!   succeeds — no torn bytes ever reach replay.
//! - An fsync failure fails the ingest without committing it; the store
//!   keeps working and recovery sees a consistent prefix.
//! - A failed rollback wedges the writer (typed `Wedged` error, no
//!   silent corruption); reopening the store heals it.
//! - A compaction "crash" between the segment seal and the WAL rewrite
//!   replays idempotently — sealed ids in the stale WAL are skipped.
//! - A failed segment seal leaves only a `.tmp` behind, which the next
//!   open sweeps.
//!
//! CI runs this suite in the `chaos` job with `PROPTEST_CASES=256`.

use proptest::prelude::*;
use qcluster_failpoint as failpoint;
use qcluster_store::{replay, StoreConfig, StoreError, VectorStore, WalRecord, WalWriter};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn scratch(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("qstore_chaos_{tag}_{}_{n}", std::process::id()))
}

fn vecs(n: usize, dim: usize, offset: f64) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| (0..dim).map(|d| offset + (i * dim + d) as f64).collect())
        .collect()
}

#[test]
fn torn_append_rolls_back_and_writer_self_heals() {
    let _serial = failpoint::test_lock();
    failpoint::clear_all();
    let dir = scratch("torn_append");
    std::fs::remove_dir_all(&dir).ok();

    let (mut store, _) = VectorStore::open(&dir, StoreConfig::default()).unwrap();
    store.ingest(vec![0.0, 1.0]).unwrap();
    store.ingest(vec![2.0, 3.0]).unwrap();

    // The third append tears after 5 bytes (mid-header), then the
    // device "recovers".
    let fp = failpoint::scoped_counted("wal.append", failpoint::Action::Partial(5), 0, Some(1));
    let err = store.ingest(vec![4.0, 5.0]).unwrap_err();
    assert!(
        matches!(err, StoreError::Io(_)),
        "torn write surfaces as I/O: {err}"
    );
    assert_eq!(fp.hits(), 1);
    drop(fp);

    // Self-healed: the id the failed ingest would have taken is
    // reassigned, and the log has no torn bytes.
    assert_eq!(store.ingest(vec![4.0, 5.0]).unwrap(), 2);
    assert_eq!(store.total_vectors(), 3);
    drop(store);

    let (_, recovered) = VectorStore::open(&dir, StoreConfig::default()).unwrap();
    assert!(!recovered.wal_truncated, "rollback left a clean log");
    assert_eq!(recovered.vectors.len(), 3);
    assert_eq!(recovered.vectors[2], vec![4.0, 5.0]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fsync_failure_fails_the_ingest_without_committing_it() {
    let _serial = failpoint::test_lock();
    failpoint::clear_all();
    let dir = scratch("fsync_err");
    std::fs::remove_dir_all(&dir).ok();

    // fsync-on-commit: the injected fsync failure must fail the append.
    let (mut store, _) = VectorStore::open(
        &dir,
        StoreConfig {
            fsync_on_commit: true,
        },
    )
    .unwrap();
    store.ingest(vec![1.0]).unwrap();

    let fp = failpoint::scoped_counted(
        "wal.fsync",
        failpoint::Action::Error("EIO".into()),
        0,
        Some(1),
    );
    let err = store.ingest(vec![2.0]).unwrap_err();
    assert!(
        matches!(err, StoreError::Io(_)),
        "fsync fault surfaces as I/O: {err}"
    );
    assert_eq!(fp.hits(), 1);
    drop(fp);
    assert_eq!(store.total_vectors(), 1, "failed ingest not counted");

    // The store continues: same id is reassigned and commits durably.
    assert_eq!(store.ingest(vec![2.0]).unwrap(), 1);
    drop(store);

    let (_, recovered) = VectorStore::open(&dir, StoreConfig::default()).unwrap();
    assert_eq!(recovered.vectors.len(), 2);
    assert_eq!(recovered.vectors[1], vec![2.0]);
    assert!(!recovered.wal_truncated);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn failed_rollback_wedges_the_writer_and_reopen_heals() {
    let _serial = failpoint::test_lock();
    failpoint::clear_all();
    let dir = scratch("wedged");
    std::fs::remove_dir_all(&dir).ok();

    let (mut store, _) = VectorStore::open(&dir, StoreConfig::default()).unwrap();
    store.ingest(vec![7.0]).unwrap();

    // Torn write AND the rollback fails: the tail is unknown — the
    // writer must wedge rather than keep appending after garbage.
    let _torn = failpoint::scoped_counted("wal.append", failpoint::Action::Partial(3), 0, Some(1));
    let _stuck = failpoint::scoped_counted(
        "wal.rollback",
        failpoint::Action::Error("EIO on set_len".into()),
        0,
        Some(1),
    );
    let err = store.ingest(vec![8.0]).unwrap_err();
    assert!(matches!(err, StoreError::Wedged { .. }), "got: {err}");

    // Still wedged even though both failpoints are exhausted: the
    // damage is state, not injection.
    let err = store.ingest(vec![8.0]).unwrap_err();
    assert!(matches!(err, StoreError::Wedged { .. }), "got: {err}");
    let err = store.sync().unwrap_err();
    assert!(matches!(err, StoreError::Wedged { .. }), "got: {err}");
    drop(store);

    // Reopen heals: replay truncates the torn bytes the failed rollback
    // left behind, and ingest works again.
    let (mut store, recovered) = VectorStore::open(&dir, StoreConfig::default()).unwrap();
    assert!(recovered.wal_truncated, "torn bytes were on disk");
    assert_eq!(recovered.vectors.len(), 1);
    assert_eq!(store.ingest(vec![8.0]).unwrap(), 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compaction_crash_window_replays_idempotently() {
    let _serial = failpoint::test_lock();
    failpoint::clear_all();
    let dir = scratch("compact_crash");
    std::fs::remove_dir_all(&dir).ok();

    {
        let (mut store, _) = VectorStore::open(&dir, StoreConfig::default()).unwrap();
        store.bootstrap(&vecs(3, 2, 0.0)).unwrap();
        for v in vecs(4, 2, 30.0) {
            store.ingest(v).unwrap();
        }
        store.record_session(9, "qcluster", 5, true).unwrap();

        // Crash between the atomic segment seal and the WAL rewrite.
        let fp = failpoint::scoped(
            "store.compact.crash",
            failpoint::Action::Error("die".into()),
        );
        let err = store.compact().unwrap_err();
        assert!(matches!(err, StoreError::Io(_)), "got: {err}");
        assert_eq!(fp.hits(), 1);
        // "Crash": drop the store with the stale WAL still on disk.
    }

    // Recovery skips WAL ingests the sealed segment already covers.
    let (mut store, recovered) = VectorStore::open(&dir, StoreConfig::default()).unwrap();
    assert_eq!(recovered.vectors.len(), 7, "no double-counted ingests");
    assert_eq!(
        recovered.segment_vectors, 7,
        "crash-window segment was kept"
    );
    assert_eq!(recovered.sessions.len(), 1, "session survived the crash");
    for (i, v) in vecs(4, 2, 30.0).into_iter().enumerate() {
        assert_eq!(recovered.vectors[3 + i], v);
    }

    // A clean compaction afterwards folds the stale WAL away for good.
    let stats = store.compact().unwrap();
    assert_eq!(stats.folded_vectors, 0);
    drop(store);
    let (_, again) = VectorStore::open(&dir, StoreConfig::default()).unwrap();
    assert_eq!(again.vectors.len(), 7);
    assert_eq!(again.sessions.len(), 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn failed_segment_seal_leaves_store_usable_and_tmp_swept() {
    let _serial = failpoint::test_lock();
    failpoint::clear_all();
    let dir = scratch("seal_fail");
    std::fs::remove_dir_all(&dir).ok();

    {
        let (mut store, _) = VectorStore::open(&dir, StoreConfig::default()).unwrap();
        let fp = failpoint::scoped_counted(
            "segment.finish",
            failpoint::Action::Error("ENOSPC".into()),
            0,
            Some(1),
        );
        let err = store.bootstrap(&vecs(5, 2, 0.0)).unwrap_err();
        assert!(matches!(err, StoreError::Io(_)), "got: {err}");
        assert_eq!(fp.hits(), 1);
        drop(fp);
        assert!(store.is_empty(), "failed seal committed nothing");

        // Only the staged .tmp exists — the final segment never appeared.
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".qseg") || n.ends_with(".tmp"))
            .collect();
        assert!(names.iter().all(|n| n.ends_with(".tmp")), "dir: {names:?}");
        assert!(!names.is_empty(), "staged file left for debugging");
    }

    // Reopen sweeps the stale .tmp and the store bootstraps cleanly.
    let (mut store, recovered) = VectorStore::open(&dir, StoreConfig::default()).unwrap();
    assert!(recovered.vectors.is_empty());
    store.bootstrap(&vecs(5, 2, 0.0)).unwrap();
    assert_eq!(store.total_vectors(), 5);
    let leftover_tmp = std::fs::read_dir(&dir)
        .unwrap()
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .path()
                .extension()
                .is_some_and(|x| x == "tmp")
        })
        .count();
    assert_eq!(leftover_tmp, 0, "open swept the stale staging file");
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::default())]

    /// Failpoint-injected short writes at arbitrary byte counts, with
    /// rollback also failing (the crash model): replay truncates to the
    /// last valid frame, recovers exactly the committed prefix, and the
    /// log stays appendable after reopening at the valid length.
    #[test]
    fn injected_short_write_truncates_to_last_valid_frame(
        vectors in (1usize..5).prop_flat_map(|dim| {
            prop::collection::vec(prop::collection::vec(-1.0e9..1.0e9f64, dim), 2..12)
        }),
        tear_at_fraction in 0.0..1.0f64,
        torn_fraction in 0.0..1.0f64,
    ) {
        let _serial = failpoint::test_lock();
        failpoint::clear_all();
        let path = scratch("prop_short_write");
        std::fs::remove_file(&path).ok();

        // The append at `tear_at` writes only a strict prefix of its
        // frame, and the rollback fails too — torn bytes stay on disk,
        // as after a power cut mid-write. Frame layout: 8-byte header +
        // tag + id + dim prefix + dim f64s.
        let frame_len = 21 + 8 * vectors[0].len();
        let torn_bytes = (((frame_len as f64) * torn_fraction) as usize).min(frame_len - 1);
        let tear_at = ((vectors.len() as f64) * tear_at_fraction) as u64;
        let tear_at = tear_at.min(vectors.len() as u64 - 1);
        {
            let _torn = failpoint::scoped_counted(
                "wal.append",
                failpoint::Action::Partial(torn_bytes),
                tear_at,
                Some(1),
            );
            let _stuck = failpoint::scoped(
                "wal.rollback",
                failpoint::Action::Error("crash".into()),
            );
            let mut wal = WalWriter::open(&path, 0, false).unwrap();
            let mut committed = 0u64;
            for (i, v) in vectors.iter().enumerate() {
                let record = WalRecord::Ingest { id: i as u64, vector: v.clone() };
                match wal.append(&record) {
                    Ok(()) => committed += 1,
                    Err(e) => {
                        prop_assert!(matches!(e, StoreError::Wedged { .. }), "got: {}", e);
                        break;
                    }
                }
            }
            prop_assert_eq!(committed, tear_at, "appends before the tear committed");
            prop_assert!(wal.is_wedged());
            prop_assert_eq!(wal.committed_len(), ends_before(&path, tear_at));
        }

        // Replay trusts only whole CRC-valid frames.
        let replayed = replay(&path).unwrap();
        prop_assert_eq!(replayed.records.len() as u64, tear_at);
        prop_assert_eq!(replayed.truncated, torn_bytes > 0);
        for (i, record) in replayed.records.iter().enumerate() {
            let WalRecord::Ingest { id, vector } = record else {
                prop_assert!(false, "only Ingest records were written");
                unreachable!()
            };
            prop_assert_eq!(*id, i as u64);
            for (a, b) in vector.iter().zip(vectors[i].iter()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        // Reopening at the valid prefix truncates the tear; the torn
        // record and the rest append cleanly (failpoints now disarmed).
        failpoint::clear_all();
        {
            let mut wal = WalWriter::open(&path, replayed.valid_len, false).unwrap();
            for (i, v) in vectors.iter().enumerate().skip(tear_at as usize) {
                wal.append(&WalRecord::Ingest { id: i as u64, vector: v.clone() }).unwrap();
            }
            wal.sync().unwrap();
        }
        let again = replay(&path).unwrap();
        prop_assert!(!again.truncated);
        prop_assert_eq!(again.records.len(), vectors.len());
        std::fs::remove_file(&path).ok();
    }

    /// Injected fsync errors under fsync-on-commit: each failed append
    /// commits nothing (rolled back), each successful append is
    /// replayable, and the final log holds exactly the successes.
    #[test]
    fn injected_fsync_errors_commit_nothing(
        vectors in (1usize..4).prop_flat_map(|dim| {
            prop::collection::vec(prop::collection::vec(-1.0e6..1.0e6f64, dim), 2..10)
        }),
        fail_every in 2u64..4,
    ) {
        let _serial = failpoint::test_lock();
        failpoint::clear_all();
        let path = scratch("prop_fsync");
        std::fs::remove_file(&path).ok();

        let mut expected: Vec<u64> = Vec::new();
        {
            let mut wal = WalWriter::open(&path, 0, true).unwrap();
            for (i, v) in vectors.iter().enumerate() {
                // Deterministically fail every `fail_every`-th fsync.
                let fail_this = (i as u64) % fail_every == fail_every - 1;
                let fp = fail_this.then(|| failpoint::scoped_counted(
                    "wal.fsync",
                    failpoint::Action::Error("EIO".into()),
                    0,
                    Some(1),
                ));
                let record = WalRecord::Ingest { id: i as u64, vector: v.clone() };
                match wal.append(&record) {
                    Ok(()) => {
                        prop_assert!(!fail_this, "armed fsync failure must fail the append");
                        expected.push(i as u64);
                    }
                    Err(e) => {
                        prop_assert!(fail_this, "unexpected failure: {}", e);
                        prop_assert!(matches!(e, StoreError::Io(_)), "got: {}", e);
                    }
                }
                drop(fp);
            }
        }

        let replayed = replay(&path).unwrap();
        prop_assert!(!replayed.truncated, "rollbacks left a clean log");
        let got: Vec<u64> = replayed.records.iter().map(|r| {
            let WalRecord::Ingest { id, .. } = r else { panic!("only Ingest written") };
            *id
        }).collect();
        prop_assert_eq!(got, expected);
        std::fs::remove_file(&path).ok();
    }
}

/// Byte offset where frame `n` would start, by scanning length
/// prefixes — independent of the writer's bookkeeping.
fn ends_before(path: &std::path::Path, n: u64) -> u64 {
    let bytes = std::fs::read(path).unwrap_or_default();
    let mut at = 0u64;
    let mut frames = 0u64;
    while frames < n && (at as usize) + 8 <= bytes.len() {
        let len =
            u32::from_le_bytes(bytes[at as usize..at as usize + 4].try_into().unwrap()) as u64;
        at += 8 + len;
        frames += 1;
    }
    at
}
