//! Property tests for the durable storage layer.
//!
//! The load-bearing invariants:
//!
//! - **WAL prefix truncation**: cut the log at *any* byte boundary —
//!   including mid-header and mid-payload — and replay recovers exactly
//!   the records whose frames fully survived, never panics, and leaves
//!   the log appendable.
//! - **Segment round-trip**: write → reopen returns bitwise-identical
//!   vectors (`f64::to_bits` equality, not epsilon equality).
//!
//! CI runs these with `PROPTEST_CASES=256` in the `storage-recovery`
//! job; the default is lighter for local `cargo test`.

use proptest::prelude::*;
use qcluster_store::{
    replay, write_segment, Crc32, SegmentReader, StoreConfig, VectorStore, WalRecord, WalWriter,
    VERSION_V2,
};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Unique scratch path per proptest case (cases run sequentially per
/// test, but distinct tests run in parallel threads).
fn scratch(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("qstore_prop_{tag}_{}_{n}", std::process::id()))
}

/// Vectors sharing one dimensionality — ragged sets are invalid input.
fn uniform_vectors(max_n: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    (1usize..6).prop_flat_map(move |dim| {
        prop::collection::vec(prop::collection::vec(-1.0e9..1.0e9f64, dim), 1..max_n)
    })
}

/// Writes a legacy row-major format-v1 segment byte-for-byte, without
/// going through `SegmentWriter` (which only emits v2). Keeps the
/// migration tests honest: the input is the historical on-disk layout,
/// not whatever today's writer produces.
fn write_v1_segment(path: &Path, dim: usize, vectors: &[Vec<f64>]) {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(b"QSEG");
    bytes.extend_from_slice(&1u32.to_le_bytes());
    bytes.extend_from_slice(&(dim as u32).to_le_bytes());
    bytes.extend_from_slice(&0u32.to_le_bytes());
    let mut crc = Crc32::new();
    for v in vectors {
        assert_eq!(v.len(), dim);
        for &x in v {
            let b = x.to_le_bytes();
            crc.update(&b);
            bytes.extend_from_slice(&b);
        }
    }
    bytes.extend_from_slice(&(vectors.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&(dim as u32).to_le_bytes());
    bytes.extend_from_slice(&crc.finish().to_le_bytes());
    bytes.extend_from_slice(b"SEGF");
    std::fs::write(path, bytes).unwrap();
}

fn assert_bitwise_eq(got: &[Vec<f64>], want: &[Vec<f64>]) -> Result<(), TestCaseError> {
    prop_assert_eq!(got.len(), want.len());
    for (a, b) in got.iter().zip(want.iter()) {
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }
    Ok(())
}

/// Frame sizes of a serialized WAL, by scanning its length prefixes.
/// Independent of the writer's bookkeeping, so the test cross-checks
/// the on-disk layout rather than trusting the implementation.
fn frame_ends(bytes: &[u8]) -> Vec<usize> {
    let mut ends = Vec::new();
    let mut at = 0usize;
    while at + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
        let end = at + 8 + len;
        if end > bytes.len() {
            break;
        }
        ends.push(end);
        at = end;
    }
    ends
}

proptest! {
    #![proptest_config(ProptestConfig::default())]

    /// Any prefix truncation of a WAL — mid-record included — recovers
    /// exactly the committed prefix: every frame wholly inside the cut
    /// survives, everything after is discarded, and nothing panics.
    #[test]
    fn wal_prefix_truncation_recovers_committed_prefix(
        vectors in uniform_vectors(24),
        cut_fraction in 0.0..1.0f64,
    ) {
        let path = scratch("wal_trunc");
        std::fs::remove_file(&path).ok();
        {
            let mut wal = WalWriter::open(&path, 0, false).unwrap();
            for (i, v) in vectors.iter().enumerate() {
                wal.append(&WalRecord::Ingest { id: i as u64, vector: v.clone() }).unwrap();
            }
            wal.sync().unwrap();
        }

        let bytes = std::fs::read(&path).unwrap();
        let ends = frame_ends(&bytes);
        prop_assert_eq!(ends.len(), vectors.len(), "one frame per record");

        // Cut anywhere in [0, len] — byte-granular, so most cuts land
        // mid-record.
        let cut = ((bytes.len() as f64) * cut_fraction).floor() as usize;
        let cut = cut.min(bytes.len());
        std::fs::write(&path, &bytes[..cut]).unwrap();

        let expected_records = ends.iter().filter(|&&e| e <= cut).count();
        let expected_valid = ends.iter().copied().filter(|&e| e <= cut).max().unwrap_or(0);

        let replayed = replay(&path).unwrap();
        prop_assert_eq!(replayed.records.len(), expected_records);
        prop_assert_eq!(replayed.valid_len, expected_valid as u64);
        prop_assert_eq!(replayed.truncated, expected_valid < cut);
        for (i, record) in replayed.records.iter().enumerate() {
            let WalRecord::Ingest { id, vector } = record else {
                prop_assert!(false, "only Ingest records were written");
                unreachable!()
            };
            prop_assert_eq!(*id, i as u64);
            prop_assert_eq!(vector.len(), vectors[i].len());
            for (a, b) in vector.iter().zip(vectors[i].iter()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        // The healed log accepts new appends and replays them.
        {
            let mut wal = WalWriter::open(&path, replayed.valid_len, false).unwrap();
            wal.append(&WalRecord::Checkpoint { durable_vectors: 7 }).unwrap();
            wal.sync().unwrap();
        }
        let again = replay(&path).unwrap();
        prop_assert_eq!(again.records.len(), expected_records + 1);
        prop_assert!(!again.truncated);
        std::fs::remove_file(&path).ok();
    }

    /// Segment write → reopen returns bitwise-identical vectors, both
    /// through paged reads and `read_all`.
    #[test]
    fn segment_roundtrip_is_bitwise_exact(vectors in uniform_vectors(48)) {
        let path = scratch("seg_roundtrip");
        std::fs::remove_file(&path).ok();
        let dim = vectors[0].len();
        write_segment(&path, dim, &vectors).unwrap();

        let mut reader = SegmentReader::open_with_page_size(&path, 7).unwrap();
        prop_assert_eq!(reader.dim(), dim);
        prop_assert_eq!(reader.count(), vectors.len() as u64);
        let back = reader.read_all().unwrap();
        prop_assert_eq!(back.len(), vectors.len());
        for (a, b) in back.iter().zip(vectors.iter()) {
            prop_assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b.iter()) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        std::fs::remove_file(&path).ok();
    }

    /// Full-store crash recovery over format-v2 segments: bootstrap
    /// seals a v2 segment, ingests land in the WAL, and a byte-granular
    /// WAL cut recovers the segment untouched plus exactly the committed
    /// ingest prefix — all bitwise.
    #[test]
    fn v2_store_recovers_segment_plus_committed_wal_prefix(
        base in uniform_vectors(20),
        extra in 1usize..24,
        cut_fraction in 0.0..1.0f64,
    ) {
        let dir = scratch("v2_recovery");
        std::fs::remove_dir_all(&dir).ok();
        let dim = base[0].len();
        let tail: Vec<Vec<f64>> = (0..extra)
            .map(|i| (0..dim).map(|j| ((i * 31 + j * 7) as f64).mul_add(0.37, -4.0)).collect())
            .collect();
        {
            let (mut store, _) = VectorStore::open(&dir, StoreConfig::default()).unwrap();
            store.bootstrap(&base).unwrap();
            for v in &tail {
                store.ingest(v.clone()).unwrap();
            }
            store.sync().unwrap();
        }
        let seg_version = SegmentReader::open(&dir.join("seg-000000.qseg"))
            .unwrap()
            .version();
        prop_assert_eq!(seg_version, VERSION_V2);

        // Cut the WAL anywhere; bootstrap writes no WAL traffic, so
        // every frame is one ingest.
        let wal_path = dir.join("wal.log");
        let bytes = std::fs::read(&wal_path).unwrap();
        let ends = frame_ends(&bytes);
        prop_assert_eq!(ends.len(), tail.len());
        let cut = (((bytes.len() as f64) * cut_fraction).floor() as usize).min(bytes.len());
        std::fs::write(&wal_path, &bytes[..cut]).unwrap();
        let survived = ends.iter().filter(|&&e| e <= cut).count();

        let (_store, recovered) = VectorStore::open(&dir, StoreConfig::default()).unwrap();
        prop_assert_eq!(recovered.segment_vectors, base.len());
        let want: Vec<Vec<f64>> = base
            .iter()
            .chain(tail.iter().take(survived))
            .cloned()
            .collect();
        assert_bitwise_eq(&recovered.vectors, &want)?;
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Legacy v1 segments open bitwise-intact, and one compaction
    /// migrates every one of them to v2 in place — same path, same ids,
    /// same bits — after which recovery still returns the full corpus.
    #[test]
    fn v1_segments_open_and_migrate_to_v2_on_compaction(
        old in uniform_vectors(20),
        newer_n in 0usize..12,
    ) {
        let dir = scratch("v1_migrate");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let dim = old[0].len();
        write_v1_segment(&dir.join("seg-000000.qseg"), dim, &old);
        let newer: Vec<Vec<f64>> = (0..newer_n)
            .map(|i| (0..dim).map(|j| ((i * 13 + j) as f64).mul_add(-0.21, 8.5)).collect())
            .collect();

        let stats = {
            let (mut store, recovered) =
                VectorStore::open(&dir, StoreConfig::default()).unwrap();
            // The legacy segment opens bitwise-intact pre-migration.
            assert_bitwise_eq(&recovered.vectors, &old)?;
            for v in &newer {
                store.ingest(v.clone()).unwrap();
            }
            store.compact().unwrap()
        };
        prop_assert_eq!(stats.migrated_segments, 1);

        // Every segment on disk is now v2; a second compaction finds
        // nothing left to migrate.
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            if path.extension().is_some_and(|e| e == "qseg") {
                prop_assert_eq!(SegmentReader::open(&path).unwrap().version(), VERSION_V2);
            }
        }
        let (mut store, recovered) = VectorStore::open(&dir, StoreConfig::default()).unwrap();
        let want: Vec<Vec<f64>> = old.iter().chain(newer.iter()).cloned().collect();
        prop_assert_eq!(recovered.segment_vectors, want.len());
        assert_bitwise_eq(&recovered.vectors, &want)?;
        prop_assert_eq!(store.compact().unwrap().migrated_segments, 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
