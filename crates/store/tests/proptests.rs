//! Property tests for the durable storage layer.
//!
//! The load-bearing invariants:
//!
//! - **WAL prefix truncation**: cut the log at *any* byte boundary —
//!   including mid-header and mid-payload — and replay recovers exactly
//!   the records whose frames fully survived, never panics, and leaves
//!   the log appendable.
//! - **Segment round-trip**: write → reopen returns bitwise-identical
//!   vectors (`f64::to_bits` equality, not epsilon equality).
//!
//! CI runs these with `PROPTEST_CASES=256` in the `storage-recovery`
//! job; the default is lighter for local `cargo test`.

use proptest::prelude::*;
use qcluster_store::{replay, write_segment, SegmentReader, WalRecord, WalWriter};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Unique scratch path per proptest case (cases run sequentially per
/// test, but distinct tests run in parallel threads).
fn scratch(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("qstore_prop_{tag}_{}_{n}", std::process::id()))
}

/// Vectors sharing one dimensionality — ragged sets are invalid input.
fn uniform_vectors(max_n: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    (1usize..6).prop_flat_map(move |dim| {
        prop::collection::vec(prop::collection::vec(-1.0e9..1.0e9f64, dim), 1..max_n)
    })
}

/// Frame sizes of a serialized WAL, by scanning its length prefixes.
/// Independent of the writer's bookkeeping, so the test cross-checks
/// the on-disk layout rather than trusting the implementation.
fn frame_ends(bytes: &[u8]) -> Vec<usize> {
    let mut ends = Vec::new();
    let mut at = 0usize;
    while at + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
        let end = at + 8 + len;
        if end > bytes.len() {
            break;
        }
        ends.push(end);
        at = end;
    }
    ends
}

proptest! {
    #![proptest_config(ProptestConfig::default())]

    /// Any prefix truncation of a WAL — mid-record included — recovers
    /// exactly the committed prefix: every frame wholly inside the cut
    /// survives, everything after is discarded, and nothing panics.
    #[test]
    fn wal_prefix_truncation_recovers_committed_prefix(
        vectors in uniform_vectors(24),
        cut_fraction in 0.0..1.0f64,
    ) {
        let path = scratch("wal_trunc");
        std::fs::remove_file(&path).ok();
        {
            let mut wal = WalWriter::open(&path, 0, false).unwrap();
            for (i, v) in vectors.iter().enumerate() {
                wal.append(&WalRecord::Ingest { id: i as u64, vector: v.clone() }).unwrap();
            }
            wal.sync().unwrap();
        }

        let bytes = std::fs::read(&path).unwrap();
        let ends = frame_ends(&bytes);
        prop_assert_eq!(ends.len(), vectors.len(), "one frame per record");

        // Cut anywhere in [0, len] — byte-granular, so most cuts land
        // mid-record.
        let cut = ((bytes.len() as f64) * cut_fraction).floor() as usize;
        let cut = cut.min(bytes.len());
        std::fs::write(&path, &bytes[..cut]).unwrap();

        let expected_records = ends.iter().filter(|&&e| e <= cut).count();
        let expected_valid = ends.iter().copied().filter(|&e| e <= cut).max().unwrap_or(0);

        let replayed = replay(&path).unwrap();
        prop_assert_eq!(replayed.records.len(), expected_records);
        prop_assert_eq!(replayed.valid_len, expected_valid as u64);
        prop_assert_eq!(replayed.truncated, expected_valid < cut);
        for (i, record) in replayed.records.iter().enumerate() {
            let WalRecord::Ingest { id, vector } = record else {
                prop_assert!(false, "only Ingest records were written");
                unreachable!()
            };
            prop_assert_eq!(*id, i as u64);
            prop_assert_eq!(vector.len(), vectors[i].len());
            for (a, b) in vector.iter().zip(vectors[i].iter()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        // The healed log accepts new appends and replays them.
        {
            let mut wal = WalWriter::open(&path, replayed.valid_len, false).unwrap();
            wal.append(&WalRecord::Checkpoint { durable_vectors: 7 }).unwrap();
            wal.sync().unwrap();
        }
        let again = replay(&path).unwrap();
        prop_assert_eq!(again.records.len(), expected_records + 1);
        prop_assert!(!again.truncated);
        std::fs::remove_file(&path).ok();
    }

    /// Segment write → reopen returns bitwise-identical vectors, both
    /// through paged reads and `read_all`.
    #[test]
    fn segment_roundtrip_is_bitwise_exact(vectors in uniform_vectors(48)) {
        let path = scratch("seg_roundtrip");
        std::fs::remove_file(&path).ok();
        let dim = vectors[0].len();
        write_segment(&path, dim, &vectors).unwrap();

        let mut reader = SegmentReader::open_with_page_size(&path, 7).unwrap();
        prop_assert_eq!(reader.dim(), dim);
        prop_assert_eq!(reader.count(), vectors.len() as u64);
        let back = reader.read_all().unwrap();
        prop_assert_eq!(back.len(), vectors.len());
        for (a, b) in back.iter().zip(vectors.iter()) {
            prop_assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b.iter()) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        std::fs::remove_file(&path).ok();
    }
}
