//! Structured storage errors.

use std::path::PathBuf;

/// Everything that can go wrong in the storage layer.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// A file's contents failed validation (bad magic, CRC mismatch,
    /// inconsistent counts, …). Carries the offending path so operators
    /// can find the damaged file.
    Corrupt {
        /// The file that failed validation.
        path: PathBuf,
        /// What exactly was wrong.
        detail: String,
    },
    /// The caller broke an API contract (dimension mismatch, bootstrap
    /// of a non-empty store, …).
    InvalidArg(String),
    /// A failed append could not be rolled back, so the on-disk tail is
    /// in an unknown state. The writer refuses further appends; the
    /// store must be reopened (replay truncates the damaged tail).
    Wedged {
        /// Why the writer wedged (the rollback failure).
        detail: String,
    },
}

impl StoreError {
    /// A corruption error for `path`.
    pub fn corrupt(path: impl Into<PathBuf>, detail: impl Into<String>) -> Self {
        StoreError::Corrupt {
            path: path.into(),
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "I/O failure: {e}"),
            StoreError::Corrupt { path, detail } => {
                write!(f, "corrupt file {}: {detail}", path.display())
            }
            StoreError::InvalidArg(msg) => write!(f, "invalid argument: {msg}"),
            StoreError::Wedged { detail } => {
                write!(f, "WAL writer wedged (reopen the store): {detail}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Result alias for storage operations.
pub type Result<T> = std::result::Result<T, StoreError>;
