//! The durable vector store: a directory of sealed segments plus one
//! write-ahead log, with crash recovery and WAL → segment compaction.
//!
//! Directory layout:
//!
//! ```text
//! <dir>/seg-000000.qseg   sealed, immutable, CRC-validated segments
//! <dir>/seg-000001.qseg   (id ranges are contiguous in file order)
//! <dir>/wal.log           mutations since the last compaction
//! ```
//!
//! **Recovery** reads every segment in order (ids are positional), then
//! replays the WAL's committed prefix: `Ingest` records extend the
//! corpus, `SessionSnapshot` records rebuild the session registry
//! (latest per id wins; tombstones drop), and a torn WAL tail is
//! truncated. `Ingest` records carry their assigned global id, so a
//! compaction that crashed after sealing a segment but before folding
//! the WAL replays idempotently — ids already covered by segments are
//! skipped.
//!
//! **Compaction** folds the WAL tail into a freshly sealed segment
//! (staged + atomic rename), then rewrites the WAL to hold only what
//! must outlive the fold: live session snapshots and a checkpoint.

use crate::error::{Result, StoreError};
use crate::segment::{write_segment, SegmentReader, VERSION_V2};
use crate::wal::{replay, WalRecord, WalWriter};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Tunables for one store instance.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Fsync the WAL on every committed mutation (`true` = a returned
    /// ingest survives power loss; `false` trades durability for
    /// throughput and syncs only on compaction and shutdown).
    pub fsync_on_commit: bool,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            fsync_on_commit: true,
        }
    }
}

/// A session restored from WAL snapshots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionState {
    /// Session id.
    pub session: u64,
    /// Hosted engine name.
    pub engine: String,
    /// Feed rounds completed at the last snapshot.
    pub feeds: u64,
}

/// Everything recovery reconstructs from `segments + WAL`.
#[derive(Debug)]
pub struct RecoveredState {
    /// The full corpus in id order: segment vectors, then the WAL tail.
    pub vectors: Vec<Vec<f64>>,
    /// How many of [`Self::vectors`] came from sealed segments (the
    /// rest were replayed from the WAL — callers restoring a
    /// [`qcluster_index::DynamicIndex`] pass this as the indexed
    /// prefix).
    pub segment_vectors: usize,
    /// Live sessions, ascending by id.
    pub sessions: Vec<SessionState>,
    /// `true` when a torn WAL tail was discarded during replay.
    pub wal_truncated: bool,
    /// The replication term this node last acknowledged (0 when the
    /// node has never seen a fenced leader).
    pub term: u64,
}

/// Counters and gauges describing one store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// WAL frames appended since open.
    pub wal_appends: u64,
    /// WAL fsyncs since open.
    pub wal_fsyncs: u64,
    /// Sealed segment files.
    pub segments: u64,
    /// Vectors sealed in segments.
    pub segment_vectors: u64,
    /// Vectors still only in the WAL.
    pub wal_vectors: u64,
}

/// Result of one compaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionStats {
    /// Vectors folded from the WAL into the new segment (0 = no new
    /// segment was written).
    pub folded_vectors: u64,
    /// Sealed segments after the fold.
    pub segments: u64,
    /// Records in the rewritten WAL (session snapshots + checkpoint).
    pub wal_records: u64,
    /// Legacy v1 segments rewritten to format v2 during this fold.
    pub migrated_segments: u64,
}

/// The durable segment + WAL vector store.
#[derive(Debug)]
pub struct VectorStore {
    dir: PathBuf,
    config: StoreConfig,
    dim: Option<usize>,
    /// Sealed segment paths in id order.
    segments: Vec<PathBuf>,
    /// Format version per sealed segment (parallel to `segments`).
    segment_versions: Vec<u32>,
    /// Total vectors across sealed segments.
    segment_vectors: u64,
    /// Vectors living only in the WAL (id order), kept resident so
    /// compaction can seal them without re-reading the log.
    wal_tail: Vec<Vec<f64>>,
    /// Latest snapshot per session (including tombstones).
    sessions: BTreeMap<u64, (SessionState, bool)>,
    wal: WalWriter,
    /// Counter bases carried across WAL rewrites.
    appends_base: u64,
    fsyncs_base: u64,
    /// The highest replication term durably acknowledged by this node.
    term: u64,
}

fn segment_index(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let rest = name.strip_prefix("seg-")?.strip_suffix(".qseg")?;
    rest.parse().ok()
}

/// The term file: 8 bytes of little-endian term + a CRC-32 of those
/// bytes. A partial staging write is swept as a `.tmp` on open; the
/// published file is only ever replaced by an atomic rename, so the
/// term can never tear — it is either the old value or the new one.
const TERM_FILE: &str = "term";

fn read_term_file(dir: &Path) -> Result<u64> {
    let path = dir.join(TERM_FILE);
    let bytes = match std::fs::read(&path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e.into()),
    };
    if bytes.len() != 12 {
        return Err(StoreError::corrupt(
            &path,
            format!("term file holds {} bytes, expected 12", bytes.len()),
        ));
    }
    let term = u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes"));
    let stored_crc = u32::from_le_bytes(bytes[8..].try_into().expect("4 bytes"));
    if crate::codec::Crc32::checksum(&bytes[..8]) != stored_crc {
        return Err(StoreError::corrupt(&path, "term file CRC mismatch"));
    }
    Ok(term)
}

fn write_term_file(dir: &Path, term: u64) -> Result<()> {
    let mut bytes = Vec::with_capacity(12);
    bytes.extend_from_slice(&term.to_le_bytes());
    let crc = crate::codec::Crc32::checksum(&term.to_le_bytes());
    bytes.extend_from_slice(&crc.to_le_bytes());
    let staged = dir.join(format!("{TERM_FILE}.tmp"));
    {
        use std::io::Write as _;
        let mut file = std::fs::File::create(&staged)?;
        file.write_all(&bytes)?;
        file.sync_all()?;
    }
    std::fs::rename(&staged, dir.join(TERM_FILE))?;
    Ok(())
}

impl VectorStore {
    /// Opens (or initializes) a store directory and recovers its state.
    ///
    /// # Errors
    ///
    /// I/O failures, or `Corrupt` for damaged segments / an undecodable
    /// WAL frame. A torn WAL *tail* is not an error — it is truncated
    /// and reported via [`RecoveredState::wal_truncated`].
    pub fn open(dir: &Path, config: StoreConfig) -> Result<(Self, RecoveredState)> {
        std::fs::create_dir_all(dir)?;

        // Collect sealed segments; sweep stale staging files.
        let mut segments: Vec<PathBuf> = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "tmp") {
                let _ = std::fs::remove_file(&path);
            } else if segment_index(&path).is_some() {
                segments.push(path);
            }
        }
        segments.sort();

        let mut vectors: Vec<Vec<f64>> = Vec::new();
        let mut dim: Option<usize> = None;
        let mut segment_versions = Vec::with_capacity(segments.len());
        for path in &segments {
            let mut reader = SegmentReader::open(path)?;
            match dim {
                None => dim = Some(reader.dim()),
                Some(d) if d != reader.dim() => {
                    return Err(StoreError::corrupt(
                        path,
                        format!("segment dim {} disagrees with store dim {d}", reader.dim()),
                    ));
                }
                Some(_) => {}
            }
            segment_versions.push(reader.version());
            let flat = reader.read_all_flat()?;
            vectors.extend(flat.chunks_exact(reader.dim()).map(<[f64]>::to_vec));
        }
        let segment_vectors = vectors.len() as u64;

        // Replay the WAL's committed prefix.
        let wal_path = dir.join("wal.log");
        let replayed = replay(&wal_path)?;
        let mut wal_tail: Vec<Vec<f64>> = Vec::new();
        let mut sessions: BTreeMap<u64, (SessionState, bool)> = BTreeMap::new();
        for record in replayed.records {
            match record {
                WalRecord::Ingest { id, vector } => {
                    if id < segment_vectors {
                        continue; // sealed by a compaction that crashed pre-fold
                    }
                    let expected = segment_vectors + wal_tail.len() as u64;
                    if id != expected {
                        return Err(StoreError::corrupt(
                            &wal_path,
                            format!("ingest id {id} but expected {expected}"),
                        ));
                    }
                    match dim {
                        None => dim = Some(vector.len()),
                        Some(d) if d != vector.len() => {
                            return Err(StoreError::corrupt(
                                &wal_path,
                                format!("ingest dim {} disagrees with store dim {d}", vector.len()),
                            ));
                        }
                        Some(_) => {}
                    }
                    wal_tail.push(vector);
                }
                WalRecord::SessionSnapshot {
                    session,
                    engine,
                    feeds,
                    live,
                } => {
                    sessions.insert(
                        session,
                        (
                            SessionState {
                                session,
                                engine,
                                feeds,
                            },
                            live,
                        ),
                    );
                }
                WalRecord::Checkpoint { durable_vectors } => {
                    if durable_vectors > segment_vectors {
                        return Err(StoreError::corrupt(
                            &wal_path,
                            format!(
                                "checkpoint claims {durable_vectors} sealed vectors but \
                                 segments hold {segment_vectors}"
                            ),
                        ));
                    }
                }
            }
        }
        vectors.extend(wal_tail.iter().cloned());

        let term = read_term_file(dir)?;
        let wal = WalWriter::open(&wal_path, replayed.valid_len, config.fsync_on_commit)?;
        let live_sessions = sessions
            .values()
            .filter(|(_, live)| *live)
            .map(|(s, _)| s.clone())
            .collect();
        let store = VectorStore {
            dir: dir.to_path_buf(),
            config,
            dim,
            segments,
            segment_versions,
            segment_vectors,
            wal_tail,
            sessions,
            wal,
            appends_base: 0,
            fsyncs_base: 0,
            term,
        };
        let recovered = RecoveredState {
            vectors,
            segment_vectors: segment_vectors as usize,
            sessions: live_sessions,
            wal_truncated: replayed.truncated,
            term,
        };
        Ok((store, recovered))
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Vector dimensionality, once known (first segment or ingest).
    pub fn dim(&self) -> Option<usize> {
        self.dim
    }

    /// Total vectors (sealed + WAL tail).
    pub fn total_vectors(&self) -> u64 {
        self.segment_vectors + self.wal_tail.len() as u64
    }

    /// The highest replication term this node durably acknowledged.
    pub fn term(&self) -> u64 {
        self.term
    }

    /// Durably advances the replication term. Terms are monotonic: a
    /// `term` at or below the current one is a no-op (idempotent
    /// re-acknowledgement), never a regression.
    ///
    /// # Errors
    ///
    /// I/O failures staging or renaming the term file.
    pub fn set_term(&mut self, term: u64) -> Result<()> {
        if term <= self.term {
            return Ok(());
        }
        write_term_file(&self.dir, term)?;
        self.term = term;
        Ok(())
    }

    /// `true` when the store holds no vectors yet.
    pub fn is_empty(&self) -> bool {
        self.total_vectors() == 0
    }

    /// Seeds an empty store with an initial corpus, sealed directly into
    /// a segment (no WAL traffic).
    ///
    /// # Errors
    ///
    /// `InvalidArg` when the store already holds vectors or on ragged /
    /// empty input, otherwise I/O failures.
    pub fn bootstrap(&mut self, points: &[Vec<f64>]) -> Result<()> {
        if !self.is_empty() {
            return Err(StoreError::InvalidArg(
                "bootstrap requires an empty store".into(),
            ));
        }
        let Some(first) = points.first() else {
            return Err(StoreError::InvalidArg(
                "bootstrap needs at least one vector".into(),
            ));
        };
        let dim = first.len();
        if points.iter().any(|p| p.len() != dim) {
            return Err(StoreError::InvalidArg(
                "bootstrap vectors must share one dimensionality".into(),
            ));
        }
        let path = self.next_segment_path();
        write_segment(&path, dim, points)?;
        self.segments.push(path);
        self.segment_versions.push(VERSION_V2);
        self.segment_vectors = points.len() as u64;
        self.dim = Some(dim);
        Ok(())
    }

    /// Durably ingests one vector, returning its global corpus id.
    ///
    /// # Errors
    ///
    /// `InvalidArg` on dimensionality mismatch or non-finite values,
    /// otherwise I/O failures.
    pub fn ingest(&mut self, vector: Vec<f64>) -> Result<u64> {
        if let Some(d) = self.dim {
            if vector.len() != d {
                return Err(StoreError::InvalidArg(format!(
                    "vector dim {} but store dim {d}",
                    vector.len()
                )));
            }
        } else if vector.is_empty() {
            return Err(StoreError::InvalidArg(
                "cannot ingest an empty vector".into(),
            ));
        }
        if vector.iter().any(|v| !v.is_finite()) {
            return Err(StoreError::InvalidArg(
                "cannot ingest non-finite components".into(),
            ));
        }
        let id = self.total_vectors();
        self.wal.append(&WalRecord::Ingest {
            id,
            vector: vector.clone(),
        })?;
        self.dim.get_or_insert(vector.len());
        self.wal_tail.push(vector);
        Ok(id)
    }

    /// Durably records the latest view of a session (`live = false`
    /// tombstones it for recovery).
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn record_session(
        &mut self,
        session: u64,
        engine: &str,
        feeds: u64,
        live: bool,
    ) -> Result<()> {
        self.wal.append(&WalRecord::SessionSnapshot {
            session,
            engine: engine.to_string(),
            feeds,
            live,
        })?;
        self.sessions.insert(
            session,
            (
                SessionState {
                    session,
                    engine: engine.to_string(),
                    feeds,
                },
                live,
            ),
        );
        Ok(())
    }

    /// Folds the WAL into a freshly sealed segment and resets the log.
    ///
    /// # Errors
    ///
    /// I/O failures. The segment seal is atomic; a crash between the
    /// seal and the WAL rewrite is healed on the next open (ingest ids
    /// below the segment total are skipped during replay).
    pub fn compact(&mut self) -> Result<CompactionStats> {
        let folded = self.wal_tail.len() as u64;
        if folded > 0 {
            let dim = self.dim.expect("dim known when vectors exist");
            let path = self.next_segment_path();
            write_segment(&path, dim, &self.wal_tail)?;
            self.segments.push(path);
            self.segment_versions.push(VERSION_V2);
            self.segment_vectors += folded;
            self.wal_tail.clear();
        }

        // Migrate any legacy v1 segments to format v2 in place: read,
        // re-seal (staged + atomic rename over the old file), same ids.
        // Idempotent across crashes — an un-renamed `.tmp` is swept on
        // the next open and the v1 original stays valid until then.
        let mut migrated = 0u64;
        for i in 0..self.segments.len() {
            if self.segment_versions[i] != VERSION_V2 {
                let path = self.segments[i].clone();
                let mut reader = SegmentReader::open(&path)?;
                let dim = reader.dim();
                let flat = reader.read_all_flat()?;
                let rows: Vec<Vec<f64>> = flat.chunks_exact(dim).map(<[f64]>::to_vec).collect();
                write_segment(&path, dim, &rows)?;
                self.segment_versions[i] = VERSION_V2;
                migrated += 1;
            }
        }

        // Failpoint `store.compact.crash`: abort in the crash window
        // between the atomic segment seal and the WAL rewrite — the
        // WAL still holds ingest records for ids the new segment now
        // covers, which the next open must skip idempotently.
        if let Some(action) = qcluster_failpoint::evaluate_sleepy("store.compact.crash") {
            return Err(crate::wal::injected_io("store.compact.crash", action).into());
        }

        // The rewritten WAL keeps only live-session snapshots + checkpoint.
        let mut keep: Vec<WalRecord> = self
            .sessions
            .values()
            .filter(|(_, live)| *live)
            .map(|(s, _)| WalRecord::SessionSnapshot {
                session: s.session,
                engine: s.engine.clone(),
                feeds: s.feeds,
                live: true,
            })
            .collect();
        keep.push(WalRecord::Checkpoint {
            durable_vectors: self.segment_vectors,
        });
        self.sessions.retain(|_, (_, live)| *live);

        self.appends_base += self.wal.appends();
        self.fsyncs_base += self.wal.fsyncs();
        self.wal = WalWriter::rewrite(
            &self.dir.join("wal.log"),
            &keep,
            self.config.fsync_on_commit,
        )?;

        Ok(CompactionStats {
            folded_vectors: folded,
            segments: self.segments.len() as u64,
            wal_records: keep.len() as u64,
            migrated_segments: migrated,
        })
    }

    /// Forces buffered WAL bytes to stable storage (a no-op under
    /// fsync-on-commit, where every append already synced).
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn sync(&mut self) -> Result<()> {
        self.wal.sync()
    }

    /// Current counters and gauges.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            wal_appends: self.appends_base + self.wal.appends(),
            wal_fsyncs: self.fsyncs_base + self.wal.fsyncs(),
            segments: self.segments.len() as u64,
            segment_vectors: self.segment_vectors,
            wal_vectors: self.wal_tail.len() as u64,
        }
    }

    fn next_segment_path(&self) -> PathBuf {
        let next = self
            .segments
            .iter()
            .filter_map(|p| segment_index(p))
            .max()
            .map_or(0, |i| i + 1);
        self.dir.join(format!("seg-{next:06}.qseg"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_store(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("qstore_store_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn vecs(n: usize, dim: usize, offset: f64) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| (0..dim).map(|d| offset + (i * dim + d) as f64).collect())
            .collect()
    }

    #[test]
    fn bootstrap_ingest_reopen_recovers_everything() {
        let dir = tmp_store("lifecycle");
        let base = vecs(20, 3, 0.0);
        {
            let (mut store, recovered) = VectorStore::open(&dir, StoreConfig::default()).unwrap();
            assert!(recovered.vectors.is_empty());
            store.bootstrap(&base).unwrap();
            for (i, v) in vecs(5, 3, 100.0).into_iter().enumerate() {
                assert_eq!(store.ingest(v).unwrap(), 20 + i as u64);
            }
            store.record_session(1, "qcluster", 2, true).unwrap();
            assert_eq!(store.total_vectors(), 25);
        }
        let (store, recovered) = VectorStore::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(recovered.vectors.len(), 25);
        assert_eq!(recovered.segment_vectors, 20);
        assert_eq!(recovered.vectors[..20].to_vec(), base);
        assert_eq!(recovered.vectors[20], vec![100.0, 101.0, 102.0]);
        assert_eq!(recovered.sessions.len(), 1);
        assert_eq!(recovered.sessions[0].engine, "qcluster");
        assert!(!recovered.wal_truncated);
        assert_eq!(store.dim(), Some(3));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_seals_wal_and_survives_reopen() {
        let dir = tmp_store("compact");
        {
            let (mut store, _) = VectorStore::open(&dir, StoreConfig::default()).unwrap();
            store.bootstrap(&vecs(10, 2, 0.0)).unwrap();
            for v in vecs(7, 2, 50.0) {
                store.ingest(v).unwrap();
            }
            store.record_session(3, "qpm", 1, true).unwrap();
            store.record_session(4, "qcluster", 9, false).unwrap(); // closed
            let stats = store.compact().unwrap();
            assert_eq!(stats.folded_vectors, 7);
            assert_eq!(stats.segments, 2);
            assert_eq!(stats.wal_records, 2); // live session + checkpoint
            assert_eq!(store.stats().wal_vectors, 0);
            assert_eq!(store.stats().segment_vectors, 17);
        }
        let (_, recovered) = VectorStore::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(recovered.vectors.len(), 17);
        assert_eq!(recovered.segment_vectors, 17);
        assert_eq!(recovered.sessions.len(), 1, "tombstoned session stays dead");
        assert_eq!(recovered.sessions[0].session, 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_wal_tail_loses_only_the_uncommitted_record() {
        let dir = tmp_store("torn");
        {
            let (mut store, _) = VectorStore::open(&dir, StoreConfig::default()).unwrap();
            for v in vecs(4, 2, 0.0) {
                store.ingest(v).unwrap();
            }
        }
        // Tear the final frame mid-payload.
        let wal = dir.join("wal.log");
        let bytes = std::fs::read(&wal).unwrap();
        std::fs::write(&wal, &bytes[..bytes.len() - 3]).unwrap();
        let (mut store, recovered) = VectorStore::open(&dir, StoreConfig::default()).unwrap();
        assert!(recovered.wal_truncated);
        assert_eq!(recovered.vectors.len(), 3);
        // The store keeps working: the torn id is reassigned.
        assert_eq!(store.ingest(vec![9.0, 9.0]).unwrap(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn interrupted_compaction_replays_idempotently() {
        let dir = tmp_store("crashfold");
        {
            let (mut store, _) = VectorStore::open(&dir, StoreConfig::default()).unwrap();
            store.bootstrap(&vecs(3, 2, 0.0)).unwrap();
            for v in vecs(4, 2, 30.0) {
                store.ingest(v).unwrap();
            }
            // Simulate the crash window: seal the WAL tail into a segment
            // as compaction would, but "crash" before the WAL rewrite.
            write_segment(&dir.join("seg-000001.qseg"), 2, &vecs(4, 2, 30.0)).unwrap();
        }
        let (store, recovered) = VectorStore::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(recovered.vectors.len(), 7, "WAL ingests not double-counted");
        assert_eq!(recovered.segment_vectors, 7);
        assert_eq!(store.stats().wal_vectors, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_migrates_v1_segments_to_v2() {
        let dir = tmp_store("migrate");
        std::fs::create_dir_all(&dir).unwrap();
        // A store left behind by a pre-v2 build: one legacy segment.
        let legacy = vecs(10, 3, 0.0);
        crate::segment::write_segment_v1(&dir.join("seg-000000.qseg"), 3, &legacy);
        let (mut store, recovered) = VectorStore::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(recovered.vectors, legacy, "v1 still opens");
        for v in vecs(3, 3, 90.0) {
            store.ingest(v).unwrap();
        }
        let stats = store.compact().unwrap();
        assert_eq!(stats.migrated_segments, 1);
        assert_eq!(stats.segments, 2);
        // Both segments are now v2 and the corpus is bitwise intact.
        for (i, path) in [(0, "seg-000000.qseg"), (1, "seg-000001.qseg")] {
            let reader = SegmentReader::open(&dir.join(path)).unwrap();
            assert_eq!(reader.version(), VERSION_V2, "segment {i}");
        }
        let second = store.compact().unwrap();
        assert_eq!(second.migrated_segments, 0, "migration is one-shot");
        let (_, recovered) = VectorStore::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(recovered.vectors[..10].to_vec(), legacy);
        assert_eq!(recovered.vectors.len(), 13);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn term_survives_reopen_and_never_regresses() {
        let dir = tmp_store("term");
        {
            let (mut store, recovered) = VectorStore::open(&dir, StoreConfig::default()).unwrap();
            assert_eq!(recovered.term, 0, "fresh store starts unfenced");
            assert_eq!(store.term(), 0);
            store.set_term(3).unwrap();
            store.set_term(7).unwrap();
            // Regressions and re-acks are no-ops, not errors.
            store.set_term(5).unwrap();
            store.set_term(7).unwrap();
            assert_eq!(store.term(), 7);
        }
        let (store, recovered) = VectorStore::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(recovered.term, 7, "term survives a restart");
        assert_eq!(store.term(), 7);
        // A corrupted term file is a typed error, not a silent zero.
        std::fs::write(dir.join("term"), [0u8; 12]).unwrap();
        let corrupted = VectorStore::open(&dir, StoreConfig::default());
        assert!(matches!(corrupted, Err(StoreError::Corrupt { .. })));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_ragged_and_non_finite_ingests() {
        let dir = tmp_store("validate");
        let (mut store, _) = VectorStore::open(&dir, StoreConfig::default()).unwrap();
        store.ingest(vec![1.0, 2.0]).unwrap();
        assert!(matches!(
            store.ingest(vec![1.0]),
            Err(StoreError::InvalidArg(_))
        ));
        assert!(matches!(
            store.ingest(vec![f64::NAN, 0.0]),
            Err(StoreError::InvalidArg(_))
        ));
        assert!(matches!(
            store.bootstrap(&vecs(2, 2, 0.0)),
            Err(StoreError::InvalidArg(_)),
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
