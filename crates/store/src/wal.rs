//! The write-ahead log: length-prefixed, CRC-framed mutation records
//! with fsync-on-commit and truncated-tail-tolerant replay.
//!
//! Every mutation becomes one frame:
//!
//! ```text
//! │ payload_len u32 │ CRC-32(payload) u32 │ payload … │
//! ```
//!
//! Payloads are a tagged binary encoding (see [`WalRecord`]) — vectors
//! are raw little-endian `f64`s, so replay reproduces ingested vectors
//! bit-exactly. A crash can tear the final frame (short header, short
//! payload, or a payload that fails its CRC); [`replay`] stops at the
//! first damaged frame and reports the byte length of the valid prefix,
//! which the writer truncates to before appending again. Everything
//! before the tear — the *committed prefix* — is recovered exactly;
//! nothing after a damaged frame is trusted.
//!
//! ## Append self-healing
//!
//! [`WalWriter`] tracks the byte length of its committed prefix. When
//! an append fails partway (short write, injected torn write, fsync
//! error) the writer rolls the file back to the committed prefix with
//! `set_len`, so a failed append leaves no torn bytes behind and the
//! next append starts clean. If the rollback itself fails the tail is
//! in an unknown state: the writer *wedges* ([`StoreError::Wedged`])
//! and refuses further appends until the store is reopened — replay's
//! torn-tail truncation then restores the committed prefix.
//!
//! ## Failpoints
//!
//! Chaos tests inject faults through `qcluster-failpoint`:
//! `wal.append` (`error` = failed write, `partial:<n>` = torn write of
//! `n` bytes), `wal.fsync` (`error` = failed fsync), and
//! `wal.rollback` (`error` = failed rollback, wedging the writer).

use crate::codec::{put_f64, put_u32, put_u64, read_exact_or_eof, ByteReader, Crc32};
use crate::error::{Result, StoreError};
use qcluster_failpoint as failpoint;
use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Converts a fired failpoint into the I/O error a real fault would
/// produce. `Sleep` never reaches here (absorbed by `evaluate_sleepy`);
/// `Panic` unwinds like a real bug; `Partial` is handled at write call
/// sites and treated as a plain error elsewhere.
pub(crate) fn injected_io(site: &str, action: failpoint::Action) -> std::io::Error {
    match action {
        failpoint::Action::Error(msg) => {
            std::io::Error::other(format!("injected fault at {site}: {msg}"))
        }
        failpoint::Action::Panic(msg) => panic!("injected panic at {site}: {msg}"),
        failpoint::Action::Partial(n) => {
            std::io::Error::other(format!("injected torn write at {site} after {n} bytes"))
        }
        failpoint::Action::Sleep(_) => {
            unreachable!("Sleep is absorbed by evaluate_sleepy before reaching {site}")
        }
    }
}

/// Hard sanity cap on one frame's payload (a length prefix beyond this
/// is treated as tail corruption, not an allocation request).
const MAX_PAYLOAD: u32 = 1 << 28;

const TAG_INGEST: u8 = 1;
const TAG_SESSION: u8 = 2;
const TAG_CHECKPOINT: u8 = 3;

/// One durable mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A vector ingested into the corpus. `id` is the global corpus id
    /// the store assigned, making replay idempotent across compaction
    /// crash windows (ids already covered by segments are skipped).
    Ingest {
        /// Assigned global corpus id.
        id: u64,
        /// The ingested feature vector.
        vector: Vec<f64>,
    },
    /// The latest durable view of one client session. Replay keeps the
    /// last snapshot per session id; `live == false` is a tombstone.
    SessionSnapshot {
        /// Session id.
        session: u64,
        /// Hosted engine name (`"qcluster"`, `"qpm"`, …).
        engine: String,
        /// Feed rounds the session had completed at snapshot time.
        feeds: u64,
        /// `false` once the session was closed.
        live: bool,
    },
    /// Compaction marker: every vector with id below `durable_vectors`
    /// is sealed in segments.
    Checkpoint {
        /// Count of vectors durable in segment files.
        durable_vectors: u64,
    },
}

impl WalRecord {
    fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            WalRecord::Ingest { id, vector } => {
                buf.push(TAG_INGEST);
                put_u64(&mut buf, *id);
                put_u32(&mut buf, u32::try_from(vector.len()).expect("dim fits u32"));
                for &v in vector {
                    put_f64(&mut buf, v);
                }
            }
            WalRecord::SessionSnapshot {
                session,
                engine,
                feeds,
                live,
            } => {
                buf.push(TAG_SESSION);
                put_u64(&mut buf, *session);
                put_u64(&mut buf, *feeds);
                buf.push(u8::from(*live));
                put_u32(
                    &mut buf,
                    u32::try_from(engine.len()).expect("name fits u32"),
                );
                buf.extend_from_slice(engine.as_bytes());
            }
            WalRecord::Checkpoint { durable_vectors } => {
                buf.push(TAG_CHECKPOINT);
                put_u64(&mut buf, *durable_vectors);
            }
        }
        buf
    }

    fn decode(payload: &[u8]) -> Option<WalRecord> {
        let mut r = ByteReader::new(payload);
        let tag = r.bytes(1)?[0];
        let record = match tag {
            TAG_INGEST => {
                let id = r.u64()?;
                let dim = r.u32()? as usize;
                let mut vector = Vec::with_capacity(dim);
                for _ in 0..dim {
                    vector.push(r.f64()?);
                }
                WalRecord::Ingest { id, vector }
            }
            TAG_SESSION => {
                let session = r.u64()?;
                let feeds = r.u64()?;
                let live = r.bytes(1)?[0] != 0;
                let name_len = r.u32()? as usize;
                let engine = String::from_utf8(r.bytes(name_len)?.to_vec()).ok()?;
                WalRecord::SessionSnapshot {
                    session,
                    engine,
                    feeds,
                    live,
                }
            }
            TAG_CHECKPOINT => WalRecord::Checkpoint {
                durable_vectors: r.u64()?,
            },
            _ => return None,
        };
        (r.remaining() == 0).then_some(record)
    }
}

/// The outcome of replaying one WAL file.
#[derive(Debug)]
pub struct WalReplay {
    /// Every record of the committed prefix, in append order.
    pub records: Vec<WalRecord>,
    /// Byte length of the committed prefix (the writer truncates the
    /// file to this before appending again).
    pub valid_len: u64,
    /// `true` when a torn or corrupt tail was discarded.
    pub truncated: bool,
}

/// An incremental, torn-tail-tolerant reader over a CRC-framed WAL byte
/// stream — the streaming core of [`replay`], usable over any
/// [`Read`](std::io::Read) source: a WAL file, a byte slice received
/// over the wire, or a socket shipping frames to a replica.
///
/// The cursor yields committed records one at a time and stops cleanly
/// at the first damaged frame (short header, oversize claim, short
/// payload, CRC mismatch) — exactly the torn-tail policy crash recovery
/// uses, which is also the idempotent apply loop a replication follower
/// needs: everything before the tear is trusted, nothing after it is.
#[derive(Debug)]
pub struct WalCursor<R> {
    reader: R,
    /// Byte offset just past the last successfully yielded frame.
    offset: u64,
    torn: bool,
    done: bool,
}

impl<R: std::io::Read> WalCursor<R> {
    /// Wraps a byte source positioned at a frame boundary (offset 0 of
    /// a WAL file, or the start of a shipped chunk).
    pub fn new(reader: R) -> Self {
        WalCursor {
            reader,
            offset: 0,
            torn: false,
            done: false,
        }
    }

    /// Byte length of the committed prefix read so far (every frame up
    /// to here decoded and passed its CRC).
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// `true` once the stream ended mid-frame or with a corrupt frame
    /// (the torn tail was *not* consumed; [`Self::offset`] still names
    /// the committed prefix).
    pub fn torn(&self) -> bool {
        self.torn
    }

    /// The next committed record, or `None` at the end of the stream —
    /// check [`Self::torn`] to distinguish a clean frame-boundary end
    /// from a discarded damaged tail.
    ///
    /// # Errors
    ///
    /// I/O failures, or `Corrupt` when a frame passes its CRC but does
    /// not decode (format-version skew — *not* a torn write, which CRC
    /// framing catches and tolerates).
    pub fn next_record(&mut self) -> Result<Option<WalRecord>> {
        if self.done {
            return Ok(None);
        }
        let mut frame_header = [0u8; 8];
        match read_exact_or_eof(&mut self.reader, &mut frame_header) {
            Ok(false) => {
                self.done = true;
                return Ok(None); // clean end
            }
            Ok(true) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                self.torn = true;
                self.done = true;
                return Ok(None);
            }
            Err(e) => return Err(e.into()),
        }
        let len = u32::from_le_bytes(frame_header[0..4].try_into().expect("4 bytes"));
        let stored_crc = u32::from_le_bytes(frame_header[4..8].try_into().expect("4 bytes"));
        if len > MAX_PAYLOAD {
            self.torn = true;
            self.done = true;
            return Ok(None);
        }
        let mut payload = vec![0u8; len as usize];
        match read_exact_or_eof(&mut self.reader, &mut payload) {
            Ok(true) => {}
            Ok(false) | Err(_) => {
                self.torn = true;
                self.done = true;
                return Ok(None);
            }
        }
        if Crc32::checksum(&payload) != stored_crc {
            self.torn = true;
            self.done = true;
            return Ok(None);
        }
        let record = WalRecord::decode(&payload).ok_or_else(|| {
            StoreError::corrupt(
                "<wal-stream>",
                "CRC-valid frame failed to decode (version skew?)",
            )
        })?;
        self.offset += 8 + u64::from(len);
        Ok(Some(record))
    }
}

/// Replays a WAL file, tolerating a torn tail. A missing file replays
/// as empty (a fresh store has no WAL yet).
///
/// # Errors
///
/// I/O failures, or `Corrupt` when a frame passes its CRC but does not
/// decode (format-version skew — *not* a torn write, which CRC framing
/// catches and tolerates).
pub fn replay(path: &Path) -> Result<WalReplay> {
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(WalReplay {
                records: Vec::new(),
                valid_len: 0,
                truncated: false,
            })
        }
        Err(e) => return Err(e.into()),
    };
    let mut cursor = WalCursor::new(BufReader::new(file));
    let mut records = Vec::new();
    loop {
        match cursor.next_record() {
            Ok(Some(record)) => records.push(record),
            Ok(None) => break,
            // Re-anchor stream-level corruption on the actual file.
            Err(StoreError::Corrupt { detail, .. }) => {
                return Err(StoreError::corrupt(path, detail))
            }
            Err(e) => return Err(e),
        }
    }
    Ok(WalReplay {
        records,
        valid_len: cursor.offset(),
        truncated: cursor.torn(),
    })
}

/// Encodes one record as a standalone CRC-framed WAL frame — the exact
/// bytes [`WalWriter::append`] would write, reusable as a replication
/// chunk unit (the encoding is deterministic, so a re-encoded `Ingest`
/// is byte-identical to the leader's on-disk frame).
pub fn encode_record_frame(record: &WalRecord) -> Vec<u8> {
    encode_frame(record)
}

/// Strictly decodes a buffer of concatenated CRC-framed records, as
/// produced by [`encode_record_frame`]. Unlike [`replay`], a torn or
/// corrupt tail here is an **error**: the transport already delivered
/// the buffer intact, so damage means a bug or a hostile peer, not a
/// crash mid-write.
///
/// # Errors
///
/// `Corrupt` when the buffer ends mid-frame, fails a CRC, or holds a
/// frame that does not decode.
pub fn decode_record_frames(bytes: &[u8]) -> Result<Vec<WalRecord>> {
    let mut cursor = WalCursor::new(bytes);
    let mut records = Vec::new();
    while let Some(record) = cursor.next_record()? {
        records.push(record);
    }
    if cursor.torn() {
        return Err(StoreError::corrupt(
            "<replication-chunk>",
            format!(
                "chunk damaged past byte {} ({} of {} bytes committed)",
                cursor.offset(),
                cursor.offset(),
                bytes.len()
            ),
        ));
    }
    Ok(records)
}

/// Appender over one WAL file.
///
/// Tracks the committed prefix length so a failed append can be rolled
/// back (see the module docs on self-healing and wedging).
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    fsync_on_commit: bool,
    /// Byte length of the committed prefix: every frame up to here was
    /// fully appended (and synced, under fsync-on-commit).
    committed_len: u64,
    /// `Some(reason)` once a rollback failed; all further appends are
    /// refused with [`StoreError::Wedged`].
    wedged: Option<String>,
    appends: u64,
    fsyncs: u64,
}

impl WalWriter {
    /// Opens the WAL for appending at `valid_len` (as reported by
    /// [`replay`]), truncating any torn tail beyond it. Creates the file
    /// when missing.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn open(path: &Path, valid_len: u64, fsync_on_commit: bool) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        if file.metadata()?.len() > valid_len {
            file.set_len(valid_len)?;
            file.sync_all()?;
        }
        let mut file = file;
        file.seek(SeekFrom::Start(valid_len))?;
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            fsync_on_commit,
            committed_len: valid_len,
            wedged: None,
            appends: 0,
            fsyncs: 0,
        })
    }

    /// Rewrites the WAL from scratch with `records` (atomically, via a
    /// staged sibling + rename), then reopens it for appending. This is
    /// the compaction path: the folded WAL restarts with only the
    /// records that must outlive the fold (session snapshots and the
    /// checkpoint).
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn rewrite(path: &Path, records: &[WalRecord], fsync_on_commit: bool) -> Result<Self> {
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        let mut staged = BufWriter::new(File::create(&tmp)?);
        let mut len = 0u64;
        for record in records {
            len += write_frame(&mut staged, record)?;
        }
        staged.flush()?;
        staged.get_ref().sync_all()?;
        std::fs::rename(&tmp, path)?;
        crate::segment::sync_parent_dir(path);
        WalWriter::open(path, len, fsync_on_commit)
    }

    /// The WAL file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Frames appended through this writer.
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// Fsyncs issued by this writer.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs
    }

    /// Byte length of the committed prefix.
    pub fn committed_len(&self) -> u64 {
        self.committed_len
    }

    /// `true` once a failed rollback left the tail in an unknown state;
    /// every further append returns [`StoreError::Wedged`] until the
    /// store is reopened.
    pub fn is_wedged(&self) -> bool {
        self.wedged.is_some()
    }

    fn check_wedged(&self) -> Result<()> {
        match &self.wedged {
            Some(detail) => Err(StoreError::Wedged {
                detail: detail.clone(),
            }),
            None => Ok(()),
        }
    }

    /// Appends one record; with fsync-on-commit the record is durable
    /// when this returns. On failure the file is rolled back to the
    /// committed prefix, so the failed frame leaves no torn bytes and
    /// the writer stays usable — unless the rollback itself fails, in
    /// which case the writer wedges.
    ///
    /// # Errors
    ///
    /// I/O failures (the append was rolled back), or `Wedged` (the
    /// rollback failed; reopen the store).
    pub fn append(&mut self, record: &WalRecord) -> Result<()> {
        self.check_wedged()?;
        let frame = encode_frame(record);
        match self.try_append(&frame) {
            Ok(()) => {
                self.committed_len += frame.len() as u64;
                self.appends += 1;
                Ok(())
            }
            Err(e) => {
                self.rollback()?;
                Err(e)
            }
        }
    }

    /// Writes (and, under fsync-on-commit, syncs) one encoded frame
    /// without advancing the committed prefix.
    fn try_append(&mut self, frame: &[u8]) -> Result<()> {
        if let Some(action) = failpoint::evaluate_sleepy("wal.append") {
            if let failpoint::Action::Partial(n) = action {
                // Torn write: some of the frame reaches the file, then
                // the device gives up.
                let n = n.min(frame.len());
                self.file.write_all(&frame[..n])?;
            }
            return Err(injected_io("wal.append", action).into());
        }
        self.file.write_all(frame)?;
        if self.fsync_on_commit {
            self.sync_counted()?;
        }
        Ok(())
    }

    /// Truncates the file back to the committed prefix after a failed
    /// append. On failure, wedges the writer.
    fn rollback(&mut self) -> Result<()> {
        let result = (|| -> std::io::Result<()> {
            if let Some(action) = failpoint::evaluate_sleepy("wal.rollback") {
                return Err(injected_io("wal.rollback", action));
            }
            self.file.set_len(self.committed_len)?;
            self.file.seek(SeekFrom::Start(self.committed_len))?;
            Ok(())
        })();
        if let Err(e) = result {
            let detail = format!(
                "rollback to committed prefix ({} bytes) failed: {e}",
                self.committed_len
            );
            self.wedged = Some(detail.clone());
            return Err(StoreError::Wedged { detail });
        }
        Ok(())
    }

    /// Forces everything appended so far to stable storage.
    ///
    /// A failed standalone sync does not un-commit frames: they are
    /// well-formed on disk and replay accepts them; only their
    /// durability is pending a later successful sync.
    ///
    /// # Errors
    ///
    /// I/O failures, or `Wedged`.
    pub fn sync(&mut self) -> Result<()> {
        self.check_wedged()?;
        self.sync_counted()
    }

    fn sync_counted(&mut self) -> Result<()> {
        if let Some(action) = failpoint::evaluate_sleepy("wal.fsync") {
            return Err(injected_io("wal.fsync", action).into());
        }
        self.file.sync_data()?;
        self.fsyncs += 1;
        Ok(())
    }
}

fn encode_frame(record: &WalRecord) -> Vec<u8> {
    let payload = record.encode();
    let len = u32::try_from(payload.len()).expect("payload below MAX_PAYLOAD");
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(&Crc32::checksum(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

fn write_frame<W: Write>(writer: &mut W, record: &WalRecord) -> Result<u64> {
    let payload = record.encode();
    let len = u32::try_from(payload.len()).expect("payload below MAX_PAYLOAD");
    writer.write_all(&len.to_le_bytes())?;
    writer.write_all(&Crc32::checksum(&payload).to_le_bytes())?;
    writer.write_all(&payload)?;
    Ok(8 + u64::from(len))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_wal(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("qstore_wal_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Ingest {
                id: 0,
                vector: vec![1.5, -2.25, f64::MIN_POSITIVE],
            },
            WalRecord::SessionSnapshot {
                session: 7,
                engine: "qcluster".into(),
                feeds: 3,
                live: true,
            },
            WalRecord::Checkpoint { durable_vectors: 1 },
            WalRecord::SessionSnapshot {
                session: 7,
                engine: "qcluster".into(),
                feeds: 4,
                live: false,
            },
            WalRecord::Ingest {
                id: 1,
                vector: vec![0.0, -0.0, 1e300],
            },
        ]
    }

    #[test]
    fn append_replay_round_trips() {
        let path = tmp_wal("roundtrip");
        let records = sample_records();
        let mut w = WalWriter::open(&path, 0, true).unwrap();
        for r in &records {
            w.append(r).unwrap();
        }
        assert_eq!(w.appends(), 5);
        assert!(w.fsyncs() >= 5);
        drop(w);
        let replayed = replay(&path).unwrap();
        assert!(!replayed.truncated);
        assert_eq!(replayed.records, records);
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn torn_tail_recovers_committed_prefix() {
        let path = tmp_wal("torn");
        let records = sample_records();
        let mut w = WalWriter::open(&path, 0, false).unwrap();
        for r in &records {
            w.append(r).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        let full = std::fs::read(&path).unwrap();
        // Cut mid-way through the final frame.
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        let replayed = replay(&path).unwrap();
        assert!(replayed.truncated);
        assert_eq!(replayed.records, records[..4].to_vec());
        // Reopening at the valid prefix truncates the tear and appends cleanly.
        let mut w = WalWriter::open(&path, replayed.valid_len, false).unwrap();
        w.append(&records[4]).unwrap();
        w.sync().unwrap();
        drop(w);
        let again = replay(&path).unwrap();
        assert!(!again.truncated);
        assert_eq!(again.records, records);
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn corrupt_byte_in_tail_frame_is_discarded() {
        let path = tmp_wal("flip");
        let mut w = WalWriter::open(&path, 0, false).unwrap();
        let records = sample_records();
        for r in &records {
            w.append(r).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let replayed = replay(&path).unwrap();
        assert!(replayed.truncated);
        assert_eq!(replayed.records, records[..4].to_vec());
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn missing_wal_replays_empty() {
        let path = tmp_wal("missing").with_file_name("never-written.log");
        let replayed = replay(&path).unwrap();
        assert!(replayed.records.is_empty());
        assert_eq!(replayed.valid_len, 0);
        assert!(!replayed.truncated);
    }

    #[test]
    fn rewrite_folds_to_exactly_the_given_records() {
        let path = tmp_wal("rewrite");
        let mut w = WalWriter::open(&path, 0, false).unwrap();
        for r in &sample_records() {
            w.append(r).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        let keep = vec![WalRecord::Checkpoint { durable_vectors: 2 }];
        let mut w = WalWriter::rewrite(&path, &keep, false).unwrap();
        w.append(&WalRecord::Ingest {
            id: 2,
            vector: vec![9.0],
        })
        .unwrap();
        w.sync().unwrap();
        drop(w);
        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.records.len(), 2);
        assert_eq!(replayed.records[0], keep[0]);
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn cursor_streams_records_and_stops_at_a_torn_tail() {
        let records = sample_records();
        let mut bytes = Vec::new();
        for r in &records {
            bytes.extend_from_slice(&encode_record_frame(r));
        }
        // Clean stream: every record, no tear, offset = full length.
        let mut cursor = WalCursor::new(bytes.as_slice());
        let mut seen = Vec::new();
        while let Some(r) = cursor.next_record().unwrap() {
            seen.push(r);
        }
        assert_eq!(seen, records);
        assert!(!cursor.torn());
        assert_eq!(cursor.offset(), bytes.len() as u64);

        // Torn stream: the damaged final frame is discarded, the
        // committed prefix survives, and the offset excludes the tear.
        let torn = &bytes[..bytes.len() - 3];
        let mut cursor = WalCursor::new(torn);
        let mut seen = Vec::new();
        while let Some(r) = cursor.next_record().unwrap() {
            seen.push(r);
        }
        assert_eq!(seen, records[..4].to_vec());
        assert!(cursor.torn());
        assert!(cursor.offset() < torn.len() as u64);
        // The cursor is sticky after the tear.
        assert!(cursor.next_record().unwrap().is_none());
    }

    #[test]
    fn record_frames_round_trip_and_match_writer_bytes() {
        let path = tmp_wal("frames");
        let records = sample_records();
        let mut w = WalWriter::open(&path, 0, false).unwrap();
        for r in &records {
            w.append(r).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        // Standalone frame encoding is byte-identical to the on-disk
        // WAL — the property WAL-shipping replication relies on.
        let mut expected = Vec::new();
        for r in &records {
            expected.extend_from_slice(&encode_record_frame(r));
        }
        assert_eq!(std::fs::read(&path).unwrap(), expected);
        assert_eq!(decode_record_frames(&expected).unwrap(), records);
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn strict_decode_rejects_torn_and_corrupt_chunks() {
        let records = sample_records();
        let mut bytes = Vec::new();
        for r in &records {
            bytes.extend_from_slice(&encode_record_frame(r));
        }
        // A chunk cut mid-frame is an error (transports deliver whole
        // buffers; a tear here is damage, not a crash).
        assert!(matches!(
            decode_record_frames(&bytes[..bytes.len() - 2]),
            Err(StoreError::Corrupt { .. })
        ));
        // A flipped payload byte fails its CRC.
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        assert!(matches!(
            decode_record_frames(&bytes),
            Err(StoreError::Corrupt { .. })
        ));
        // Empty chunks are fine (an up-to-date follower fetched nothing).
        assert_eq!(decode_record_frames(&[]).unwrap(), Vec::new());
    }

    #[test]
    fn ingested_vectors_replay_bit_exactly() {
        let path = tmp_wal("bits");
        let vector = vec![0.1 + 0.2, -0.0, f64::MAX, 1.0 / 3.0];
        let mut w = WalWriter::open(&path, 0, false).unwrap();
        w.append(&WalRecord::Ingest {
            id: 0,
            vector: vector.clone(),
        })
        .unwrap();
        w.sync().unwrap();
        drop(w);
        let replayed = replay(&path).unwrap();
        let WalRecord::Ingest { vector: back, .. } = &replayed.records[0] else {
            panic!("expected ingest");
        };
        for (a, b) in back.iter().zip(vector.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }
}
