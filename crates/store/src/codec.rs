//! Little-endian byte codec and CRC-32 used by every on-disk format.
//!
//! Both the segment and the WAL frame their bytes with CRC-32/ISO-HDLC
//! (the "zlib" polynomial, reflected 0xEDB88320) so corruption anywhere
//! in a record is detected on read. Everything is little-endian,
//! matching the native layout of every platform this workspace targets —
//! a segment is therefore `mmap`-compatible in spirit even though the
//! reader goes through buffered I/O.

use std::io::{Read, Write};

/// Incremental CRC-32 (ISO-HDLC / zlib polynomial).
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

/// The 256-entry lookup table for the reflected polynomial 0xEDB88320.
const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// A fresh checksum.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Folds `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            let idx = (self.state ^ u32::from(b)) & 0xFF;
            self.state = (self.state >> 8) ^ CRC_TABLE[idx as usize];
        }
    }

    /// The finalized checksum value.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }

    /// One-shot checksum of `bytes`.
    pub fn checksum(bytes: &[u8]) -> u32 {
        let mut crc = Crc32::new();
        crc.update(bytes);
        crc.finish()
    }
}

/// Appends a `u32` in little-endian.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` in little-endian.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` in little-endian (bit-exact).
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// A cursor over a byte slice for decoding framed payloads.
#[derive(Debug)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A cursor at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    /// Reads a little-endian `u32`, or `None` past the end.
    pub fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`, or `None` past the end.
    pub fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a little-endian `f64`, or `None` past the end.
    pub fn f64(&mut self) -> Option<f64> {
        self.take(8)
            .map(|b| f64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads `n` raw bytes, or `None` past the end.
    pub fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        self.take(n)
    }
}

/// Reads exactly `buf.len()` bytes, distinguishing clean EOF (at offset
/// zero) from a short read.
///
/// Returns `Ok(false)` when the source was already exhausted, `Ok(true)`
/// on a full read.
///
/// # Errors
///
/// I/O failures, or `UnexpectedEof` when the source ends mid-buffer —
/// callers treating a torn tail as benign catch that kind specifically.
pub fn read_exact_or_eof<R: Read>(reader: &mut R, buf: &mut [u8]) -> std::io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        let n = reader.read(&mut buf[filled..])?;
        if n == 0 {
            return if filled == 0 {
                Ok(false)
            } else {
                Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "short read",
                ))
            };
        }
        filled += n;
    }
    Ok(true)
}

/// Writes all of `bytes`, updating `crc` with exactly what was written.
///
/// # Errors
///
/// I/O failures.
pub fn write_checksummed<W: Write>(
    writer: &mut W,
    crc: &mut Crc32,
    bytes: &[u8],
) -> std::io::Result<()> {
    writer.write_all(bytes)?;
    crc.update(bytes);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(Crc32::checksum(b"123456789"), 0xCBF4_3926);
        assert_eq!(Crc32::checksum(b""), 0);
    }

    #[test]
    fn crc32_incremental_equals_oneshot() {
        let mut crc = Crc32::new();
        crc.update(b"hello ");
        crc.update(b"world");
        assert_eq!(crc.finish(), Crc32::checksum(b"hello world"));
    }

    #[test]
    fn byte_reader_round_trips() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, 42);
        put_f64(&mut buf, -0.125);
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.u32(), Some(0xDEAD_BEEF));
        assert_eq!(r.u64(), Some(42));
        assert_eq!(r.f64(), Some(-0.125));
        assert_eq!(r.remaining(), 0);
        assert_eq!(r.u32(), None, "reads past the end are None, not panic");
    }

    #[test]
    fn read_exact_or_eof_distinguishes_clean_and_torn() {
        let data = [1u8, 2, 3];
        let mut src: &[u8] = &data;
        let mut buf = [0u8; 3];
        assert!(read_exact_or_eof(&mut src, &mut buf).unwrap());
        assert!(!read_exact_or_eof(&mut src, &mut buf).unwrap());
        let mut short: &[u8] = &data[..2];
        let err = read_exact_or_eof(&mut short, &mut buf).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }
}
