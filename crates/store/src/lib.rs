//! # qcluster-store
//!
//! Durable storage for the Qcluster stack: the paper's corpus is static
//! and in-memory, but a production retrieval service must survive
//! restarts with every ingested image and session intact. This crate
//! provides the robustness foundation:
//!
//! - [`segment`] — the append-only binary segment format: fixed-width
//!   `f64` records behind a versioned header and a CRC-32 footer,
//!   written via staging + atomic rename and read through a paged,
//!   validate-on-open [`SegmentReader`].
//! - [`wal`] — the write-ahead log: length-prefixed CRC-framed
//!   mutation records ([`WalRecord::Ingest`],
//!   [`WalRecord::SessionSnapshot`], [`WalRecord::Checkpoint`]) with
//!   fsync-on-commit and replay that tolerates a torn tail.
//! - [`store`] — [`VectorStore`]: open a directory, recover
//!   `segments + WAL` into an id-ordered corpus plus the live session
//!   set, ingest durably, and compact the WAL into freshly sealed
//!   segments.
//!
//! ```
//! use qcluster_store::{RecoveredState, StoreConfig, VectorStore};
//!
//! let dir = std::env::temp_dir().join(format!("qstore_doc_{}", std::process::id()));
//! # std::fs::remove_dir_all(&dir).ok();
//! let (mut store, _) = VectorStore::open(&dir, StoreConfig::default())?;
//! store.bootstrap(&[vec![0.0, 0.0], vec![1.0, 1.0]])?;
//! let id = store.ingest(vec![2.0, 2.0])?;
//! assert_eq!(id, 2);
//! drop(store);
//!
//! // Crash-restart: everything committed comes back, index-ready.
//! let (_store, recovered) = VectorStore::open(&dir, StoreConfig::default())?;
//! assert_eq!(recovered.vectors.len(), 3);
//! let index = recovered.into_index(1024);
//! assert_eq!(index.len(), 3);
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), qcluster_store::StoreError>(())
//! ```

#![warn(missing_docs)]

pub mod codec;
pub mod error;
pub mod segment;
pub mod store;
pub mod wal;

pub use codec::Crc32;
pub use error::{Result, StoreError};
pub use segment::{write_segment, SegmentReader, SegmentWriter};
pub use store::{
    CompactionStats, RecoveredState, SessionState, StoreConfig, StoreStats, VectorStore,
};
pub use wal::{
    decode_record_frames, encode_record_frame, replay, WalCursor, WalRecord, WalReplay, WalWriter,
};

use qcluster_index::DynamicIndex;

impl RecoveredState {
    /// Restores a [`DynamicIndex`] from the recovered corpus without a
    /// per-insert rebuild churn: segment vectors become the bulk-loaded
    /// tree, the WAL tail lands in the index's side buffer.
    ///
    /// # Panics
    ///
    /// Panics on an empty recovered corpus (per
    /// [`DynamicIndex::from_parts`]).
    pub fn into_index(self, rebuild_threshold: usize) -> DynamicIndex {
        let indexed = if self.segment_vectors == 0 {
            // Nothing sealed yet: bulk-load everything (recovery-time
            // cost identical, and the tree covers the whole corpus).
            self.vectors.len()
        } else {
            self.segment_vectors
        };
        DynamicIndex::from_parts(self.vectors, indexed, rebuild_threshold)
    }
}
