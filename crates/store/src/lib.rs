//! # qcluster-store
//!
//! Durable storage for the Qcluster stack: the paper's corpus is static
//! and in-memory, but a production retrieval service must survive
//! restarts with every ingested image and session intact. This crate
//! provides the robustness foundation:
//!
//! - [`segment`] — the append-only binary segment format (v2):
//!   tile-native columnar `f64` values plus a u8 scalar-quantized
//!   sibling column and persisted quantization parameters, behind a
//!   versioned header and a CRC-32 footer, written via staging + atomic
//!   rename and read through a paged, validate-on-open
//!   [`SegmentReader`]. Legacy v1 (row-major) segments still open and
//!   are migrated on compaction.
//! - [`wal`] — the write-ahead log: length-prefixed CRC-framed
//!   mutation records ([`WalRecord::Ingest`],
//!   [`WalRecord::SessionSnapshot`], [`WalRecord::Checkpoint`]) with
//!   fsync-on-commit and replay that tolerates a torn tail.
//! - [`store`] — [`VectorStore`]: open a directory, recover
//!   `segments + WAL` into an id-ordered corpus plus the live session
//!   set, ingest durably, and compact the WAL into freshly sealed
//!   segments.
//!
//! ```
//! use qcluster_store::{RecoveredState, StoreConfig, VectorStore};
//!
//! let dir = std::env::temp_dir().join(format!("qstore_doc_{}", std::process::id()));
//! # std::fs::remove_dir_all(&dir).ok();
//! let (mut store, _) = VectorStore::open(&dir, StoreConfig::default())?;
//! store.bootstrap(&[vec![0.0, 0.0], vec![1.0, 1.0]])?;
//! let id = store.ingest(vec![2.0, 2.0])?;
//! assert_eq!(id, 2);
//! drop(store);
//!
//! // Crash-restart: everything committed comes back, index-ready.
//! let (_store, recovered) = VectorStore::open(&dir, StoreConfig::default())?;
//! assert_eq!(recovered.vectors.len(), 3);
//! let index = recovered.into_index(1024);
//! assert_eq!(index.len(), 3);
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), qcluster_store::StoreError>(())
//! ```

#![warn(missing_docs)]

pub mod codec;
pub mod error;
pub mod segment;
pub mod store;
pub mod wal;

pub use codec::Crc32;
pub use error::{Result, StoreError};
pub use segment::{write_segment, SegmentReader, SegmentWriter, VERSION_V1, VERSION_V2};
pub use store::{
    CompactionStats, RecoveredState, SessionState, StoreConfig, StoreStats, VectorStore,
};
pub use wal::{
    decode_record_frames, encode_record_frame, replay, WalCursor, WalRecord, WalReplay, WalWriter,
};

use qcluster_index::{DynamicIndex, LinearScan, QuantizedScan, TileCorpus};
use std::path::Path;

/// Loads one segment straight into a [`LinearScan`]: a single flat
/// read, one buffer handoff, no per-record allocation. Works for both
/// format versions.
///
/// # Errors
///
/// `InvalidArg` for an empty segment, otherwise see
/// [`SegmentReader::open`].
pub fn load_segment_scan(path: &Path) -> Result<LinearScan> {
    let mut reader = SegmentReader::open(path)?;
    if reader.count() == 0 {
        return Err(StoreError::InvalidArg(
            "cannot scan an empty segment".into(),
        ));
    }
    let dim = reader.dim();
    Ok(LinearScan::from_flat(reader.read_all_flat()?, dim))
}

/// Loads one segment into a [`QuantizedScan`]. A v2 segment's columns
/// are adopted verbatim — the on-disk layout *is* the scan's working
/// layout, so no transpose, re-fit, or re-encode happens; a v1 segment
/// is quantized in memory (compaction migrates it for next time).
///
/// # Errors
///
/// `InvalidArg` for an empty segment, otherwise see
/// [`SegmentReader::open`].
pub fn load_segment_quantized(path: &Path) -> Result<QuantizedScan> {
    let mut reader = SegmentReader::open(path)?;
    if reader.count() == 0 {
        return Err(StoreError::InvalidArg(
            "cannot scan an empty segment".into(),
        ));
    }
    let dim = reader.dim();
    if reader.version() == VERSION_V2 {
        let (tiles, codes, params) = reader.load_quantized()?;
        let corpus = TileCorpus::from_tile_parts(tiles, dim, reader.count() as usize);
        Ok(QuantizedScan::from_parts(corpus, codes, params))
    } else {
        Ok(QuantizedScan::from_flat(&reader.read_all_flat()?, dim))
    }
}

impl RecoveredState {
    /// Restores a [`DynamicIndex`] from the recovered corpus without a
    /// per-insert rebuild churn: segment vectors become the bulk-loaded
    /// tree, the WAL tail lands in the index's side buffer.
    ///
    /// # Panics
    ///
    /// Panics on an empty recovered corpus (per
    /// [`DynamicIndex::from_parts`]).
    pub fn into_index(self, rebuild_threshold: usize) -> DynamicIndex {
        let indexed = if self.segment_vectors == 0 {
            // Nothing sealed yet: bulk-load everything (recovery-time
            // cost identical, and the tree covers the whole corpus).
            self.vectors.len()
        } else {
            self.segment_vectors
        };
        DynamicIndex::from_parts(self.vectors, indexed, rebuild_threshold)
    }
}
