//! The append-only binary segment format for vector corpora.
//!
//! **Format v2** is columnar and tile-native: the exact values are laid
//! out as the 8-point transposed tiles the scan kernels consume (see
//! `qcluster_linalg::vecops::transpose_tile`), with a u8
//! scalar-quantized sibling column and the per-dimension quantization
//! parameters persisted alongside. Loading a v2 segment hands the scan
//! its working memory layout directly — no transpose, no re-fit, no
//! per-record allocation:
//!
//! ```text
//! ┌────────────────────── header (16 B) ──────────────────────┐
//! │ magic "QSEG" │ version u32 (= 2) │ dim u32 │ reserved u32  │
//! ├──────────────────── params (dim × 24 B) ──────────────────┤
//! │ per dimension: min f64 │ delta f64 │ max_err f64           │
//! ├──────────────── exact column (ntiles × dim × 64 B) ───────┤
//! │ tile-major f64: tile t, dim j, lane l at (t·dim + j)·8 + l │
//! │ (final tile zero-padded past `count`)                      │
//! ├──────────────── code column (ntiles × dim × 8 B) ─────────┤
//! │ same tile-major shape, one u8 code per value               │
//! ├────────────────────── footer (20 B) ──────────────────────┤
//! │ count u64 │ dim u32 │ CRC-32 of params+exact+codes │ "SEGF"│
//! └───────────────────────────────────────────────────────────┘
//! ```
//!
//! **Format v1** (row-major `count × dim × f64` records, CRC over the
//! records) is still read transparently; [`crate::VectorStore`]
//! migrates v1 files to v2 during compaction.
//!
//! Writers stage into a `.tmp` sibling and atomically rename on
//! [`SegmentWriter::finish`], so a crash mid-write never leaves a
//! half-segment under the real name. [`SegmentReader::open`] validates
//! the header, footer, file length, and column CRC before returning.

use crate::codec::{read_exact_or_eof, Crc32};
use crate::error::{Result, StoreError};
use qcluster_index::QuantParams;
use qcluster_linalg::vecops::TILE_LANES;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"QSEG";
const FOOTER_MAGIC: &[u8; 4] = b"SEGF";
/// Row-major f64 records; no quantized column.
pub const VERSION_V1: u32 = 1;
/// Tile-native columnar with u8 code sibling column.
pub const VERSION_V2: u32 = 2;
const HEADER_LEN: u64 = 16;
const FOOTER_LEN: u64 = 20;
/// Bytes per dimension in the v2 params block (min, delta, max_err).
const PARAM_ENTRY_LEN: u64 = 24;
/// Streaming I/O chunk for CRC validation and bulk reads.
const IO_CHUNK: usize = 64 * 1024;

/// Default records per [`SegmentReader`] page.
pub const DEFAULT_PAGE_RECORDS: usize = 1024;

/// Durably syncs the directory containing `path`, so a rename into it
/// survives a crash. Best-effort on platforms where directories cannot
/// be opened for sync.
pub(crate) fn sync_parent_dir(path: &Path) {
    if let Some(parent) = path.parent() {
        if let Ok(dir) = File::open(parent) {
            let _ = dir.sync_all();
        }
    }
}

/// Buffered writer sealing one v2 segment file.
///
/// Appends scatter straight into the tile-major staging column (no
/// intermediate row buffer); [`SegmentWriter::finish`] fits the
/// quantization parameters over the staged tiles, derives the code
/// column, and writes the whole file in one streaming pass.
#[derive(Debug)]
pub struct SegmentWriter {
    file: BufWriter<File>,
    tmp_path: PathBuf,
    final_path: PathBuf,
    dim: usize,
    count: u64,
    /// Tile-major exact staging: grows one zeroed tile per 8 appends.
    tiles: Vec<f64>,
}

impl SegmentWriter {
    /// Starts a segment at `path` (staged as `path` + `.tmp`).
    ///
    /// # Errors
    ///
    /// `InvalidArg` for `dim == 0`, otherwise I/O failures.
    pub fn create(path: &Path, dim: usize) -> Result<Self> {
        if dim == 0 {
            return Err(StoreError::InvalidArg(
                "segment dim must be positive".into(),
            ));
        }
        let mut tmp_path = path.as_os_str().to_owned();
        tmp_path.push(".tmp");
        let tmp_path = PathBuf::from(tmp_path);
        let file = BufWriter::new(File::create(&tmp_path)?);
        Ok(SegmentWriter {
            file,
            tmp_path,
            final_path: path.to_path_buf(),
            dim,
            count: 0,
            tiles: Vec::new(),
        })
    }

    /// Records appended so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Appends one vector: a single length check, then a column-major
    /// scatter into the staging tile.
    ///
    /// # Errors
    ///
    /// `InvalidArg` on dimensionality mismatch.
    pub fn append(&mut self, vector: &[f64]) -> Result<()> {
        if vector.len() != self.dim {
            return Err(StoreError::InvalidArg(format!(
                "vector dim {} but segment dim {}",
                vector.len(),
                self.dim
            )));
        }
        let lane = (self.count as usize) % TILE_LANES;
        if lane == 0 {
            self.tiles
                .resize(self.tiles.len() + self.dim * TILE_LANES, 0.0);
        }
        let base = self.tiles.len() - self.dim * TILE_LANES;
        for (j, &v) in vector.iter().enumerate() {
            self.tiles[base + j * TILE_LANES + lane] = v;
        }
        self.count += 1;
        Ok(())
    }

    /// Fits quantization parameters, writes header + params + exact
    /// tiles + codes + footer, fsyncs, and atomically renames the
    /// staged file into place. Returns the record count.
    ///
    /// # Errors
    ///
    /// I/O failures; the staged `.tmp` file is left behind for debugging
    /// on failure (and ignored by [`SegmentReader`] and the store).
    pub fn finish(mut self) -> Result<u64> {
        let params = QuantParams::fit_tiles(&self.tiles, self.dim, self.count as usize);
        let mut codes = vec![0u8; self.tiles.len()];
        params.encode_tiles(&self.tiles, &mut codes);

        self.file.write_all(MAGIC)?;
        self.file.write_all(&VERSION_V2.to_le_bytes())?;
        let dim32 = u32::try_from(self.dim).expect("dim fits u32");
        self.file.write_all(&dim32.to_le_bytes())?;
        self.file.write_all(&0u32.to_le_bytes())?;

        let mut crc = Crc32::new();
        let mut buf = Vec::with_capacity(IO_CHUNK + 24);
        for j in 0..self.dim {
            buf.extend_from_slice(&params.min()[j].to_le_bytes());
            buf.extend_from_slice(&params.delta()[j].to_le_bytes());
            buf.extend_from_slice(&params.max_err()[j].to_le_bytes());
            if buf.len() >= IO_CHUNK {
                crc.update(&buf);
                self.file.write_all(&buf)?;
                buf.clear();
            }
        }
        for &v in &self.tiles {
            buf.extend_from_slice(&v.to_le_bytes());
            if buf.len() >= IO_CHUNK {
                crc.update(&buf);
                self.file.write_all(&buf)?;
                buf.clear();
            }
        }
        if !buf.is_empty() {
            crc.update(&buf);
            self.file.write_all(&buf)?;
        }
        crc.update(&codes);
        self.file.write_all(&codes)?;

        self.file.write_all(&self.count.to_le_bytes())?;
        self.file.write_all(&dim32.to_le_bytes())?;
        self.file.write_all(&crc.finish().to_le_bytes())?;
        self.file.write_all(FOOTER_MAGIC)?;
        self.file.flush()?;
        // Failpoint `segment.finish`: fail the seal before the staged
        // file is published — the `.tmp` stays behind, the final path
        // never appears, and recovery must not see a half segment.
        if let Some(action) = qcluster_failpoint::evaluate_sleepy("segment.finish") {
            return Err(crate::wal::injected_io("segment.finish", action).into());
        }
        self.file.get_ref().sync_all()?;
        std::fs::rename(&self.tmp_path, &self.final_path)?;
        sync_parent_dir(&self.final_path);
        Ok(self.count)
    }
}

/// Writes `vectors` as one (v2) segment file in a single call.
///
/// # Errors
///
/// See [`SegmentWriter`].
pub fn write_segment(path: &Path, dim: usize, vectors: &[Vec<f64>]) -> Result<u64> {
    let mut writer = SegmentWriter::create(path, dim)?;
    for v in vectors {
        writer.append(v)?;
    }
    writer.finish()
}

/// Validating, paged reader over one segment file (v1 or v2).
#[derive(Debug)]
pub struct SegmentReader {
    file: File,
    path: PathBuf,
    version: u32,
    dim: usize,
    count: u64,
    page_records: usize,
    /// Quantization parameters (v2 only).
    params: Option<QuantParams>,
}

impl SegmentReader {
    /// Opens and fully validates a segment: magic, version, length
    /// arithmetic, header/footer dim agreement, and the column CRC
    /// (one streaming pass).
    ///
    /// # Errors
    ///
    /// `Corrupt` with the offending path and detail, or I/O failures.
    pub fn open(path: &Path) -> Result<Self> {
        Self::open_with_page_size(path, DEFAULT_PAGE_RECORDS)
    }

    /// [`SegmentReader::open`] with an explicit page size (records per
    /// page, ≥ 1).
    ///
    /// # Errors
    ///
    /// See [`SegmentReader::open`]; `InvalidArg` for a zero page size.
    pub fn open_with_page_size(path: &Path, page_records: usize) -> Result<Self> {
        if page_records == 0 {
            return Err(StoreError::InvalidArg(
                "page_records must be positive".into(),
            ));
        }
        let file = File::open(path)?;
        let file_len = file.metadata()?.len();
        if file_len < HEADER_LEN + FOOTER_LEN {
            return Err(StoreError::corrupt(
                path,
                "file shorter than header + footer",
            ));
        }

        let mut reader = BufReader::new(&file);
        let mut header = [0u8; HEADER_LEN as usize];
        reader.read_exact(&mut header)?;
        if &header[0..4] != MAGIC {
            return Err(StoreError::corrupt(path, "bad segment magic"));
        }
        let version = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if version != VERSION_V1 && version != VERSION_V2 {
            return Err(StoreError::corrupt(
                path,
                format!("unsupported segment version {version}"),
            ));
        }
        let dim = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes")) as usize;
        if dim == 0 {
            return Err(StoreError::corrupt(path, "zero dimensionality"));
        }

        let mut footer = [0u8; FOOTER_LEN as usize];
        reader.seek(SeekFrom::End(-(FOOTER_LEN as i64)))?;
        reader.read_exact(&mut footer)?;
        if &footer[16..20] != FOOTER_MAGIC {
            return Err(StoreError::corrupt(path, "bad footer magic"));
        }
        let count = u64::from_le_bytes(footer[0..8].try_into().expect("8 bytes"));
        let footer_dim = u32::from_le_bytes(footer[8..12].try_into().expect("4 bytes")) as usize;
        let stored_crc = u32::from_le_bytes(footer[12..16].try_into().expect("4 bytes"));
        if footer_dim != dim {
            return Err(StoreError::corrupt(
                path,
                format!("header dim {dim} disagrees with footer dim {footer_dim}"),
            ));
        }
        let body_bytes = match version {
            VERSION_V1 => count
                .checked_mul(dim as u64)
                .and_then(|n| n.checked_mul(8))
                .ok_or_else(|| StoreError::corrupt(path, "record byte count overflows"))?,
            _ => {
                let ntiles = count.div_ceil(TILE_LANES as u64);
                ntiles
                    .checked_mul(dim as u64)
                    .and_then(|n| n.checked_mul(TILE_LANES as u64 * 9)) // 8B exact + 1B code
                    .and_then(|n| n.checked_add(dim as u64 * PARAM_ENTRY_LEN))
                    .ok_or_else(|| StoreError::corrupt(path, "column byte count overflows"))?
            }
        };
        if file_len != HEADER_LEN + body_bytes + FOOTER_LEN {
            return Err(StoreError::corrupt(
                path,
                format!("file length {file_len} inconsistent with {count} records of dim {dim}"),
            ));
        }

        // Streaming CRC pass over the body (v1: records; v2: params +
        // exact + codes).
        reader.seek(SeekFrom::Start(HEADER_LEN))?;
        let mut crc = Crc32::new();
        let mut remaining = body_bytes;
        let mut chunk = [0u8; IO_CHUNK];
        while remaining > 0 {
            let take = remaining.min(chunk.len() as u64) as usize;
            reader.read_exact(&mut chunk[..take])?;
            crc.update(&chunk[..take]);
            remaining -= take as u64;
        }
        if crc.finish() != stored_crc {
            return Err(StoreError::corrupt(path, "segment CRC mismatch"));
        }

        let params = if version == VERSION_V2 {
            reader.seek(SeekFrom::Start(HEADER_LEN))?;
            let mut entry = [0u8; PARAM_ENTRY_LEN as usize];
            let mut min = Vec::with_capacity(dim);
            let mut delta = Vec::with_capacity(dim);
            let mut max_err = Vec::with_capacity(dim);
            for _ in 0..dim {
                reader.read_exact(&mut entry)?;
                min.push(f64::from_le_bytes(entry[0..8].try_into().expect("8 bytes")));
                delta.push(f64::from_le_bytes(
                    entry[8..16].try_into().expect("8 bytes"),
                ));
                max_err.push(f64::from_le_bytes(
                    entry[16..24].try_into().expect("8 bytes"),
                ));
            }
            Some(QuantParams::from_parts(min, delta, max_err))
        } else {
            None
        };

        Ok(SegmentReader {
            file,
            path: path.to_path_buf(),
            version,
            dim,
            count,
            page_records,
            params,
        })
    }

    /// Segment format version ([`VERSION_V1`] or [`VERSION_V2`]).
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Record dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of records.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Quantization parameters (`None` for a v1 segment).
    pub fn quant_params(&self) -> Option<&QuantParams> {
        self.params.as_ref()
    }

    /// Number of pages ([`Self::page`] accepts `0..num_pages()`).
    pub fn num_pages(&self) -> usize {
        (self.count as usize).div_ceil(self.page_records)
    }

    /// Offset of the exact column (v1: records; v2: tiles).
    fn exact_offset(&self) -> u64 {
        match self.version {
            VERSION_V1 => HEADER_LEN,
            _ => HEADER_LEN + self.dim as u64 * PARAM_ENTRY_LEN,
        }
    }

    /// Reads `bytes` from `offset` into `buf` (resized to fit),
    /// translating a short read into `Corrupt`.
    fn read_span(&mut self, offset: u64, bytes: usize, buf: &mut Vec<u8>) -> Result<()> {
        buf.resize(bytes, 0);
        self.file.seek(SeekFrom::Start(offset))?;
        let mut reader = BufReader::new(&self.file);
        if !read_exact_or_eof(&mut reader, buf)? {
            return Err(StoreError::corrupt(&self.path, "segment shrank after open"));
        }
        Ok(())
    }

    /// Appends one page of records, row-major, onto `out`.
    fn append_page_flat(&mut self, page: usize, out: &mut Vec<f64>) -> Result<usize> {
        if page >= self.num_pages() {
            return Err(StoreError::InvalidArg(format!(
                "page {page} out of range ({} pages)",
                self.num_pages()
            )));
        }
        let start = page * self.page_records;
        let len = self.page_records.min(self.count as usize - start);
        out.reserve(len * self.dim);
        let mut buf = Vec::new();
        match self.version {
            VERSION_V1 => {
                let offset = self.exact_offset() + (start as u64) * (self.dim as u64) * 8;
                self.read_span(offset, len * self.dim * 8, &mut buf)?;
                out.extend(
                    buf.chunks_exact(8)
                        .map(|b| f64::from_le_bytes(b.try_into().expect("8 bytes"))),
                );
            }
            _ => {
                // Read the covering tile range once, then gather each
                // record's strided lane.
                let t0 = start / TILE_LANES;
                let t1 = (start + len - 1) / TILE_LANES;
                let tile_f64 = self.dim * TILE_LANES;
                let offset = self.exact_offset() + (t0 * tile_f64 * 8) as u64;
                self.read_span(offset, (t1 - t0 + 1) * tile_f64 * 8, &mut buf)?;
                let word = |idx: usize| {
                    f64::from_le_bytes(buf[idx * 8..idx * 8 + 8].try_into().expect("8 bytes"))
                };
                for r in start..start + len {
                    let (t, l) = (r / TILE_LANES - t0, r % TILE_LANES);
                    for j in 0..self.dim {
                        out.push(word(t * tile_f64 + j * TILE_LANES + l));
                    }
                }
            }
        }
        Ok(len)
    }

    /// Reads one page of records, row-major, into the reusable `out`
    /// buffer (cleared first). Returns the record count — the flat
    /// sibling of [`SegmentReader::page`] with zero per-record
    /// allocations.
    ///
    /// # Errors
    ///
    /// `InvalidArg` for an out-of-range page, `Corrupt` on a short read
    /// (the file shrank after open), or I/O failures.
    pub fn read_page_flat(&mut self, page: usize, out: &mut Vec<f64>) -> Result<usize> {
        out.clear();
        self.append_page_flat(page, out)
    }

    /// Reads every record into one flat row-major buffer — ready for
    /// `LinearScan::from_flat` without further copying.
    ///
    /// # Errors
    ///
    /// See [`SegmentReader::read_page_flat`].
    pub fn read_all_flat(&mut self) -> Result<Vec<f64>> {
        let mut out = Vec::with_capacity(self.count as usize * self.dim);
        for page in 0..self.num_pages() {
            self.append_page_flat(page, &mut out)?;
        }
        Ok(out)
    }

    /// Reads one page of records (the final page may be short).
    ///
    /// Prefer [`SegmentReader::read_page_flat`] in hot paths — this
    /// convenience form allocates one `Vec` per record.
    ///
    /// # Errors
    ///
    /// See [`SegmentReader::read_page_flat`].
    pub fn page(&mut self, page: usize) -> Result<Vec<Vec<f64>>> {
        let mut flat = Vec::new();
        self.append_page_flat(page, &mut flat)?;
        Ok(flat.chunks_exact(self.dim).map(<[f64]>::to_vec).collect())
    }

    /// Reads every record, page by page.
    ///
    /// # Errors
    ///
    /// See [`SegmentReader::page`].
    pub fn read_all(&mut self) -> Result<Vec<Vec<f64>>> {
        let flat = self.read_all_flat()?;
        Ok(flat.chunks_exact(self.dim).map(<[f64]>::to_vec).collect())
    }

    /// Loads the v2 columns verbatim: the tile-major exact column, the
    /// tile-major code column, and the quantization parameters — the
    /// zero-transpose path into `qcluster_index::QuantizedScan::from_parts`.
    ///
    /// # Errors
    ///
    /// `InvalidArg` for a v1 segment (no quantized column — re-encode
    /// via compaction), `Corrupt` on a short read, or I/O failures.
    pub fn load_quantized(&mut self) -> Result<(Vec<f64>, Vec<u8>, QuantParams)> {
        let Some(params) = self.params.clone() else {
            return Err(StoreError::InvalidArg(format!(
                "segment version {} has no quantized column",
                self.version
            )));
        };
        let ntiles = (self.count as usize).div_ceil(TILE_LANES);
        let tile_f64 = self.dim * TILE_LANES;
        let mut buf = Vec::new();
        self.read_span(self.exact_offset(), ntiles * tile_f64 * 8, &mut buf)?;
        let tiles: Vec<f64> = buf
            .chunks_exact(8)
            .map(|b| f64::from_le_bytes(b.try_into().expect("8 bytes")))
            .collect();
        let codes_off = self.exact_offset() + (ntiles * tile_f64 * 8) as u64;
        let mut codes = Vec::new();
        self.read_span(codes_off, ntiles * tile_f64, &mut codes)?;
        Ok((tiles, codes, params))
    }
}

/// Writes a v1 (row-major records) segment byte-for-byte, as
/// pre-migration stores left them on disk. Test fixture only.
#[cfg(test)]
pub(crate) fn write_segment_v1(path: &Path, dim: usize, vectors: &[Vec<f64>]) {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(MAGIC);
    bytes.extend_from_slice(&VERSION_V1.to_le_bytes());
    bytes.extend_from_slice(&(dim as u32).to_le_bytes());
    bytes.extend_from_slice(&0u32.to_le_bytes());
    let mut crc = Crc32::new();
    for v in vectors {
        assert_eq!(v.len(), dim);
        for &x in v {
            let b = x.to_le_bytes();
            crc.update(&b);
            bytes.extend_from_slice(&b);
        }
    }
    bytes.extend_from_slice(&(vectors.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&(dim as u32).to_le_bytes());
    bytes.extend_from_slice(&crc.finish().to_le_bytes());
    bytes.extend_from_slice(FOOTER_MAGIC);
    std::fs::write(path, bytes).unwrap();
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcluster_index::QuantizedScan;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("qstore_segment_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn vectors(n: usize, dim: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                (0..dim)
                    .map(|d| (i * dim + d) as f64 * 0.123 - 3.0)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn write_reopen_bitwise_equal() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("seg.qseg");
        let vecs = vectors(2500, 7); // spans multiple default pages
        write_segment(&path, 7, &vecs).unwrap();
        let mut reader = SegmentReader::open(&path).unwrap();
        assert_eq!(reader.version(), VERSION_V2);
        assert_eq!(reader.dim(), 7);
        assert_eq!(reader.count(), 2500);
        let back = reader.read_all().unwrap();
        assert_eq!(back.len(), vecs.len());
        for (a, b) in back.iter().zip(vecs.iter()) {
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.to_bits(), y.to_bits(), "bitwise-equal round trip");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn paged_reads_cover_exactly_the_records() {
        let dir = tmp_dir("pages");
        let path = dir.join("seg.qseg");
        let vecs = vectors(10, 3);
        write_segment(&path, 3, &vecs).unwrap();
        let mut reader = SegmentReader::open_with_page_size(&path, 4).unwrap();
        assert_eq!(reader.num_pages(), 3);
        assert_eq!(reader.page(0).unwrap().len(), 4);
        assert_eq!(reader.page(2).unwrap().len(), 2, "short final page");
        assert_eq!(reader.page(1).unwrap(), vecs[4..8].to_vec());
        assert!(reader.page(3).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flat_page_reads_match_the_convenience_form() {
        let dir = tmp_dir("flatpages");
        let path = dir.join("seg.qseg");
        let vecs = vectors(29, 5); // non-tile-aligned pages and tail
        write_segment(&path, 5, &vecs).unwrap();
        let mut reader = SegmentReader::open_with_page_size(&path, 6).unwrap();
        let mut flat = Vec::new();
        for page in 0..reader.num_pages() {
            let n = reader.read_page_flat(page, &mut flat).unwrap();
            let rows = reader.page(page).unwrap();
            assert_eq!(n, rows.len());
            let want: Vec<f64> = rows.into_iter().flatten().collect();
            assert_eq!(flat, want, "page {page}");
        }
        let all = reader.read_all_flat().unwrap();
        let want: Vec<f64> = vecs.iter().flatten().copied().collect();
        assert_eq!(all, want);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quantized_columns_round_trip_to_an_identical_scan() {
        let dir = tmp_dir("quant");
        let path = dir.join("seg.qseg");
        let vecs = vectors(100, 4);
        write_segment(&path, 4, &vecs).unwrap();
        let mut reader = SegmentReader::open(&path).unwrap();
        let (tiles, codes, params) = reader.load_quantized().unwrap();
        // The persisted columns must match an in-memory build exactly.
        let flat: Vec<f64> = vecs.iter().flatten().copied().collect();
        let fresh = QuantizedScan::from_flat(&flat, 4);
        assert_eq!(&tiles, fresh.corpus().tiles());
        assert_eq!(&codes, fresh.codes());
        assert_eq!(&params, fresh.params());
        assert_eq!(reader.quant_params(), Some(&params));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v1_segments_still_open_and_read() {
        let dir = tmp_dir("v1");
        let path = dir.join("seg.qseg");
        let vecs = vectors(10, 3);
        write_segment_v1(&path, 3, &vecs);
        let mut reader = SegmentReader::open_with_page_size(&path, 4).unwrap();
        assert_eq!(reader.version(), VERSION_V1);
        assert_eq!(reader.count(), 10);
        assert!(reader.quant_params().is_none());
        assert_eq!(reader.read_all().unwrap(), vecs);
        let flat = reader.read_all_flat().unwrap();
        let want: Vec<f64> = vecs.iter().flatten().copied().collect();
        assert_eq!(flat, want);
        assert!(matches!(
            reader.load_quantized(),
            Err(StoreError::InvalidArg(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flipped_bit_is_detected_on_open() {
        let dir = tmp_dir("crc");
        let path = dir.join("seg.qseg");
        write_segment(&path, 4, &vectors(64, 4)).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            SegmentReader::open(&path),
            Err(StoreError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_code_column_is_detected_on_open() {
        let dir = tmp_dir("codecrc");
        let path = dir.join("seg.qseg");
        write_segment(&path, 4, &vectors(64, 4)).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // The code column is the last body section before the footer.
        let idx = bytes.len() - FOOTER_LEN as usize - 3;
        bytes[idx] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            SegmentReader::open(&path),
            Err(StoreError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_segment_is_rejected() {
        let dir = tmp_dir("trunc");
        let path = dir.join("seg.qseg");
        write_segment(&path, 4, &vectors(64, 4)).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 9]).unwrap();
        assert!(matches!(
            SegmentReader::open(&path),
            Err(StoreError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unfinished_writer_leaves_no_segment() {
        let dir = tmp_dir("atomic");
        let path = dir.join("seg.qseg");
        let mut w = SegmentWriter::create(&path, 2).unwrap();
        w.append(&[1.0, 2.0]).unwrap();
        drop(w); // simulated crash before finish()
        assert!(!path.exists(), "only finish() publishes the segment");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_segment_round_trips() {
        let dir = tmp_dir("empty");
        let path = dir.join("seg.qseg");
        write_segment(&path, 5, &[]).unwrap();
        let mut reader = SegmentReader::open(&path).unwrap();
        assert_eq!(reader.count(), 0);
        assert_eq!(reader.num_pages(), 0);
        assert!(reader.read_all().unwrap().is_empty());
        assert!(reader.read_all_flat().unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
