//! The append-only binary segment format for vector corpora.
//!
//! A segment is an immutable run of fixed-width `f64` records:
//!
//! ```text
//! ┌────────────────────── header (16 B) ──────────────────────┐
//! │ magic "QSEG" │ version u32 │ dim u32 │ reserved u32 (= 0) │
//! ├────────────────────── records ────────────────────────────┤
//! │ count × dim × f64, little-endian, bit-exact               │
//! ├────────────────────── footer (20 B) ──────────────────────┤
//! │ count u64 │ dim u32 │ CRC-32 of records │ magic "SEGF"    │
//! └───────────────────────────────────────────────────────────┘
//! ```
//!
//! Writers stage into a `.tmp` sibling and atomically rename on
//! [`SegmentWriter::finish`], so a crash mid-write never leaves a
//! half-segment under the real name. [`SegmentReader::open`] validates
//! the header, footer, file length, and record CRC before returning;
//! reads after that are paged so a 50k-vector corpus never has to be
//! resident twice.

use crate::codec::{read_exact_or_eof, Crc32};
use crate::error::{Result, StoreError};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"QSEG";
const FOOTER_MAGIC: &[u8; 4] = b"SEGF";
const VERSION: u32 = 1;
const HEADER_LEN: u64 = 16;
const FOOTER_LEN: u64 = 20;

/// Default records per [`SegmentReader`] page.
pub const DEFAULT_PAGE_RECORDS: usize = 1024;

/// Durably syncs the directory containing `path`, so a rename into it
/// survives a crash. Best-effort on platforms where directories cannot
/// be opened for sync.
pub(crate) fn sync_parent_dir(path: &Path) {
    if let Some(parent) = path.parent() {
        if let Ok(dir) = File::open(parent) {
            let _ = dir.sync_all();
        }
    }
}

/// Streaming writer producing one segment file.
#[derive(Debug)]
pub struct SegmentWriter {
    file: BufWriter<File>,
    tmp_path: PathBuf,
    final_path: PathBuf,
    dim: usize,
    count: u64,
    crc: Crc32,
}

impl SegmentWriter {
    /// Starts a segment at `path` (staged as `path` + `.tmp`).
    ///
    /// # Errors
    ///
    /// `InvalidArg` for `dim == 0`, otherwise I/O failures.
    pub fn create(path: &Path, dim: usize) -> Result<Self> {
        if dim == 0 {
            return Err(StoreError::InvalidArg(
                "segment dim must be positive".into(),
            ));
        }
        let mut tmp_path = path.as_os_str().to_owned();
        tmp_path.push(".tmp");
        let tmp_path = PathBuf::from(tmp_path);
        let mut file = BufWriter::new(File::create(&tmp_path)?);
        file.write_all(MAGIC)?;
        file.write_all(&VERSION.to_le_bytes())?;
        file.write_all(&u32::try_from(dim).expect("dim fits u32").to_le_bytes())?;
        file.write_all(&0u32.to_le_bytes())?;
        Ok(SegmentWriter {
            file,
            tmp_path,
            final_path: path.to_path_buf(),
            dim,
            count: 0,
            crc: Crc32::new(),
        })
    }

    /// Records appended so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Appends one vector.
    ///
    /// # Errors
    ///
    /// `InvalidArg` on dimensionality mismatch, otherwise I/O failures.
    pub fn append(&mut self, vector: &[f64]) -> Result<()> {
        if vector.len() != self.dim {
            return Err(StoreError::InvalidArg(format!(
                "vector dim {} but segment dim {}",
                vector.len(),
                self.dim
            )));
        }
        for &v in vector {
            let bytes = v.to_le_bytes();
            self.file.write_all(&bytes)?;
            self.crc.update(&bytes);
        }
        self.count += 1;
        Ok(())
    }

    /// Writes the footer, fsyncs, and atomically renames the staged file
    /// into place. Returns the record count.
    ///
    /// # Errors
    ///
    /// I/O failures; the staged `.tmp` file is left behind for debugging
    /// on failure (and ignored by [`SegmentReader`] and the store).
    pub fn finish(mut self) -> Result<u64> {
        self.file.write_all(&self.count.to_le_bytes())?;
        self.file
            .write_all(&u32::try_from(self.dim).expect("dim fits u32").to_le_bytes())?;
        self.file.write_all(&self.crc.finish().to_le_bytes())?;
        self.file.write_all(FOOTER_MAGIC)?;
        self.file.flush()?;
        // Failpoint `segment.finish`: fail the seal before the staged
        // file is published — the `.tmp` stays behind, the final path
        // never appears, and recovery must not see a half segment.
        if let Some(action) = qcluster_failpoint::evaluate_sleepy("segment.finish") {
            return Err(crate::wal::injected_io("segment.finish", action).into());
        }
        self.file.get_ref().sync_all()?;
        std::fs::rename(&self.tmp_path, &self.final_path)?;
        sync_parent_dir(&self.final_path);
        Ok(self.count)
    }
}

/// Writes `vectors` as one segment file in a single call.
///
/// # Errors
///
/// See [`SegmentWriter`].
pub fn write_segment(path: &Path, dim: usize, vectors: &[Vec<f64>]) -> Result<u64> {
    let mut writer = SegmentWriter::create(path, dim)?;
    for v in vectors {
        writer.append(v)?;
    }
    writer.finish()
}

/// Validating, paged reader over one segment file.
#[derive(Debug)]
pub struct SegmentReader {
    file: File,
    path: PathBuf,
    dim: usize,
    count: u64,
    page_records: usize,
}

impl SegmentReader {
    /// Opens and fully validates a segment: magic, version, length
    /// arithmetic, header/footer dim agreement, and the record CRC
    /// (one streaming pass).
    ///
    /// # Errors
    ///
    /// `Corrupt` with the offending path and detail, or I/O failures.
    pub fn open(path: &Path) -> Result<Self> {
        Self::open_with_page_size(path, DEFAULT_PAGE_RECORDS)
    }

    /// [`SegmentReader::open`] with an explicit page size (records per
    /// page, ≥ 1).
    ///
    /// # Errors
    ///
    /// See [`SegmentReader::open`]; `InvalidArg` for a zero page size.
    pub fn open_with_page_size(path: &Path, page_records: usize) -> Result<Self> {
        if page_records == 0 {
            return Err(StoreError::InvalidArg(
                "page_records must be positive".into(),
            ));
        }
        let file = File::open(path)?;
        let file_len = file.metadata()?.len();
        if file_len < HEADER_LEN + FOOTER_LEN {
            return Err(StoreError::corrupt(
                path,
                "file shorter than header + footer",
            ));
        }

        let mut reader = BufReader::new(&file);
        let mut header = [0u8; HEADER_LEN as usize];
        reader.read_exact(&mut header)?;
        if &header[0..4] != MAGIC {
            return Err(StoreError::corrupt(path, "bad segment magic"));
        }
        let version = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(StoreError::corrupt(
                path,
                format!("unsupported segment version {version} (expected {VERSION})"),
            ));
        }
        let dim = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes")) as usize;
        if dim == 0 {
            return Err(StoreError::corrupt(path, "zero dimensionality"));
        }

        let mut footer = [0u8; FOOTER_LEN as usize];
        reader.seek(SeekFrom::End(-(FOOTER_LEN as i64)))?;
        reader.read_exact(&mut footer)?;
        if &footer[16..20] != FOOTER_MAGIC {
            return Err(StoreError::corrupt(path, "bad footer magic"));
        }
        let count = u64::from_le_bytes(footer[0..8].try_into().expect("8 bytes"));
        let footer_dim = u32::from_le_bytes(footer[8..12].try_into().expect("4 bytes")) as usize;
        let stored_crc = u32::from_le_bytes(footer[12..16].try_into().expect("4 bytes"));
        if footer_dim != dim {
            return Err(StoreError::corrupt(
                path,
                format!("header dim {dim} disagrees with footer dim {footer_dim}"),
            ));
        }
        let record_bytes = count
            .checked_mul(dim as u64)
            .and_then(|n| n.checked_mul(8))
            .ok_or_else(|| StoreError::corrupt(path, "record byte count overflows"))?;
        if file_len != HEADER_LEN + record_bytes + FOOTER_LEN {
            return Err(StoreError::corrupt(
                path,
                format!("file length {file_len} inconsistent with {count} records of dim {dim}"),
            ));
        }

        // Streaming CRC pass over the records.
        reader.seek(SeekFrom::Start(HEADER_LEN))?;
        let mut crc = Crc32::new();
        let mut remaining = record_bytes;
        let mut chunk = [0u8; 64 * 1024];
        while remaining > 0 {
            let take = remaining.min(chunk.len() as u64) as usize;
            reader.read_exact(&mut chunk[..take])?;
            crc.update(&chunk[..take]);
            remaining -= take as u64;
        }
        if crc.finish() != stored_crc {
            return Err(StoreError::corrupt(path, "record CRC mismatch"));
        }

        Ok(SegmentReader {
            file,
            path: path.to_path_buf(),
            dim,
            count,
            page_records,
        })
    }

    /// Record dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of records.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of pages ([`Self::page`] accepts `0..num_pages()`).
    pub fn num_pages(&self) -> usize {
        (self.count as usize).div_ceil(self.page_records)
    }

    /// Reads one page of records (the final page may be short).
    ///
    /// # Errors
    ///
    /// `InvalidArg` for an out-of-range page, `Corrupt` on a short read
    /// (the file shrank after open), or I/O failures.
    pub fn page(&mut self, page: usize) -> Result<Vec<Vec<f64>>> {
        if page >= self.num_pages() {
            return Err(StoreError::InvalidArg(format!(
                "page {page} out of range ({} pages)",
                self.num_pages()
            )));
        }
        let start = page * self.page_records;
        let len = self.page_records.min(self.count as usize - start);
        let offset = HEADER_LEN + (start as u64) * (self.dim as u64) * 8;
        self.file.seek(SeekFrom::Start(offset))?;
        let mut reader = BufReader::new(&self.file);
        let mut out = Vec::with_capacity(len);
        let mut record = vec![0u8; self.dim * 8];
        for _ in 0..len {
            if !read_exact_or_eof(&mut reader, &mut record)? {
                return Err(StoreError::corrupt(&self.path, "segment shrank after open"));
            }
            out.push(
                record
                    .chunks_exact(8)
                    .map(|b| f64::from_le_bytes(b.try_into().expect("8 bytes")))
                    .collect(),
            );
        }
        Ok(out)
    }

    /// Reads every record, page by page.
    ///
    /// # Errors
    ///
    /// See [`SegmentReader::page`].
    pub fn read_all(&mut self) -> Result<Vec<Vec<f64>>> {
        let mut out = Vec::with_capacity(self.count as usize);
        for page in 0..self.num_pages() {
            out.extend(self.page(page)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("qstore_segment_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn vectors(n: usize, dim: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                (0..dim)
                    .map(|d| (i * dim + d) as f64 * 0.123 - 3.0)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn write_reopen_bitwise_equal() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("seg.qseg");
        let vecs = vectors(2500, 7); // spans multiple default pages
        write_segment(&path, 7, &vecs).unwrap();
        let mut reader = SegmentReader::open(&path).unwrap();
        assert_eq!(reader.dim(), 7);
        assert_eq!(reader.count(), 2500);
        let back = reader.read_all().unwrap();
        assert_eq!(back.len(), vecs.len());
        for (a, b) in back.iter().zip(vecs.iter()) {
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.to_bits(), y.to_bits(), "bitwise-equal round trip");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn paged_reads_cover_exactly_the_records() {
        let dir = tmp_dir("pages");
        let path = dir.join("seg.qseg");
        let vecs = vectors(10, 3);
        write_segment(&path, 3, &vecs).unwrap();
        let mut reader = SegmentReader::open_with_page_size(&path, 4).unwrap();
        assert_eq!(reader.num_pages(), 3);
        assert_eq!(reader.page(0).unwrap().len(), 4);
        assert_eq!(reader.page(2).unwrap().len(), 2, "short final page");
        assert_eq!(reader.page(1).unwrap(), vecs[4..8].to_vec());
        assert!(reader.page(3).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flipped_bit_is_detected_on_open() {
        let dir = tmp_dir("crc");
        let path = dir.join("seg.qseg");
        write_segment(&path, 4, &vectors(64, 4)).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            SegmentReader::open(&path),
            Err(StoreError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_segment_is_rejected() {
        let dir = tmp_dir("trunc");
        let path = dir.join("seg.qseg");
        write_segment(&path, 4, &vectors(64, 4)).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 9]).unwrap();
        assert!(matches!(
            SegmentReader::open(&path),
            Err(StoreError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unfinished_writer_leaves_no_segment() {
        let dir = tmp_dir("atomic");
        let path = dir.join("seg.qseg");
        let mut w = SegmentWriter::create(&path, 2).unwrap();
        w.append(&[1.0, 2.0]).unwrap();
        drop(w); // simulated crash before finish()
        assert!(!path.exists(), "only finish() publishes the segment");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_segment_round_trips() {
        let dir = tmp_dir("empty");
        let path = dir.join("seg.qseg");
        write_segment(&path, 5, &[]).unwrap();
        let mut reader = SegmentReader::open(&path).unwrap();
        assert_eq!(reader.count(), 0);
        assert_eq!(reader.num_pages(), 0);
        assert!(reader.read_all().unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
