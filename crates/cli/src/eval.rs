//! `qcluster eval` — oracle-graded relevance-feedback evaluation.
//!
//! Replays the paper's retrieval experiment: sample query images, run
//! the initial example-image query plus `rounds` feedback iterations
//! (the oracle-backed [`SimulatedUser`] marks each answer), and report
//! mean precision@k / recall@k per iteration — the precision
//! trajectory of the paper's Fig. 8/9.
//!
//! Two execution paths score the **same sampled queries**:
//!
//! - **offline** — `qcluster-eval`'s in-process [`FeedbackSession`]
//!   over the labeled feature file; the ground-truth trajectory.
//! - **served** — real wire sessions against a `qcluster serve` stack
//!   (single node over TCP, or a router-fronted cluster), driven with
//!   the same protocol the loadgen fleet uses.
//!
//! The quality gate compares the two tables: at every iteration the
//! served mean precision must stay within ε of the offline baseline,
//! which is what the golden end-to-end test (and `qcluster run`)
//! enforce.

use crate::error::CliError;
use crate::stats::PipelineStats;
use qcluster_core::{QclusterConfig, QclusterEngine};
use qcluster_eval::oracle::SCORE_SAME_CATEGORY;
use qcluster_eval::{precision_at_k, Dataset, FeedbackSession, RelevanceOracle, SimulatedUser};
use qcluster_loadgen::{SeedRng, SoakBackend};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Stream tag deriving the query-sampling RNG from the eval seed.
const QUERY_STREAM: u64 = 0xE7A1;

/// Eval shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalOptions {
    /// Results per query round.
    pub k: usize,
    /// Feedback iterations after the initial query.
    pub rounds: usize,
    /// Query images to sample.
    pub queries: usize,
    /// Sampling seed.
    pub seed: u64,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            k: 20,
            rounds: 2,
            queries: 30,
            seed: 17,
        }
    }
}

/// Aggregated retrieval quality at one feedback iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationRow {
    /// Iteration index (0 = the initial example-image query).
    pub iteration: usize,
    /// Mean precision@k over the scored sessions.
    pub mean_precision: f64,
    /// Sample standard deviation of precision@k.
    pub std_precision: f64,
    /// Mean recall@k (same-category hits / category size).
    pub mean_recall: f64,
    /// Sessions that contributed a score at this iteration.
    pub sessions: usize,
}

/// One eval run's full result table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalReport {
    /// Which path produced it (`offline` or the served target label).
    pub target: String,
    /// Results per round.
    pub k: usize,
    /// Feedback iterations after the initial query.
    pub rounds: usize,
    /// Query images sampled.
    pub queries: usize,
    /// Sampling seed.
    pub seed: u64,
    /// One row per iteration, index order.
    pub rows: Vec<IterationRow>,
}

impl EvalReport {
    /// Renders the table as markdown.
    pub fn render_markdown(&self) -> String {
        let mut out = format!(
            "| iteration | precision@{k} | σ | recall@{k} | sessions |\n\
             |---:|---:|---:|---:|---:|\n",
            k = self.k
        );
        for row in &self.rows {
            out.push_str(&format!(
                "| {} | {:.4} | {:.4} | {:.4} | {} |\n",
                row.iteration, row.mean_precision, row.std_precision, row.mean_recall, row.sessions
            ));
        }
        out
    }
}

/// Samples `queries` distinct query images (falls back to allowing
/// repeats only when the corpus is smaller than the request).
pub fn sample_queries(corpus_len: usize, queries: usize, seed: u64) -> Vec<usize> {
    let mut rng = SeedRng::derived(seed, QUERY_STREAM);
    if queries >= corpus_len {
        return (0..corpus_len).collect();
    }
    let mut seen = BTreeSet::new();
    while seen.len() < queries {
        seen.insert(rng.next_range(corpus_len as u64) as usize);
    }
    seen.into_iter().collect()
}

/// Per-session scores accumulated into rows.
struct ScoreTable {
    /// `precision[i]` = precision@k samples at iteration `i`.
    precision: Vec<Vec<f64>>,
    recall: Vec<Vec<f64>>,
}

impl ScoreTable {
    fn new(iterations: usize) -> ScoreTable {
        ScoreTable {
            precision: vec![Vec::new(); iterations],
            recall: vec![Vec::new(); iterations],
        }
    }

    fn observe(
        &mut self,
        dataset: &Dataset,
        category: usize,
        iteration: usize,
        retrieved: &[usize],
        k: usize,
    ) {
        let oracle = RelevanceOracle::new(dataset);
        let depth = retrieved.len().min(k);
        let hits = retrieved[..depth]
            .iter()
            .filter(|&&id| id < dataset.len() && oracle.is_relevant(category, id))
            .count();
        self.precision[iteration].push(precision_at_k(dataset, category, retrieved, k));
        self.recall[iteration].push(hits as f64 / oracle.total_relevant(category) as f64);
    }

    fn rows(&self) -> Vec<IterationRow> {
        self.precision
            .iter()
            .zip(self.recall.iter())
            .enumerate()
            .map(|(i, (p, r))| IterationRow {
                iteration: i,
                mean_precision: qcluster_stats::descriptive::mean(p).unwrap_or(0.0),
                std_precision: qcluster_stats::descriptive::sample_variance(p)
                    .map_or(0.0, f64::sqrt),
                mean_recall: qcluster_stats::descriptive::mean(r).unwrap_or(0.0),
                sessions: p.len(),
            })
            .collect()
    }
}

/// Runs the offline (in-process) baseline over the labeled dataset.
///
/// # Errors
///
/// Engine failures.
pub fn offline_eval(
    dataset: &Dataset,
    opts: &EvalOptions,
    stats: &PipelineStats,
) -> Result<EvalReport, CliError> {
    let stage = stats.stage("offline");
    let session = FeedbackSession::new(dataset, opts.k);
    let mut engine = QclusterEngine::new(QclusterConfig::default());
    let mut table = ScoreTable::new(opts.rounds + 1);
    let queries = sample_queries(dataset.len(), opts.queries, opts.seed);
    for &q in &queries {
        stage.item_in();
        let outcome = session
            .run(&mut engine, q, opts.rounds)
            .map_err(|e| CliError::stage("offline", e))?;
        let category = dataset.category(q);
        for (i, record) in outcome.iterations.iter().enumerate() {
            table.observe(dataset, category, i, &record.retrieved, opts.k);
        }
        stage.item_out();
    }
    stage.finish();
    Ok(EvalReport {
        target: "offline".into(),
        k: opts.k,
        rounds: opts.rounds,
        queries: queries.len(),
        seed: opts.seed,
        rows: table.rows(),
    })
}

/// Drives the same eval over a live serving stack (the loadgen wire
/// protocol: initial example query → oracle marks → `Feed` → refined
/// query).
///
/// # Errors
///
/// Transport or service failures (a degraded-but-answered query is
/// scored, not an error).
pub fn served_eval(
    dataset: &Dataset,
    backend: &dyn SoakBackend,
    opts: &EvalOptions,
    stats: &PipelineStats,
) -> Result<EvalReport, CliError> {
    let stage = stats.stage("served");
    let mut target = backend
        .user_target()
        .map_err(|e| CliError::stage("served", e))?;
    let mut table = ScoreTable::new(opts.rounds + 1);
    let queries = sample_queries(dataset.len(), opts.queries, opts.seed);
    for &q in &queries {
        stage.item_in();
        let category = dataset.category(q);
        let user = SimulatedUser::new(dataset, category);
        let session = target
            .create_session()
            .map_err(|e| CliError::stage("served", e))?;
        let reply = target
            .query(session, opts.k, Some(dataset.vector(q).to_vec()), None)
            .map_err(|e| CliError::stage("served", e))?;
        table.observe(dataset, category, 0, &reply.retrieved, opts.k);
        let mut marked = mark(dataset, &user, q, &reply.retrieved);
        for round in 0..opts.rounds {
            let ids: Vec<usize> = marked.iter().map(|p| p.id).collect();
            let scores: Vec<f64> = marked.iter().map(|p| p.score).collect();
            target
                .feed(session, &ids, &scores)
                .map_err(|e| CliError::stage("served", e))?;
            let reply = target
                .query(session, opts.k, None, None)
                .map_err(|e| CliError::stage("served", e))?;
            table.observe(dataset, category, round + 1, &reply.retrieved, opts.k);
            marked = mark(dataset, &user, q, &reply.retrieved);
        }
        let _ = target.close_session(session);
        stage.item_out();
    }
    stage.finish();
    Ok(EvalReport {
        target: backend.label(),
        k: opts.k,
        rounds: opts.rounds,
        queries: queries.len(),
        seed: opts.seed,
        rows: table.rows(),
    })
}

/// Oracle-marks one answer, dropping unlabeled ids (live ingests past
/// the labeled corpus) and falling back to the trivially relevant
/// query example when nothing was marked.
fn mark(
    dataset: &Dataset,
    user: &SimulatedUser<'_>,
    query_image: usize,
    retrieved: &[usize],
) -> Vec<qcluster_core::FeedbackPoint> {
    let labelled: Vec<usize> = retrieved
        .iter()
        .copied()
        .filter(|&id| id < dataset.len())
        .collect();
    let mut marked = user.mark(&labelled);
    if marked.is_empty() {
        marked.push(qcluster_core::FeedbackPoint::new(
            query_image,
            dataset.vector(query_image).to_vec(),
            SCORE_SAME_CATEGORY,
        ));
    }
    marked
}

/// The quality gate: every iteration's served mean precision must sit
/// within `epsilon` of the offline baseline.
///
/// # Errors
///
/// [`CliError::QualityGate`] naming the first diverging iteration.
pub fn compare_reports(
    served: &EvalReport,
    offline: &EvalReport,
    epsilon: f64,
) -> Result<(), CliError> {
    for (s, o) in served.rows.iter().zip(offline.rows.iter()) {
        if (s.mean_precision - o.mean_precision).abs() > epsilon {
            return Err(CliError::QualityGate {
                iteration: s.iteration,
                served: s.mean_precision,
                offline: o.mean_precision,
                epsilon,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcluster_imaging::FeatureKind;

    fn dataset() -> Dataset {
        Dataset::small_default(FeatureKind::ColorMoments, 9).unwrap()
    }

    #[test]
    fn query_sampling_is_deterministic_and_distinct() {
        let a = sample_queries(144, 10, 17);
        let b = sample_queries(144, 10, 17);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        let distinct: BTreeSet<_> = a.iter().collect();
        assert_eq!(distinct.len(), 10);
        assert!(a.iter().all(|&q| q < 144));
        assert_ne!(a, sample_queries(144, 10, 18));
    }

    #[test]
    fn offline_eval_produces_a_full_table() {
        let ds = dataset();
        let opts = EvalOptions {
            queries: 6,
            ..EvalOptions::default()
        };
        let stats = PipelineStats::new("eval");
        let report = offline_eval(&ds, &opts, &stats).unwrap();
        assert_eq!(report.rows.len(), 3);
        assert_eq!(report.rows[0].sessions, 6);
        assert!(report.rows.iter().all(|r| r.mean_precision > 0.0));
        assert!(report
            .rows
            .iter()
            .all(|r| r.mean_precision <= 1.0 && r.mean_recall <= 1.0));
        // Feedback must not collapse precision relative to round 0.
        let first = report.rows[0].mean_precision;
        let last = report.rows.last().unwrap().mean_precision;
        assert!(
            last >= first - 0.1,
            "feedback collapsed precision: {first:.3} -> {last:.3}"
        );
        let md = report.render_markdown();
        assert!(md.contains("precision@20"), "{md}");
        assert!(stats.verify_conservation().is_ok());
    }

    #[test]
    fn quality_gate_triggers_on_divergence() {
        let row = |p: f64| IterationRow {
            iteration: 0,
            mean_precision: p,
            std_precision: 0.0,
            mean_recall: 0.0,
            sessions: 1,
        };
        let mk = |p: f64| EvalReport {
            target: "t".into(),
            k: 20,
            rounds: 0,
            queries: 1,
            seed: 0,
            rows: vec![row(p)],
        };
        assert!(compare_reports(&mk(0.80), &mk(0.83), 0.05).is_ok());
        let err = compare_reports(&mk(0.70), &mk(0.83), 0.05).unwrap_err();
        assert!(err.to_string().contains("iteration 0"), "{err}");
    }

    #[test]
    fn reports_serialize_to_json() {
        let ds = dataset();
        let opts = EvalOptions {
            queries: 3,
            rounds: 1,
            ..EvalOptions::default()
        };
        let report = offline_eval(&ds, &opts, &PipelineStats::new("eval")).unwrap();
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: EvalReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
