//! `qcluster synth` — the synthetic generators, folded in from
//! `dataset-tool`.
//!
//! Two modes:
//!
//! - `qcluster synth images <dir> …` renders the procedural corpus (the
//!   paper's Corel-collection substitute) to a **directory of raw PPM
//!   image files** plus a `manifest.json` carrying the ground-truth
//!   labels — exactly the "raw images" shape `qcluster ingest` starts
//!   from, so the full pipeline runs from files on disk like it would
//!   against a real collection.
//! - `qcluster synth <out.qseg> <n> <dim> …` streams a synthetic
//!   clustered vector corpus straight into a sealed format-v2 segment
//!   (the `dataset-tool synth` behavior, kept verbatim for the
//!   quantize-bench workflow).

use crate::error::CliError;
use crate::stats::PipelineStats;
use qcluster_imaging::{Corpus, CorpusBuilder};
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::Path;
use std::time::Duration;

/// File name of the label manifest a synthesized image directory
/// carries beside its PPM files.
pub const MANIFEST_FILE: &str = "manifest.json";

/// Ground-truth labels for one image file in a corpus directory.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ManifestEntry {
    /// File name relative to the manifest's directory.
    pub file: String,
    /// Category label.
    pub category: usize,
    /// Super-category label.
    pub super_category: usize,
}

/// The label manifest of an image directory: what the oracle needs to
/// grade retrieval over features extracted from these files.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Manifest {
    /// Manifest format version.
    pub version: u32,
    /// Images per category (constant by corpus construction).
    pub images_per_category: usize,
    /// One entry per image, in corpus id order.
    pub entries: Vec<ManifestEntry>,
}

/// Manifest format version written by this binary.
pub const MANIFEST_VERSION: u32 = 1;

/// Shape of a synthesized image corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynthImagesConfig {
    /// Number of categories.
    pub categories: usize,
    /// Images per category.
    pub images_per_category: usize,
    /// Square image edge, pixels.
    pub image_size: usize,
    /// Categories per super-category.
    pub categories_per_super: usize,
    /// Corpus seed.
    pub seed: u64,
}

impl Default for SynthImagesConfig {
    fn default() -> Self {
        // The quick-scale corpus shape from `qcluster_bench::image_corpus`:
        // big enough that feedback has room to improve precision, small
        // enough to render in seconds.
        SynthImagesConfig {
            categories: 60,
            images_per_category: 20,
            image_size: 24,
            categories_per_super: 5,
            seed: 7,
        }
    }
}

impl SynthImagesConfig {
    /// Builds the corpus this config describes.
    pub fn corpus(&self) -> Corpus {
        CorpusBuilder::new()
            .categories(self.categories)
            .images_per_category(self.images_per_category)
            .image_size(self.image_size)
            .categories_per_super(self.categories_per_super)
            .multimodal_fraction(0.4)
            .jitter(0.5)
            .seed(self.seed)
            .build()
    }
}

/// Renders `config`'s corpus into `dir` as PPM files plus
/// `manifest.json`, reporting progress through `stats` (one `render`
/// stage). Returns the number of images written.
///
/// # Errors
///
/// Filesystem failures with path context.
pub fn synth_images(
    dir: &Path,
    config: &SynthImagesConfig,
    stats: &PipelineStats,
) -> Result<usize, CliError> {
    std::fs::create_dir_all(dir).map_err(|e| CliError::io(dir, e))?;
    let corpus = config.corpus();
    let stage = stats.stage("render");
    let n = corpus.len();
    let entries = stats.run_with_progress(Duration::from_secs(1), || -> Result<_, CliError> {
        let mut entries = Vec::with_capacity(n);
        for id in 0..n {
            stage.item_in();
            let file = format!("img{id:06}.ppm");
            let path = dir.join(&file);
            let img = corpus.render_by_id(id);
            let f = std::fs::File::create(&path).map_err(|e| CliError::io(&path, e))?;
            let mut w = std::io::BufWriter::new(f);
            img.write_ppm(&mut w).map_err(|e| CliError::io(&path, e))?;
            w.flush().map_err(|e| CliError::io(&path, e))?;
            stage.add_bytes(std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0));
            entries.push(ManifestEntry {
                file,
                category: corpus.category_of(id),
                super_category: corpus.super_category_of(id),
            });
            stage.item_out();
        }
        Ok(entries)
    })?;
    stage.finish();

    let manifest = Manifest {
        version: MANIFEST_VERSION,
        images_per_category: corpus.images_per_category(),
        entries,
    };
    write_manifest(dir, &manifest)?;
    Ok(n)
}

/// Writes `manifest` into `dir/manifest.json`.
///
/// # Errors
///
/// Filesystem failures with path context.
pub fn write_manifest(dir: &Path, manifest: &Manifest) -> Result<(), CliError> {
    let path = dir.join(MANIFEST_FILE);
    let json = serde_json::to_string_pretty(manifest)
        .map_err(|e| CliError::stage("render", format!("manifest serialization: {e}")))?;
    std::fs::write(&path, json).map_err(|e| CliError::io(&path, e))
}

/// Loads `dir/manifest.json`.
///
/// # Errors
///
/// Missing or malformed manifests, with the path in context.
pub fn read_manifest(dir: &Path) -> Result<Manifest, CliError> {
    let path = dir.join(MANIFEST_FILE);
    let text = std::fs::read_to_string(&path).map_err(|e| CliError::io(&path, e))?;
    let manifest: Manifest = serde_json::from_str(&text)
        .map_err(|e| CliError::stage("scan", format!("malformed {}: {e}", path.display())))?;
    if manifest.version != MANIFEST_VERSION {
        return Err(CliError::stage(
            "scan",
            format!(
                "unsupported manifest version {} in {} (expected {MANIFEST_VERSION})",
                manifest.version,
                path.display()
            ),
        ));
    }
    Ok(manifest)
}

/// The `dataset-tool synth` segment mode: streams an `n`-point
/// synthetic clustered corpus into a sealed v2 segment at `path`.
///
/// # Errors
///
/// Store failures, rendered with the output path.
pub fn synth_segment(
    path: &Path,
    n: u64,
    dim: usize,
    centers: usize,
    seed: u64,
) -> Result<u64, CliError> {
    qcluster_bench::synth_segment(path, n, dim, centers, seed)
        .map_err(|e| CliError::stage("synth", format!("{}: {e}", path.display())))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("qcluster-cli-synth-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn synth_images_writes_ppms_and_manifest() {
        let dir = tmp_dir("images");
        let config = SynthImagesConfig {
            categories: 3,
            images_per_category: 4,
            image_size: 8,
            categories_per_super: 2,
            seed: 5,
        };
        let stats = PipelineStats::new("synth");
        let n = synth_images(&dir, &config, &stats).unwrap();
        assert_eq!(n, 12);
        let manifest = read_manifest(&dir).unwrap();
        assert_eq!(manifest.entries.len(), 12);
        assert_eq!(manifest.images_per_category, 4);
        assert_eq!(manifest.entries[0].category, 0);
        assert_eq!(manifest.entries[11].category, 2);
        // Every listed file decodes back to the rendered image size.
        for entry in &manifest.entries {
            let bytes = std::fs::read(dir.join(&entry.file)).unwrap();
            let img = qcluster_imaging::ImageRgb::read_ppm(bytes.as_slice()).unwrap();
            assert_eq!(img.width(), 8);
        }
        let snap = stats.snapshot();
        assert_eq!(snap[0].items_in, 12);
        assert_eq!(snap[0].items_out, 12);
        assert!(snap[0].bytes > 0);
        assert!(stats.verify_conservation().is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_version_is_checked() {
        let dir = tmp_dir("version");
        let manifest = Manifest {
            version: 99,
            images_per_category: 1,
            entries: vec![],
        };
        write_manifest(&dir, &manifest).unwrap();
        let err = read_manifest(&dir).unwrap_err();
        assert!(err.to_string().contains("version 99"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
