//! `qcluster run <recipe.toml>` — the whole pipeline in one command.
//!
//! Executes the recipe's phases in order, each under its own
//! [`PipelineStats`]:
//!
//! 1. **synth** — render the synthetic corpus to raw PPM files.
//! 2. **ingest** — stream the files through decode → extract → PCA.
//! 3. **build** — seal the reduced vectors into a durable v2 store.
//! 4. **serve** — bind the TCP stack (cluster when `serve.nodes > 1`)
//!    on OS-assigned ports, in-process.
//! 5. **eval** — drive oracle-graded feedback sessions over the wire
//!    *and* through the offline in-process baseline, then gate: served
//!    mean precision must stay within ε of offline at every iteration.
//!
//! `recipes/paper.toml` reproduces the paper's precision-trajectory
//! experiment from raw (synthetic) images with exactly this path.

use crate::build::{build, BuildReport};
use crate::error::CliError;
use crate::eval::{compare_reports, offline_eval, served_eval, EvalReport};
use crate::ingest::{ingest, IngestReport, IngestSource};
use crate::recipe::Recipe;
use crate::serve::{serve, ServeOptions};
use crate::stats::{PipelineStats, StageStats};
use crate::synth::synth_images;
use qcluster_loadgen::{RouterBackend, SoakBackend, TcpBackend};
use qcluster_net::ClientConfig;
use qcluster_router::{Router, RouterConfig, ShardMap};
use std::path::Path;
use std::sync::Arc;

/// Everything one `qcluster run` produced.
#[derive(Debug)]
pub struct RunReport {
    /// Ingest summary (images, skips, dim, retained variance).
    pub ingest: IngestReport,
    /// Build summary (vectors, segments).
    pub build: BuildReport,
    /// Wire-path eval table.
    pub served: EvalReport,
    /// In-process baseline table.
    pub offline: EvalReport,
    /// The gate that was applied.
    pub epsilon: f64,
    /// Per-phase stage accounting, in execution order:
    /// `(pipeline name, stage snapshots, rendered markdown table)`.
    pub phases: Vec<(String, Vec<StageStats>, String)>,
}

/// Executes `recipe`, staging everything under `workdir` (created if
/// missing; contents for each phase live in `images/`, `features.qdsb`,
/// `store/`).
///
/// # Errors
///
/// Any phase failure, a stats-conservation violation, or the final
/// served-vs-offline quality gate.
pub fn run(recipe: &Recipe, workdir: &Path, progress: bool) -> Result<RunReport, CliError> {
    std::fs::create_dir_all(workdir).map_err(|e| CliError::io(workdir, e))?;
    let mut phases: Vec<(String, Vec<StageStats>, String)> = Vec::new();
    let phase = |name: &str| PipelineStats::new(name).with_progress(progress);
    let record = |phases: &mut Vec<(String, Vec<StageStats>, String)>, stats: &PipelineStats| {
        phases.push((
            stats.pipeline().to_string(),
            stats.snapshot(),
            stats.render_table(),
        ));
    };

    // 1. synth: raw images on disk.
    let images_dir = workdir.join("images");
    let synth_stats = phase("synth");
    let rendered = synth_images(&images_dir, &recipe.corpus, &synth_stats)?;
    record(&mut phases, &synth_stats);
    eprintln!(
        "  [run] synth: {rendered} images -> {}",
        images_dir.display()
    );

    // 2. ingest: files -> reduced feature dataset.
    let features = workdir.join("features.qdsb");
    let ingest_stats = phase("ingest");
    let ingest_report = ingest(
        &IngestSource::Images(images_dir),
        &features,
        &recipe.ingest,
        &ingest_stats,
    )?;
    record(&mut phases, &ingest_stats);
    eprintln!(
        "  [run] ingest: {} vectors x {} dims ({} skipped, {:.0}% variance retained)",
        ingest_report.images,
        ingest_report.dim,
        ingest_report.skipped.len(),
        ingest_report.retained_variance * 100.0
    );

    // 3. build: durable v2 store.
    let store_dir = workdir.join("store");
    let build_stats = phase("build");
    let build_report = build(&features, &store_dir, &build_stats)?;
    record(&mut phases, &build_stats);
    eprintln!(
        "  [run] build: {} vectors sealed into {} segment(s)",
        build_report.vectors, build_report.segments
    );

    // 4. serve: in-process TCP stack.
    let serve_stats = phase("serve");
    let handle = serve(
        &store_dir,
        &ServeOptions {
            nodes: recipe.nodes,
            ..ServeOptions::default()
        },
        &serve_stats,
    )?;
    record(&mut phases, &serve_stats);
    eprintln!(
        "  [run] serve: {} node(s) at {:?}",
        handle.addrs().len(),
        handle.addrs()
    );

    // 5. eval: wire path vs offline baseline, same sampled queries.
    let eval_result = (|| {
        let dataset = qcluster_eval::load_dataset_auto(&features)
            .map_err(|e| CliError::stage("eval", format!("{}: {e}", features.display())))?;
        let backend: Box<dyn SoakBackend> = if recipe.nodes > 1 {
            let map = ShardMap::new(handle.partitions().to_vec())
                .map_err(|e| CliError::stage("eval", format!("shard map: {e}")))?;
            let router = Router::new(map, RouterConfig::default())
                .map_err(|e| CliError::stage("eval", format!("router: {e}")))?;
            Box::new(RouterBackend::new(Arc::new(router)))
        } else {
            Box::new(
                TcpBackend::connect(handle.addrs()[0], ClientConfig::default())
                    .map_err(|e| CliError::stage("eval", e))?,
            )
        };
        let eval_stats = phase("eval");
        let served = served_eval(&dataset, backend.as_ref(), &recipe.eval, &eval_stats)?;
        let offline = offline_eval(&dataset, &recipe.eval, &eval_stats)?;
        eval_stats.verify_conservation()?;
        Ok::<_, CliError>((served, offline, eval_stats))
    })();
    let (served, offline, eval_stats) = match eval_result {
        Ok(ok) => ok,
        Err(e) => {
            handle.shutdown();
            return Err(e);
        }
    };
    record(&mut phases, &eval_stats);
    handle.shutdown();

    compare_reports(&served, &offline, recipe.epsilon)?;
    Ok(RunReport {
        ingest: ingest_report,
        build: build_report,
        served,
        offline,
        epsilon: recipe.epsilon,
        phases,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_recipe_runs_end_to_end() {
        let recipe = Recipe::parse(
            "[corpus]\n\
             categories = 6\n\
             images_per_category = 8\n\
             image_size = 12\n\
             categories_per_super = 3\n\
             seed = 5\n\
             [eval]\n\
             k = 8\n\
             rounds = 1\n\
             queries = 6\n\
             epsilon = 0.25\n",
            Path::new("inline.toml"),
        )
        .unwrap();
        let workdir = std::env::temp_dir().join(format!("qcluster-cli-run-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&workdir);
        let report = run(&recipe, &workdir, false).unwrap();
        assert_eq!(report.ingest.images, 48);
        assert_eq!(report.build.vectors, 48);
        assert_eq!(report.served.rows.len(), 2);
        assert_eq!(report.offline.rows.len(), 2);
        assert_eq!(report.phases.len(), 5);
        let names: Vec<&str> = report.phases.iter().map(|(n, _, _)| n.as_str()).collect();
        assert_eq!(names, ["synth", "ingest", "build", "serve", "eval"]);
        let _ = std::fs::remove_dir_all(&workdir);
    }
}
