//! `qcluster ingest` — raw images → reduced feature dataset, as a
//! bounded multi-threaded stage pipeline.
//!
//! ```text
//! scan ──▶ decode (×W) ──▶ extract (×W) ──▶ reduce (PCA) ──▶ write
//! ```
//!
//! `scan` walks the source (an image directory's `manifest.json`, or
//! the in-memory synthetic generator) and streams work items through a
//! bounded channel, so memory stays flat no matter the corpus size up
//! to the PCA barrier. `decode` workers read and parse each PPM —
//! corrupt, truncated, or zero-byte files are **skipped and counted**
//! with a typed per-file error ([`SkippedFile`]), never aborting the
//! run. `extract` computes the raw feature vector (HSV color moments,
//! GLCM texture, …). `reduce` is the pipeline's one barrier: the
//! paper's PCA is fitted on the whole corpus, so every raw row must
//! exist before projection. `write` persists the reduced vectors plus
//! ground truth as a `qcluster-eval` dataset (binary or JSON by
//! extension).
//!
//! Every stage accounts items in/out/skipped, bytes, and wall time
//! through the shared [`PipelineStats`] reporter.

use crate::error::{CliError, SkipReason, SkippedFile};
use crate::stats::{PipelineStats, StageHandle};
use crate::synth::{read_manifest, SynthImagesConfig};
use qcluster_eval::{save_dataset, save_dataset_binary, Dataset};
use qcluster_imaging::{raw_features, Corpus, FeatureKind, FeaturePipeline, ImageRgb};
use qcluster_linalg::Matrix;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Duration;

/// How the ingest pipeline obtains raw images.
#[derive(Debug, Clone)]
pub enum IngestSource {
    /// A directory of PPM files with a `manifest.json` beside them.
    Images(PathBuf),
    /// The in-memory synthetic generator (no files touched).
    Synth(SynthImagesConfig),
}

/// Ingest tunables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestConfig {
    /// Which visual feature to extract.
    pub features: FeatureKind,
    /// Worker threads per fanned-out stage (`0` = available cores).
    pub workers: usize,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            features: FeatureKind::ColorMoments,
            workers: 0,
        }
    }
}

/// What one ingest run produced.
#[derive(Debug)]
pub struct IngestReport {
    /// Images that made it into the dataset.
    pub images: usize,
    /// Files skipped with their typed reasons (also counted in the
    /// `decode` stage's `skipped`).
    pub skipped: Vec<SkippedFile>,
    /// Reduced feature dimensionality.
    pub dim: usize,
    /// Fraction of raw-feature variance the kept components retain.
    pub retained_variance: f64,
}

/// One unit of work flowing scan → decode.
struct ScanItem {
    seq: usize,
    /// `None` for synthetic sources (decode renders by id instead).
    path: Option<PathBuf>,
    category: usize,
    super_category: usize,
}

/// One decoded image flowing decode → extract.
struct DecodedItem {
    seq: usize,
    img: ImageRgb,
    category: usize,
    super_category: usize,
}

/// One raw feature row flowing extract → reduce.
struct RawRow {
    seq: usize,
    raw: Vec<f64>,
    category: usize,
    super_category: usize,
}

/// Loads one source image: reads + decodes a PPM file, or renders the
/// synthetic corpus image. File problems come back as typed
/// [`SkipReason`]s; only the decode *stage* sees them.
fn load_image(
    item: &ScanItem,
    corpus: Option<&Corpus>,
    decode: &StageHandle,
) -> Result<ImageRgb, SkipReason> {
    let Some(path) = &item.path else {
        // Synthetic render: procedural, cannot fail.
        let corpus = corpus.expect("synthetic scan items carry a corpus");
        return Ok(corpus.render_by_id(item.seq));
    };
    let bytes = std::fs::read(path).map_err(SkipReason::Io)?;
    if bytes.is_empty() {
        return Err(SkipReason::Empty);
    }
    decode.add_bytes(bytes.len() as u64);
    ImageRgb::read_ppm(bytes.as_slice()).map_err(|e| SkipReason::Decode(e.to_string()))
}

/// Runs the staged ingest pipeline, writing the reduced dataset to
/// `out` (`.json` → JSON, anything else → the binary `QDSB` format).
///
/// # Errors
///
/// Source/manifest problems, PCA failure (fewer than two decodable
/// images), write failures, or a conservation violation in the
/// pipeline's own accounting. Per-file image problems are *not*
/// errors: they are skipped, counted, and reported.
pub fn ingest(
    source: &IngestSource,
    out: &Path,
    config: &IngestConfig,
    stats: &PipelineStats,
) -> Result<IngestReport, CliError> {
    // Resolve the source into scan items up front (cheap: labels only).
    let (items, corpus, images_per_category) = match source {
        IngestSource::Images(dir) => {
            let manifest = read_manifest(dir)?;
            let items: Vec<ScanItem> = manifest
                .entries
                .iter()
                .enumerate()
                .map(|(seq, e)| ScanItem {
                    seq,
                    path: Some(dir.join(&e.file)),
                    category: e.category,
                    super_category: e.super_category,
                })
                .collect();
            (items, None, manifest.images_per_category)
        }
        IngestSource::Synth(cfg) => {
            let corpus = cfg.corpus();
            let per_category = corpus.images_per_category();
            let items: Vec<ScanItem> = (0..corpus.len())
                .map(|seq| ScanItem {
                    seq,
                    path: None,
                    category: corpus.category_of(seq),
                    super_category: corpus.super_category_of(seq),
                })
                .collect();
            (items, Some(corpus), per_category)
        }
    };
    if items.is_empty() {
        return Err(CliError::stage("scan", "source holds no images"));
    }

    let workers = if config.workers == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        config.workers
    }
    .clamp(1, 64);

    let scan = stats.stage("scan");
    let decode = stats.stage("decode");
    let extract = stats.stage("extract");
    let reduce = stats.stage("reduce");
    let write = stats.stage("write");

    let kind = config.features;
    let skipped: Mutex<Vec<SkippedFile>> = Mutex::new(Vec::new());
    let rows: Mutex<Vec<RawRow>> = Mutex::new(Vec::with_capacity(items.len()));

    stats.run_with_progress(Duration::from_secs(1), || {
        // Bounded hand-offs keep the resident set flat: at most
        // `2 * workers` decoded images exist at once regardless of
        // corpus size.
        let (scan_tx, scan_rx) = crossbeam::channel::bounded::<ScanItem>(workers * 4);
        let (decode_tx, decode_rx) = crossbeam::channel::bounded::<DecodedItem>(workers * 2);
        std::thread::scope(|scope| {
            // scan: stream the work list.
            scope.spawn(|| {
                for item in items {
                    scan.item_in();
                    if scan_tx.send(item).is_err() {
                        // Downstream died; its own error surfaces below.
                        return;
                    }
                    scan.item_out();
                }
                drop(scan_tx);
            });
            // decode ×W: read + parse (or render), skip-and-count bad files.
            for _ in 0..workers {
                let rx = scan_rx.clone();
                let tx = decode_tx.clone();
                let decode = decode.clone();
                let corpus = corpus.as_ref();
                let skipped = &skipped;
                scope.spawn(move || {
                    for item in rx.iter() {
                        decode.item_in();
                        match load_image(&item, corpus, &decode) {
                            Ok(img) => {
                                decode.item_out();
                                if tx
                                    .send(DecodedItem {
                                        seq: item.seq,
                                        img,
                                        category: item.category,
                                        super_category: item.super_category,
                                    })
                                    .is_err()
                                {
                                    return;
                                }
                            }
                            Err(reason) => {
                                let skip = SkippedFile {
                                    path: item.path.unwrap_or_default(),
                                    reason,
                                };
                                eprintln!("  [ingest] skipping {skip}");
                                decode.skip();
                                lock(skipped).push(skip);
                            }
                        }
                    }
                });
            }
            drop(scan_rx);
            drop(decode_tx);
            // extract ×W: raw feature rows into the barrier buffer.
            for _ in 0..workers {
                let rx = decode_rx.clone();
                let extract = extract.clone();
                let rows = &rows;
                scope.spawn(move || {
                    for item in rx.iter() {
                        extract.item_in();
                        let raw = raw_features(kind, &item.img);
                        lock(rows).push(RawRow {
                            seq: item.seq,
                            raw,
                            category: item.category,
                            super_category: item.super_category,
                        });
                        extract.item_out();
                    }
                });
            }
            drop(decode_rx);
        });
    });
    scan.finish();
    decode.finish();
    extract.finish();

    // reduce: the PCA barrier. Restore deterministic corpus order first
    // so the dataset (and every downstream id) is independent of worker
    // scheduling.
    let mut rows = rows.into_inner().unwrap_or_else(|e| e.into_inner());
    rows.sort_by_key(|r| r.seq);
    reduce.items_in(rows.len() as u64);
    if rows.len() < 2 {
        return Err(CliError::stage(
            "reduce",
            format!(
                "PCA needs at least 2 decodable images, got {} ({} skipped)",
                rows.len(),
                lock(&skipped).len()
            ),
        ));
    }
    let mut raw = Matrix::zeros(rows.len(), kind.raw_dim());
    for (i, row) in rows.iter().enumerate() {
        raw.row_mut(i).copy_from_slice(&row.raw);
    }
    let pipeline = FeaturePipeline::fit(kind, &raw)
        .map_err(|e| CliError::stage("reduce", format!("PCA fit failed: {e}")))?;
    let vectors: Vec<Vec<f64>> = (0..rows.len())
        .map(|i| pipeline.transform(raw.row(i)))
        .collect();
    reduce.items_out(vectors.len() as u64);
    reduce.finish();

    // write: persist vectors + ground truth as an eval dataset.
    write.items_in(vectors.len() as u64);
    let dataset = Dataset::from_parts(
        vectors,
        rows.iter().map(|r| r.category).collect(),
        rows.iter().map(|r| r.super_category).collect(),
        images_per_category,
    );
    let json = out.extension().and_then(|e| e.to_str()) == Some("json");
    let result = if json {
        save_dataset(&dataset, out)
    } else {
        save_dataset_binary(&dataset, out)
    };
    result.map_err(|e| CliError::stage("write", e))?;
    write.items_out(dataset.len() as u64);
    write.add_bytes(std::fs::metadata(out).map(|m| m.len()).unwrap_or(0));
    write.finish();

    stats.verify_conservation()?;
    Ok(IngestReport {
        images: dataset.len(),
        skipped: skipped.into_inner().unwrap_or_else(|e| e.into_inner()),
        dim: dataset.dim(),
        retained_variance: pipeline.retained_variance(),
    })
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Parses a feature-kind name (`color`, `texture`, `histogram`,
/// `layout`).
///
/// # Errors
///
/// [`CliError::Usage`] naming the valid values.
pub fn parse_feature_kind(name: &str) -> Result<FeatureKind, CliError> {
    match name {
        "color" | "moments" => Ok(FeatureKind::ColorMoments),
        "texture" | "glcm" => Ok(FeatureKind::CooccurrenceTexture),
        "histogram" => Ok(FeatureKind::ColorHistogram),
        "layout" => Ok(FeatureKind::ColorLayout),
        other => Err(CliError::Usage(format!(
            "unknown feature kind {other:?} (expected color, texture, histogram, or layout)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::synth_images;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("qcluster-cli-ingest-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn small_synth() -> SynthImagesConfig {
        SynthImagesConfig {
            categories: 4,
            images_per_category: 6,
            image_size: 12,
            categories_per_super: 2,
            seed: 3,
        }
    }

    #[test]
    fn synth_source_ingests_without_files() {
        let dir = tmp_dir("synth-src");
        let out = dir.join("features.qdsb");
        let stats = PipelineStats::new("ingest");
        let report = ingest(
            &IngestSource::Synth(small_synth()),
            &out,
            &IngestConfig::default(),
            &stats,
        )
        .unwrap();
        assert_eq!(report.images, 24);
        assert!(report.skipped.is_empty());
        assert_eq!(report.dim, 3);
        let ds = qcluster_eval::load_dataset_auto(&out).unwrap();
        assert_eq!(ds.len(), 24);
        assert_eq!(ds.category(23), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn images_source_matches_in_memory_features() {
        // Rendering to disk and ingesting back must produce the same
        // dataset as the in-memory FeatureSet path (PPM is lossless).
        let dir = tmp_dir("roundtrip");
        let images = dir.join("images");
        let cfg = small_synth();
        synth_images(&images, &cfg, &PipelineStats::new("synth")).unwrap();
        let out = dir.join("features.qdsb");
        let stats = PipelineStats::new("ingest");
        let report = ingest(
            &IngestSource::Images(images),
            &out,
            &IngestConfig::default(),
            &stats,
        )
        .unwrap();
        assert_eq!(report.images, 24);
        let from_files = qcluster_eval::load_dataset_auto(&out).unwrap();
        let direct = Dataset::from_corpus(&cfg.corpus(), FeatureKind::ColorMoments).unwrap();
        assert_eq!(from_files.len(), direct.len());
        for i in 0..direct.len() {
            assert_eq!(from_files.category(i), direct.category(i));
            for (a, b) in from_files.vector(i).iter().zip(direct.vector(i)) {
                assert!((a - b).abs() < 1e-9, "image {i}: {a} vs {b}");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_files_are_skipped_and_counted_not_fatal() {
        let dir = tmp_dir("corrupt");
        let images = dir.join("images");
        synth_images(&images, &small_synth(), &PipelineStats::new("synth")).unwrap();
        // Sabotage three files three different ways.
        let truncated = images.join("img000001.ppm");
        let bytes = std::fs::read(&truncated).unwrap();
        std::fs::write(&truncated, &bytes[..bytes.len() / 2]).unwrap();
        std::fs::write(images.join("img000005.ppm"), b"").unwrap();
        std::fs::write(images.join("img000010.ppm"), b"GIF89a not a ppm").unwrap();

        let out = dir.join("features.qdsb");
        let stats = PipelineStats::new("ingest");
        let report = ingest(
            &IngestSource::Images(images),
            &out,
            &IngestConfig::default(),
            &stats,
        )
        .unwrap();
        assert_eq!(report.images, 21);
        assert_eq!(report.skipped.len(), 3);
        // Typed reasons with the path in context.
        let rendered: Vec<String> = report.skipped.iter().map(|s| s.to_string()).collect();
        assert!(rendered.iter().any(|s| s.contains("img000001.ppm")));
        assert!(
            rendered
                .iter()
                .any(|s| s.contains("img000005.ppm") && s.contains("zero-byte")),
            "{rendered:?}"
        );
        assert!(rendered
            .iter()
            .any(|s| s.contains("img000010.ppm") && s.contains("undecodable")));
        // Conservation holds with skips: decode in = out + skipped.
        let decode = &stats.snapshot()[1];
        assert_eq!(decode.stage, "decode");
        assert_eq!(decode.items_in, 24);
        assert_eq!(decode.items_out, 21);
        assert_eq!(decode.skipped, 3);
        assert!(stats.verify_conservation().is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn too_few_decodable_images_is_a_typed_stage_error() {
        let dir = tmp_dir("empty");
        let images = dir.join("images");
        std::fs::create_dir_all(&images).unwrap();
        crate::synth::write_manifest(
            &images,
            &crate::synth::Manifest {
                version: crate::synth::MANIFEST_VERSION,
                images_per_category: 1,
                entries: vec![crate::synth::ManifestEntry {
                    file: "missing.ppm".into(),
                    category: 0,
                    super_category: 0,
                }],
            },
        )
        .unwrap();
        let stats = PipelineStats::new("ingest");
        let err = ingest(
            &IngestSource::Images(images),
            &dir.join("out.qdsb"),
            &IngestConfig::default(),
            &stats,
        )
        .unwrap_err();
        assert!(err.to_string().contains("at least 2"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn feature_kind_names_parse() {
        assert_eq!(
            parse_feature_kind("color").unwrap(),
            FeatureKind::ColorMoments
        );
        assert_eq!(
            parse_feature_kind("texture").unwrap(),
            FeatureKind::CooccurrenceTexture
        );
        assert!(parse_feature_kind("nope").is_err());
    }
}
