//! The shared per-stage pipeline reporter.
//!
//! Every `qcluster` pipeline stage (scan, decode, extract, reduce,
//! write, seal, …) accounts its work through one [`PipelineStats`]:
//! items in, items out, items skipped, bytes moved, and wall time,
//! from which throughput falls out. Counters are atomics so a stage
//! fanned out over worker threads shares one [`StageHandle`] without
//! coordination, and a background ticker can render live progress to
//! stderr while the stages run.
//!
//! The one invariant every stage must keep — tested by the golden
//! end-to-end pipeline test — is **conservation**: every item that
//! entered a stage either came out or was counted skipped
//! (`items_in == items_out + skipped`). A stage that drops work
//! silently is a bug; [`PipelineStats::verify_conservation`] turns it
//! into a typed error.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One stage's frozen accounting, as reported and serialized.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageStats {
    /// Stage name (`scan`, `decode`, `extract`, …).
    pub stage: String,
    /// Items that entered the stage.
    pub items_in: u64,
    /// Items the stage emitted downstream.
    pub items_out: u64,
    /// Items the stage dropped deliberately (each with a logged,
    /// typed reason — e.g. a corrupt image file).
    pub skipped: u64,
    /// Payload bytes the stage moved (file bytes read, bytes written).
    pub bytes: u64,
    /// Stage wall time, seconds (first item in → stage finished).
    pub wall_secs: f64,
    /// Output throughput, items per second of wall time.
    pub items_per_sec: f64,
}

/// Mutable per-stage counters, shared by every worker of the stage.
#[derive(Debug)]
struct StageCounters {
    name: String,
    items_in: AtomicU64,
    items_out: AtomicU64,
    skipped: AtomicU64,
    bytes: AtomicU64,
    /// Set when the first work arrives; the stage clock starts here,
    /// not at pipeline construction, so queued-behind stages don't
    /// charge upstream time to their own throughput.
    started: Mutex<Option<Instant>>,
    /// Frozen on [`StageHandle::finish`]; `None` while running.
    wall: Mutex<Option<Duration>>,
}

impl StageCounters {
    fn new(name: &str) -> StageCounters {
        StageCounters {
            name: name.to_string(),
            items_in: AtomicU64::new(0),
            items_out: AtomicU64::new(0),
            skipped: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            started: Mutex::new(None),
            wall: Mutex::new(None),
        }
    }

    fn elapsed(&self) -> Duration {
        if let Some(wall) = *lock(&self.wall) {
            return wall;
        }
        lock(&self.started).map_or(Duration::ZERO, |t| t.elapsed())
    }

    fn snapshot(&self) -> StageStats {
        let wall = self.elapsed();
        let items_out = self.items_out.load(Ordering::Relaxed);
        let wall_secs = wall.as_secs_f64();
        StageStats {
            stage: self.name.clone(),
            items_in: self.items_in.load(Ordering::Relaxed),
            items_out,
            skipped: self.skipped.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            wall_secs,
            items_per_sec: if wall_secs > 0.0 {
                items_out as f64 / wall_secs
            } else {
                0.0
            },
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A cloneable handle onto one stage's counters. Worker threads of a
/// fanned-out stage all tick the same handle.
#[derive(Debug, Clone)]
pub struct StageHandle {
    counters: Arc<StageCounters>,
}

impl StageHandle {
    /// Records one item entering the stage (starts the stage clock on
    /// first call).
    pub fn item_in(&self) {
        self.items_in(1);
    }

    /// Records `n` items entering the stage.
    pub fn items_in(&self, n: u64) {
        let mut started = lock(&self.counters.started);
        if started.is_none() {
            *started = Some(Instant::now());
        }
        drop(started);
        self.counters.items_in.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one item emitted downstream.
    pub fn item_out(&self) {
        self.counters.items_out.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` items emitted downstream.
    pub fn items_out(&self, n: u64) {
        self.counters.items_out.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one item deliberately dropped (caller logs the typed
    /// reason).
    pub fn skip(&self) {
        self.counters.skipped.fetch_add(1, Ordering::Relaxed);
    }

    /// Accounts payload bytes moved by the stage.
    pub fn add_bytes(&self, n: u64) {
        self.counters.bytes.fetch_add(n, Ordering::Relaxed);
    }

    /// Freezes the stage clock (idempotent; later work still counts
    /// items but wall time stays frozen — finish last).
    pub fn finish(&self) {
        let mut wall = lock(&self.counters.wall);
        if wall.is_none() {
            *wall = Some(lock(&self.counters.started).map_or(Duration::ZERO, |t| t.elapsed()));
        }
    }

    /// This stage's current snapshot.
    pub fn snapshot(&self) -> StageStats {
        self.counters.snapshot()
    }
}

/// Conservation violation: a stage lost items without counting them.
#[derive(Debug, Clone, PartialEq)]
pub struct ConservationError {
    /// The offending stage.
    pub stage: String,
    /// Items that entered.
    pub items_in: u64,
    /// Items emitted.
    pub items_out: u64,
    /// Items counted skipped.
    pub skipped: u64,
}

impl std::fmt::Display for ConservationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "stage `{}` lost items: {} in but {} out + {} skipped",
            self.stage, self.items_in, self.items_out, self.skipped
        )
    }
}

impl std::error::Error for ConservationError {}

/// The pipeline-wide stats registry: stages in declaration order plus
/// an optional live progress ticker.
#[derive(Debug)]
pub struct PipelineStats {
    pipeline: String,
    stages: Mutex<Vec<Arc<StageCounters>>>,
    progress: bool,
}

impl PipelineStats {
    /// A stats registry for one named pipeline (`ingest`, `build`, …),
    /// silent by default.
    pub fn new(pipeline: &str) -> PipelineStats {
        PipelineStats {
            pipeline: pipeline.to_string(),
            stages: Mutex::new(Vec::new()),
            progress: false,
        }
    }

    /// Enables live per-stage progress lines on stderr (driven by
    /// [`PipelineStats::run_with_progress`]).
    pub fn with_progress(mut self, on: bool) -> PipelineStats {
        self.progress = on;
        self
    }

    /// The pipeline name.
    pub fn pipeline(&self) -> &str {
        &self.pipeline
    }

    /// Registers a stage (display order = registration order) and
    /// returns its shared handle.
    pub fn stage(&self, name: &str) -> StageHandle {
        let counters = Arc::new(StageCounters::new(name));
        lock(&self.stages).push(Arc::clone(&counters));
        StageHandle { counters }
    }

    /// Snapshots every stage in registration order.
    pub fn snapshot(&self) -> Vec<StageStats> {
        lock(&self.stages).iter().map(|s| s.snapshot()).collect()
    }

    /// Checks `items_in == items_out + skipped` for every stage.
    ///
    /// # Errors
    ///
    /// The first stage whose accounting does not balance.
    pub fn verify_conservation(&self) -> Result<(), ConservationError> {
        for s in self.snapshot() {
            if s.items_in != s.items_out + s.skipped {
                return Err(ConservationError {
                    stage: s.stage,
                    items_in: s.items_in,
                    items_out: s.items_out,
                    skipped: s.skipped,
                });
            }
        }
        Ok(())
    }

    /// Runs `body` while a background ticker prints live per-stage
    /// progress to stderr every `interval` (when progress is enabled;
    /// otherwise just runs `body`).
    pub fn run_with_progress<T>(&self, interval: Duration, body: impl FnOnce() -> T) -> T {
        if !self.progress {
            return body();
        }
        let stop = AtomicU64::new(0);
        std::thread::scope(|scope| {
            let ticker = scope.spawn(|| {
                let mut last_line = String::new();
                while stop.load(Ordering::Relaxed) == 0 {
                    std::thread::sleep(interval);
                    let line = self.progress_line();
                    if line != last_line && !line.is_empty() {
                        eprintln!("  [{}] {line}", self.pipeline);
                        last_line = line;
                    }
                }
            });
            let out = body();
            stop.store(1, Ordering::Relaxed);
            let _ = ticker.join();
            out
        })
    }

    /// One compact live-progress line over the currently active stages.
    fn progress_line(&self) -> String {
        self.snapshot()
            .iter()
            .filter(|s| s.items_in > 0)
            .map(|s| {
                let mut part = format!("{}: {}/{}", s.stage, s.items_out, s.items_in);
                if s.skipped > 0 {
                    part.push_str(&format!(" ({} skipped)", s.skipped));
                }
                if s.items_per_sec > 0.0 {
                    part.push_str(&format!(" @ {:.0}/s", s.items_per_sec));
                }
                part
            })
            .collect::<Vec<_>>()
            .join(" | ")
    }

    /// Renders the final per-stage table (markdown-compatible).
    pub fn render_table(&self) -> String {
        let mut out = String::from(
            "| stage | in | out | skipped | bytes | wall (s) | items/s |\n\
             |---|---:|---:|---:|---:|---:|---:|\n",
        );
        for s in self.snapshot() {
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} | {:.3} | {:.1} |\n",
                s.stage, s.items_in, s.items_out, s.skipped, s.bytes, s.wall_secs, s.items_per_sec
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let stats = PipelineStats::new("test");
        let stage = stats.stage("decode");
        stage.items_in(5);
        for _ in 0..3 {
            stage.item_out();
        }
        stage.skip();
        stage.skip();
        stage.add_bytes(1024);
        stage.finish();
        let snap = stats.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].stage, "decode");
        assert_eq!(snap[0].items_in, 5);
        assert_eq!(snap[0].items_out, 3);
        assert_eq!(snap[0].skipped, 2);
        assert_eq!(snap[0].bytes, 1024);
        assert!(stats.verify_conservation().is_ok());
    }

    #[test]
    fn conservation_violation_is_typed_with_the_stage() {
        let stats = PipelineStats::new("test");
        let stage = stats.stage("extract");
        stage.items_in(4);
        stage.item_out();
        let err = stats.verify_conservation().unwrap_err();
        assert_eq!(err.stage, "extract");
        assert_eq!(err.items_in, 4);
        assert_eq!(err.items_out, 1);
        assert_eq!(err.skipped, 0);
        assert!(err.to_string().contains("extract"));
    }

    #[test]
    fn shared_handles_tick_one_stage_across_threads() {
        let stats = PipelineStats::new("test");
        let stage = stats.stage("parallel");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let h = stage.clone();
                scope.spawn(move || {
                    for _ in 0..100 {
                        h.item_in();
                        h.item_out();
                    }
                });
            }
        });
        let snap = stage.snapshot();
        assert_eq!(snap.items_in, 400);
        assert_eq!(snap.items_out, 400);
        assert!(stats.verify_conservation().is_ok());
    }

    #[test]
    fn wall_time_freezes_at_finish() {
        let stats = PipelineStats::new("test");
        let stage = stats.stage("slow");
        stage.item_in();
        std::thread::sleep(Duration::from_millis(5));
        stage.item_out();
        stage.finish();
        let a = stage.snapshot().wall_secs;
        std::thread::sleep(Duration::from_millis(5));
        let b = stage.snapshot().wall_secs;
        assert!(a > 0.0);
        assert!((a - b).abs() < 1e-12, "wall moved after finish");
    }

    #[test]
    fn stages_render_in_registration_order() {
        let stats = PipelineStats::new("test");
        let _a = stats.stage("scan");
        let _b = stats.stage("decode");
        let _c = stats.stage("write");
        let names: Vec<String> = stats.snapshot().into_iter().map(|s| s.stage).collect();
        assert_eq!(names, ["scan", "decode", "write"]);
        let table = stats.render_table();
        assert!(table.find("scan").unwrap() < table.find("write").unwrap());
    }

    #[test]
    fn stage_stats_serialize_round_trip() {
        let stats = PipelineStats::new("test");
        let stage = stats.stage("seal");
        stage.items_in(7);
        stage.items_out(7);
        stage.finish();
        let json = serde_json::to_string(&stats.snapshot()).unwrap();
        let back: Vec<StageStats> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, stats.snapshot());
    }
}
