//! `qcluster build` — feature file → durable, quantized segment store.
//!
//! ```text
//! load ──▶ seal ──▶ verify
//! ```
//!
//! `load` reads the reduced feature dataset `qcluster ingest` wrote.
//! `seal` bootstraps an empty [`qcluster_store::VectorStore`] with the
//! vectors, which writes them straight into a sealed **format-v2
//! segment** (columnar + u8 scalar quantization, no WAL traffic).
//! `verify` re-opens the directory and checks the recovered corpus
//! matches what was sealed — the same recovery path `qcluster serve`
//! will take.
//!
//! Ground-truth labels stay in the feature file: the store holds only
//! vectors, ids equal dataset order, and `qcluster eval` joins them
//! back for oracle grading.

use crate::error::CliError;
use crate::stats::PipelineStats;
use qcluster_store::{StoreConfig, VectorStore};
use std::path::Path;

/// What one build produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildReport {
    /// Vectors sealed into segments.
    pub vectors: u64,
    /// Feature dimensionality.
    pub dim: usize,
    /// Sealed segment files.
    pub segments: u64,
}

/// Builds the durable store at `dir` from the feature dataset at
/// `features`.
///
/// # Errors
///
/// Unreadable/malformed feature files, a non-empty store directory
/// (builds are from-scratch — point at a fresh directory), store I/O,
/// or a verify mismatch.
pub fn build(features: &Path, dir: &Path, stats: &PipelineStats) -> Result<BuildReport, CliError> {
    let load = stats.stage("load");
    let seal = stats.stage("seal");
    let verify = stats.stage("verify");

    load.item_in();
    load.add_bytes(std::fs::metadata(features).map(|m| m.len()).unwrap_or(0));
    let dataset = qcluster_eval::load_dataset_auto(features)
        .map_err(|e| CliError::stage("load", format!("{}: {e}", features.display())))?;
    load.item_out();
    load.finish();

    let points: Vec<Vec<f64>> = (0..dataset.len())
        .map(|i| dataset.vector(i).to_vec())
        .collect();
    seal.items_in(points.len() as u64);
    let (mut store, recovered) = VectorStore::open(dir, StoreConfig::default())
        .map_err(|e| CliError::stage("seal", format!("{}: {e}", dir.display())))?;
    if !recovered.vectors.is_empty() {
        return Err(CliError::stage(
            "seal",
            format!(
                "{} already holds {} vectors — build into a fresh directory",
                dir.display(),
                recovered.vectors.len()
            ),
        ));
    }
    store
        .bootstrap(&points)
        .map_err(|e| CliError::stage("seal", e))?;
    let store_stats = store.stats();
    seal.items_out(store_stats.segment_vectors);
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().is_some_and(|e| e == "qseg") {
                seal.add_bytes(std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0));
            }
        }
    }
    seal.finish();
    drop(store);

    // Verify through the same recovery path `serve` uses.
    verify.items_in(points.len() as u64);
    let (_reopened, recovered) = VectorStore::open(dir, StoreConfig::default())
        .map_err(|e| CliError::stage("verify", format!("{}: {e}", dir.display())))?;
    if recovered.vectors.len() != points.len() {
        return Err(CliError::stage(
            "verify",
            format!(
                "recovered {} vectors but sealed {}",
                recovered.vectors.len(),
                points.len()
            ),
        ));
    }
    // Spot-check roundtrip fidelity on the corners (v2 segments store
    // exact f64 rows alongside the quantized scan columns).
    for &i in &[0, points.len() / 2, points.len() - 1] {
        if recovered.vectors[i] != points[i] {
            return Err(CliError::stage(
                "verify",
                format!("vector {i} changed across seal/recover"),
            ));
        }
    }
    verify.items_out(recovered.vectors.len() as u64);
    verify.finish();

    stats.verify_conservation()?;
    Ok(BuildReport {
        vectors: store_stats.segment_vectors,
        dim: dataset.dim(),
        segments: store_stats.segments,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::{ingest, IngestConfig, IngestSource};
    use crate::synth::SynthImagesConfig;

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("qcluster-cli-build-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn small_features(dir: &std::path::Path) -> std::path::PathBuf {
        let out = dir.join("features.qdsb");
        let cfg = SynthImagesConfig {
            categories: 4,
            images_per_category: 6,
            image_size: 12,
            categories_per_super: 2,
            seed: 3,
        };
        ingest(
            &IngestSource::Synth(cfg),
            &out,
            &IngestConfig::default(),
            &PipelineStats::new("ingest"),
        )
        .unwrap();
        out
    }

    #[test]
    fn build_seals_and_recovers() {
        let dir = tmp_dir("seal");
        let features = small_features(&dir);
        let store_dir = dir.join("store");
        let stats = PipelineStats::new("build");
        let report = build(&features, &store_dir, &stats).unwrap();
        assert_eq!(report.vectors, 24);
        assert_eq!(report.dim, 3);
        assert_eq!(report.segments, 1);
        assert!(stats.verify_conservation().is_ok());
        // The sealed store recovers byte-identical vectors.
        let (_s, recovered) = VectorStore::open(&store_dir, StoreConfig::default()).unwrap();
        assert_eq!(recovered.vectors.len(), 24);
        let ds = qcluster_eval::load_dataset_auto(&features).unwrap();
        assert_eq!(recovered.vectors[7], ds.vector(7));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rebuilding_into_a_populated_dir_is_refused() {
        let dir = tmp_dir("refuse");
        let features = small_features(&dir);
        let store_dir = dir.join("store");
        build(&features, &store_dir, &PipelineStats::new("build")).unwrap();
        let err = build(&features, &store_dir, &PipelineStats::new("build")).unwrap_err();
        assert!(err.to_string().contains("already holds"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
