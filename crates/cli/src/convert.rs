//! `qcluster convert` — re-encode a feature dataset between formats,
//! folded in from `dataset-tool convert`.
//!
//! The output format is chosen by extension: `.json` (JSON dataset),
//! `.qseg` (a raw `qcluster-store` vector segment — ground-truth
//! labels dropped), anything else the binary `QDSB` dataset. The input
//! format is sniffed automatically.

use crate::error::CliError;
use crate::stats::PipelineStats;
use std::path::Path;

/// What the output was encoded as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConvertedKind {
    /// JSON dataset with labels.
    Json,
    /// Raw vector segment; labels dropped.
    Segment,
    /// Binary `QDSB` dataset with labels.
    Binary,
}

impl ConvertedKind {
    /// Human-readable description for the CLI summary line.
    pub fn describe(self) -> &'static str {
        match self {
            ConvertedKind::Json => "JSON dataset",
            ConvertedKind::Segment => "vector segment (labels dropped)",
            ConvertedKind::Binary => "binary dataset",
        }
    }
}

/// Result of one conversion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvertReport {
    /// Vectors converted.
    pub vectors: usize,
    /// Feature dimensionality.
    pub dim: usize,
    /// Output encoding.
    pub kind: ConvertedKind,
}

/// Converts the dataset at `input` to `output`, format by extension.
///
/// # Errors
///
/// Unreadable/malformed inputs or write failures, with paths in
/// context.
pub fn convert(
    input: &Path,
    output: &Path,
    stats: &PipelineStats,
) -> Result<ConvertReport, CliError> {
    let stage = stats.stage("convert");
    stage.item_in();
    stage.add_bytes(std::fs::metadata(input).map(|m| m.len()).unwrap_or(0));
    let dataset = qcluster_eval::load_dataset_auto(input)
        .map_err(|e| CliError::stage("convert", format!("{}: {e}", input.display())))?;
    let kind = match output.extension().and_then(|e| e.to_str()) {
        Some("json") => {
            qcluster_eval::save_dataset(&dataset, output)
                .map_err(|e| CliError::stage("convert", e))?;
            ConvertedKind::Json
        }
        Some("qseg") => {
            qcluster_store::write_segment(output, dataset.dim(), dataset.vectors())
                .map_err(|e| CliError::stage("convert", e))?;
            ConvertedKind::Segment
        }
        _ => {
            qcluster_eval::save_dataset_binary(&dataset, output)
                .map_err(|e| CliError::stage("convert", e))?;
            ConvertedKind::Binary
        }
    };
    stage.add_bytes(std::fs::metadata(output).map(|m| m.len()).unwrap_or(0));
    stage.item_out();
    stage.finish();
    Ok(ConvertReport {
        vectors: dataset.len(),
        dim: dataset.dim(),
        kind,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::{ingest, IngestConfig, IngestSource};
    use crate::synth::SynthImagesConfig;

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "qcluster-cli-convert-{}-{name}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn binary_json_segment_round_trip() {
        let dir = tmp_dir("roundtrip");
        let binary = dir.join("features.qdsb");
        ingest(
            &IngestSource::Synth(SynthImagesConfig {
                categories: 3,
                images_per_category: 4,
                image_size: 10,
                categories_per_super: 3,
                seed: 2,
            }),
            &binary,
            &IngestConfig::default(),
            &PipelineStats::new("ingest"),
        )
        .unwrap();

        let json = dir.join("features.json");
        let report = convert(&binary, &json, &PipelineStats::new("convert")).unwrap();
        assert_eq!(report.kind, ConvertedKind::Json);
        assert_eq!(report.vectors, 12);

        let seg = dir.join("features.qseg");
        let report = convert(&json, &seg, &PipelineStats::new("convert")).unwrap();
        assert_eq!(report.kind, ConvertedKind::Segment);

        // Labels survive the dataset formats; the segment keeps vectors.
        let a = qcluster_eval::load_dataset_auto(&binary).unwrap();
        let b = qcluster_eval::load_dataset_auto(&json).unwrap();
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            assert_eq!(a.category(i), b.category(i));
        }
        let mut reader = qcluster_store::SegmentReader::open(&seg).unwrap();
        assert_eq!(reader.dim(), a.dim());
        let flat = reader.read_all_flat().unwrap();
        assert_eq!(flat.len(), a.len() * a.dim());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
