//! `qcluster` — the one-binary pipeline front-end.
//!
//! ```text
//! qcluster synth   <out-dir|out.qseg> [flags]      render a corpus (or a raw segment)
//! qcluster ingest  <images-dir> <out> [flags]      files -> reduced feature dataset
//! qcluster build   <features> <store-dir>          seal features into a durable store
//! qcluster serve   <store-dir> [flags]             bind the TCP retrieval stack
//! qcluster eval    <features> [flags]              grade feedback quality (wire/offline)
//! qcluster convert <in> <out>                      re-encode a dataset by extension
//! qcluster run     <recipe.toml> [flags]           the whole pipeline from one recipe
//! ```
//!
//! All heavy lifting lives in the `qcluster_cli` library so the same
//! paths are covered in-process by `tests/pipeline_e2e.rs`.

use qcluster_cli::{
    build, compare_reports, convert, ingest, offline_eval, parse_feature_kind, run, serve,
    served_eval, synth_images, synth_segment, CliError, EvalOptions, IngestConfig, IngestSource,
    PipelineStats, Recipe, ServeOptions, SynthImagesConfig,
};
use qcluster_loadgen::{SoakBackend, TcpBackend};
use qcluster_net::ClientConfig;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "usage: qcluster <synth|ingest|build|serve|eval|convert|run> ...\n\
  synth   <out-dir> [--categories N] [--images-per-category N] [--image-size N]\n\
          [--categories-per-super N] [--seed N]\n\
  synth   <out.qseg> <n> <dim> [--centers G] [--seed S]\n\
  ingest  <images-dir> <out.qdsb|.json> [--features color|texture|histogram|layout]\n\
          [--workers N] [--progress]\n\
  build   <features> <store-dir> [--progress]\n\
  serve   <store-dir> [--nodes N] [--max-connections N] [--max-sessions N]\n\
          [--scrape-json PATH] [--scrape-interval-secs S]\n\
  eval    <features> [--addr HOST:PORT] [--k N] [--rounds N] [--queries N]\n\
          [--seed N] [--epsilon F] [--json] [--progress]\n\
  convert <in> <out.json|.qseg|.qdsb>\n\
  run     <recipe.toml> [--workdir DIR] [--json] [--progress]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "synth" => cmd_synth(&args[1..]),
        "ingest" => cmd_ingest(&args[1..]),
        "build" => cmd_build(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "eval" => cmd_eval(&args[1..]),
        "convert" => cmd_convert(&args[1..]),
        "run" => cmd_run(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown command: {other}"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}\n{USAGE}");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Parsed command line: positionals plus `--flag[ value]` options.
struct Parsed {
    positionals: Vec<String>,
    values: BTreeMap<String, String>,
    switches: Vec<String>,
}

impl Parsed {
    fn value(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    fn parse_value<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.value(name) {
            Some(raw) => raw
                .parse()
                .map_err(|_| CliError::Usage(format!("--{name} got an invalid value: {raw}"))),
            None => Ok(default),
        }
    }

    fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    fn positional(&self, index: usize, what: &str) -> Result<&str, CliError> {
        self.positionals
            .get(index)
            .map(String::as_str)
            .ok_or_else(|| CliError::Usage(format!("missing {what}")))
    }
}

/// Splits `args` into positionals, `--name value` options (for names in
/// `value_flags`), and bare `--name` switches (for names in `switches`).
/// Anything else starting with `--` is a usage error.
fn parse_args(
    args: &[String],
    value_flags: &[&str],
    switches: &[&str],
) -> Result<Parsed, CliError> {
    let mut parsed = Parsed {
        positionals: Vec::new(),
        values: BTreeMap::new(),
        switches: Vec::new(),
    };
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        if let Some(name) = arg.strip_prefix("--") {
            if value_flags.contains(&name) {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| CliError::Usage(format!("--{name} needs a value")))?;
                parsed.values.insert(name.to_string(), value.clone());
                i += 2;
                continue;
            }
            if switches.contains(&name) {
                parsed.switches.push(name.to_string());
                i += 1;
                continue;
            }
            return Err(CliError::Usage(format!("unknown flag: --{name}")));
        }
        parsed.positionals.push(arg.clone());
        i += 1;
    }
    Ok(parsed)
}

fn stats_for(name: &str, parsed: &Parsed) -> PipelineStats {
    PipelineStats::new(name).with_progress(parsed.switch("progress"))
}

fn cmd_synth(args: &[String]) -> Result<(), CliError> {
    let parsed = parse_args(
        args,
        &[
            "categories",
            "images-per-category",
            "image-size",
            "categories-per-super",
            "seed",
            "centers",
        ],
        &["progress"],
    )?;
    let out = PathBuf::from(parsed.positional(0, "output path")?);
    if out.extension().and_then(|e| e.to_str()) == Some("qseg") {
        // Segment mode, folded in from `dataset-tool synth`.
        let n: u64 = parsed
            .positional(1, "vector count <n>")?
            .parse()
            .map_err(|_| CliError::Usage("n must be an integer".into()))?;
        let dim: usize = parsed
            .positional(2, "dimensionality <dim>")?
            .parse()
            .map_err(|_| CliError::Usage("dim must be an integer".into()))?;
        let centers = parsed.parse_value("centers", 16usize)?;
        let seed = parsed.parse_value("seed", 42u64)?;
        let stats = stats_for("synth", &parsed);
        let seal = stats.stage("seal");
        seal.items_in(n);
        let sealed = synth_segment(&out, n, dim, centers, seed)?;
        seal.items_out(sealed);
        seal.add_bytes(std::fs::metadata(&out).map(|m| m.len()).unwrap_or(0));
        seal.finish();
        println!(
            "sealed {sealed} x {dim} synthetic vectors ({centers} centers, seed {seed}) to {}",
            out.display()
        );
        print!("{}", stats.render_table());
        return Ok(());
    }
    let config = SynthImagesConfig {
        categories: parsed.parse_value("categories", SynthImagesConfig::default().categories)?,
        images_per_category: parsed.parse_value(
            "images-per-category",
            SynthImagesConfig::default().images_per_category,
        )?,
        image_size: parsed.parse_value("image-size", SynthImagesConfig::default().image_size)?,
        categories_per_super: parsed.parse_value(
            "categories-per-super",
            SynthImagesConfig::default().categories_per_super,
        )?,
        seed: parsed.parse_value("seed", SynthImagesConfig::default().seed)?,
    };
    let stats = stats_for("synth", &parsed);
    let rendered = synth_images(&out, &config, &stats)?;
    println!(
        "rendered {rendered} images ({} categories x {}) to {}",
        config.categories,
        config.images_per_category,
        out.display()
    );
    print!("{}", stats.render_table());
    Ok(())
}

fn cmd_ingest(args: &[String]) -> Result<(), CliError> {
    let parsed = parse_args(args, &["features", "workers"], &["progress"])?;
    let images = PathBuf::from(parsed.positional(0, "images directory")?);
    let out = PathBuf::from(parsed.positional(1, "output features path")?);
    let config = IngestConfig {
        features: match parsed.value("features") {
            Some(name) => parse_feature_kind(name)?,
            None => IngestConfig::default().features,
        },
        workers: parsed.parse_value("workers", 0usize)?,
    };
    let stats = stats_for("ingest", &parsed);
    let report = ingest(&IngestSource::Images(images), &out, &config, &stats)?;
    println!(
        "ingested {} images -> {} dims ({} skipped, {:.0}% variance retained) to {}",
        report.images,
        report.dim,
        report.skipped.len(),
        report.retained_variance * 100.0,
        out.display()
    );
    print!("{}", stats.render_table());
    Ok(())
}

fn cmd_build(args: &[String]) -> Result<(), CliError> {
    let parsed = parse_args(args, &[], &["progress"])?;
    let features = PathBuf::from(parsed.positional(0, "features path")?);
    let store = PathBuf::from(parsed.positional(1, "store directory")?);
    let stats = stats_for("build", &parsed);
    let report = build(&features, &store, &stats)?;
    println!(
        "sealed {} vectors x {} dims into {} segment(s) at {}",
        report.vectors,
        report.dim,
        report.segments,
        store.display()
    );
    print!("{}", stats.render_table());
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), CliError> {
    let parsed = parse_args(
        args,
        &[
            "nodes",
            "max-connections",
            "max-sessions",
            "scrape-json",
            "scrape-interval-secs",
        ],
        &["progress"],
    )?;
    let store = PathBuf::from(parsed.positional(0, "store directory")?);
    let defaults = ServeOptions::default();
    let opts = ServeOptions {
        nodes: parsed.parse_value("nodes", defaults.nodes)?,
        max_connections: parsed.parse_value("max-connections", defaults.max_connections)?,
        max_sessions: parsed.parse_value("max-sessions", defaults.max_sessions)?,
        scrape_json: parsed.value("scrape-json").map(PathBuf::from),
        scrape_interval: Duration::from_secs(
            parsed.parse_value("scrape-interval-secs", defaults.scrape_interval.as_secs())?,
        ),
    };
    let stats = stats_for("serve", &parsed);
    let handle = serve(&store, &opts, &stats)?;
    for (i, addr) in handle.addrs().iter().enumerate() {
        println!("node {i}: listening on {addr}");
    }
    if let Some(path) = &opts.scrape_json {
        println!(
            "scraping metrics to {} every {:?}",
            path.display(),
            opts.scrape_interval
        );
    }
    print!("{}", stats.render_table());
    println!("serving; interrupt to stop");
    // Park until the process is killed; the OS reclaims everything.
    loop {
        std::thread::sleep(Duration::from_secs(60));
    }
}

fn cmd_eval(args: &[String]) -> Result<(), CliError> {
    let parsed = parse_args(
        args,
        &["addr", "k", "rounds", "queries", "seed", "epsilon"],
        &["json", "progress"],
    )?;
    let features = PathBuf::from(parsed.positional(0, "features path")?);
    let defaults = EvalOptions::default();
    let opts = EvalOptions {
        k: parsed.parse_value("k", defaults.k)?,
        rounds: parsed.parse_value("rounds", defaults.rounds)?,
        queries: parsed.parse_value("queries", defaults.queries)?,
        seed: parsed.parse_value("seed", defaults.seed)?,
    };
    let dataset = qcluster_eval::load_dataset_auto(&features)
        .map_err(|e| CliError::stage("eval", format!("{}: {e}", features.display())))?;
    let stats = stats_for("eval", &parsed);
    let offline = offline_eval(&dataset, &opts, &stats)?;
    let served = match parsed.value("addr") {
        Some(addr) => {
            let backend: Box<dyn SoakBackend> = Box::new(
                TcpBackend::connect(
                    addr.parse::<std::net::SocketAddr>()
                        .map_err(|e| CliError::Usage(format!("--addr {addr}: {e}")))?,
                    ClientConfig::default(),
                )
                .map_err(|e| CliError::stage("eval", e))?,
            );
            Some(served_eval(&dataset, backend.as_ref(), &opts, &stats)?)
        }
        None => None,
    };
    stats.verify_conservation()?;
    if parsed.switch("json") {
        let mut doc = vec![("offline".to_string(), json_value(&offline)?)];
        if let Some(served) = &served {
            doc.push(("served".to_string(), json_value(served)?));
        }
        println!(
            "{}",
            serde_json::to_string_pretty(&serde_json::Value::Map(doc))
                .map_err(|e| CliError::stage("eval", e.to_string()))?
        );
    } else {
        println!("offline baseline:");
        print!("{}", offline.render_markdown());
        if let Some(served) = &served {
            println!("served (over the wire):");
            print!("{}", served.render_markdown());
        }
        print!("{}", stats.render_table());
    }
    if let (Some(served), Some(_)) = (&served, parsed.value("epsilon")) {
        let epsilon = parsed.parse_value("epsilon", 0.05)?;
        compare_reports(served, &offline, epsilon)?;
        println!("quality gate passed: served within {epsilon} of offline at every iteration");
    }
    Ok(())
}

fn cmd_convert(args: &[String]) -> Result<(), CliError> {
    let parsed = parse_args(args, &[], &["progress"])?;
    let input = PathBuf::from(parsed.positional(0, "input path")?);
    let output = PathBuf::from(parsed.positional(1, "output path")?);
    let stats = stats_for("convert", &parsed);
    let report = convert(&input, &output, &stats)?;
    println!(
        "converted {} vectors x {} dims: {} -> {} ({})",
        report.vectors,
        report.dim,
        input.display(),
        output.display(),
        report.kind.describe()
    );
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), CliError> {
    let parsed = parse_args(args, &["workdir"], &["json", "progress"])?;
    let recipe_path = PathBuf::from(parsed.positional(0, "recipe path")?);
    let recipe = Recipe::load(&recipe_path)?;
    let workdir = match parsed.value("workdir") {
        Some(dir) => PathBuf::from(dir),
        None => default_workdir(&recipe_path),
    };
    let report = run(&recipe, &workdir, parsed.switch("progress"))?;
    if parsed.switch("json") {
        let doc = vec![
            ("served".to_string(), json_value(&report.served)?),
            ("offline".to_string(), json_value(&report.offline)?),
            (
                "epsilon".to_string(),
                serde_json::Value::F64(report.epsilon),
            ),
        ];
        println!(
            "{}",
            serde_json::to_string_pretty(&serde_json::Value::Map(doc))
                .map_err(|e| CliError::stage("run", e.to_string()))?
        );
        return Ok(());
    }
    println!();
    for (name, _, table) in &report.phases {
        println!("phase `{name}`:");
        print!("{table}");
    }
    println!();
    println!("served (over the wire):");
    print!("{}", report.served.render_markdown());
    println!("offline baseline:");
    print!("{}", report.offline.render_markdown());
    println!(
        "quality gate passed: served within {} of offline at every iteration",
        report.epsilon
    );
    Ok(())
}

/// Round-trips any `Serialize` value into the vendored JSON `Value`
/// tree so reports can be composed into one output document.
fn json_value<T: serde::Serialize>(value: &T) -> Result<serde_json::Value, CliError> {
    let text = serde_json::to_string(value).map_err(|e| CliError::stage("json", e.to_string()))?;
    serde_json::from_str(&text).map_err(|e| CliError::stage("json", e.to_string()))
}

/// `recipes/paper.toml` stages under `target/run/paper/` by default.
fn default_workdir(recipe_path: &Path) -> PathBuf {
    let stem = recipe_path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("recipe");
    PathBuf::from("target").join("run").join(stem)
}
