//! `qcluster-cli` — the one-binary pipeline front-end.
//!
//! Everything the workspace can do, reachable from a single `qcluster`
//! binary: render a synthetic corpus (`synth`), stream raw images into
//! a reduced feature dataset (`ingest`), seal it into a durable store
//! (`build`), bind the TCP retrieval stack on it (`serve`), grade
//! relevance-feedback quality over the wire (`eval`), re-encode
//! datasets (`convert`), and chain all of it from one TOML recipe
//! (`run`). Each stage reports per-stage throughput through a shared
//! [`stats::PipelineStats`] reporter and verifies the conservation
//! invariant `items_in == items_out + skipped`.
//!
//! The library half exists so the whole pipeline is testable
//! in-process (see `tests/pipeline_e2e.rs`); `main.rs` is a thin
//! argument-parsing shell over these modules.

#![warn(missing_docs)]

pub mod build;
pub mod convert;
pub mod error;
pub mod eval;
pub mod ingest;
pub mod recipe;
pub mod run;
pub mod serve;
pub mod stats;
pub mod synth;

pub use build::{build, BuildReport};
pub use convert::{convert, ConvertReport, ConvertedKind};
pub use error::{CliError, SkipReason, SkippedFile};
pub use eval::{
    compare_reports, offline_eval, sample_queries, served_eval, EvalOptions, EvalReport,
    IterationRow,
};
pub use ingest::{ingest, parse_feature_kind, IngestConfig, IngestReport, IngestSource};
pub use recipe::Recipe;
pub use run::{run, RunReport};
pub use serve::{serve, ServeHandle, ServeOptions};
pub use stats::{PipelineStats, StageStats};
pub use synth::{synth_images, synth_segment, SynthImagesConfig};
