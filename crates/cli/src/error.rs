//! Typed errors for the pipeline CLI.

use std::path::PathBuf;

/// Why one image file was skipped during ingest (never aborts the
/// run — counted in the stage's `skipped` and logged with the path).
#[derive(Debug)]
pub enum SkipReason {
    /// The file could not be read at all.
    Io(std::io::Error),
    /// The file is empty (zero bytes).
    Empty,
    /// The bytes are not a decodable image (bad magic, malformed
    /// header, truncated pixel data, …).
    Decode(String),
}

impl std::fmt::Display for SkipReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SkipReason::Io(e) => write!(f, "unreadable: {e}"),
            SkipReason::Empty => write!(f, "zero-byte file"),
            SkipReason::Decode(d) => write!(f, "undecodable: {d}"),
        }
    }
}

/// One skipped input file: the path plus why it was dropped.
#[derive(Debug)]
pub struct SkippedFile {
    /// The offending file.
    pub path: PathBuf,
    /// Why it was skipped.
    pub reason: SkipReason,
}

impl std::fmt::Display for SkippedFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.path.display(), self.reason)
    }
}

/// Top-level CLI failure: everything a subcommand can die on, each
/// variant carrying enough context to act on the message alone.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line or recipe value.
    Usage(String),
    /// Filesystem failure with the path that caused it.
    Io {
        /// The offending path.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// Recipe file could not be parsed.
    Recipe {
        /// The recipe file.
        path: PathBuf,
        /// Line number (1-based) when known.
        line: Option<usize>,
        /// What was wrong.
        detail: String,
    },
    /// A pipeline stage failed outright (not a per-file skip).
    Stage {
        /// Which stage.
        stage: String,
        /// What happened.
        detail: String,
    },
    /// Stage accounting did not balance.
    Conservation(crate::stats::ConservationError),
    /// The served precision diverged from the offline baseline beyond
    /// the configured tolerance.
    QualityGate {
        /// Feedback iteration where the divergence happened.
        iteration: usize,
        /// Served mean precision at that iteration.
        served: f64,
        /// Offline-baseline mean precision at that iteration.
        offline: f64,
        /// The configured tolerance.
        epsilon: f64,
    },
}

impl CliError {
    /// Wraps an I/O error with its path context.
    pub fn io(path: impl Into<PathBuf>, source: std::io::Error) -> CliError {
        CliError::Io {
            path: path.into(),
            source,
        }
    }

    /// A stage-level failure.
    pub fn stage(stage: &str, detail: impl std::fmt::Display) -> CliError {
        CliError::Stage {
            stage: stage.to_string(),
            detail: detail.to_string(),
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Io { path, source } => write!(f, "{}: {source}", path.display()),
            CliError::Recipe {
                path,
                line: Some(line),
                detail,
            } => write!(f, "{}:{line}: {detail}", path.display()),
            CliError::Recipe {
                path,
                line: None,
                detail,
            } => write!(f, "{}: {detail}", path.display()),
            CliError::Stage { stage, detail } => write!(f, "stage `{stage}` failed: {detail}"),
            CliError::Conservation(e) => write!(f, "stats conservation violated: {e}"),
            CliError::QualityGate {
                iteration,
                served,
                offline,
                epsilon,
            } => write!(
                f,
                "served precision diverged from the offline baseline at iteration \
                 {iteration}: served {served:.4} vs offline {offline:.4} (\u{3b5} = {epsilon})"
            ),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Io { source, .. } => Some(source),
            CliError::Conservation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<crate::stats::ConservationError> for CliError {
    fn from(e: crate::stats::ConservationError) -> Self {
        CliError::Conservation(e)
    }
}
