//! Run recipes: a TOML subset describing one end-to-end pipeline run.
//!
//! `qcluster run <recipe.toml>` reads a declarative spec — corpus
//! shape, feature kind, serving topology, eval protocol, quality gate —
//! and executes synth → ingest → build → serve → eval in one command.
//! The workspace vendors no TOML crate, so this module hand-rolls the
//! subset the recipes need: `[section]` headers, `key = value` pairs
//! with string / integer / float / boolean values, `#` comments, and
//! blank lines. Unknown sections or keys are **errors** (with line
//! numbers), so a typo'd recipe fails loudly instead of silently
//! running defaults.

use crate::error::CliError;
use crate::eval::EvalOptions;
use crate::ingest::{parse_feature_kind, IngestConfig};
use crate::synth::SynthImagesConfig;
use std::path::Path;

/// One parsed scalar value.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Int(i64),
    Float(f64),
    Bool(bool),
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "boolean",
        }
    }
}

/// One `key = value` with its source line (for error context).
#[derive(Debug, Clone)]
struct Entry {
    section: String,
    key: String,
    value: Value,
    line: usize,
}

/// The full pipeline recipe `qcluster run` executes.
#[derive(Debug, Clone, PartialEq)]
pub struct Recipe {
    /// Synthetic corpus shape (`[corpus]`).
    pub corpus: SynthImagesConfig,
    /// Ingest settings (`[ingest]`).
    pub ingest: IngestConfig,
    /// Serving topology (`[serve]`, minus scrape options which are
    /// per-invocation flags).
    pub nodes: usize,
    /// Eval protocol (`[eval]`).
    pub eval: EvalOptions,
    /// Max |served − offline| mean precision per iteration.
    pub epsilon: f64,
}

impl Default for Recipe {
    fn default() -> Self {
        Recipe {
            corpus: SynthImagesConfig::default(),
            ingest: IngestConfig::default(),
            nodes: 1,
            eval: EvalOptions::default(),
            epsilon: 0.05,
        }
    }
}

fn parse_value(raw: &str) -> Option<Value> {
    let raw = raw.trim();
    if let Some(inner) = raw.strip_prefix('"').and_then(|r| r.strip_suffix('"')) {
        // The recipes need no escapes; reject embedded quotes outright.
        if inner.contains('"') {
            return None;
        }
        return Some(Value::Str(inner.to_string()));
    }
    match raw {
        "true" => return Some(Value::Bool(true)),
        "false" => return Some(Value::Bool(false)),
        _ => {}
    }
    if let Ok(i) = raw.parse::<i64>() {
        return Some(Value::Int(i));
    }
    if let Ok(f) = raw.parse::<f64>() {
        return Some(Value::Float(f));
    }
    None
}

fn strip_comment(line: &str) -> &str {
    // `#` starts a comment unless inside a quoted string.
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_entries(text: &str, path: &Path) -> Result<Vec<Entry>, CliError> {
    let err = |line: usize, detail: String| CliError::Recipe {
        path: path.to_path_buf(),
        line: Some(line),
        detail,
    };
    let mut section = String::new();
    let mut entries = Vec::new();
    for (i, raw_line) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[') {
            let Some(name) = name.strip_suffix(']') else {
                return Err(err(
                    line_no,
                    format!("unterminated section header {line:?}"),
                ));
            };
            section = name.trim().to_string();
            if section.is_empty() {
                return Err(err(line_no, "empty section name".into()));
            }
            continue;
        }
        let Some((key, raw_value)) = line.split_once('=') else {
            return Err(err(
                line_no,
                format!("expected `key = value`, got {line:?}"),
            ));
        };
        let key = key.trim();
        if key.is_empty() {
            return Err(err(line_no, "empty key".into()));
        }
        if section.is_empty() {
            return Err(err(line_no, format!("key {key:?} before any [section]")));
        }
        let Some(value) = parse_value(raw_value) else {
            return Err(err(
                line_no,
                format!(
                    "unsupported value {:?} (string/int/float/bool only)",
                    raw_value.trim()
                ),
            ));
        };
        entries.push(Entry {
            section: section.clone(),
            key: key.to_string(),
            value,
            line: line_no,
        });
    }
    Ok(entries)
}

fn as_usize(e: &Entry, path: &Path) -> Result<usize, CliError> {
    match e.value {
        Value::Int(i) if i >= 0 => Ok(i as usize),
        _ => Err(CliError::Recipe {
            path: path.to_path_buf(),
            line: Some(e.line),
            detail: format!(
                "{}.{} must be a non-negative integer, got {}",
                e.section,
                e.key,
                e.value.type_name()
            ),
        }),
    }
}

fn as_u64(e: &Entry, path: &Path) -> Result<u64, CliError> {
    as_usize(e, path).map(|v| v as u64)
}

fn as_f64(e: &Entry, path: &Path) -> Result<f64, CliError> {
    match e.value {
        Value::Float(f) => Ok(f),
        Value::Int(i) => Ok(i as f64),
        _ => Err(CliError::Recipe {
            path: path.to_path_buf(),
            line: Some(e.line),
            detail: format!("{}.{} must be a number", e.section, e.key),
        }),
    }
}

fn as_str<'a>(e: &'a Entry, path: &Path) -> Result<&'a str, CliError> {
    match &e.value {
        Value::Str(s) => Ok(s),
        _ => Err(CliError::Recipe {
            path: path.to_path_buf(),
            line: Some(e.line),
            detail: format!("{}.{} must be a string", e.section, e.key),
        }),
    }
}

impl Recipe {
    /// Parses recipe `text` (from `path`, used for error context).
    ///
    /// # Errors
    ///
    /// [`CliError::Recipe`] with a line number for syntax errors,
    /// unknown sections/keys, or type mismatches.
    pub fn parse(text: &str, path: &Path) -> Result<Recipe, CliError> {
        let mut recipe = Recipe::default();
        for e in parse_entries(text, path)? {
            let unknown = |what: &str| CliError::Recipe {
                path: path.to_path_buf(),
                line: Some(e.line),
                detail: format!("unknown {what}"),
            };
            match (e.section.as_str(), e.key.as_str()) {
                ("corpus", "categories") => recipe.corpus.categories = as_usize(&e, path)?,
                ("corpus", "images_per_category") => {
                    recipe.corpus.images_per_category = as_usize(&e, path)?;
                }
                ("corpus", "image_size") => recipe.corpus.image_size = as_usize(&e, path)?,
                ("corpus", "categories_per_super") => {
                    recipe.corpus.categories_per_super = as_usize(&e, path)?;
                }
                ("corpus", "seed") => recipe.corpus.seed = as_u64(&e, path)?,
                ("ingest", "features") => {
                    recipe.ingest.features =
                        parse_feature_kind(as_str(&e, path)?).map_err(|err| CliError::Recipe {
                            path: path.to_path_buf(),
                            line: Some(e.line),
                            detail: err.to_string(),
                        })?;
                }
                ("ingest", "workers") => recipe.ingest.workers = as_usize(&e, path)?,
                ("serve", "nodes") => recipe.nodes = as_usize(&e, path)?.max(1),
                ("eval", "k") => recipe.eval.k = as_usize(&e, path)?,
                ("eval", "rounds") => recipe.eval.rounds = as_usize(&e, path)?,
                ("eval", "queries") => recipe.eval.queries = as_usize(&e, path)?,
                ("eval", "seed") => recipe.eval.seed = as_u64(&e, path)?,
                ("eval", "epsilon") => recipe.epsilon = as_f64(&e, path)?,
                ("corpus" | "ingest" | "serve" | "eval", _) => {
                    return Err(unknown(&format!("key `{}.{}`", e.section, e.key)));
                }
                _ => return Err(unknown(&format!("section `[{}]`", e.section))),
            }
        }
        recipe.validate(path)?;
        Ok(recipe)
    }

    /// Loads and parses a recipe file.
    ///
    /// # Errors
    ///
    /// I/O failures and everything [`Recipe::parse`] rejects.
    pub fn load(path: &Path) -> Result<Recipe, CliError> {
        let text = std::fs::read_to_string(path).map_err(|e| CliError::io(path, e))?;
        Recipe::parse(&text, path)
    }

    fn validate(&self, path: &Path) -> Result<(), CliError> {
        let bad = |detail: String| CliError::Recipe {
            path: path.to_path_buf(),
            line: None,
            detail,
        };
        if self.corpus.categories == 0 || self.corpus.images_per_category == 0 {
            return Err(bad("corpus must have categories and images".into()));
        }
        if self.corpus.image_size < 4 {
            return Err(bad("corpus.image_size must be at least 4".into()));
        }
        if self.eval.k == 0 || self.eval.queries == 0 {
            return Err(bad("eval.k and eval.queries must be positive".into()));
        }
        if !(self.epsilon > 0.0 && self.epsilon <= 1.0) {
            return Err(bad(format!(
                "eval.epsilon must be in (0, 1], got {}",
                self.epsilon
            )));
        }
        let n = self.corpus.categories * self.corpus.images_per_category;
        if self.nodes > n {
            return Err(bad(format!(
                "serve.nodes = {} exceeds the {n}-image corpus",
                self.nodes
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcluster_imaging::FeatureKind;
    use std::path::PathBuf;

    fn p() -> PathBuf {
        PathBuf::from("test.toml")
    }

    #[test]
    fn full_recipe_parses() {
        let text = r#"
# paper reproduction
[corpus]
categories = 10        # inline comment
images_per_category = 8
image_size = 16
categories_per_super = 5
seed = 7

[ingest]
features = "texture"
workers = 2

[serve]
nodes = 3

[eval]
k = 10
rounds = 2
queries = 12
seed = 17
epsilon = 0.1
"#;
        let r = Recipe::parse(text, &p()).unwrap();
        assert_eq!(r.corpus.categories, 10);
        assert_eq!(r.corpus.images_per_category, 8);
        assert_eq!(r.ingest.features, FeatureKind::CooccurrenceTexture);
        assert_eq!(r.ingest.workers, 2);
        assert_eq!(r.nodes, 3);
        assert_eq!(r.eval.k, 10);
        assert!((r.epsilon - 0.1).abs() < 1e-12);
    }

    #[test]
    fn defaults_fill_missing_sections() {
        let r = Recipe::parse("[eval]\nqueries = 5\n", &p()).unwrap();
        assert_eq!(r.eval.queries, 5);
        assert_eq!(r.eval.k, EvalOptions::default().k);
        assert_eq!(r.corpus, SynthImagesConfig::default());
        assert_eq!(r.nodes, 1);
    }

    #[test]
    fn unknown_keys_and_sections_fail_with_line_numbers() {
        let err = Recipe::parse("[corpus]\nvolume = 11\n", &p()).unwrap_err();
        assert!(err.to_string().contains("test.toml:2"), "{err}");
        assert!(err.to_string().contains("corpus.volume"), "{err}");
        let err = Recipe::parse("[corpse]\ncategories = 3\n", &p()).unwrap_err();
        assert!(err.to_string().contains("[corpse]"), "{err}");
    }

    #[test]
    fn syntax_errors_carry_context() {
        let err = Recipe::parse("[corpus\n", &p()).unwrap_err();
        assert!(err.to_string().contains("unterminated"), "{err}");
        let err = Recipe::parse("[corpus]\nseed 7\n", &p()).unwrap_err();
        assert!(err.to_string().contains("key = value"), "{err}");
        let err = Recipe::parse("seed = 7\n", &p()).unwrap_err();
        assert!(err.to_string().contains("before any"), "{err}");
        let err = Recipe::parse("[eval]\nk = \"many\"\n", &p()).unwrap_err();
        assert!(err.to_string().contains("non-negative integer"), "{err}");
    }

    #[test]
    fn values_parse_all_scalar_types() {
        assert_eq!(parse_value("\"hi\""), Some(Value::Str("hi".into())));
        assert_eq!(parse_value("42"), Some(Value::Int(42)));
        assert_eq!(parse_value("-3"), Some(Value::Int(-3)));
        assert_eq!(parse_value("0.05"), Some(Value::Float(0.05)));
        assert_eq!(parse_value("true"), Some(Value::Bool(true)));
        assert_eq!(parse_value("[1, 2]"), None);
    }

    #[test]
    fn validation_rejects_nonsense() {
        let err = Recipe::parse("[eval]\nepsilon = 0\n", &p()).unwrap_err();
        assert!(err.to_string().contains("epsilon"), "{err}");
        let err = Recipe::parse(
            "[corpus]\ncategories = 2\nimages_per_category = 2\n[serve]\nnodes = 9\n",
            &p(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("nodes"), "{err}");
    }
}
