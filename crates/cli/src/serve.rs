//! `qcluster serve` — bind the TCP retrieval service on a built store.
//!
//! ```text
//! recover ──▶ bind [──▶ scrape …]
//! ```
//!
//! `recover` opens the durable store directory `qcluster build` sealed
//! and restores the corpus (segments + WAL tail) through the same
//! crash-recovery path the fault-tolerance tests exercise. `bind`
//! starts the `qcluster-net` server — one node by default, or
//! `nodes > 1` for a scatter-gather cluster: the corpus is split into
//! contiguous partitions, each served by its own in-process node, and
//! clients front them with the `qcluster-router` library (which is how
//! `qcluster eval --cluster` connects).
//!
//! With a scrape path set, a background thread periodically snapshots
//! the primary node's [`MetricsSnapshot`] into the standard bench
//! metrics artifact (`qcluster_bench::write_metrics_artifact`), so a
//! long-lived `serve` can be monitored by tailing one JSON file.

use crate::error::CliError;
use crate::stats::PipelineStats;
use qcluster_net::{Server, ServerConfig};
use qcluster_router::Partition;
use qcluster_service::{Service, ServiceConfig};
use qcluster_store::{StoreConfig, VectorStore};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Serving tunables.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Nodes to split the corpus over (`1` = single node).
    pub nodes: usize,
    /// Max concurrent client connections per node.
    pub max_connections: usize,
    /// Max live sessions per node.
    pub max_sessions: usize,
    /// Write periodic metrics-snapshot scrapes to this JSON artifact.
    pub scrape_json: Option<PathBuf>,
    /// Scrape period.
    pub scrape_interval: Duration,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            nodes: 1,
            max_connections: 64,
            max_sessions: 256,
            scrape_json: None,
            scrape_interval: Duration::from_secs(5),
        }
    }
}

/// A running serving stack: nodes, their listeners, and the optional
/// scrape thread. Call [`ServeHandle::shutdown`] to stop everything.
pub struct ServeHandle {
    services: Vec<Arc<Service>>,
    servers: Vec<Server>,
    partitions: Vec<Partition>,
    scrape_stop: Arc<AtomicBool>,
    scrape_thread: Option<std::thread::JoinHandle<()>>,
    scrape_json: Option<PathBuf>,
}

impl std::fmt::Debug for ServeHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeHandle")
            .field("nodes", &self.servers.len())
            .field("addrs", &self.addrs())
            .finish()
    }
}

impl ServeHandle {
    /// Listener addresses, one per node (partition order).
    pub fn addrs(&self) -> Vec<SocketAddr> {
        self.servers.iter().map(Server::local_addr).collect()
    }

    /// The partition layout (id bases + replica addresses) a
    /// `qcluster-router` client needs to front this stack.
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// The primary node's service (metrics, direct in-process calls).
    pub fn primary(&self) -> &Arc<Service> {
        &self.services[0]
    }

    /// Stops the scrape thread and shuts every node down. A final
    /// scrape is written on the way out so even short runs leave a
    /// complete artifact.
    pub fn shutdown(mut self) {
        self.scrape_stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.scrape_thread.take() {
            let _ = t.join();
        }
        if let Some(path) = &self.scrape_json {
            let _ = qcluster_bench::write_metrics_artifact(path, "serve", &self.primary().stats());
        }
        for server in self.servers.drain(..) {
            server.shutdown();
        }
    }
}

/// Opens the store at `dir` and binds the serving stack on
/// OS-assigned ports (`127.0.0.1`).
///
/// # Errors
///
/// Store recovery failures, an empty store, or bind failures.
pub fn serve(
    dir: &Path,
    opts: &ServeOptions,
    stats: &PipelineStats,
) -> Result<ServeHandle, CliError> {
    let recover = stats.stage("recover");
    let bind = stats.stage("bind");
    let service_config = ServiceConfig {
        max_sessions: opts.max_sessions,
        ..ServiceConfig::default()
    };
    let server_config = ServerConfig {
        max_connections: opts.max_connections,
        ..ServerConfig::default()
    };

    let nodes = opts.nodes.max(1);
    let (services, partitions): (Vec<Arc<Service>>, Vec<Partition>) = if nodes == 1 {
        // Single node serves the durable store directly: live ingests
        // keep WAL-appending into the same directory.
        recover.item_in();
        let service = Service::open_durable(dir, &[], service_config, StoreConfig::default())
            .map_err(|e| CliError::stage("recover", format!("{}: {e}", dir.display())))?;
        recover.item_out();
        (
            vec![Arc::new(service)],
            vec![Partition {
                id_base: 0,
                replicas: Vec::new(),
            }],
        )
    } else {
        // Cluster mode: recover the corpus once, then split it into
        // contiguous read-only partitions (global id = id_base + local).
        recover.item_in();
        let (_store, recovered) = VectorStore::open(dir, StoreConfig::default())
            .map_err(|e| CliError::stage("recover", format!("{}: {e}", dir.display())))?;
        recover.item_out();
        let n = recovered.vectors.len();
        if n < nodes {
            return Err(CliError::stage(
                "recover",
                format!("{n} vectors cannot split over {nodes} nodes"),
            ));
        }
        let per = n / nodes;
        let mut services = Vec::with_capacity(nodes);
        let mut partitions = Vec::with_capacity(nodes);
        for i in 0..nodes {
            let id_base = i * per;
            let end = if i + 1 == nodes { n } else { id_base + per };
            let service = Service::new(&recovered.vectors[id_base..end], service_config.clone())
                .map_err(|e| CliError::stage("recover", format!("node {i}: {e}")))?;
            services.push(Arc::new(service));
            partitions.push(Partition {
                id_base,
                replicas: Vec::new(),
            });
        }
        (services, partitions)
    };
    recover.finish();

    let mut servers = Vec::with_capacity(services.len());
    let mut partitions = partitions;
    for (i, service) in services.iter().enumerate() {
        bind.item_in();
        let server = Server::bind("127.0.0.1:0", Arc::clone(service), server_config.clone())
            .map_err(|e| CliError::stage("bind", format!("node {i}: {e}")))?;
        partitions[i].replicas = vec![server.local_addr()];
        servers.push(server);
        bind.item_out();
    }
    bind.finish();
    stats.verify_conservation()?;

    let scrape_stop = Arc::new(AtomicBool::new(false));
    let scrape_thread = opts.scrape_json.as_ref().map(|path| {
        let path = path.clone();
        let interval = opts.scrape_interval;
        let stop = Arc::clone(&scrape_stop);
        let service = Arc::clone(&services[0]);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                // Sleep in short slices so shutdown is prompt even
                // with long scrape intervals.
                let mut left = interval;
                while !stop.load(Ordering::Relaxed) && left > Duration::ZERO {
                    let slice = left.min(Duration::from_millis(50));
                    std::thread::sleep(slice);
                    left = left.saturating_sub(slice);
                }
                if stop.load(Ordering::Relaxed) {
                    return;
                }
                if let Err(e) =
                    qcluster_bench::write_metrics_artifact(&path, "serve", &service.stats())
                {
                    eprintln!("  [serve] scrape failed: {e}");
                }
            }
        })
    });

    Ok(ServeHandle {
        services,
        servers,
        partitions,
        scrape_stop,
        scrape_thread,
        scrape_json: opts.scrape_json.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build;
    use crate::ingest::{ingest, IngestConfig, IngestSource};
    use crate::synth::SynthImagesConfig;
    use qcluster_net::{Client, ClientConfig};
    use qcluster_service::{Request, Response};

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("qcluster-cli-serve-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn built_store(dir: &Path) -> PathBuf {
        let features = dir.join("features.qdsb");
        ingest(
            &IngestSource::Synth(SynthImagesConfig {
                categories: 4,
                images_per_category: 6,
                image_size: 12,
                categories_per_super: 2,
                seed: 3,
            }),
            &features,
            &IngestConfig::default(),
            &PipelineStats::new("ingest"),
        )
        .unwrap();
        let store = dir.join("store");
        build(&features, &store, &PipelineStats::new("build")).unwrap();
        store
    }

    #[test]
    fn single_node_serves_the_built_store() {
        let dir = tmp_dir("single");
        let store = built_store(&dir);
        let handle = serve(
            &store,
            &ServeOptions::default(),
            &PipelineStats::new("serve"),
        )
        .unwrap();
        let addrs = handle.addrs();
        assert_eq!(addrs.len(), 1);
        let mut client = Client::connect(addrs[0].to_string(), ClientConfig::default()).unwrap();
        match client.call(&Request::Stats).unwrap() {
            Response::Stats(snap) => assert_eq!(snap.storage.segment_vectors, 24),
            other => panic!("unexpected: {other:?}"),
        }
        handle.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cluster_mode_partitions_the_corpus() {
        let dir = tmp_dir("cluster");
        let store = built_store(&dir);
        let opts = ServeOptions {
            nodes: 3,
            ..ServeOptions::default()
        };
        let handle = serve(&store, &opts, &PipelineStats::new("serve")).unwrap();
        assert_eq!(handle.addrs().len(), 3);
        let parts = handle.partitions().to_vec();
        assert_eq!(parts[0].id_base, 0);
        assert_eq!(parts[1].id_base, 8);
        assert_eq!(parts[2].id_base, 16);
        handle.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scrape_writes_a_metrics_artifact() {
        let dir = tmp_dir("scrape");
        let store = built_store(&dir);
        let scrape = dir.join("metrics.json");
        let opts = ServeOptions {
            scrape_json: Some(scrape.clone()),
            scrape_interval: Duration::from_millis(20),
            ..ServeOptions::default()
        };
        let handle = serve(&store, &opts, &PipelineStats::new("serve")).unwrap();
        std::thread::sleep(Duration::from_millis(120));
        handle.shutdown();
        let text = std::fs::read_to_string(&scrape).unwrap();
        let json: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert!(json.get("metrics").is_some(), "artifact shape: {text}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
