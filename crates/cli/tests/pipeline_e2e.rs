//! Golden end-to-end pipeline test: synth → ingest → build → serve →
//! eval, entirely in-process against a temp directory.
//!
//! Checks the three invariants the one-binary pipeline promises:
//!
//! 1. **Robust ingest** — a deliberately truncated file and a zero-byte
//!    file are skipped (typed, counted), never fatal.
//! 2. **Stats conservation** — every stage of every phase satisfies
//!    `items_in == items_out + skipped`.
//! 3. **Wire fidelity** — precision@k measured over the TCP stack
//!    matches the offline in-process baseline within ε = 0.05 at every
//!    feedback iteration.

use qcluster_cli::{
    build, compare_reports, ingest, offline_eval, serve, served_eval, synth_images, EvalOptions,
    IngestConfig, IngestSource, PipelineStats, ServeOptions, SynthImagesConfig,
};
use qcluster_loadgen::{SoakBackend, TcpBackend};
use qcluster_net::ClientConfig;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;

const EPSILON: f64 = 0.05;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qcluster-e2e-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Chops a PPM down to half its bytes so the pixel payload is
/// truncated mid-stream.
fn truncate_file(path: &PathBuf) {
    let mut file = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)
        .unwrap();
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes).unwrap();
    file.set_len(bytes.len() as u64 / 2).unwrap();
    file.seek(SeekFrom::Start(0)).unwrap();
    file.flush().unwrap();
}

#[test]
fn pipeline_end_to_end_matches_offline_baseline() {
    let dir = tmp_dir("golden");

    // --- synth: raw PPM corpus on disk --------------------------------
    let corpus = SynthImagesConfig {
        categories: 8,
        images_per_category: 10,
        image_size: 14,
        categories_per_super: 4,
        seed: 11,
    };
    let images = dir.join("images");
    let synth_stats = PipelineStats::new("synth");
    let rendered = synth_images(&images, &corpus, &synth_stats).unwrap();
    assert_eq!(rendered, 80);
    synth_stats.verify_conservation().unwrap();

    // --- sabotage: one truncated file, one zero-byte file -------------
    truncate_file(&images.join("img000003.ppm"));
    std::fs::write(images.join("img000017.ppm"), b"").unwrap();

    // --- ingest: decode -> extract -> PCA, skipping the corrupt pair --
    let features = dir.join("features.qdsb");
    let ingest_stats = PipelineStats::new("ingest");
    let report = ingest(
        &IngestSource::Images(images),
        &features,
        &IngestConfig::default(),
        &ingest_stats,
    )
    .unwrap();
    assert_eq!(report.images, 78, "80 rendered - 2 corrupt");
    assert_eq!(report.skipped.len(), 2);
    let reasons: Vec<String> = report.skipped.iter().map(|s| s.to_string()).collect();
    assert!(
        reasons.iter().any(|r| r.contains("img000003.ppm")),
        "truncated file named in: {reasons:?}"
    );
    assert!(
        reasons.iter().any(|r| r.contains("zero-byte")),
        "empty file typed in: {reasons:?}"
    );
    ingest_stats.verify_conservation().unwrap();
    let decode = ingest_stats
        .snapshot()
        .into_iter()
        .find(|s| s.stage == "decode")
        .unwrap();
    assert_eq!(decode.items_in, 80);
    assert_eq!(decode.items_out, 78);
    assert_eq!(decode.skipped, 2);

    // --- build: seal into the durable store ---------------------------
    let store = dir.join("store");
    let build_stats = PipelineStats::new("build");
    let built = build(&features, &store, &build_stats).unwrap();
    assert_eq!(built.vectors, 78);
    assert!(built.segments >= 1);
    build_stats.verify_conservation().unwrap();

    // --- serve: real TCP stack on an OS-assigned port ------------------
    let serve_stats = PipelineStats::new("serve");
    let handle = serve(&store, &ServeOptions::default(), &serve_stats).unwrap();
    serve_stats.verify_conservation().unwrap();

    // --- eval: feedback sessions over the wire vs offline --------------
    let opts = EvalOptions {
        k: 10,
        rounds: 2,
        queries: 12,
        seed: 17,
    };
    let dataset = qcluster_eval::load_dataset_auto(&features).unwrap();
    let eval_stats = PipelineStats::new("eval");
    let backend: Box<dyn SoakBackend> =
        Box::new(TcpBackend::connect(handle.addrs()[0], ClientConfig::default()).unwrap());
    let served = served_eval(&dataset, backend.as_ref(), &opts, &eval_stats).unwrap();
    let offline = offline_eval(&dataset, &opts, &eval_stats).unwrap();
    eval_stats.verify_conservation().unwrap();
    handle.shutdown();

    // Full trajectory: initial query + 2 feedback rounds, and feedback
    // must not collapse precision.
    assert_eq!(served.rows.len(), 3);
    assert_eq!(offline.rows.len(), 3);
    for row in &offline.rows {
        assert!(row.mean_precision > 0.0 && row.mean_precision <= 1.0);
    }
    assert!(
        offline.rows[2].mean_precision >= offline.rows[0].mean_precision - 0.1,
        "feedback regressed: {:?}",
        offline.rows
    );

    // The golden gate: the wire path reproduces the offline baseline.
    compare_reports(&served, &offline, EPSILON).unwrap_or_else(|e| {
        panic!("served diverged from offline: {e}\nserved: {served:?}\noffline: {offline:?}")
    });

    let _ = std::fs::remove_dir_all(&dir);
}
