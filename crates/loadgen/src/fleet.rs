//! The closed-loop user fleet: plan, execution, and offline baseline.
//!
//! A *user* is a thread driving the paper's feedback protocol end to
//! end against a live target: open a session, query with an example
//! image, let the oracle-backed [`SimulatedUser`] mark the answer,
//! feed the marks, think, re-query with the refined (disjunctive)
//! query — for a planned number of iterations, over a planned number
//! of back-to-back sessions.
//!
//! Everything a user will do is decided **up front** by
//! [`FleetPlan::build`], a pure function of `(config, corpus size)`:
//! query images, per-session iteration counts (including seeded early
//! abandonment), and per-round think-time jitter. Execution then only
//! *consumes* the plan, so one seed reproduces the same workload
//! byte-for-byte regardless of scheduling, and
//! [`offline_baseline`] can replay the identical plan through
//! `qcluster-eval`'s in-process [`FeedbackSession`] to bound how much
//! retrieval quality the served path may lose.

use crate::chaos::{ChaosHit, ChaosScheduler};
use crate::config::SoakConfig;
use crate::rng::SeedRng;
use crate::target::{SoakBackend, UserTarget};
use qcluster_core::{FeedbackPoint, QclusterConfig, QclusterEngine};
use qcluster_eval::oracle::SCORE_SAME_CATEGORY;
use qcluster_eval::{precision_at_k, Dataset, FeedbackSession, SimulatedUser};
use qcluster_service::LatencyHistogram;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Stream tag for per-user plan randomness (offset by the user index).
const USER_STREAM_BASE: u64 = 1 << 32;
/// Stream tag for the background ingest content stream.
const INGEST_STREAM: u64 = 0x1F6E;

/// One planned feedback session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionPlan {
    /// The example image the session queries for.
    pub query_image: usize,
    /// Feedback rounds this session actually runs (< the configured
    /// iterations when the user abandons early).
    pub rounds: usize,
    /// Pre-drawn think pause before each round, nanoseconds.
    pub think_ns: Vec<u64>,
    /// Whether this session was planned as abandoned.
    pub abandoned: bool,
}

/// One user's planned session sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UserPlan {
    /// Sessions run back to back.
    pub sessions: Vec<SessionPlan>,
}

/// The whole fleet's plan: `users[i]` is user `i`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetPlan {
    /// One plan per user.
    pub users: Vec<UserPlan>,
}

impl FleetPlan {
    /// Builds the fleet plan as a pure function of the config and the
    /// corpus size. Each user draws from its own derived seed stream,
    /// so plans are independent of construction and execution order.
    pub fn build(config: &SoakConfig, corpus_len: usize) -> FleetPlan {
        let users = (0..config.users)
            .map(|u| {
                let mut rng = SeedRng::derived(config.seed, USER_STREAM_BASE + u as u64);
                let sessions = (0..config.sessions_per_user)
                    .map(|_| {
                        let query_image = rng.next_range(corpus_len as u64) as usize;
                        let abandoned = rng.next_range(1000) < u64::from(config.abandon_per_mille);
                        let rounds = if abandoned {
                            rng.next_range(config.iterations as u64) as usize
                        } else {
                            config.iterations
                        };
                        let think_ns = (0..rounds)
                            .map(|_| {
                                if config.think_ms == 0 {
                                    0
                                } else {
                                    // Uniform in [think/2, 3·think/2).
                                    let base = config.think_ms * 1_000_000;
                                    base / 2 + rng.next_range(base)
                                }
                            })
                            .collect();
                        SessionPlan {
                            query_image,
                            rounds,
                            think_ns,
                            abandoned,
                        }
                    })
                    .collect();
                UserPlan { sessions }
            })
            .collect();
        FleetPlan { users }
    }
}

/// The deterministic background-ingest content stream: perturbed
/// copies of seed-chosen corpus vectors (small uniform noise keeps
/// them near real data so they land inside the index's populated
/// space). Content is a pure function of `(seed, draw index)`; only
/// *how many* vectors get sent depends on wall-clock pacing.
#[derive(Debug, Clone)]
pub struct IngestStream<'a> {
    dataset: &'a Dataset,
    rng: SeedRng,
}

impl<'a> IngestStream<'a> {
    /// A stream over `dataset` derived from the soak seed.
    pub fn new(seed: u64, dataset: &'a Dataset) -> IngestStream<'a> {
        IngestStream {
            dataset,
            rng: SeedRng::derived(seed, INGEST_STREAM),
        }
    }

    /// The next vector to ingest.
    pub fn next_vector(&mut self) -> Vec<f64> {
        let base = self.rng.next_range(self.dataset.len() as u64) as usize;
        self.dataset
            .vector(base)
            .iter()
            .map(|v| v + (self.rng.next_f64() - 0.5) * 0.02)
            .collect()
    }
}

/// Counters accumulated across the fleet.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SoakCounters {
    /// Query rounds answered with neighbors.
    pub queries_ok: u64,
    /// Query rounds that failed (transport or service error).
    pub query_errors: u64,
    /// Feed rounds that failed.
    pub feed_errors: u64,
    /// Answered queries reporting partial shard/node coverage.
    pub degraded_responses: u64,
    /// Sessions that ran their full planned iterations.
    pub sessions_completed: u64,
    /// Sessions planned (and executed) as early-abandoned.
    pub sessions_abandoned: u64,
    /// Sessions cut short by errors (not by plan).
    pub session_errors: u64,
    /// Background vectors durably ingested.
    pub ingests_ok: u64,
    /// Background ingest attempts that failed.
    pub ingest_errors: u64,
}

impl SoakCounters {
    fn add(&mut self, other: &SoakCounters) {
        self.queries_ok += other.queries_ok;
        self.query_errors += other.query_errors;
        self.feed_errors += other.feed_errors;
        self.degraded_responses += other.degraded_responses;
        self.sessions_completed += other.sessions_completed;
        self.sessions_abandoned += other.sessions_abandoned;
        self.session_errors += other.session_errors;
        self.ingests_ok += other.ingests_ok;
        self.ingest_errors += other.ingest_errors;
    }
}

/// Mean precision-at-k across sessions at one feedback iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationQuality {
    /// Iteration index (0 = the initial example query).
    pub iteration: usize,
    /// Sessions that reached (and answered) this iteration.
    pub sessions: u64,
    /// Mean precision-at-k over those sessions.
    pub mean_precision: f64,
}

/// Everything one soak run produced.
#[derive(Debug)]
pub struct SoakOutcome {
    /// Wall-clock duration of the whole run.
    pub wall: Duration,
    /// Fleet-wide counters.
    pub counters: SoakCounters,
    /// Fleet-wide client-observed query latency (per-user histograms
    /// merged lock-free at the end of the run).
    pub latency: LatencyHistogram,
    /// Retrieval quality per feedback iteration.
    pub precision: Vec<IterationQuality>,
    /// Per-failpoint fire counts from the chaos scheduler.
    pub chaos: Vec<ChaosHit>,
}

/// What one user thread hands back.
struct UserResult {
    counters: SoakCounters,
    /// `(sessions, precision sum)` per iteration index.
    precision: Vec<(u64, f64)>,
    latency: LatencyHistogram,
}

impl UserResult {
    fn new(iterations: usize) -> UserResult {
        UserResult {
            counters: SoakCounters::default(),
            precision: vec![(0, 0.0); iterations + 1],
            latency: LatencyHistogram::default(),
        }
    }

    fn observe(&mut self, iteration: usize, precision: f64) {
        let slot = &mut self.precision[iteration];
        slot.0 += 1;
        slot.1 += precision;
    }
}

/// Marks one round's answer. Ids beyond the labelled corpus (live
/// ingests) are invisible to the oracle and filtered out; an empty
/// mark set falls back to the query example at the same-category score
/// — exactly [`FeedbackSession`]'s `ensure_nonempty` protocol, so the
/// served loop and the offline baseline feed identical relevance
/// information.
fn mark_round(
    dataset: &Dataset,
    user: &SimulatedUser<'_>,
    query_image: usize,
    retrieved: &[usize],
) -> Vec<FeedbackPoint> {
    let labelled: Vec<usize> = retrieved
        .iter()
        .copied()
        .filter(|&id| id < dataset.len())
        .collect();
    let mut marked = user.mark(&labelled);
    if marked.is_empty() {
        marked.push(FeedbackPoint::new(
            query_image,
            dataset.vector(query_image).to_vec(),
            SCORE_SAME_CATEGORY,
        ));
    }
    marked
}

fn run_user(
    dataset: &Dataset,
    backend: &dyn SoakBackend,
    config: &SoakConfig,
    plan: &UserPlan,
) -> UserResult {
    let mut res = UserResult::new(config.iterations);
    let mut target: Box<dyn UserTarget> = match backend.user_target() {
        Ok(t) => t,
        Err(_) => {
            res.counters.session_errors += plan.sessions.len() as u64;
            return res;
        }
    };
    for session_plan in &plan.sessions {
        run_session(dataset, target.as_mut(), config, session_plan, &mut res);
    }
    res
}

fn run_session(
    dataset: &Dataset,
    target: &mut dyn UserTarget,
    config: &SoakConfig,
    plan: &SessionPlan,
    res: &mut UserResult,
) {
    let query_image = plan.query_image;
    let category = dataset.category(query_image);
    let user = SimulatedUser::new(dataset, category);
    let session = match target.create_session() {
        Ok(s) => s,
        Err(_) => {
            res.counters.session_errors += 1;
            return;
        }
    };

    // Initial round: the example-image query.
    let t = Instant::now();
    let mut marked = match target.query(
        session,
        config.k,
        Some(dataset.vector(query_image).to_vec()),
        config.deadline_ms,
    ) {
        Ok(reply) => {
            res.latency.record(t.elapsed());
            res.counters.queries_ok += 1;
            if reply.degraded {
                res.counters.degraded_responses += 1;
            }
            res.observe(
                0,
                precision_at_k(dataset, category, &reply.retrieved, config.k),
            );
            mark_round(dataset, &user, query_image, &reply.retrieved)
        }
        Err(_) => {
            res.counters.query_errors += 1;
            res.counters.session_errors += 1;
            let _ = target.close_session(session);
            return;
        }
    };

    let mut aborted = false;
    for round in 0..plan.rounds {
        let think = plan.think_ns[round];
        if think > 0 {
            std::thread::sleep(Duration::from_nanos(think));
        }
        let ids: Vec<usize> = marked.iter().map(|p| p.id).collect();
        let scores: Vec<f64> = marked.iter().map(|p| p.score).collect();
        if target.feed(session, &ids, &scores).is_err() {
            // Count it but keep driving: the refined query falls back
            // to the last state the server accepted.
            res.counters.feed_errors += 1;
        }
        let t = Instant::now();
        match target.query(session, config.k, None, config.deadline_ms) {
            Ok(reply) => {
                res.latency.record(t.elapsed());
                res.counters.queries_ok += 1;
                if reply.degraded {
                    res.counters.degraded_responses += 1;
                }
                res.observe(
                    round + 1,
                    precision_at_k(dataset, category, &reply.retrieved, config.k),
                );
                marked = mark_round(dataset, &user, query_image, &reply.retrieved);
            }
            Err(_) => {
                res.counters.query_errors += 1;
                aborted = true;
                break;
            }
        }
    }
    let _ = target.close_session(session);
    if aborted {
        res.counters.session_errors += 1;
    } else if plan.abandoned {
        res.counters.sessions_abandoned += 1;
    } else {
        res.counters.sessions_completed += 1;
    }
}

fn quality_from_acc(acc: Vec<(u64, f64)>) -> Vec<IterationQuality> {
    acc.into_iter()
        .enumerate()
        .map(|(iteration, (sessions, sum))| IterationQuality {
            iteration,
            sessions,
            mean_precision: if sessions == 0 {
                0.0
            } else {
                sum / sessions as f64
            },
        })
        .collect()
}

/// Runs one soak: starts the chaos scheduler and the background ingest
/// pacer, drives every planned user on its own thread against
/// `backend`, and folds the per-user results into one
/// [`SoakOutcome`] (latency histograms merged lock-free).
///
/// # Errors
///
/// Invalid configs and empty datasets; individual request failures are
/// *counted*, never propagated — a soak's job is to keep applying load
/// while the target misbehaves.
pub fn run_soak(
    dataset: &Dataset,
    backend: &dyn SoakBackend,
    config: &SoakConfig,
) -> Result<SoakOutcome, String> {
    config.validate()?;
    if dataset.is_empty() {
        return Err("dataset is empty".into());
    }
    let plan = FleetPlan::build(config, dataset.len());
    let t0 = Instant::now();
    let scheduler =
        (!config.chaos.is_empty()).then(|| ChaosScheduler::start(config.chaos.clone(), t0));
    let stop_ingest = AtomicBool::new(false);

    let (user_results, (ingests_ok, ingest_errors)) = std::thread::scope(|scope| {
        let ingest_handle = (config.ingest_per_sec > 0).then(|| {
            let stop = &stop_ingest;
            scope.spawn(move || {
                let mut stream = IngestStream::new(config.seed, dataset);
                let interval =
                    Duration::from_nanos(1_000_000_000 / u64::from(config.ingest_per_sec));
                let (mut ok, mut errors) = (0u64, 0u64);
                while !stop.load(Ordering::Relaxed) {
                    match backend.ingest(stream.next_vector()) {
                        Ok(_) => ok += 1,
                        Err(_) => errors += 1,
                    }
                    std::thread::sleep(interval);
                }
                (ok, errors)
            })
        });
        let handles: Vec<_> = plan
            .users
            .iter()
            .map(|user_plan| scope.spawn(move || run_user(dataset, backend, config, user_plan)))
            .collect();
        let results: Vec<UserResult> = handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| {
                    // A panicked user charges its whole plan as errors.
                    let mut res = UserResult::new(config.iterations);
                    res.counters.session_errors += config.sessions_per_user as u64;
                    res
                })
            })
            .collect();
        stop_ingest.store(true, Ordering::Relaxed);
        let ingest = ingest_handle
            .map(|h| h.join().unwrap_or((0, 0)))
            .unwrap_or((0, 0));
        (results, ingest)
    });

    let chaos = scheduler.map(ChaosScheduler::finish).unwrap_or_default();
    let wall = t0.elapsed();

    let latency = LatencyHistogram::default();
    let mut counters = SoakCounters::default();
    let mut acc = vec![(0u64, 0.0f64); config.iterations + 1];
    for res in &user_results {
        latency.merge(&res.latency);
        counters.add(&res.counters);
        for (slot, &(sessions, sum)) in acc.iter_mut().zip(res.precision.iter()) {
            slot.0 += sessions;
            slot.1 += sum;
        }
    }
    counters.ingests_ok = ingests_ok;
    counters.ingest_errors = ingest_errors;

    Ok(SoakOutcome {
        wall,
        counters,
        latency,
        precision: quality_from_acc(acc),
        chaos,
    })
}

/// Replays the *same* fleet plan through `qcluster-eval`'s in-process
/// [`FeedbackSession`] (no sharding, no network, no faults), reporting
/// per-iteration mean precision-at-k. This is the quality reference a
/// chaos-free soak must match to within tie-break noise: both sides
/// run the identical query images, iteration counts, marking protocol,
/// and engine configuration.
///
/// # Errors
///
/// Engine failures from the in-process session driver.
pub fn offline_baseline(
    dataset: &Dataset,
    config: &SoakConfig,
) -> Result<Vec<IterationQuality>, String> {
    config.validate()?;
    let plan = FleetPlan::build(config, dataset.len());
    let driver = FeedbackSession::new(dataset, config.k);
    let mut engine = QclusterEngine::new(QclusterConfig::default());
    let mut acc = vec![(0u64, 0.0f64); config.iterations + 1];
    for user in &plan.users {
        for session_plan in &user.sessions {
            let outcome = driver
                .run(&mut engine, session_plan.query_image, session_plan.rounds)
                .map_err(|e| format!("offline session failed: {e}"))?;
            let category = dataset.category(session_plan.query_image);
            for (i, record) in outcome.iterations.iter().enumerate() {
                acc[i].0 += 1;
                acc[i].1 += precision_at_k(dataset, category, &record.retrieved, config.k);
            }
        }
    }
    Ok(quality_from_acc(acc))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> SoakConfig {
        SoakConfig {
            seed: 7,
            users: 6,
            sessions_per_user: 3,
            iterations: 4,
            k: 10,
            think_ms: 20,
            abandon_per_mille: 400,
            ..SoakConfig::default()
        }
    }

    #[test]
    fn fleet_plan_is_deterministic_in_the_seed() {
        let a = FleetPlan::build(&config(), 500);
        let b = FleetPlan::build(&config(), 500);
        assert_eq!(a, b);
        let other = FleetPlan::build(
            &SoakConfig {
                seed: 8,
                ..config()
            },
            500,
        );
        assert_ne!(a, other);
    }

    #[test]
    fn fleet_plan_respects_the_configured_shape() {
        let cfg = config();
        let plan = FleetPlan::build(&cfg, 500);
        assert_eq!(plan.users.len(), cfg.users);
        let base = cfg.think_ms * 1_000_000;
        let mut abandoned = 0usize;
        let mut full = 0usize;
        for user in &plan.users {
            assert_eq!(user.sessions.len(), cfg.sessions_per_user);
            for s in &user.sessions {
                assert!(s.query_image < 500);
                assert_eq!(s.think_ns.len(), s.rounds);
                if s.abandoned {
                    abandoned += 1;
                    assert!(s.rounds < cfg.iterations);
                } else {
                    full += 1;
                    assert_eq!(s.rounds, cfg.iterations);
                }
                for &t in &s.think_ns {
                    assert!((base / 2..base / 2 + base).contains(&t), "think {t}");
                }
            }
        }
        // 400‰ abandonment over 18 sessions: both kinds must occur.
        assert!(abandoned > 0, "no session abandoned");
        assert!(full > 0, "every session abandoned");
    }

    #[test]
    fn zero_think_time_plans_zero_pauses() {
        let plan = FleetPlan::build(
            &SoakConfig {
                think_ms: 0,
                ..config()
            },
            100,
        );
        assert!(plan
            .users
            .iter()
            .flat_map(|u| &u.sessions)
            .all(|s| s.think_ns.iter().all(|&t| t == 0)));
    }

    #[test]
    fn ingest_stream_is_deterministic_and_matches_dataset_dim() {
        let dataset = Dataset::from_parts(
            (0..20).map(|i| vec![i as f64, 2.0 * i as f64]).collect(),
            (0..20).map(|i| i % 4).collect(),
            vec![0; 20],
            4,
        );
        let a: Vec<Vec<f64>> = {
            let mut s = IngestStream::new(11, &dataset);
            (0..16).map(|_| s.next_vector()).collect()
        };
        let b: Vec<Vec<f64>> = {
            let mut s = IngestStream::new(11, &dataset);
            (0..16).map(|_| s.next_vector()).collect()
        };
        assert_eq!(a, b);
        assert!(a.iter().all(|v| v.len() == dataset.dim()));
        let c: Vec<Vec<f64>> = {
            let mut s = IngestStream::new(12, &dataset);
            (0..16).map(|_| s.next_vector()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn quality_accumulator_averages_per_iteration() {
        let quality = quality_from_acc(vec![(2, 1.0), (1, 0.25), (0, 0.0)]);
        assert_eq!(quality.len(), 3);
        assert_eq!(quality[0].iteration, 0);
        assert!((quality[0].mean_precision - 0.5).abs() < 1e-12);
        assert!((quality[1].mean_precision - 0.25).abs() < 1e-12);
        assert_eq!(quality[2].sessions, 0);
        assert_eq!(quality[2].mean_precision, 0.0);
    }
}
