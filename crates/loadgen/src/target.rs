//! Soak targets: what a simulated user drives, behind one trait.
//!
//! The fleet only speaks [`UserTarget`] (one session-capable client)
//! and [`SoakBackend`] (the shared control plane: minting user
//! targets, background ingest, stats). Two implementations exist:
//!
//! - [`TcpBackend`] — every user opens its **own real TCP connection**
//!   (`qcluster-net` client) to a served store, so the soak exercises
//!   framing, pipelining backpressure, and the server's connection
//!   limits exactly like production traffic would.
//! - [`RouterBackend`] — every user drives the scatter-gather
//!   [`Router`] fronting a multi-node cluster over its per-node TCP
//!   connections (the router is a client-side library; sharing it
//!   across user threads is its intended concurrency model).

use qcluster_net::{Client, ClientConfig, NetError};
use qcluster_router::Router;
use qcluster_service::{MetricsSnapshot, Request, Response};
use std::net::SocketAddr;
use std::sync::{Arc, Mutex};

/// One query round's answer, reduced to what the fleet scores.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryReply {
    /// Ranked global corpus ids, best first (length ≤ k when degraded).
    pub retrieved: Vec<usize>,
    /// Whether shard or node coverage was partial.
    pub degraded: bool,
    /// Cluster nodes that contributed to the merge.
    pub nodes_ok: usize,
    /// Cluster nodes the query scattered to.
    pub nodes_total: usize,
}

/// One user's handle on the target: a session-scoped client. Errors
/// are strings — the fleet only counts and reports them.
pub trait UserTarget: Send {
    /// Opens a feedback session.
    ///
    /// # Errors
    ///
    /// Transport or service failure, rendered for the report.
    fn create_session(&mut self) -> Result<u64, String>;

    /// Runs one query round (`vector` set = initial example query,
    /// `None` = the session's refined query).
    ///
    /// # Errors
    ///
    /// Transport or service failure, rendered for the report.
    fn query(
        &mut self,
        session: u64,
        k: usize,
        vector: Option<Vec<f64>>,
        deadline_ms: Option<u64>,
    ) -> Result<QueryReply, String>;

    /// Feeds one round of graded relevance marks.
    ///
    /// # Errors
    ///
    /// Transport or service failure, rendered for the report.
    fn feed(&mut self, session: u64, ids: &[usize], scores: &[f64]) -> Result<(), String>;

    /// Closes the session (best-effort at soak teardown).
    ///
    /// # Errors
    ///
    /// Transport or service failure, rendered for the report.
    fn close_session(&mut self, session: u64) -> Result<(), String>;
}

/// The shared side of a soak target, used by the harness itself.
pub trait SoakBackend: Sync {
    /// Mints one fresh [`UserTarget`] (called once per user thread).
    ///
    /// # Errors
    ///
    /// Connection establishment failure.
    fn user_target(&self) -> Result<Box<dyn UserTarget>, String>;

    /// Durably ingests one vector, returning its assigned global id.
    ///
    /// # Errors
    ///
    /// Transport failure, or a memory-only target.
    fn ingest(&self, vector: Vec<f64>) -> Result<usize, String>;

    /// Fetches the target's metrics snapshot (cluster-wide when the
    /// target is a router).
    ///
    /// # Errors
    ///
    /// Transport failure.
    fn stats(&self) -> Result<MetricsSnapshot, String>;

    /// Human-readable target description for the report.
    fn label(&self) -> String;
}

fn net_err(e: NetError) -> String {
    format!("net: {e}")
}

fn unexpected(what: &str, response: &Response) -> String {
    format!("unexpected response to {what}: {response:?}")
}

fn reply_from_response(what: &str, response: Response) -> Result<QueryReply, String> {
    match response {
        Response::Neighbors {
            neighbors,
            degraded,
            nodes_ok,
            nodes_total,
            ..
        } => Ok(QueryReply {
            retrieved: neighbors.into_iter().map(|n| n.id).collect(),
            degraded,
            nodes_ok,
            nodes_total,
        }),
        Response::Error(e) => Err(format!("service: {e}")),
        other => Err(unexpected(what, &other)),
    }
}

// ---------------------------------------------------------------------
// TCP (single served store)
// ---------------------------------------------------------------------

/// A soak target reached over real TCP: one `qcluster-net` connection
/// per user plus one mutex-guarded control connection for ingest and
/// stats.
pub struct TcpBackend {
    addr: SocketAddr,
    config: ClientConfig,
    control: Mutex<Client>,
}

impl TcpBackend {
    /// Connects the control channel to `addr`.
    ///
    /// # Errors
    ///
    /// Connection establishment failure.
    pub fn connect(addr: SocketAddr, config: ClientConfig) -> Result<TcpBackend, String> {
        let control = Client::connect(addr, config.clone()).map_err(net_err)?;
        Ok(TcpBackend {
            addr,
            config,
            control: Mutex::new(control),
        })
    }

    fn control_call(&self, request: &Request) -> Result<Response, String> {
        let mut control = self
            .control
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        control.call(request).map_err(net_err)
    }
}

struct TcpTarget {
    client: Client,
}

impl UserTarget for TcpTarget {
    fn create_session(&mut self) -> Result<u64, String> {
        match self
            .client
            .call(&Request::CreateSession { engine: None })
            .map_err(net_err)?
        {
            Response::SessionCreated { session } => Ok(session),
            Response::Error(e) => Err(format!("service: {e}")),
            other => Err(unexpected("CreateSession", &other)),
        }
    }

    fn query(
        &mut self,
        session: u64,
        k: usize,
        vector: Option<Vec<f64>>,
        deadline_ms: Option<u64>,
    ) -> Result<QueryReply, String> {
        let response = self
            .client
            .call(&Request::Query {
                session,
                k,
                vector,
                deadline_ms,
            })
            .map_err(net_err)?;
        reply_from_response("Query", response)
    }

    fn feed(&mut self, session: u64, ids: &[usize], scores: &[f64]) -> Result<(), String> {
        match self
            .client
            .call(&Request::Feed {
                session,
                relevant_ids: ids.to_vec(),
                scores: Some(scores.to_vec()),
            })
            .map_err(net_err)?
        {
            Response::FeedAccepted { .. } => Ok(()),
            Response::Error(e) => Err(format!("service: {e}")),
            other => Err(unexpected("Feed", &other)),
        }
    }

    fn close_session(&mut self, session: u64) -> Result<(), String> {
        match self
            .client
            .call(&Request::CloseSession { session })
            .map_err(net_err)?
        {
            Response::SessionClosed { .. } => Ok(()),
            Response::Error(e) => Err(format!("service: {e}")),
            other => Err(unexpected("CloseSession", &other)),
        }
    }
}

impl SoakBackend for TcpBackend {
    fn user_target(&self) -> Result<Box<dyn UserTarget>, String> {
        let client = Client::connect(self.addr, self.config.clone()).map_err(net_err)?;
        Ok(Box::new(TcpTarget { client }))
    }

    fn ingest(&self, vector: Vec<f64>) -> Result<usize, String> {
        match self.control_call(&Request::Ingest { vector })? {
            Response::Ingested { id, .. } => Ok(id),
            Response::Error(e) => Err(format!("service: {e}")),
            other => Err(unexpected("Ingest", &other)),
        }
    }

    fn stats(&self) -> Result<MetricsSnapshot, String> {
        match self.control_call(&Request::Stats)? {
            Response::Stats(snapshot) => Ok(*snapshot),
            Response::Error(e) => Err(format!("service: {e}")),
            other => Err(unexpected("Stats", &other)),
        }
    }

    fn label(&self) -> String {
        format!("tcp://{}", self.addr)
    }
}

// ---------------------------------------------------------------------
// Router (multi-node cluster)
// ---------------------------------------------------------------------

/// A soak target fronted by the scatter-gather [`Router`]: every user
/// shares the router (its per-node connections and breakers), which in
/// turn fans out over TCP to the cluster's node servers.
#[derive(Clone)]
pub struct RouterBackend {
    router: Arc<Router>,
}

impl RouterBackend {
    /// Wraps an existing router.
    pub fn new(router: Arc<Router>) -> RouterBackend {
        RouterBackend { router }
    }
}

struct RouterTarget {
    router: Arc<Router>,
}

impl UserTarget for RouterTarget {
    fn create_session(&mut self) -> Result<u64, String> {
        self.router
            .create_session(None)
            .map_err(|e| format!("router: {e}"))
    }

    fn query(
        &mut self,
        session: u64,
        k: usize,
        vector: Option<Vec<f64>>,
        deadline_ms: Option<u64>,
    ) -> Result<QueryReply, String> {
        let report = self
            .router
            .query(session, k, vector, deadline_ms)
            .map_err(|e| format!("router: {e}"))?;
        reply_from_response("Query", report.response)
    }

    fn feed(&mut self, session: u64, ids: &[usize], scores: &[f64]) -> Result<(), String> {
        match self
            .router
            .feed(session, ids, Some(scores))
            .map_err(|e| format!("router: {e}"))?
        {
            Response::FeedAccepted { .. } => Ok(()),
            Response::Error(e) => Err(format!("service: {e}")),
            other => Err(unexpected("Feed", &other)),
        }
    }

    fn close_session(&mut self, session: u64) -> Result<(), String> {
        self.router
            .close_session(session)
            .map_err(|e| format!("router: {e}"))
    }
}

impl SoakBackend for RouterBackend {
    fn user_target(&self) -> Result<Box<dyn UserTarget>, String> {
        Ok(Box::new(RouterTarget {
            router: Arc::clone(&self.router),
        }))
    }

    fn ingest(&self, vector: Vec<f64>) -> Result<usize, String> {
        self.router
            .ingest(vector)
            .map(|(id, _total)| id)
            .map_err(|e| format!("router: {e}"))
    }

    fn stats(&self) -> Result<MetricsSnapshot, String> {
        self.router.stats().map_err(|e| format!("router: {e}"))
    }

    fn label(&self) -> String {
        format!(
            "router://{}-partitions/{}-nodes",
            self.router.map().num_partitions(),
            self.router.map().num_nodes()
        )
    }
}
