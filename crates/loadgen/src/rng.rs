//! Seeded randomness for the soak harness (splitmix64).
//!
//! One `--seed` must reproduce an entire soak byte-for-byte: the fleet
//! plan, every user's think-time jitter, the ingest content stream, and
//! the chaos timeline. Each of those consumers draws from its own
//! *derived* stream ([`SeedRng::derived`]) so the streams are
//! independent of each other and of construction order — adding a draw
//! to one consumer can never shift the values another consumer sees.

/// A splitmix64 generator: tiny state, full 64-bit period, and good
/// enough statistics for workload shaping (this is not a crypto RNG).
#[derive(Debug, Clone)]
pub struct SeedRng {
    state: u64,
}

/// One splitmix64 output step over an explicit state word.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedRng {
    /// A generator seeded directly with `seed`.
    pub fn new(seed: u64) -> SeedRng {
        SeedRng { state: seed }
    }

    /// A generator for sub-stream `stream` of `seed`, as a pure
    /// function of both: `derived(s, a)` and `derived(s, b)` are
    /// decorrelated for `a != b`, and calling order cannot matter.
    pub fn derived(seed: u64, stream: u64) -> SeedRng {
        SeedRng::new(mix(seed) ^ mix(stream ^ 0xA076_1D64_78BD_642F))
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let z = self.state;
        let z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        let z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform integer in `[0, bound)`. `bound == 0` reports `0`.
    pub fn next_range(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // 128-bit multiply-shift: unbiased enough for workload shaping
        // without a rejection loop.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// A uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SeedRng::new(7);
        let mut b = SeedRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn derived_streams_are_order_independent_and_distinct() {
        let mut ab_a = SeedRng::derived(42, 0);
        let mut ab_b = SeedRng::derived(42, 1);
        let (a0, b0) = (ab_a.next_u64(), ab_b.next_u64());
        // Construct in the opposite order: identical values.
        let mut ba_b = SeedRng::derived(42, 1);
        let mut ba_a = SeedRng::derived(42, 0);
        assert_eq!(ba_a.next_u64(), a0);
        assert_eq!(ba_b.next_u64(), b0);
        // And the streams themselves differ.
        assert_ne!(a0, b0);
    }

    #[test]
    fn ranges_and_floats_stay_in_bounds() {
        let mut rng = SeedRng::new(3);
        for _ in 0..1000 {
            assert!(rng.next_range(10) < 10);
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
        assert_eq!(rng.next_range(0), 0);
    }
}
