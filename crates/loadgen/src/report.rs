//! The SLO report: one JSON artifact per soak run.
//!
//! The artifact (`crates/bench/BENCH_soak.json` by default) follows
//! the workspace's bench-artifact convention — a `bench` tag and the
//! host fingerprint up front — and embeds the server-side
//! `MetricsSnapshot` under the *same schema* the wire `Stats` request
//! returns, so the soak report, one-shot scrapes, and external
//! monitoring all parse one shape.

use crate::chaos::ChaosHit;
use crate::config::SoakConfig;
use crate::fleet::{IterationQuality, SoakCounters, SoakOutcome};
use qcluster_service::{HistogramSummary, MetricsSnapshot};
use serde::{Deserialize, Serialize};

/// Everything a soak run measured, in one serializable record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SoakReport {
    /// Master seed the run derived every random decision from.
    pub seed: u64,
    /// Target description (`tcp://…` or `router://…`).
    pub target: String,
    /// Concurrent users driven.
    pub users: usize,
    /// Sessions per user.
    pub sessions_per_user: usize,
    /// Planned feedback iterations per session.
    pub iterations: usize,
    /// Result-set size per query round.
    pub k: usize,
    /// Wall-clock duration of the run, seconds.
    pub wall_secs: f64,
    /// Answered queries per second of wall clock.
    pub throughput_qps: f64,
    /// Fleet-wide request/session/ingest counters.
    pub counters: SoakCounters,
    /// Client-observed query latency quantiles (p50/p95/p99/max) from
    /// the merged per-user histograms.
    pub client_latency: HistogramSummary,
    /// Degraded answers per answered query.
    pub degraded_rate: f64,
    /// Requests shed (write-queue sheds + admission rejections) per
    /// attempted query.
    pub shed_rate: f64,
    /// Circuit-breaker open transitions observed server-side.
    pub breaker_trips: u64,
    /// Mean precision-at-k per feedback iteration.
    pub precision_at_k: Vec<IterationQuality>,
    /// Scheduled-chaos fire counts per failpoint.
    pub chaos: Vec<ChaosHit>,
    /// The server-side metrics snapshot at soak end (wire schema).
    pub metrics: MetricsSnapshot,
    /// Outcome of the `--kill-leader-ms` leader-kill chaos scenario
    /// (`None` when no kill was scheduled).
    #[serde(default)]
    pub leader_kill: Option<LeaderKillReport>,
}

/// What the leader-kill chaos scenario (`soak --cluster
/// --kill-leader-ms N`) observed: the ingest partition's leader is
/// shut down mid-soak, the router promotes a follower under load, and
/// the run asserts two bars — no majority-acked ingest is lost across
/// the promotion, and a read-your-writes probe after the kill never
/// observes a corpus missing its own write.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LeaderKillReport {
    /// Soak offset at which the leader was killed, milliseconds.
    pub at_ms: u64,
    /// Partition whose leader was killed (the ingest partition).
    pub partition: usize,
    /// Replica index that was leader at the kill.
    pub killed_replica: usize,
    /// Replica index serving as leader at soak end.
    pub final_leader: usize,
    /// Router promotions observed over the whole run.
    pub promotions: u64,
    /// Elections the router won over the whole run.
    pub elections_won: u64,
    /// Majority-acked record floor at the kill: the median replica
    /// total across the partition — every acked ingest is ≤ this on a
    /// majority, so the new leader must end at or above it.
    pub acked_floor_at_kill: u64,
    /// The final leader's committed total at soak end.
    pub final_leader_total: u64,
    /// `final_leader_total >= acked_floor_at_kill`: no acked ingest
    /// was lost across the promotion.
    pub acked_ingest_survived: bool,
    /// Read-your-writes probe rounds run after the soak (each ingests
    /// a marker through a session and immediately queries it back).
    pub ryw_probe_rounds: u64,
    /// Probe rounds whose refined query did NOT return the session's
    /// own freshly ingested marker — the RYW bar requires zero.
    pub ryw_violations: u64,
}

impl SoakReport {
    /// Assembles the report from a finished run and the target's final
    /// metrics snapshot.
    pub fn new(
        config: &SoakConfig,
        target: String,
        outcome: &SoakOutcome,
        metrics: MetricsSnapshot,
    ) -> SoakReport {
        let wall_secs = outcome.wall.as_secs_f64();
        let attempts = outcome.counters.queries_ok + outcome.counters.query_errors;
        let sheds = metrics.transport.write_queue_sheds + metrics.faults.overload_rejections;
        SoakReport {
            seed: config.seed,
            target,
            users: config.users,
            sessions_per_user: config.sessions_per_user,
            iterations: config.iterations,
            k: config.k,
            wall_secs,
            throughput_qps: if wall_secs > 0.0 {
                outcome.counters.queries_ok as f64 / wall_secs
            } else {
                0.0
            },
            counters: outcome.counters.clone(),
            client_latency: outcome.latency.summary(),
            degraded_rate: outcome.counters.degraded_responses as f64
                / outcome.counters.queries_ok.max(1) as f64,
            shed_rate: sheds as f64 / attempts.max(1) as f64,
            breaker_trips: metrics.faults.breaker_trips,
            precision_at_k: outcome.precision.clone(),
            chaos: outcome.chaos.clone(),
            metrics,
            leader_kill: None,
        }
    }
}

/// Serializes one report into the shared bench-artifact schema:
///
/// ```json
/// { "bench": "soak", <host fingerprint…>, "report": { … } }
/// ```
///
/// # Errors
///
/// Serialization failure.
pub fn soak_artifact_json(report: &SoakReport) -> Result<String, serde_json::Error> {
    let body = serde_json::to_string_pretty(report)?;
    Ok(format!(
        "{{\n  \"bench\": \"soak\",\n{fingerprint}  \"report\": {body}\n}}\n",
        fingerprint = qcluster_bench::host_fingerprint_json("  "),
    ))
}

/// Writes [`soak_artifact_json`] to `path`.
///
/// # Errors
///
/// Serialization or filesystem failures, as `std::io::Error`.
pub fn write_soak_artifact(
    path: impl AsRef<std::path::Path>,
    report: &SoakReport,
) -> std::io::Result<()> {
    let json = soak_artifact_json(report)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    std::fs::write(path, json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::SoakOutcome;
    use qcluster_service::LatencyHistogram;
    use std::time::Duration;

    fn outcome() -> SoakOutcome {
        let latency = LatencyHistogram::default();
        latency.record(Duration::from_micros(300));
        latency.record(Duration::from_micros(900));
        SoakOutcome {
            wall: Duration::from_secs(2),
            counters: SoakCounters {
                queries_ok: 8,
                query_errors: 2,
                degraded_responses: 4,
                ..SoakCounters::default()
            },
            latency,
            precision: vec![IterationQuality {
                iteration: 0,
                sessions: 8,
                mean_precision: 0.75,
            }],
            chaos: vec![ChaosHit {
                failpoint: "executor.shard".into(),
                hits: 3,
            }],
        }
    }

    fn metrics() -> MetricsSnapshot {
        let service = qcluster_service::Service::new(
            &[
                vec![0.0, 0.0],
                vec![1.0, 1.0],
                vec![2.0, 2.0],
                vec![3.0, 3.0],
            ],
            qcluster_service::ServiceConfig {
                num_shards: 2,
                num_workers: 1,
                ..qcluster_service::ServiceConfig::default()
            },
        )
        .unwrap();
        service.stats()
    }

    #[test]
    fn report_derives_rates_from_counters() {
        let report = SoakReport::new(
            &SoakConfig::default(),
            "tcp://t".into(),
            &outcome(),
            metrics(),
        );
        assert!((report.wall_secs - 2.0).abs() < 1e-9);
        assert!((report.throughput_qps - 4.0).abs() < 1e-9);
        assert!((report.degraded_rate - 0.5).abs() < 1e-9);
        assert_eq!(report.client_latency.count, 2);
        assert!(report.client_latency.p50_ns > 0);
    }

    #[test]
    fn artifact_round_trips_through_the_wire_schema() {
        let report = SoakReport::new(
            &SoakConfig::default(),
            "tcp://t".into(),
            &outcome(),
            metrics(),
        );
        let json = soak_artifact_json(&report).unwrap();
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(value.get("bench").and_then(|v| v.as_str()), Some("soak"));
        assert!(value.get("cores").is_some());
        assert!(value.get("unix_timestamp").is_some());
        let body = serde_json::to_string(value.get("report").unwrap()).unwrap();
        let decoded: SoakReport = serde_json::from_str(&body).unwrap();
        assert_eq!(decoded, report);
    }

    #[test]
    fn leader_kill_section_round_trips_and_defaults_to_none() {
        let mut report = SoakReport::new(
            &SoakConfig::default(),
            "router://t".into(),
            &outcome(),
            metrics(),
        );
        report.leader_kill = Some(LeaderKillReport {
            at_ms: 500,
            partition: 2,
            killed_replica: 0,
            final_leader: 1,
            promotions: 1,
            elections_won: 1,
            acked_floor_at_kill: 40,
            final_leader_total: 57,
            acked_ingest_survived: true,
            ryw_probe_rounds: 16,
            ryw_violations: 0,
        });
        let json = soak_artifact_json(&report).unwrap();
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        let body = serde_json::to_string(value.get("report").unwrap()).unwrap();
        let decoded: SoakReport = serde_json::from_str(&body).unwrap();
        assert_eq!(decoded, report);
        // Artifacts written before the scenario existed still parse.
        let stripped = {
            let v: serde_json::Value = serde_json::from_str(&body).unwrap();
            let serde::Value::Map(mut entries) = v else {
                panic!("report body is not an object");
            };
            entries.retain(|(k, _)| k != "leader_kill");
            serde_json::to_string(&serde::Value::Map(entries)).unwrap()
        };
        let legacy: SoakReport = serde_json::from_str(&stripped).unwrap();
        assert_eq!(legacy.leader_kill, None);
    }
}
