//! `soak` — run a closed-loop user-fleet soak against a live target.
//!
//! With no flags this boots a single in-process node over the quick
//! semantic-gap corpus (7,500 points), serves it on a real TCP socket,
//! and drives the full default soak (200 users × 3 feedback
//! iterations, background ingest, two scheduled chaos events), writing
//! the SLO artifact to `crates/bench/BENCH_soak.json`.
//!
//! Common invocations:
//!
//! ```text
//! soak --smoke                 # ~60-second sanity soak (16 users)
//! soak --cluster               # router cluster target (ingest
//!                              # partition replicated 3× when durable)
//! soak --cluster --kill-leader-ms 5000
//!                              # kill the ingest leader 5s in and
//!                              # assert zero acked-ingest loss + RYW
//! soak --seed 7 --users 300    # reshape the fleet
//! soak --scrape 127.0.0.1:4100 # one-shot Stats scrape of a live node
//! ```

use qcluster_loadgen::{
    run_soak, seeded_timeline, LeaderKillReport, RouterBackend, SoakBackend, SoakConfig,
    SoakReport, TcpBackend,
};
use qcluster_net::{Client, ClientConfig, Server, ServerConfig};
use qcluster_router::{Partition, ReadPreference, Router, RouterConfig, ShardMap};
use qcluster_service::{Request, Response, Service, ServiceConfig};
use qcluster_store::StoreConfig;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

struct Args {
    seed: Option<u64>,
    users: Option<usize>,
    sessions: Option<usize>,
    iterations: Option<usize>,
    k: Option<usize>,
    think_ms: Option<u64>,
    abandon_per_mille: Option<u32>,
    ingest_rate: Option<u32>,
    deadline_ms: Option<u64>,
    chaos: Option<usize>,
    chaos_window_ms: Option<u64>,
    out: PathBuf,
    cluster: bool,
    kill_leader_ms: Option<u64>,
    smoke: bool,
    scrape: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: None,
        users: None,
        sessions: None,
        iterations: None,
        k: None,
        think_ms: None,
        abandon_per_mille: None,
        ingest_rate: None,
        deadline_ms: None,
        chaos: None,
        chaos_window_ms: None,
        out: PathBuf::from("crates/bench/BENCH_soak.json"),
        cluster: false,
        kill_leader_ms: None,
        smoke: false,
        scrape: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--seed" => args.seed = Some(parse(&value("--seed")?)?),
            "--users" => args.users = Some(parse(&value("--users")?)?),
            "--sessions" => args.sessions = Some(parse(&value("--sessions")?)?),
            "--iterations" => args.iterations = Some(parse(&value("--iterations")?)?),
            "--k" => args.k = Some(parse(&value("--k")?)?),
            "--think-ms" => args.think_ms = Some(parse(&value("--think-ms")?)?),
            "--abandon-per-mille" => {
                args.abandon_per_mille = Some(parse(&value("--abandon-per-mille")?)?)
            }
            "--ingest-rate" => args.ingest_rate = Some(parse(&value("--ingest-rate")?)?),
            "--deadline-ms" => args.deadline_ms = Some(parse(&value("--deadline-ms")?)?),
            "--chaos" => args.chaos = Some(parse(&value("--chaos")?)?),
            "--chaos-window-ms" => {
                args.chaos_window_ms = Some(parse(&value("--chaos-window-ms")?)?)
            }
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--cluster" => args.cluster = true,
            "--kill-leader-ms" => args.kill_leader_ms = Some(parse(&value("--kill-leader-ms")?)?),
            "--smoke" => args.smoke = true,
            "--scrape" => args.scrape = Some(value("--scrape")?),
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("could not parse value: {s:?}"))
}

fn soak_config(args: &Args) -> SoakConfig {
    // --smoke shrinks the fleet to 16 users and stretches pacing into a
    // ~60-second run; explicit flags override either profile.
    let (d_users, d_sessions, d_think, d_ingest, d_chaos, d_window, d_abandon) = if args.smoke {
        (16, 8, 2_000, 10, 2, 30_000, 0)
    } else {
        (200, 5, 500, 20, 2, 5_000, 50)
    };
    let seed = args.seed.unwrap_or(42);
    let chaos_events = args.chaos.unwrap_or(d_chaos);
    let window = args.chaos_window_ms.unwrap_or(d_window);
    SoakConfig {
        seed,
        users: args.users.unwrap_or(d_users),
        sessions_per_user: args.sessions.unwrap_or(d_sessions),
        iterations: args.iterations.unwrap_or(3),
        k: args.k.unwrap_or(20),
        think_ms: args.think_ms.unwrap_or(d_think),
        abandon_per_mille: args.abandon_per_mille.unwrap_or(d_abandon),
        ingest_per_sec: args.ingest_rate.unwrap_or(d_ingest),
        deadline_ms: args.deadline_ms,
        chaos: seeded_timeline(seed, chaos_events, window),
    }
}

/// Temp dirs backing durable nodes, removed on drop (best effort).
struct ScratchDirs(Vec<PathBuf>);

impl ScratchDirs {
    fn next(&mut self) -> Result<PathBuf, String> {
        let dir = std::env::temp_dir().join(format!(
            "qcluster-soak-{}-{}",
            std::process::id(),
            self.0.len()
        ));
        std::fs::create_dir_all(&dir).map_err(|e| format!("scratch dir: {e}"))?;
        self.0.push(dir.clone());
        Ok(dir)
    }
}

impl Drop for ScratchDirs {
    fn drop(&mut self) {
        for dir in &self.0 {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

fn node_service(
    points: &[Vec<f64>],
    durable: bool,
    users: usize,
    scratch: &mut ScratchDirs,
) -> Result<Arc<Service>, String> {
    // Every user holds one live session; the default 64-session LRU
    // registry would evict concurrent sessions mid-feedback-loop.
    let config = ServiceConfig {
        max_sessions: users * 2 + 16,
        ..ServiceConfig::default()
    };
    let service = if durable {
        let dir = scratch.next()?;
        Service::open_durable(&dir, points, config, StoreConfig::default())
            .map_err(|e| format!("open_durable: {e}"))?
    } else {
        Service::new(points, config).map_err(|e| format!("service: {e}"))?
    };
    Ok(Arc::new(service))
}

fn scrape(addr: &str, out: &std::path::Path) -> Result<(), String> {
    let mut client =
        Client::connect(addr, ClientConfig::default()).map_err(|e| format!("connect: {e}"))?;
    match client
        .call(&Request::Stats)
        .map_err(|e| format!("stats: {e}"))?
    {
        Response::Stats(snapshot) => {
            qcluster_bench::write_metrics_artifact(out, "stats", &snapshot)
                .map_err(|e| format!("write artifact: {e}"))?;
            println!("wrote stats scrape of {addr} to {}", out.display());
            Ok(())
        }
        other => Err(format!("unexpected response to Stats: {other:?}")),
    }
}

/// How many read-your-writes probe rounds the leader-kill scenario
/// runs after the soak drains.
const RYW_PROBE_ROUNDS: u64 = 16;

/// Settles the two leader-kill bars after the soak drained.
///
/// **Zero acked-ingest loss**: the ingest partition's final leader
/// must hold at least as many committed records as the majority
/// (median-replica) floor sampled right before the kill — promotion
/// picks the best-total survivor, so a lower total means an acked
/// write vanished.
///
/// **Read-your-writes**: each probe round ingests a unique marker
/// vector through a session and immediately queries `k = 1` with the
/// marker as the query; the session's own write (distance 0) must
/// come back even though `StaleOk` lets lag-bounded followers serve
/// reads — the session ingest mark has to keep replicas that missed
/// the write out of the read path. Probe rounds also run the full
/// fence-before-ship path, so a promotion that never converged shows
/// up here as an error, not a hang.
fn leader_kill_report(
    router: &Router,
    dataset: &qcluster_eval::Dataset,
    at_ms: u64,
    partition: usize,
    killed_replica: usize,
    acked_floor: u64,
) -> Result<LeaderKillReport, String> {
    let session = router
        .create_session(None)
        .map_err(|e| format!("ryw probe session: {e}"))?;
    let mut ryw_violations = 0u64;
    for round in 0..RYW_PROBE_ROUNDS {
        // A unique marker: a corpus vector nudged off-lattice so the
        // probe's nearest neighbor at distance 0 can only be itself.
        let mut marker = dataset.vector(round as usize % dataset.len()).to_vec();
        for (j, x) in marker.iter_mut().enumerate() {
            *x += 1e-4 * (round + 1) as f64 * (j % 7 + 1) as f64;
        }
        let (id, _) = router
            .ingest_for_session(session, marker.clone())
            .map_err(|e| format!("ryw probe ingest (round {round}): {e}"))?;
        let reply = router
            .query(session, 1, Some(marker), None)
            .map_err(|e| format!("ryw probe query (round {round}): {e}"))?;
        let hit = match &reply.response {
            Response::Neighbors { neighbors, .. } => neighbors.first().map(|n| n.id) == Some(id),
            _ => false,
        };
        if !hit {
            ryw_violations += 1;
        }
    }
    let _ = router.close_session(session);

    let final_leader = router.leader_of(partition);
    let (final_leader_total, _) = router
        .replica_status(partition, final_leader)
        .map_err(|e| format!("final leader status: {e}"))?;
    let gauges = router.cluster_gauges();
    Ok(LeaderKillReport {
        at_ms,
        partition,
        killed_replica,
        final_leader,
        promotions: gauges.promotions,
        elections_won: gauges.elections_won,
        acked_floor_at_kill: acked_floor,
        final_leader_total,
        acked_ingest_survived: final_leader_total >= acked_floor,
        ryw_probe_rounds: RYW_PROBE_ROUNDS,
        ryw_violations,
    })
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    if let Some(addr) = &args.scrape {
        return scrape(addr, &args.out);
    }
    let config = soak_config(&args);
    config.validate()?;

    eprintln!("building quick-scale semantic-gap corpus…");
    let dataset = qcluster_bench::semantic_gap_dataset(qcluster_bench::Scale::Quick);
    let points: Vec<Vec<f64>> = (0..dataset.len())
        .map(|i| dataset.vector(i).to_vec())
        .collect();
    let durable = config.ingest_per_sec > 0;
    let mut scratch = ScratchDirs(Vec::new());
    // Admit the whole fleet: every user holds one connection (the
    // router multiplexes, but a single node faces all of them), plus
    // the control channel and reconnect churn.
    let server_config = ServerConfig {
        max_connections: config.users + 16,
        ..ServerConfig::default()
    };

    // Slots instead of plain servers: the leader-kill thread takes one
    // mid-soak (`Server::shutdown` consumes the server).
    let mut servers: Vec<Option<Server>> = Vec::new();
    // Router + which server slot backs each ingest-partition replica,
    // kept for leader-kill orchestration and the post-soak RYW probe.
    let mut cluster: Option<(Arc<Router>, Vec<usize>)> = None;
    let backend: Box<dyn SoakBackend> = if args.cluster {
        let third = points.len() / 3;
        let bases = [0, third, 2 * third];
        let mut partitions = Vec::new();
        let mut ingest_servers = Vec::new();
        for (i, &id_base) in bases.iter().enumerate() {
            let end = bases.get(i + 1).copied().unwrap_or(points.len());
            // The ingest partition (the last slice — unbounded above,
            // so it owns live writes) is replicated 3× when durable:
            // WAL shipping gives its leader real followers to promote,
            // which the `--kill-leader-ms` scenario depends on.
            let ingest = i + 1 == bases.len();
            let copies = if ingest && durable { 3 } else { 1 };
            let mut replicas = Vec::new();
            for r in 0..copies {
                let service =
                    node_service(&points[id_base..end], durable, config.users, &mut scratch)?;
                let server = Server::bind("127.0.0.1:0", service, server_config.clone())
                    .map_err(|e| format!("bind node {i}/{r}: {e}"))?;
                replicas.push(server.local_addr());
                if ingest {
                    ingest_servers.push(servers.len());
                }
                servers.push(Some(server));
            }
            partitions.push(Partition { id_base, replicas });
        }
        let map = ShardMap::new(partitions).map_err(|e| format!("shard map: {e}"))?;
        let router_config = RouterConfig {
            // Exercise replica reads under the RYW gate: followers
            // within 64 records of the leader may serve queries.
            read_preference: ReadPreference::StaleOk { max_lag: 64 },
            ..RouterConfig::default()
        };
        let router = Arc::new(Router::new(map, router_config).map_err(|e| format!("router: {e}"))?);
        cluster = Some((Arc::clone(&router), ingest_servers));
        Box::new(RouterBackend::new(router))
    } else {
        let service = node_service(&points, durable, config.users, &mut scratch)?;
        let server = Server::bind("127.0.0.1:0", service, server_config.clone())
            .map_err(|e| format!("bind: {e}"))?;
        let addr = server.local_addr();
        servers.push(Some(server));
        Box::new(TcpBackend::connect(addr, ClientConfig::default())?)
    };
    let target = backend.label();
    eprintln!(
        "soaking {target}: {} users × {} sessions × {} iterations, k={}, \
         ingest {}/s, {} chaos events, seed {}",
        config.users,
        config.sessions_per_user,
        config.iterations,
        config.k,
        config.ingest_per_sec,
        config.chaos.len(),
        config.seed,
    );

    // Background anti-entropy keeps ingest-partition followers caught
    // up off the ingest path for the whole run.
    let anti_entropy = cluster
        .as_ref()
        .filter(|_| durable)
        .map(|(router, _)| router.start_anti_entropy(Duration::from_millis(500)));

    let servers = Arc::new(Mutex::new(servers));
    let kill_thread = match (args.kill_leader_ms, &cluster) {
        (Some(kill_ms), Some((router, ingest_servers))) => {
            if ingest_servers.len() < 3 {
                return Err("--kill-leader-ms needs a replicated ingest partition \
                     (--cluster with --ingest-rate > 0)"
                    .into());
            }
            eprintln!("  leader kill armed: ingest-partition leader dies at +{kill_ms}ms");
            let router = Arc::clone(router);
            let ingest_servers = ingest_servers.clone();
            let servers = Arc::clone(&servers);
            Some(std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(kill_ms));
                let p = router.map().ingest_partition();
                let replicas = router.map().partitions()[p].replicas.len();
                // Median replica total right before the kill: every
                // majority-acked record sits below it on at least
                // ⌈n/2⌉ replicas, and the promoted follower (best
                // total among survivors) is always at or above the
                // median — so it is the zero-loss floor.
                let mut totals: Vec<u64> = (0..replicas)
                    .filter_map(|r| router.replica_status(p, r).ok().map(|(t, _)| t))
                    .collect();
                totals.sort_unstable();
                let acked_floor = totals.get(replicas / 2).copied().unwrap_or(0);
                let victim = router.leader_of(p);
                let taken = servers.lock().map(|mut s| s[ingest_servers[victim]].take());
                if let Ok(Some(server)) = taken {
                    server.shutdown();
                }
                (kill_ms, p, victim, acked_floor)
            }))
        }
        (Some(_), None) => {
            return Err("--kill-leader-ms requires --cluster".into());
        }
        _ => None,
    };

    let outcome = run_soak(&dataset, backend.as_ref(), &config)?;
    let metrics = backend.stats()?;
    let mut report = SoakReport::new(&config, target, &outcome, metrics);

    if let Some(handle) = kill_thread {
        let (at_ms, partition, killed_replica, acked_floor) =
            handle.join().map_err(|_| "leader-kill thread panicked")?;
        let (router, _) = cluster.as_ref().expect("kill scenario implies cluster");
        report.leader_kill = Some(leader_kill_report(
            router,
            &dataset,
            at_ms,
            partition,
            killed_replica,
            acked_floor,
        )?);
    }
    drop(anti_entropy);
    qcluster_loadgen::write_soak_artifact(&args.out, &report)
        .map_err(|e| format!("write artifact: {e}"))?;

    println!(
        "soak done in {:.1}s: {:.1} q/s, p50 {:.2}ms p95 {:.2}ms p99 {:.2}ms max {:.2}ms",
        report.wall_secs,
        report.throughput_qps,
        report.client_latency.p50_ns as f64 / 1e6,
        report.client_latency.p95_ns as f64 / 1e6,
        report.client_latency.p99_ns as f64 / 1e6,
        report.client_latency.max_ns as f64 / 1e6,
    );
    println!(
        "  queries ok {} err {} | feeds err {} | degraded rate {:.4} | shed rate {:.4} | \
         breaker trips {} | ingests {} | sessions {}+{} abandoned, {} errored",
        report.counters.queries_ok,
        report.counters.query_errors,
        report.counters.feed_errors,
        report.degraded_rate,
        report.shed_rate,
        report.breaker_trips,
        report.counters.ingests_ok,
        report.counters.sessions_completed,
        report.counters.sessions_abandoned,
        report.counters.session_errors,
    );
    for q in &report.precision_at_k {
        println!(
            "  precision@{} iter {}: {:.4} over {} sessions",
            report.k, q.iteration, q.mean_precision, q.sessions
        );
    }
    for hit in &report.chaos {
        println!("  chaos {}: {} fires", hit.failpoint, hit.hits);
    }
    if let Some(kill) = &report.leader_kill {
        println!(
            "  leader kill at +{}ms: partition {} replica {} died, leader now {} | \
             promotions {} elections won {} | acked floor {} -> final total {} ({}) | \
             ryw probe {}/{} clean",
            kill.at_ms,
            kill.partition,
            kill.killed_replica,
            kill.final_leader,
            kill.promotions,
            kill.elections_won,
            kill.acked_floor_at_kill,
            kill.final_leader_total,
            if kill.acked_ingest_survived {
                "no acked loss"
            } else {
                "ACKED LOSS"
            },
            kill.ryw_probe_rounds - kill.ryw_violations,
            kill.ryw_probe_rounds,
        );
    }
    println!("wrote {}", args.out.display());

    drop(backend);
    let mut servers = servers.lock().unwrap_or_else(|e| e.into_inner());
    for server in servers.drain(..).flatten() {
        server.shutdown();
    }
    drop(servers);

    if let Some(kill) = &report.leader_kill {
        if !kill.acked_ingest_survived {
            return Err(format!(
                "leader kill lost acked ingests: floor {} but final leader total {}",
                kill.acked_floor_at_kill, kill.final_leader_total
            ));
        }
        if kill.ryw_violations > 0 {
            return Err(format!(
                "read-your-writes violated {} of {} probe rounds after the leader kill",
                kill.ryw_violations, kill.ryw_probe_rounds
            ));
        }
    }
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("soak: {e}");
        std::process::exit(1);
    }
}
