//! `soak` — run a closed-loop user-fleet soak against a live target.
//!
//! With no flags this boots a single in-process node over the quick
//! semantic-gap corpus (7,500 points), serves it on a real TCP socket,
//! and drives the full default soak (200 users × 3 feedback
//! iterations, background ingest, two scheduled chaos events), writing
//! the SLO artifact to `crates/bench/BENCH_soak.json`.
//!
//! Common invocations:
//!
//! ```text
//! soak --smoke                 # ~60-second sanity soak (16 users)
//! soak --cluster               # 3-node router cluster target
//! soak --seed 7 --users 300    # reshape the fleet
//! soak --scrape 127.0.0.1:4100 # one-shot Stats scrape of a live node
//! ```

use qcluster_loadgen::{
    run_soak, seeded_timeline, RouterBackend, SoakBackend, SoakConfig, SoakReport, TcpBackend,
};
use qcluster_net::{Client, ClientConfig, Server, ServerConfig};
use qcluster_router::{Partition, Router, RouterConfig, ShardMap};
use qcluster_service::{Request, Response, Service, ServiceConfig};
use qcluster_store::StoreConfig;
use std::path::PathBuf;
use std::sync::Arc;

struct Args {
    seed: Option<u64>,
    users: Option<usize>,
    sessions: Option<usize>,
    iterations: Option<usize>,
    k: Option<usize>,
    think_ms: Option<u64>,
    abandon_per_mille: Option<u32>,
    ingest_rate: Option<u32>,
    deadline_ms: Option<u64>,
    chaos: Option<usize>,
    chaos_window_ms: Option<u64>,
    out: PathBuf,
    cluster: bool,
    smoke: bool,
    scrape: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: None,
        users: None,
        sessions: None,
        iterations: None,
        k: None,
        think_ms: None,
        abandon_per_mille: None,
        ingest_rate: None,
        deadline_ms: None,
        chaos: None,
        chaos_window_ms: None,
        out: PathBuf::from("crates/bench/BENCH_soak.json"),
        cluster: false,
        smoke: false,
        scrape: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--seed" => args.seed = Some(parse(&value("--seed")?)?),
            "--users" => args.users = Some(parse(&value("--users")?)?),
            "--sessions" => args.sessions = Some(parse(&value("--sessions")?)?),
            "--iterations" => args.iterations = Some(parse(&value("--iterations")?)?),
            "--k" => args.k = Some(parse(&value("--k")?)?),
            "--think-ms" => args.think_ms = Some(parse(&value("--think-ms")?)?),
            "--abandon-per-mille" => {
                args.abandon_per_mille = Some(parse(&value("--abandon-per-mille")?)?)
            }
            "--ingest-rate" => args.ingest_rate = Some(parse(&value("--ingest-rate")?)?),
            "--deadline-ms" => args.deadline_ms = Some(parse(&value("--deadline-ms")?)?),
            "--chaos" => args.chaos = Some(parse(&value("--chaos")?)?),
            "--chaos-window-ms" => {
                args.chaos_window_ms = Some(parse(&value("--chaos-window-ms")?)?)
            }
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--cluster" => args.cluster = true,
            "--smoke" => args.smoke = true,
            "--scrape" => args.scrape = Some(value("--scrape")?),
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("could not parse value: {s:?}"))
}

fn soak_config(args: &Args) -> SoakConfig {
    // --smoke shrinks the fleet to 16 users and stretches pacing into a
    // ~60-second run; explicit flags override either profile.
    let (d_users, d_sessions, d_think, d_ingest, d_chaos, d_window, d_abandon) = if args.smoke {
        (16, 8, 2_000, 10, 2, 30_000, 0)
    } else {
        (200, 5, 500, 20, 2, 5_000, 50)
    };
    let seed = args.seed.unwrap_or(42);
    let chaos_events = args.chaos.unwrap_or(d_chaos);
    let window = args.chaos_window_ms.unwrap_or(d_window);
    SoakConfig {
        seed,
        users: args.users.unwrap_or(d_users),
        sessions_per_user: args.sessions.unwrap_or(d_sessions),
        iterations: args.iterations.unwrap_or(3),
        k: args.k.unwrap_or(20),
        think_ms: args.think_ms.unwrap_or(d_think),
        abandon_per_mille: args.abandon_per_mille.unwrap_or(d_abandon),
        ingest_per_sec: args.ingest_rate.unwrap_or(d_ingest),
        deadline_ms: args.deadline_ms,
        chaos: seeded_timeline(seed, chaos_events, window),
    }
}

/// Temp dirs backing durable nodes, removed on drop (best effort).
struct ScratchDirs(Vec<PathBuf>);

impl ScratchDirs {
    fn next(&mut self) -> Result<PathBuf, String> {
        let dir = std::env::temp_dir().join(format!(
            "qcluster-soak-{}-{}",
            std::process::id(),
            self.0.len()
        ));
        std::fs::create_dir_all(&dir).map_err(|e| format!("scratch dir: {e}"))?;
        self.0.push(dir.clone());
        Ok(dir)
    }
}

impl Drop for ScratchDirs {
    fn drop(&mut self) {
        for dir in &self.0 {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

fn node_service(
    points: &[Vec<f64>],
    durable: bool,
    users: usize,
    scratch: &mut ScratchDirs,
) -> Result<Arc<Service>, String> {
    // Every user holds one live session; the default 64-session LRU
    // registry would evict concurrent sessions mid-feedback-loop.
    let config = ServiceConfig {
        max_sessions: users * 2 + 16,
        ..ServiceConfig::default()
    };
    let service = if durable {
        let dir = scratch.next()?;
        Service::open_durable(&dir, points, config, StoreConfig::default())
            .map_err(|e| format!("open_durable: {e}"))?
    } else {
        Service::new(points, config).map_err(|e| format!("service: {e}"))?
    };
    Ok(Arc::new(service))
}

fn scrape(addr: &str, out: &std::path::Path) -> Result<(), String> {
    let mut client =
        Client::connect(addr, ClientConfig::default()).map_err(|e| format!("connect: {e}"))?;
    match client
        .call(&Request::Stats)
        .map_err(|e| format!("stats: {e}"))?
    {
        Response::Stats(snapshot) => {
            qcluster_bench::write_metrics_artifact(out, "stats", &snapshot)
                .map_err(|e| format!("write artifact: {e}"))?;
            println!("wrote stats scrape of {addr} to {}", out.display());
            Ok(())
        }
        other => Err(format!("unexpected response to Stats: {other:?}")),
    }
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    if let Some(addr) = &args.scrape {
        return scrape(addr, &args.out);
    }
    let config = soak_config(&args);
    config.validate()?;

    eprintln!("building quick-scale semantic-gap corpus…");
    let dataset = qcluster_bench::semantic_gap_dataset(qcluster_bench::Scale::Quick);
    let points: Vec<Vec<f64>> = (0..dataset.len())
        .map(|i| dataset.vector(i).to_vec())
        .collect();
    let durable = config.ingest_per_sec > 0;
    let mut scratch = ScratchDirs(Vec::new());
    // Admit the whole fleet: every user holds one connection (the
    // router multiplexes, but a single node faces all of them), plus
    // the control channel and reconnect churn.
    let server_config = ServerConfig {
        max_connections: config.users + 16,
        ..ServerConfig::default()
    };

    let mut servers = Vec::new();
    let backend: Box<dyn SoakBackend> = if args.cluster {
        let third = points.len() / 3;
        let bases = [0, third, 2 * third];
        let mut partitions = Vec::new();
        for (i, &id_base) in bases.iter().enumerate() {
            let end = bases.get(i + 1).copied().unwrap_or(points.len());
            let service = node_service(&points[id_base..end], durable, config.users, &mut scratch)?;
            let server = Server::bind("127.0.0.1:0", service, server_config.clone())
                .map_err(|e| format!("bind node {i}: {e}"))?;
            partitions.push(Partition {
                id_base,
                replicas: vec![server.local_addr()],
            });
            servers.push(server);
        }
        let map = ShardMap::new(partitions).map_err(|e| format!("shard map: {e}"))?;
        let router =
            Router::new(map, RouterConfig::default()).map_err(|e| format!("router: {e}"))?;
        Box::new(RouterBackend::new(Arc::new(router)))
    } else {
        let service = node_service(&points, durable, config.users, &mut scratch)?;
        let server = Server::bind("127.0.0.1:0", service, server_config.clone())
            .map_err(|e| format!("bind: {e}"))?;
        let addr = server.local_addr();
        servers.push(server);
        Box::new(TcpBackend::connect(addr, ClientConfig::default())?)
    };
    let target = backend.label();
    eprintln!(
        "soaking {target}: {} users × {} sessions × {} iterations, k={}, \
         ingest {}/s, {} chaos events, seed {}",
        config.users,
        config.sessions_per_user,
        config.iterations,
        config.k,
        config.ingest_per_sec,
        config.chaos.len(),
        config.seed,
    );

    let outcome = run_soak(&dataset, backend.as_ref(), &config)?;
    let metrics = backend.stats()?;
    let report = SoakReport::new(&config, target, &outcome, metrics);
    qcluster_loadgen::write_soak_artifact(&args.out, &report)
        .map_err(|e| format!("write artifact: {e}"))?;

    println!(
        "soak done in {:.1}s: {:.1} q/s, p50 {:.2}ms p95 {:.2}ms p99 {:.2}ms max {:.2}ms",
        report.wall_secs,
        report.throughput_qps,
        report.client_latency.p50_ns as f64 / 1e6,
        report.client_latency.p95_ns as f64 / 1e6,
        report.client_latency.p99_ns as f64 / 1e6,
        report.client_latency.max_ns as f64 / 1e6,
    );
    println!(
        "  queries ok {} err {} | feeds err {} | degraded rate {:.4} | shed rate {:.4} | \
         breaker trips {} | ingests {} | sessions {}+{} abandoned, {} errored",
        report.counters.queries_ok,
        report.counters.query_errors,
        report.counters.feed_errors,
        report.degraded_rate,
        report.shed_rate,
        report.breaker_trips,
        report.counters.ingests_ok,
        report.counters.sessions_completed,
        report.counters.sessions_abandoned,
        report.counters.session_errors,
    );
    for q in &report.precision_at_k {
        println!(
            "  precision@{} iter {}: {:.4} over {} sessions",
            report.k, q.iteration, q.mean_precision, q.sessions
        );
    }
    for hit in &report.chaos {
        println!("  chaos {}: {} fires", hit.failpoint, hit.hits);
    }
    println!("wrote {}", args.out.display());

    drop(backend);
    for server in servers {
        server.shutdown();
    }
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("soak: {e}");
        std::process::exit(1);
    }
}
