//! `qcluster-loadgen` — closed-loop user-fleet soak harness.
//!
//! This crate turns the reproduction's *correctness* substrates into a
//! *production workload*: fleets of simulated users (the oracle-backed
//! protocol from `qcluster-eval`) drive real `qcluster-net` TCP
//! connections — or the multi-node scatter-gather router — through the
//! paper's full feedback loop, with per-user think time, seeded session
//! abandonment, background ingest, and failpoint chaos armed on a
//! scheduled timeline mid-run. The run emits one SLO artifact
//! (`BENCH_soak.json`): throughput, client-observed latency quantiles,
//! shed/degraded/breaker rates, and precision-at-k per feedback
//! iteration, comparable against the offline in-process baseline built
//! from the *same* seed-derived plan.
//!
//! Module map (DESIGN.md §15):
//!
//! - [`rng`] — derived-stream splitmix64 seeding (one `--seed`, many
//!   independent consumers).
//! - [`config`] — the soak shape ([`SoakConfig`]).
//! - [`fleet`] — the pure [`FleetPlan`] and the closed-loop executor
//!   ([`run_soak`]) plus the offline quality baseline.
//! - [`target`] — [`UserTarget`]/[`SoakBackend`] over TCP or router.
//! - [`chaos`] — the seeded fault timeline and its scheduler.
//! - [`report`] — the [`SoakReport`] artifact.

#![warn(missing_docs)]

pub mod chaos;
pub mod config;
pub mod fleet;
pub mod report;
pub mod rng;
pub mod target;

pub use chaos::{seeded_timeline, ChaosEvent, ChaosHit, ChaosKind, ChaosScheduler};
pub use config::SoakConfig;
pub use fleet::{
    offline_baseline, run_soak, FleetPlan, IngestStream, IterationQuality, SessionPlan,
    SoakCounters, SoakOutcome, UserPlan,
};
pub use report::{soak_artifact_json, write_soak_artifact, LeaderKillReport, SoakReport};
pub use rng::SeedRng;
pub use target::{QueryReply, RouterBackend, SoakBackend, TcpBackend, UserTarget};
