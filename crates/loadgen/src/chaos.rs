//! Scheduled chaos: arming failpoints on a seeded timeline mid-soak.
//!
//! A soak is only trustworthy if the system was actually stressed while
//! it ran. This module turns `qcluster-failpoint` entries into
//! *scheduled events*: a deterministic, seed-derived timeline of
//! faults (node stalls, torn WAL writes, frame corruption) that a
//! background thread arms at the planned offsets while the user fleet
//! keeps driving load. The scheduler records how often each armed
//! failpoint actually fired, so the soak report can prove the faults
//! landed rather than merely being configured.
//!
//! Failpoints are process-global, so scheduled chaos reaches servers
//! hosted *in the same process* as the harness (the smoke topology).
//! Against external nodes, arm the same names there via
//! `QCLUSTER_FAILPOINTS` instead.

use crate::rng::SeedRng;
use qcluster_failpoint::Action;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The fault classes the scheduler can inject, each mapping onto one
/// production failpoint site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChaosKind {
    /// Every shard job sleeps `ms` — queries slow down, deadlines and
    /// admission control engage (`executor.shard`).
    NodeStall {
        /// Injected per-shard-job stall, milliseconds.
        ms: u64,
    },
    /// A WAL append persists only its first `bytes` bytes — the torn
    /// tail must be detected and dropped on recovery (`wal.append`).
    TornWrite {
        /// Bytes of the record that reach the log.
        bytes: u64,
    },
    /// One encoded frame has a payload byte flipped after its CRC is
    /// computed — the receiver must answer with a typed decode error
    /// and keep the connection alive (`net.frame.corrupt`).
    FrameCorrupt,
}

impl ChaosKind {
    /// The failpoint name this fault arms.
    pub fn failpoint(&self) -> &'static str {
        match self {
            ChaosKind::NodeStall { .. } => "executor.shard",
            ChaosKind::TornWrite { .. } => "wal.append",
            ChaosKind::FrameCorrupt => "net.frame.corrupt",
        }
    }

    /// The failpoint action this fault arms.
    pub fn action(&self) -> Action {
        match self {
            ChaosKind::NodeStall { ms } => Action::Sleep(*ms),
            ChaosKind::TornWrite { bytes } => Action::Partial(*bytes as usize),
            ChaosKind::FrameCorrupt => Action::Error("chaos: injected bitflip".into()),
        }
    }
}

/// One scheduled fault: at `at_ms` after soak start, arm the
/// failpoint to fire `fires` times.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosEvent {
    /// Offset from soak start, milliseconds.
    pub at_ms: u64,
    /// The fault to arm.
    pub kind: ChaosKind,
    /// Evaluations the armed failpoint fires before disarming.
    pub fires: u64,
}

/// How often one armed failpoint actually fired during the soak.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosHit {
    /// Failpoint name.
    pub failpoint: String,
    /// Evaluations that fired across every arming of this name.
    pub hits: u64,
}

/// A deterministic chaos timeline: `events` faults at seed-derived
/// offsets uniform in `[0, window_ms)`, sorted by offset. The same
/// `(seed, events, window_ms)` always yields the same timeline; the
/// timeline stream is independent of every other consumer of the seed.
pub fn seeded_timeline(seed: u64, events: usize, window_ms: u64) -> Vec<ChaosEvent> {
    let mut rng = SeedRng::derived(seed, 0xC4A0);
    let mut timeline: Vec<ChaosEvent> = (0..events)
        .map(|_| {
            let at_ms = rng.next_range(window_ms.max(1));
            let kind = match rng.next_range(3) {
                0 => ChaosKind::NodeStall {
                    ms: 20 + rng.next_range(80),
                },
                1 => ChaosKind::TornWrite {
                    bytes: rng.next_range(16),
                },
                _ => ChaosKind::FrameCorrupt,
            };
            ChaosEvent {
                at_ms,
                kind,
                fires: 1 + rng.next_range(3),
            }
        })
        .collect();
    timeline.sort_by_key(|e| e.at_ms);
    timeline
}

/// Arms a timeline of [`ChaosEvent`]s from a background thread while
/// the fleet runs, then reports per-failpoint hit counts.
#[derive(Debug)]
pub struct ChaosScheduler {
    stop: Arc<AtomicBool>,
    handle: JoinHandle<Vec<ChaosHit>>,
}

impl ChaosScheduler {
    /// Starts the scheduler; `t0` is the soak's start instant that
    /// event offsets are measured from.
    pub fn start(mut events: Vec<ChaosEvent>, t0: Instant) -> ChaosScheduler {
        events.sort_by_key(|e| e.at_ms);
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            // Re-arming a name resets its live hit counter, so bank the
            // count before each re-arm and again at teardown.
            let mut banked: HashMap<&'static str, u64> = HashMap::new();
            'timeline: for event in events {
                let due = t0 + Duration::from_millis(event.at_ms);
                loop {
                    if stop_flag.load(Ordering::Relaxed) {
                        break 'timeline;
                    }
                    let now = Instant::now();
                    if now >= due {
                        break;
                    }
                    std::thread::sleep((due - now).min(Duration::from_millis(10)));
                }
                let name = event.kind.failpoint();
                if let Some(prior) = banked.get_mut(name) {
                    *prior += qcluster_failpoint::hits(name);
                } else {
                    banked.insert(name, 0);
                }
                qcluster_failpoint::configure_counted(
                    name,
                    event.kind.action(),
                    0,
                    Some(event.fires),
                );
            }
            // Armed faults stay live (within their `fires` budget) until
            // the soak ends — only then bank the counts and disarm.
            while !stop_flag.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(5));
            }
            let mut hits: Vec<ChaosHit> = banked
                .into_iter()
                .map(|(name, prior)| {
                    let total = prior + qcluster_failpoint::hits(name);
                    qcluster_failpoint::remove(name);
                    ChaosHit {
                        failpoint: name.to_string(),
                        hits: total,
                    }
                })
                .collect();
            hits.sort_by(|a, b| a.failpoint.cmp(&b.failpoint));
            hits
        });
        ChaosScheduler { stop, handle }
    }

    /// Stops scheduling (events not yet due are skipped), disarms every
    /// failpoint this scheduler armed, and reports how often each fired.
    pub fn finish(self) -> Vec<ChaosHit> {
        self.stop.store(true, Ordering::Relaxed);
        self.handle.join().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_is_deterministic_in_the_seed() {
        let a = seeded_timeline(9, 5, 10_000);
        let b = seeded_timeline(9, 5, 10_000);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert!(a.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
        assert!(a.iter().all(|e| e.at_ms < 10_000 && e.fires >= 1));
        // A different seed reshapes the timeline.
        assert_ne!(a, seeded_timeline(10, 5, 10_000));
    }

    #[test]
    fn scheduler_arms_fires_and_disarms() {
        let _serial = qcluster_failpoint::test_lock();
        qcluster_failpoint::clear_all();
        let events = vec![ChaosEvent {
            at_ms: 0,
            kind: ChaosKind::NodeStall { ms: 1 },
            fires: 2,
        }];
        let scheduler = ChaosScheduler::start(events, Instant::now());
        // Wait until the event is armed, then evaluate it to exhaustion.
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut fired = 0;
        while fired < 2 && Instant::now() < deadline {
            if qcluster_failpoint::evaluate("executor.shard").is_some() {
                fired += 1;
            } else {
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        let hits = scheduler.finish();
        assert_eq!(
            fired, 2,
            "armed failpoint should fire exactly `fires` times"
        );
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].failpoint, "executor.shard");
        assert_eq!(hits[0].hits, 2);
        // Disarmed after finish: evaluation no longer fires.
        assert!(qcluster_failpoint::evaluate("executor.shard").is_none());
    }

    #[test]
    fn rearming_the_same_name_accumulates_hits() {
        let _serial = qcluster_failpoint::test_lock();
        qcluster_failpoint::clear_all();
        let events = vec![
            ChaosEvent {
                at_ms: 0,
                kind: ChaosKind::FrameCorrupt,
                fires: 1,
            },
            ChaosEvent {
                at_ms: 15,
                kind: ChaosKind::FrameCorrupt,
                fires: 1,
            },
        ];
        let scheduler = ChaosScheduler::start(events, Instant::now());
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut fired = 0;
        while fired < 2 && Instant::now() < deadline {
            if qcluster_failpoint::evaluate("net.frame.corrupt").is_some() {
                fired += 1;
            } else {
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        let hits = scheduler.finish();
        assert_eq!(fired, 2);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].hits, 2, "hits must survive re-arming");
    }
}
