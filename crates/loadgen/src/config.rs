//! Soak workload shape: fleet size, session depth, pacing, chaos.

use crate::chaos::ChaosEvent;

/// Everything that shapes one soak run. One `seed` determines the whole
/// workload (fleet plan, think jitter, ingest content, chaos timeline),
/// so two runs with equal configs drive byte-identical request
/// sequences per user.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakConfig {
    /// Master seed; every random decision derives from it.
    pub seed: u64,
    /// Concurrent simulated users (each is one client thread with its
    /// own connection).
    pub users: usize,
    /// Feedback sessions each user runs back to back.
    pub sessions_per_user: usize,
    /// Feedback iterations per session (after the initial query).
    pub iterations: usize,
    /// Result-set size per query round.
    pub k: usize,
    /// Mean think time between feedback rounds, milliseconds. Actual
    /// per-round pauses jitter uniformly in `[think/2, 3·think/2)`.
    pub think_ms: u64,
    /// Per-mille of sessions abandoned early (the user leaves after a
    /// seed-chosen prefix of the planned iterations).
    pub abandon_per_mille: u32,
    /// Background ingest rate, vectors/second (0 disables; requires a
    /// durable target).
    pub ingest_per_sec: u32,
    /// Optional per-query deadline forwarded on the wire.
    pub deadline_ms: Option<u64>,
    /// Scheduled faults (see [`crate::chaos::seeded_timeline`]).
    pub chaos: Vec<ChaosEvent>,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            seed: 42,
            users: 8,
            sessions_per_user: 1,
            iterations: 3,
            k: 20,
            think_ms: 0,
            abandon_per_mille: 0,
            ingest_per_sec: 0,
            deadline_ms: None,
            chaos: Vec::new(),
        }
    }
}

impl SoakConfig {
    /// Rejects shapes that cannot run.
    ///
    /// # Errors
    ///
    /// A description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.users == 0 {
            return Err("users must be positive".into());
        }
        if self.sessions_per_user == 0 {
            return Err("sessions_per_user must be positive".into());
        }
        if self.k == 0 {
            return Err("k must be positive".into());
        }
        if self.abandon_per_mille > 1000 {
            return Err("abandon_per_mille must be <= 1000".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        assert!(SoakConfig::default().validate().is_ok());
    }

    #[test]
    fn degenerate_shapes_are_rejected() {
        for bad in [
            SoakConfig {
                users: 0,
                ..SoakConfig::default()
            },
            SoakConfig {
                sessions_per_user: 0,
                ..SoakConfig::default()
            },
            SoakConfig {
                k: 0,
                ..SoakConfig::default()
            },
            SoakConfig {
                abandon_per_mille: 1001,
                ..SoakConfig::default()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?}");
        }
    }
}
