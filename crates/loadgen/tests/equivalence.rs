//! Soak-vs-offline quality equivalence (the acceptance bar): with
//! chaos disarmed, a seeded soak's per-iteration precision-at-k must
//! match the offline `qcluster-eval` baseline built from the *same*
//! fleet plan to within tie-break noise.
//!
//! Both sides run identical query images, iteration counts, marking
//! protocol (including the feed-the-example fallback), and engine
//! configuration; the only differences are sharded execution and the
//! TCP hop, neither of which may change *what* is retrieved beyond
//! equal-distance tie ordering.

use qcluster_loadgen::{offline_baseline, run_soak, SoakConfig, TcpBackend};
use qcluster_net::{ClientConfig, Server, ServerConfig};
use qcluster_service::{Service, ServiceConfig};
use std::sync::Arc;

const EPSILON: f64 = 0.05;

#[test]
fn chaos_free_soak_matches_offline_baseline_within_epsilon() {
    let _serial = qcluster_failpoint::test_lock();
    qcluster_failpoint::clear_all();

    let dataset =
        qcluster_eval::Dataset::small_default(qcluster_imaging::FeatureKind::ColorMoments, 9)
            .unwrap();
    let points: Vec<Vec<f64>> = (0..dataset.len())
        .map(|i| dataset.vector(i).to_vec())
        .collect();
    let service = Service::new(
        &points,
        ServiceConfig {
            num_shards: 4,
            num_workers: 2,
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    let server = Server::bind("127.0.0.1:0", Arc::new(service), ServerConfig::default()).unwrap();
    let backend = TcpBackend::connect(server.local_addr(), ClientConfig::default()).unwrap();

    let config = SoakConfig {
        seed: 77,
        users: 12,
        sessions_per_user: 1,
        iterations: 3,
        k: 12,
        think_ms: 0,
        abandon_per_mille: 0,
        ingest_per_sec: 0,
        deadline_ms: None,
        chaos: Vec::new(),
    };

    let soak = run_soak(&dataset, &backend, &config).unwrap();
    assert_eq!(soak.counters.query_errors, 0, "healthy target, no chaos");
    assert_eq!(soak.counters.degraded_responses, 0);

    let offline = offline_baseline(&dataset, &config).unwrap();
    assert_eq!(soak.precision.len(), offline.len());
    for (served, reference) in soak.precision.iter().zip(offline.iter()) {
        assert_eq!(served.iteration, reference.iteration);
        assert_eq!(
            served.sessions, reference.sessions,
            "iteration {}: both sides replay the same plan",
            served.iteration
        );
        let delta = (served.mean_precision - reference.mean_precision).abs();
        assert!(
            delta <= EPSILON,
            "iteration {}: served {:.4} vs offline {:.4} (|Δ| = {:.4} > ε = {EPSILON})",
            served.iteration,
            served.mean_precision,
            reference.mean_precision,
            delta
        );
    }
    // The baseline itself must be deterministic — same seed, same curve.
    assert_eq!(offline, offline_baseline(&dataset, &config).unwrap());

    server.shutdown();
}
