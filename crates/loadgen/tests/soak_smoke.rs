//! The CI smoke soak: a small fleet over a **real TCP server** with one
//! scheduled fault, asserting completion, quality bounds, and a valid
//! `BENCH_soak.json`-schema artifact.

use qcluster_loadgen::{
    run_soak, soak_artifact_json, ChaosEvent, ChaosKind, SoakBackend, SoakConfig, SoakReport,
    TcpBackend,
};
use qcluster_net::{ClientConfig, Server, ServerConfig};
use qcluster_service::{Service, ServiceConfig};
use std::sync::Arc;
use std::time::Duration;

fn dataset() -> qcluster_eval::Dataset {
    // 12 categories × 12 images, dim 3 — small enough that 16 users ×
    // 4 query rounds finish in seconds on one core.
    qcluster_eval::Dataset::small_default(qcluster_imaging::FeatureKind::ColorMoments, 9).unwrap()
}

fn serve_with(dataset: &qcluster_eval::Dataset, kind: qcluster_service::ShardKind) -> Server {
    let points: Vec<Vec<f64>> = (0..dataset.len())
        .map(|i| dataset.vector(i).to_vec())
        .collect();
    let service = Service::new(
        &points,
        ServiceConfig {
            num_shards: 2,
            num_workers: 2,
            shard_kind: kind,
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    Server::bind("127.0.0.1:0", Arc::new(service), ServerConfig::default()).unwrap()
}

fn serve(dataset: &qcluster_eval::Dataset) -> Server {
    serve_with(dataset, qcluster_service::ShardKind::default())
}

#[test]
fn smoke_soak_over_tcp_with_scheduled_chaos() {
    let _serial = qcluster_failpoint::test_lock();
    qcluster_failpoint::clear_all();

    let dataset = dataset();
    let server = serve(&dataset);
    let backend = TcpBackend::connect(
        server.local_addr(),
        ClientConfig {
            read_timeout: Duration::from_secs(30),
            ..ClientConfig::default()
        },
    )
    .unwrap();

    let config = SoakConfig {
        seed: 21,
        users: 16,
        sessions_per_user: 1,
        iterations: 3,
        k: 12,
        think_ms: 20,
        // One scheduled fault early in the run: every shard job stalls
        // briefly, twice. The server is in-process, so the
        // process-global failpoint is reachable.
        chaos: vec![ChaosEvent {
            at_ms: 10,
            kind: ChaosKind::NodeStall { ms: 30 },
            fires: 2,
        }],
        ..SoakConfig::default()
    };
    let outcome = run_soak(&dataset, &backend, &config).unwrap();

    // Completion: every session ran to plan, every planned query round
    // was answered (the stall slows rounds, it doesn't fail them).
    assert_eq!(outcome.counters.sessions_completed, 16);
    assert_eq!(outcome.counters.session_errors, 0);
    assert_eq!(outcome.counters.queries_ok, 16 * 4);
    assert_eq!(outcome.counters.query_errors, 0);
    assert_eq!(outcome.counters.feed_errors, 0);
    assert_eq!(outcome.latency.summary().count, 16 * 4);

    // The scheduled fault actually landed.
    assert_eq!(outcome.chaos.len(), 1);
    assert_eq!(outcome.chaos[0].failpoint, "executor.shard");
    assert!(
        outcome.chaos[0].hits >= 1,
        "scheduled chaos never fired: {:?}",
        outcome.chaos
    );
    // And the scheduler disarmed it afterwards.
    assert!(qcluster_failpoint::evaluate("executor.shard").is_none());

    // Quality bounds: every iteration saw every session, feedback must
    // not collapse retrieval quality below the initial example query.
    assert_eq!(outcome.precision.len(), 4);
    for q in &outcome.precision {
        assert_eq!(q.sessions, 16, "iteration {}", q.iteration);
        assert!(q.mean_precision > 0.0, "iteration {}", q.iteration);
    }
    let initial = outcome.precision[0].mean_precision;
    let fin = outcome.precision.last().unwrap().mean_precision;
    assert!(
        fin >= initial - 0.05,
        "feedback degraded precision: {initial:.4} -> {fin:.4}"
    );

    // The artifact validates: bench tag + fingerprint + report that
    // round-trips, with the embedded metrics decoding under the wire
    // schema.
    let metrics = backend.stats().unwrap();
    assert!(metrics.query.count >= 16 * 4);
    assert!(metrics.transport.frames_in > 0, "soak must cross real TCP");
    let report = SoakReport::new(&config, backend.label(), &outcome, metrics);
    let json = soak_artifact_json(&report).unwrap();
    let value: serde_json::Value = serde_json::from_str(&json).unwrap();
    assert_eq!(value.get("bench").and_then(|v| v.as_str()), Some("soak"));
    assert!(value.get("cores").is_some());
    assert!(value.get("unix_timestamp").is_some());
    let body = serde_json::to_string(value.get("report").unwrap()).unwrap();
    let decoded: SoakReport = serde_json::from_str(&body).unwrap();
    assert_eq!(decoded.precision_at_k.len(), 4);
    assert_eq!(decoded, report);

    let shutdown = server.shutdown();
    assert_eq!(shutdown.aborted_inflight, 0);
}

#[test]
fn quantized_soak_matches_exact_service_trajectory() {
    let _serial = qcluster_failpoint::test_lock();
    qcluster_failpoint::clear_all();

    let dataset = dataset();
    let config = SoakConfig {
        seed: 77,
        users: 8,
        sessions_per_user: 1,
        iterations: 3,
        k: 12,
        ..SoakConfig::default()
    };

    // Same seeded fleet against an exact-scan server and a quantized
    // two-phase server. The workload is byte-identical per user, and the
    // feedback loop is driven entirely by retrieved ids — so if the
    // served two-phase scan is bit-for-bit exact, every session follows
    // the identical trajectory and the precision curves match exactly.
    let run = |kind| {
        let server = serve_with(&dataset, kind);
        let backend = TcpBackend::connect(server.local_addr(), ClientConfig::default()).unwrap();
        let outcome = run_soak(&dataset, &backend, &config).unwrap();
        let metrics = backend.stats().unwrap();
        server.shutdown();
        (outcome, metrics)
    };
    let (exact, _) = run(qcluster_service::ShardKind::Scan);
    let (quant, metrics) = run(qcluster_service::ShardKind::Quantized);

    assert_eq!(quant.counters.sessions_completed, 8);
    assert_eq!(quant.counters.query_errors, 0);
    assert_eq!(exact.precision, quant.precision, "served path diverged");

    // The quantized path actually ran: phase 1 touched every point at
    // least once and phase 2 reranked a strict subset.
    assert!(metrics.quant.phase1_points > 0);
    assert!(metrics.quant.reranked > 0);
    assert_eq!(metrics.quant.plan_misses, 0);
}

#[test]
fn soak_abandonment_and_errors_are_accounted() {
    let _serial = qcluster_failpoint::test_lock();
    qcluster_failpoint::clear_all();

    let dataset = dataset();
    let server = serve(&dataset);
    let backend = TcpBackend::connect(server.local_addr(), ClientConfig::default()).unwrap();

    let config = SoakConfig {
        seed: 33,
        users: 10,
        sessions_per_user: 2,
        iterations: 3,
        k: 8,
        abandon_per_mille: 500,
        ..SoakConfig::default()
    };
    let outcome = run_soak(&dataset, &backend, &config).unwrap();
    let c = &outcome.counters;
    assert_eq!(
        c.sessions_completed + c.sessions_abandoned + c.session_errors,
        20
    );
    assert_eq!(c.session_errors, 0);
    assert!(c.sessions_abandoned > 0, "500‰ should abandon something");
    assert!(c.sessions_completed > 0, "500‰ should complete something");
    // Abandoned sessions thin out later iterations, never earlier ones.
    for w in outcome.precision.windows(2) {
        assert!(w[1].sessions <= w[0].sessions);
    }
    assert_eq!(outcome.precision[0].sessions, 20);

    // Ingest against a memory-only service is an error path the soak
    // must absorb, not abort on.
    let config = SoakConfig {
        seed: 34,
        users: 2,
        iterations: 1,
        k: 8,
        ingest_per_sec: 50,
        ..SoakConfig::default()
    };
    let outcome = run_soak(&dataset, &backend, &config).unwrap();
    assert_eq!(outcome.counters.ingests_ok, 0);
    assert!(outcome.counters.ingest_errors > 0);
    assert_eq!(outcome.counters.session_errors, 0);

    server.shutdown();
}
