//! Dataset load paths: the JSON persistence format vs the binary
//! fast paths (the `QDSB` dataset file and a raw `qcluster-store`
//! segment) on a 50k × 24-d corpus.
//!
//! JSON pays for decimal parsing of ~1.2M floats; the binary formats
//! read fixed-width little-endian records behind a CRC, so loads are
//! dominated by I/O. This is the acceptance benchmark for the storage
//! subsystem's load path.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use qcluster_eval::{
    load_dataset, load_dataset_binary, save_dataset, save_dataset_binary, Dataset,
};
use qcluster_store::{write_segment, SegmentReader};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;

const N: usize = 50_000;
const DIM: usize = 24;
const IMAGES_PER_CATEGORY: usize = 100;

fn synthetic_dataset() -> Dataset {
    let mut rng = StdRng::seed_from_u64(42);
    let vectors: Vec<Vec<f64>> = (0..N)
        .map(|_| (0..DIM).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();
    let categories: Vec<usize> = (0..N).map(|i| i / IMAGES_PER_CATEGORY).collect();
    let supers: Vec<usize> = categories.iter().map(|c| c / 10).collect();
    Dataset::from_parts(vectors, categories, supers, IMAGES_PER_CATEGORY)
}

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("qbench_store_{}_{name}", std::process::id()))
}

fn bench_load_paths(c: &mut Criterion) {
    let dataset = synthetic_dataset();
    let json_path = scratch("ds.json");
    let bin_path = scratch("ds.qdsb");
    let seg_path = scratch("ds.qseg");
    save_dataset(&dataset, &json_path).unwrap();
    save_dataset_binary(&dataset, &bin_path).unwrap();
    write_segment(&seg_path, DIM, dataset.vectors()).unwrap();

    let mut group = c.benchmark_group("dataset_load_50k_x_24");
    // Full-file loads are slow enough that criterion's default sample
    // count would take minutes; a small sample still separates the
    // formats by an order of magnitude.
    group.sample_size(10);

    group.bench_function("json_load_dataset", |b| {
        b.iter(|| black_box(load_dataset(&json_path).unwrap().len()))
    });
    group.bench_function("binary_load_dataset", |b| {
        b.iter(|| black_box(load_dataset_binary(&bin_path).unwrap().len()))
    });
    group.bench_function("segment_read_all", |b| {
        b.iter(|| {
            let mut reader = SegmentReader::open(&seg_path).unwrap();
            black_box(reader.read_all().unwrap().len())
        })
    });
    group.finish();

    std::fs::remove_file(&json_path).ok();
    std::fs::remove_file(&bin_path).ok();
    std::fs::remove_file(&seg_path).ok();
}

criterion_group!(benches, bench_load_paths);
criterion_main!(benches);
