//! Figure 7 as a criterion benchmark: a full feedback session (initial
//! query + 3 refined rounds) per approach, on the color-moment dataset.
//! Qcluster runs with the multipoint node cache; the centroid-style
//! baselines re-query fresh, matching the paper's setup.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use qcluster_baselines::{Falcon, QueryExpansion, QueryPointMovement};
use qcluster_bench::{image_dataset, Scale};
use qcluster_core::{QclusterConfig, QclusterEngine};
use qcluster_eval::FeedbackSession;
use qcluster_imaging::FeatureKind;

fn bench_approaches(c: &mut Criterion) {
    let ds = image_dataset(Scale::Quick, FeatureKind::ColorMoments);
    let mut group = c.benchmark_group("fig7_session_cost");
    group.sample_size(15);

    group.bench_function(BenchmarkId::from_parameter("qcluster"), |b| {
        b.iter(|| {
            let session = FeedbackSession::new(&ds, 30);
            let mut m = QclusterEngine::new(QclusterConfig::default());
            black_box(session.run(&mut m, 0, 3).expect("session"))
        })
    });
    group.bench_function(BenchmarkId::from_parameter("qpm"), |b| {
        b.iter(|| {
            let session = FeedbackSession::new(&ds, 30).without_node_cache();
            let mut m = QueryPointMovement::new();
            black_box(session.run(&mut m, 0, 3).expect("session"))
        })
    });
    group.bench_function(BenchmarkId::from_parameter("qex"), |b| {
        b.iter(|| {
            let session = FeedbackSession::new(&ds, 30).without_node_cache();
            let mut m = QueryExpansion::new();
            black_box(session.run(&mut m, 0, 3).expect("session"))
        })
    });
    group.bench_function(BenchmarkId::from_parameter("falcon"), |b| {
        b.iter(|| {
            let session = FeedbackSession::new(&ds, 30).without_node_cache();
            let mut m = Falcon::new();
            black_box(session.run(&mut m, 0, 3).expect("session"))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_approaches);
criterion_main!(benches);
