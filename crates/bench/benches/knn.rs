//! Index benchmarks: hybrid-tree k-NN vs linear scan, the effect of
//! the cross-iteration node cache (the mechanism behind Figure 7), and
//! the blocked partial-selection scan against the old scalar full-sort.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use qcluster_core::{Cluster, CovarianceScheme, DisjunctiveQuery, FeedbackPoint};
use qcluster_index::{EuclideanQuery, HybridTree, LinearScan, NodeCache, QueryDistance};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DIM: usize = 3;

fn make_points(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..DIM).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect()
}

fn bench_tree_vs_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("knn");
    for &n in &[1_000usize, 10_000, 30_000] {
        let points = make_points(n, 7);
        let tree = HybridTree::bulk_load(&points);
        let scan = LinearScan::new(&points);
        let query = EuclideanQuery::new(vec![0.5; DIM]);
        group.bench_with_input(BenchmarkId::new("hybrid_tree", n), &tree, |b, t| {
            b.iter(|| black_box(t.knn(&query, 100, None)))
        });
        group.bench_with_input(BenchmarkId::new("linear_scan", n), &scan, |b, s| {
            b.iter(|| black_box(s.knn(&query, 100)))
        });
    }
    group.finish();
}

/// The scan path before this change (per-point virtual `distance`, full
/// `sort_unstable` of all n distances, truncate to k) vs the blocked
/// `LinearScan::knn` (per-block `distance_batch` into a bounded top-k
/// heap), both under a compiled 4-cluster disjunctive query.
fn bench_blocked_scan_vs_full_sort(c: &mut Criterion) {
    let mut group = c.benchmark_group("disjunctive_scan");
    let mut rng = StdRng::seed_from_u64(13);
    let clusters: Vec<Cluster> = (0..4)
        .map(|i| {
            let center: Vec<f64> = (0..DIM).map(|_| rng.gen_range(0.0..1.0)).collect();
            Cluster::from_points(
                (0..10)
                    .map(|k| {
                        let v: Vec<f64> = center
                            .iter()
                            .map(|&cc| cc + rng.gen_range(-0.1..0.1))
                            .collect();
                        FeedbackPoint::new(i * 100 + k, v, 1.0)
                    })
                    .collect(),
            )
            .expect("non-empty")
        })
        .collect();
    let query =
        DisjunctiveQuery::new(&clusters, CovarianceScheme::default_diagonal()).expect("compiles");
    for &n in &[10_000usize, 30_000] {
        let points = make_points(n, 17);
        let scan = LinearScan::new(&points);
        group.bench_with_input(BenchmarkId::new("scalar_full_sort", n), &scan, |b, _| {
            b.iter(|| {
                let mut dists: Vec<(f64, usize)> = points
                    .iter()
                    .enumerate()
                    .map(|(id, p)| (query.distance(p), id))
                    .collect();
                dists.sort_unstable_by(|a, b| a.partial_cmp(b).expect("non-NaN"));
                dists.truncate(100);
                black_box(dists)
            })
        });
        group.bench_with_input(BenchmarkId::new("blocked_top_k", n), &scan, |b, s| {
            b.iter(|| black_box(s.knn(&query, 100)))
        });
    }
    group.finish();
}

fn bench_bulk_load(c: &mut Criterion) {
    let points = make_points(10_000, 9);
    c.bench_function("bulk_load_10k", |b| {
        b.iter(|| black_box(HybridTree::bulk_load(black_box(&points))))
    });
}

fn bench_cache_effect(c: &mut Criterion) {
    // A refined query close to the previous one: disk reads collapse with
    // the cache, total work does not change. This benchmark measures the
    // CPU side; the disk-read accounting is what fig7 of `repro` reports.
    let points = make_points(30_000, 11);
    let tree = HybridTree::bulk_load(&points);
    let q1 = EuclideanQuery::new(vec![0.5; DIM]);
    let q2 = EuclideanQuery::new(vec![0.52; DIM]);
    c.bench_function("refined_query_with_cache", |b| {
        b.iter(|| {
            let mut cache = NodeCache::new(tree.num_nodes());
            let _ = tree.knn(&q1, 100, Some(&mut cache));
            let (r, s) = tree.knn(&q2, 100, Some(&mut cache));
            black_box((r, s.disk_reads))
        })
    });
}

criterion_group!(
    benches,
    bench_tree_vs_scan,
    bench_blocked_scan_vs_full_sort,
    bench_bulk_load,
    bench_cache_effect
);
criterion_main!(benches);
