//! Scalar-vs-batch distance kernel comparison, machine-readable.
//!
//! For each cluster count `g` and dimensionality `d`, times a full
//! corpus evaluation of the compiled disjunctive query two ways:
//!
//! - **scalar**: one virtual `distance` call per point — how the scan
//!   path invoked the kernel before blocked evaluation;
//! - **batch**: one virtual `distance_batch` call per 256-point block —
//!   the expanded-form kernels over eight-point transposed tiles.
//!
//! Results are written to `BENCH_kernels.json` in the working directory
//! (per-point nanoseconds and the batch/scalar speedup per
//! configuration) and summarized on stdout. `-- --test` runs a smoke
//! pass on a tiny corpus without writing the JSON.

use qcluster_core::{Cluster, CovarianceScheme, DisjunctiveQuery, FeedbackPoint};
use qcluster_index::{QueryDistance, SCAN_BLOCK_POINTS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Instant;

const FULL_N: usize = 50_000;
const SMOKE_N: usize = 512;
const GS: [usize; 3] = [1, 4, 8];
const DS: [usize; 3] = [8, 24, 64];

fn make_corpus(n: usize, d: usize, rng: &mut StdRng) -> Vec<f64> {
    (0..n * d).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

fn make_clusters(g: usize, d: usize, rng: &mut StdRng) -> Vec<Cluster> {
    (0..g)
        .map(|i| {
            let center: Vec<f64> = (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect();
            Cluster::from_points(
                (0..10)
                    .map(|k| {
                        let v: Vec<f64> = center
                            .iter()
                            .map(|&c| c + rng.gen_range(-0.2..0.2))
                            .collect();
                        FeedbackPoint::new(i * 100 + k, v, 1.0)
                    })
                    .collect(),
            )
            .expect("non-empty cluster")
        })
        .collect()
}

/// Best-of-`reps` wall time for one full corpus evaluation, per point.
fn time_per_point(reps: usize, n: usize, mut pass: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        pass();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best * 1e9 / n as f64
}

struct Row {
    g: usize,
    d: usize,
    scalar_ns: f64,
    batch_ns: f64,
}

fn run(n: usize, reps: usize) -> Vec<Row> {
    let mut rng = StdRng::seed_from_u64(42);
    let mut rows = Vec::new();
    for &d in &DS {
        let corpus = make_corpus(n, d, &mut rng);
        for &g in &GS {
            let clusters = make_clusters(g, d, &mut rng);
            let query = DisjunctiveQuery::new(&clusters, CovarianceScheme::default_diagonal())
                .expect("compiles");
            // Both arms go through the same trait object, so the only
            // difference is per-point vs per-block dispatch + kernels.
            let dq: &dyn QueryDistance = &query;
            let mut out = vec![0.0f64; SCAN_BLOCK_POINTS];

            let scalar_ns = time_per_point(reps, n, || {
                let mut acc = 0.0;
                for p in 0..n {
                    acc += dq.distance(&corpus[p * d..(p + 1) * d]);
                }
                black_box(acc);
            });
            let batch_ns = time_per_point(reps, n, || {
                let mut acc = 0.0;
                let mut start = 0;
                while start < n {
                    let count = SCAN_BLOCK_POINTS.min(n - start);
                    dq.distance_batch(
                        &corpus[start * d..(start + count) * d],
                        d,
                        &mut out[..count],
                    );
                    acc += out[..count].iter().sum::<f64>();
                    start += count;
                }
                black_box(acc);
            });
            println!(
                "g={g:2} d={d:3}  scalar {scalar_ns:8.2} ns/pt  batch {batch_ns:8.2} ns/pt  speedup {:5.2}x",
                scalar_ns / batch_ns
            );
            rows.push(Row {
                g,
                d,
                scalar_ns,
                batch_ns,
            });
        }
    }
    rows
}

fn write_json(path: &str, n: usize, rows: &[Row]) {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"kernels\",\n");
    s.push_str("  \"scheme\": \"diagonal\",\n");
    s.push_str(&format!("  \"corpus_points\": {n},\n"));
    s.push_str(&format!("  \"block_points\": {SCAN_BLOCK_POINTS},\n"));
    s.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"g\": {}, \"d\": {}, \"scalar_ns_per_point\": {:.3}, \
             \"batch_ns_per_point\": {:.3}, \"speedup\": {:.3}}}{}\n",
            r.g,
            r.d,
            r.scalar_ns,
            r.batch_ns,
            r.scalar_ns / r.batch_ns,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s).expect("write BENCH_kernels.json");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    if smoke {
        // Smoke mode (CI): tiny corpus, one rep, correctness of the
        // harness only — no timing claims, no JSON.
        let rows = run(SMOKE_N, 1);
        assert_eq!(rows.len(), GS.len() * DS.len());
        assert!(rows.iter().all(|r| r.scalar_ns > 0.0 && r.batch_ns > 0.0));
        println!("kernels bench smoke: ok ({} configs)", rows.len());
        return;
    }
    let rows = run(FULL_N, 5);
    write_json("BENCH_kernels.json", FULL_N, &rows);
    let target = rows
        .iter()
        .find(|r| r.g == 4 && r.d == 24)
        .expect("g=4 d=24 present");
    println!(
        "\nheadline (g=4, d=24, n={FULL_N}): {:.2}x batch over scalar",
        target.scalar_ns / target.batch_ns
    );
    println!("wrote BENCH_kernels.json");
}
