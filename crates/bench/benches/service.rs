//! Service throughput: sharded parallel k-NN on the executor's worker
//! pool vs the seed's single full-sort linear scan.
//!
//! Two effects stack. Per shard, the bounded top-k max-heap does
//! O(n log k) work instead of the scan baseline's full O(n log n) sort;
//! across shards the fan-out overlaps work on the pool. On a ≥ 50k-point
//! corpus the sharded path at 4+ shards must not be slower than the
//! single-shard scan — this is the acceptance benchmark for the service
//! subsystem.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qcluster_index::{EuclideanQuery, LinearScan};
use qcluster_service::{Executor, ShardKind, ShardedCorpus};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DIM: usize = 8;
const N: usize = 50_000;
const K: usize = 100;

fn make_points(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..DIM).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect()
}

fn bench_sharded_vs_single_scan(c: &mut Criterion) {
    let points = make_points(N, 17);
    let query = EuclideanQuery::new(vec![0.5; DIM]);

    let mut group = c.benchmark_group("service_knn_50k");
    group.throughput(Throughput::Elements(N as u64));

    // Seed baseline: one linear scan sorting the whole corpus per query.
    let scan = LinearScan::new(&points);
    group.bench_function("single_scan_full_sort", |b| {
        b.iter(|| black_box(scan.knn(&query, K)))
    });

    // Sharded executor: S scan shards with bounded top-k heaps, merged.
    for &shards in &[1usize, 2, 4, 8] {
        let corpus = ShardedCorpus::build(&points, shards, ShardKind::Scan);
        let executor = Executor::new(shards).expect("spawn bench pool");
        group.bench_with_input(
            BenchmarkId::new("sharded_scan", shards),
            &corpus,
            |b, corpus| b.iter(|| black_box(executor.knn(corpus, &query, K, None))),
        );
    }

    // Tree shards: best-first search touches a fraction of the corpus.
    for &shards in &[1usize, 4] {
        let corpus = ShardedCorpus::build(&points, shards, ShardKind::Tree);
        let executor = Executor::new(shards).expect("spawn bench pool");
        group.bench_with_input(
            BenchmarkId::new("sharded_tree", shards),
            &corpus,
            |b, corpus| b.iter(|| black_box(executor.knn(corpus, &query, K, None))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sharded_vs_single_scan);
criterion_main!(benches);
