//! Ablations of the design choices DESIGN.md §7 calls out:
//!
//! - the aggregate exponent α of Eq. 4 (the paper fixes α = −2; FALCON
//!   prefers α ≈ −5; α = 1 is the convex cover),
//! - the engine's target cluster count,
//! - the PCA retained-variance threshold ε of Sec. 4.4.4.
//!
//! Criterion measures throughput; quality ablations live in `repro`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use qcluster_baselines::{AggregateKind, MultiPointQuery};
use qcluster_core::{FeedbackPoint, QclusterConfig, QclusterEngine};
use qcluster_linalg::{Matrix, Pca};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_alpha_exponent(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let centers: Vec<Vec<f64>> = (0..5)
        .map(|_| (0..4).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();
    let x: Vec<f64> = (0..4).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut group = c.benchmark_group("aggregate_alpha");
    for (kind, label) in [
        (AggregateKind::Convex, "alpha=+1"),
        (AggregateKind::FuzzyOr { alpha: -1.0 }, "alpha=-1"),
        (AggregateKind::FuzzyOr { alpha: -2.0 }, "alpha=-2"),
        (AggregateKind::FuzzyOr { alpha: -5.0 }, "alpha=-5"),
    ] {
        let q = MultiPointQuery::uniform(centers.clone(), kind);
        group.bench_with_input(BenchmarkId::from_parameter(label), &q, |b, q| {
            use qcluster_index::QueryDistance;
            b.iter(|| black_box(q.distance(black_box(&x))))
        });
    }
    group.finish();
}

fn bench_target_clusters(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let marked: Vec<FeedbackPoint> = (0..40)
        .map(|i| {
            let mode = (i % 4) as f64 * 3.0;
            let v: Vec<f64> = (0..4).map(|_| mode + rng.gen_range(-0.2..0.2)).collect();
            FeedbackPoint::new(i, v, 1.0)
        })
        .collect();
    let mut group = c.benchmark_group("engine_target_clusters");
    for &target in &[1usize, 3, 5, 10] {
        group.bench_with_input(BenchmarkId::from_parameter(target), &target, |b, &t| {
            b.iter(|| {
                let mut engine = QclusterEngine::new(QclusterConfig {
                    target_clusters: t,
                    ..QclusterConfig::default()
                });
                engine.feed(black_box(&marked)).expect("feeds");
                black_box(engine.query().expect("compiles"))
            })
        });
    }
    group.finish();
}

fn bench_pca_epsilon(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let n = 500;
    let p = 16;
    let mut data = Matrix::zeros(n, p);
    for i in 0..n {
        for j in 0..p {
            // Decaying variance per dimension so ε actually matters.
            let scale = 1.0 / (1.0 + j as f64);
            data.set(i, j, rng.gen_range(-1.0..1.0) * scale);
        }
    }
    let pca = Pca::fit(&data).expect("fits");
    let x: Vec<f64> = (0..p).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut group = c.benchmark_group("pca_transform_by_epsilon");
    for &eps in &[0.01f64, 0.05, 0.15, 0.4] {
        let k = pca.components_for_epsilon(eps);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("eps={eps}(k={k})")),
            &k,
            |b, &k| b.iter(|| black_box(pca.transform(black_box(&x), k))),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_alpha_exponent,
    bench_target_clusters,
    bench_pca_epsilon
);
criterion_main!(benches);
