//! Transport round-trip and pipelining benchmark, machine-readable.
//!
//! A real `qcluster-net` server on localhost fronts a 4-shard 50k-point
//! corpus; one client runs the same k-NN batch at different pipeline
//! windows. Window 1 is the classic request/response round-trip (each
//! query pays the full wire + dispatch + wire latency before the next
//! starts); window 8 keeps eight requests in flight on one connection,
//! so decode, execution on the handler pool, and response writes all
//! overlap. The acceptance bar for the transport subsystem: pipelined
//! throughput ≥ 3× the single-in-flight round-trip.
//!
//! Results are written to `BENCH_net.json` in the working directory and
//! summarized on stdout. `-- --test` runs a smoke pass on a tiny corpus
//! without writing the JSON.

use qcluster_net::{Client, ClientConfig, Server, ServerConfig};
use qcluster_service::{Request, Response, Service, ServiceConfig, ShardKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

const DIM: usize = 8;
const FULL_N: usize = 50_000;
const SMOKE_N: usize = 2_048;
const K: usize = 10;
const WINDOWS: [usize; 3] = [1, 4, 8];

fn make_points(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..DIM).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect()
}

/// Queries round-robin across sessions, like a gateway multiplexing
/// many end-users over one upstream connection. Distinct sessions keep
/// pipelined queries from serializing on a single session's lock, so
/// the handler pool can genuinely overlap them.
fn make_queries(sessions: &[u64], count: usize, seed: u64) -> Vec<Request> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|i| Request::Query {
            session: sessions[i % sessions.len()],
            k: K,
            vector: Some((0..DIM).map(|_| rng.gen_range(0.0..1.0)).collect()),
            deadline_ms: None,
        })
        .collect()
}

struct Row {
    window: usize,
    queries: usize,
    ns_per_query: f64,
    qps: f64,
}

/// Best-of-`reps` wall time for the whole batch at one window size.
fn time_batch(client: &mut Client, requests: &[Request], window: usize, reps: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        let responses = client.pipeline(requests, window).expect("pipeline batch");
        best = best.min(start.elapsed().as_secs_f64());
        assert!(responses
            .iter()
            .all(|r| matches!(r, Response::Neighbors { .. })));
        black_box(responses);
    }
    best
}

fn run(n: usize, batch: usize, reps: usize) -> Vec<Row> {
    let points = make_points(n, 17);
    let service = Arc::new(
        Service::new(
            &points,
            ServiceConfig {
                num_shards: 4,
                num_workers: 4,
                shard_kind: ShardKind::Tree,
                ..ServiceConfig::default()
            },
        )
        .expect("spawn service"),
    );
    // Default transport config: the writer queue (32) comfortably
    // exceeds the deepest window, so nothing sheds during the run.
    let server = Server::bind("127.0.0.1:0", Arc::clone(&service), ServerConfig::default())
        .expect("bind server");
    let mut client = Client::connect(
        server.local_addr(),
        ClientConfig {
            read_timeout: Duration::from_secs(60),
            ..ClientConfig::default()
        },
    )
    .expect("connect");
    let sessions: Vec<u64> = (0..8)
        .map(|_| {
            let Response::SessionCreated { session } = client
                .call(&Request::CreateSession { engine: None })
                .expect("create session")
            else {
                panic!("expected SessionCreated");
            };
            session
        })
        .collect();
    let requests = make_queries(&sessions, batch, 23);

    // Warm the caches and the connection once before timing.
    let _ = client.pipeline(&requests, 1).expect("warmup");

    let mut rows = Vec::new();
    for &window in &WINDOWS {
        let secs = time_batch(&mut client, &requests, window, reps);
        let ns_per_query = secs * 1e9 / batch as f64;
        let qps = batch as f64 / secs;
        println!(
            "window {window}:  {ns_per_query:10.0} ns/query  {qps:9.0} queries/s  \
             ({batch} queries over the wire)"
        );
        rows.push(Row {
            window,
            queries: batch,
            ns_per_query,
            qps,
        });
    }
    drop(client);
    let report = server.shutdown();
    assert!(
        report.clean(),
        "bench server must shut down clean: {report:?}"
    );
    rows
}

fn write_json(path: &str, n: usize, rows: &[Row]) {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"net\",\n");
    s.push_str(&format!("  \"corpus_points\": {n},\n"));
    s.push_str(&format!("  \"dim\": {DIM},\n"));
    s.push_str(&format!("  \"k\": {K},\n"));
    s.push_str("  \"shards\": 4,\n");
    s.push_str(&qcluster_bench::host_fingerprint_json("  "));
    s.push_str(&format!(
        "  \"pipelining_gate_enforced\": {},\n",
        cores() >= 2
    ));
    s.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"window\": {}, \"queries\": {}, \"ns_per_query\": {:.0}, \
             \"queries_per_sec\": {:.0}}}{}\n",
            r.window,
            r.queries,
            r.ns_per_query,
            r.qps,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s).expect("write BENCH_net.json");
}

fn cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    if smoke {
        // Smoke mode (CI): tiny corpus, one rep, harness correctness
        // only — no timing claims, no JSON.
        let rows = run(SMOKE_N, 32, 1);
        assert_eq!(rows.len(), WINDOWS.len());
        assert!(rows.iter().all(|r| r.ns_per_query > 0.0));
        println!("net bench smoke: ok ({} windows)", rows.len());
        return;
    }
    let rows = run(FULL_N, 512, 5);
    write_json("BENCH_net.json", FULL_N, &rows);
    let single = rows.iter().find(|r| r.window == 1).expect("window 1");
    let deep = rows.iter().find(|r| r.window == 8).expect("window 8");
    let speedup = deep.qps / single.qps;
    println!(
        "\nheadline (n={FULL_N}, k={K}, 4 shards, {} cores): window 8 is {speedup:.2}x \
         window 1 throughput",
        cores()
    );
    // The acceptance bar needs actual parallelism: on a single-core
    // box the k-NN work is CPU-bound and serialized no matter how the
    // wire behaves, so pipelining can only amortize syscall/context-
    // switch overhead there.
    if cores() >= 2 {
        assert!(
            speedup >= 3.0,
            "pipelining must buy >= 3x single-in-flight throughput, got {speedup:.2}x"
        );
    } else {
        println!("single-core host: recording the speedup without enforcing the 3x bar");
    }
    println!("wrote BENCH_net.json");
}
