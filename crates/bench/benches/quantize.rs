//! Exact-vs-two-phase quantized scan comparison, machine-readable.
//!
//! Two experiments:
//!
//! - **in-memory** (1M points, g=4, d=24 — the kernel bench's headline
//!   configuration): full exact tile-kernel k-NN versus the two-phase
//!   scan (u8 phase-1 filter + exact rerank) over the same corpus, with
//!   bit-for-bit equality asserted on every rep. The acceptance bar is
//!   **≥3× speedup** — the point of the u8 column is that phase 1 reads
//!   8× fewer bytes per point.
//! - **segment-scale** (10M points): seal a synthetic corpus into a
//!   format-v2 segment on disk (the `dataset-tool synth` path), time the
//!   zero-copy load into a `QuantizedScan`, and time both query forms at
//!   a scale where the corpus (~1.9 GB exact + 240 MB codes) is far out
//!   of cache.
//!
//! Results go to `BENCH_quantize.json` in the working directory with the
//! shared host fingerprint; `-- --test` runs a smoke pass at toy sizes
//! without writing the JSON.

use qcluster_bench::{host_fingerprint_json, synth_segment};
use qcluster_core::{Cluster, CovarianceScheme, DisjunctiveQuery, FeedbackPoint};
use qcluster_index::{default_rerank_window, Neighbor, QuantizedScan};
use qcluster_store::load_segment_quantized;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Instant;

const FULL_N: usize = 1_000_000;
const FULL_SEGMENT_N: u64 = 10_000_000;
const SMOKE_N: usize = 4_096;
const SMOKE_SEGMENT_N: u64 = 20_000;
const G: usize = 4;
const D: usize = 24;
const K: usize = 50;

/// A relevance-feedback query over the synthetic corpus: the user has
/// marked images from `G` of the corpus' 16 modes, so each feedback
/// cluster is built from *actual corpus points* of one mode — the
/// workload shape every Qcluster round produces (random far-off query
/// centers would be a straw man: feedback clusters always sit on data).
fn feedback_query(scan: &QuantizedScan) -> DisjunctiveQuery {
    let n = scan.len();
    let clusters: Vec<Cluster> = (0..G)
        .map(|c| {
            Cluster::from_points(
                (0..10)
                    .map(|t| {
                        // Corpus mode `c` holds the ids ≡ c (mod 16).
                        let id = (c + t * 16) % n;
                        let mut v = vec![0.0f64; D];
                        scan.corpus().copy_point(id, &mut v);
                        FeedbackPoint::new(id, v, 1.0)
                    })
                    .collect(),
            )
            .expect("non-empty cluster")
        })
        .collect();
    DisjunctiveQuery::new(&clusters, CovarianceScheme::default_diagonal()).expect("compiles")
}

fn assert_identical(exact: &[Neighbor], two_phase: &[Neighbor]) {
    assert_eq!(exact.len(), two_phase.len(), "result cardinality diverged");
    for (e, t) in exact.iter().zip(two_phase.iter()) {
        assert_eq!(e.id, t.id, "two-phase returned a different neighbor");
        assert_eq!(
            e.distance.to_bits(),
            t.distance.to_bits(),
            "two-phase distance is not bit-identical"
        );
    }
}

struct Timed {
    exact_ms: f64,
    two_phase_ms: f64,
    phase1_points: u64,
    reranked: u64,
    fallback_rescans: u64,
}

/// Best-of-`reps` wall time for both query forms over one scan, with
/// bit-for-bit equality asserted on every reidentification.
fn time_pair(scan: &QuantizedScan, query: &DisjunctiveQuery, reps: usize) -> Timed {
    let window = Some(default_rerank_window(K));
    let mut exact_best = f64::INFINITY;
    let mut quant_best = f64::INFINITY;
    let mut stats_at_best = None;
    for _ in 0..reps {
        let start = Instant::now();
        let exact = scan.corpus().knn(query, K);
        exact_best = exact_best.min(start.elapsed().as_secs_f64());

        let start = Instant::now();
        let (two_phase, stats) = scan.two_phase_knn(query, K, window);
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed < quant_best {
            quant_best = elapsed;
            stats_at_best = Some(stats);
        }
        assert_identical(&exact, &two_phase);
        black_box((exact, two_phase));
    }
    let stats = stats_at_best.expect("at least one rep");
    Timed {
        exact_ms: exact_best * 1e3,
        two_phase_ms: quant_best * 1e3,
        phase1_points: stats.phase1_points,
        reranked: stats.reranked,
        fallback_rescans: stats.fallback_rescans,
    }
}

fn in_memory_corpus(n: usize, rng: &mut StdRng) -> QuantizedScan {
    // Clustered like the synthetic segment corpus: quantization ranges
    // span all centers, so the per-dim deltas are realistic rather than
    // degenerate-uniform.
    let centers: Vec<Vec<f64>> = (0..16)
        .map(|_| (0..D).map(|_| rng.gen_range(-10.0..10.0)).collect())
        .collect();
    let flat: Vec<f64> = (0..n)
        .flat_map(|i| {
            let c = &centers[i % centers.len()];
            c.iter()
                .map(|&base| base + rng.gen_range(-1.0..1.0))
                .collect::<Vec<f64>>()
        })
        .collect();
    QuantizedScan::from_flat(&flat, D)
}

fn run_in_memory(n: usize, reps: usize) -> Timed {
    let mut rng = StdRng::seed_from_u64(42);
    let scan = in_memory_corpus(n, &mut rng);
    let query = feedback_query(&scan);
    let timed = time_pair(&scan, &query, reps);
    println!(
        "in-memory  n={n:>9}  exact {:>9.2} ms  two-phase {:>9.2} ms  speedup {:>5.2}x  \
         (phase1 {} reranked {} rescans {})",
        timed.exact_ms,
        timed.two_phase_ms,
        timed.exact_ms / timed.two_phase_ms,
        timed.phase1_points,
        timed.reranked,
        timed.fallback_rescans,
    );
    timed
}

struct SegmentRun {
    seal_s: f64,
    load_s: f64,
    segment_bytes: u64,
    timed: Timed,
}

fn run_segment(n: u64, reps: usize) -> SegmentRun {
    let path = std::env::temp_dir().join(format!("bench_quantize_{}.qseg", std::process::id()));
    let start = Instant::now();
    synth_segment(&path, n, D, 16, 42).expect("seal synthetic segment");
    let seal_s = start.elapsed().as_secs_f64();
    let segment_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);

    let start = Instant::now();
    let scan = load_segment_quantized(&path).expect("load v2 segment");
    let load_s = start.elapsed().as_secs_f64();
    assert_eq!(scan.len() as u64, n);

    let query = feedback_query(&scan);
    let timed = time_pair(&scan, &query, reps);
    println!(
        "segment    n={n:>9}  seal {seal_s:>6.1} s  load {load_s:>6.2} s  \
         exact {:>9.2} ms  two-phase {:>9.2} ms  speedup {:>5.2}x",
        timed.exact_ms,
        timed.two_phase_ms,
        timed.exact_ms / timed.two_phase_ms,
    );
    std::fs::remove_file(&path).ok();
    SegmentRun {
        seal_s,
        load_s,
        segment_bytes,
        timed,
    }
}

fn timed_json(t: &Timed, indent: &str) -> String {
    format!(
        "{indent}\"exact_ms\": {:.3},\n\
         {indent}\"two_phase_ms\": {:.3},\n\
         {indent}\"speedup\": {:.3},\n\
         {indent}\"phase1_points\": {},\n\
         {indent}\"reranked\": {},\n\
         {indent}\"fallback_rescans\": {}",
        t.exact_ms,
        t.two_phase_ms,
        t.exact_ms / t.two_phase_ms,
        t.phase1_points,
        t.reranked,
        t.fallback_rescans,
    )
}

fn write_json(path: &str, in_memory: &Timed, segment: &SegmentRun) {
    let s = format!(
        "{{\n  \"bench\": \"quantize\",\n\
         {fingerprint}\
         \"scheme\": \"diagonal\",\n  \
         \"g\": {G},\n  \"d\": {D},\n  \"k\": {K},\n  \
         \"in_memory\": {{\n    \"n\": {FULL_N},\n{imem}\n  }},\n  \
         \"segment\": {{\n    \"n\": {FULL_SEGMENT_N},\n    \
         \"segment_bytes\": {bytes},\n    \
         \"seal_s\": {seal:.2},\n    \"load_s\": {load:.3},\n{seg}\n  }}\n}}\n",
        fingerprint = host_fingerprint_json("  "),
        imem = timed_json(in_memory, "    "),
        bytes = segment.segment_bytes,
        seal = segment.seal_s,
        load = segment.load_s,
        seg = timed_json(&segment.timed, "    "),
    );
    std::fs::write(path, s).expect("write BENCH_quantize.json");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    if smoke {
        // Smoke mode (CI): toy sizes, one rep — bit-for-bit equality and
        // harness correctness only, no timing claims, no JSON.
        let timed = run_in_memory(SMOKE_N, 1);
        assert_eq!(timed.phase1_points, SMOKE_N as u64);
        let seg = run_segment(SMOKE_SEGMENT_N, 1);
        assert_eq!(seg.timed.phase1_points, SMOKE_SEGMENT_N);
        println!("quantize bench smoke: ok");
        return;
    }
    let in_memory = run_in_memory(FULL_N, 5);
    let segment = run_segment(FULL_SEGMENT_N, 3);
    write_json("BENCH_quantize.json", &in_memory, &segment);
    let speedup = in_memory.exact_ms / in_memory.two_phase_ms;
    println!("\nheadline (g={G}, d={D}, n={FULL_N}): {speedup:.2}x two-phase over exact");
    assert!(
        speedup >= 3.0,
        "two-phase speedup {speedup:.2}x below the 3x acceptance bar"
    );
    println!("wrote BENCH_quantize.json");
}
