//! Core-engine stage benchmarks: Bayesian classification (Algorithm 2),
//! T² cluster merging (Algorithm 3), hierarchical seeding, and the
//! leave-one-out quality metric (Sec. 4.5). These are the per-iteration
//! costs behind Figures 6–7 and the synthetic grids of Figures 14–19.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use qcluster_core::hierarchical::hierarchical_clustering;
use qcluster_core::merge::{merge_clusters, pair_t2};
use qcluster_core::{
    leave_one_out_error_rate, BayesianClassifier, Cluster, CovarianceScheme, FeedbackPoint,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DIM: usize = 4;

fn blob(center: f64, n: usize, base: usize, rng: &mut StdRng) -> Vec<FeedbackPoint> {
    (0..n)
        .map(|k| {
            let v: Vec<f64> = (0..DIM)
                .map(|_| center + rng.gen_range(-0.3..0.3))
                .collect();
            FeedbackPoint::new(base + k, v, 1.0)
        })
        .collect()
}

fn make_clusters(g: usize, per: usize, rng: &mut StdRng) -> Vec<Cluster> {
    (0..g)
        .map(|i| Cluster::from_points(blob(i as f64 * 3.0, per, i * 1000, rng)).expect("non-empty"))
        .collect()
}

fn bench_classifier(c: &mut Criterion) {
    let mut group = c.benchmark_group("bayesian_classifier");
    let mut rng = StdRng::seed_from_u64(1);
    for &g in &[2usize, 5, 10] {
        let clusters = make_clusters(g, 12, &mut rng);
        let x: Vec<f64> = (0..DIM).map(|_| rng.gen_range(0.0..3.0)).collect();
        for (scheme, label) in [
            (CovarianceScheme::default_diagonal(), "diag"),
            (CovarianceScheme::default_full(), "full"),
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("fit+classify/{label}"), g),
                &clusters,
                |b, cl| {
                    b.iter(|| {
                        let clf = BayesianClassifier::fit(cl, scheme, 0.05).expect("fits");
                        black_box(clf.classify(cl, black_box(&x)))
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_merge_pass(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge_pass");
    let mut rng = StdRng::seed_from_u64(2);
    for &g in &[4usize, 8, 16] {
        let clusters = make_clusters(g, 10, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(g), &clusters, |b, cl| {
            b.iter(|| {
                let mut working = cl.clone();
                merge_clusters(
                    &mut working,
                    CovarianceScheme::default_diagonal(),
                    0.05,
                    3,
                    0,
                    0.1,
                )
                .expect("merge runs");
                black_box(working.len())
            })
        });
    }
    group.finish();
}

fn bench_pair_t2(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let clusters = make_clusters(2, 30, &mut rng);
    for (scheme, label) in [
        (CovarianceScheme::default_diagonal(), "t2_diag"),
        (CovarianceScheme::default_full(), "t2_full"),
    ] {
        c.bench_function(label, |b| {
            b.iter(|| black_box(pair_t2(&clusters[0], &clusters[1], scheme).expect("t2")))
        });
    }
}

fn bench_hierarchical(c: &mut Criterion) {
    let mut group = c.benchmark_group("hierarchical_seed");
    let mut rng = StdRng::seed_from_u64(4);
    for &n in &[10usize, 30, 60] {
        let mut pts = blob(0.0, n / 2, 0, &mut rng);
        pts.extend(blob(5.0, n - n / 2, 1000, &mut rng));
        group.bench_with_input(BenchmarkId::from_parameter(n), &pts, |b, pts| {
            b.iter(|| black_box(hierarchical_clustering(pts.clone(), 5, 0.5).expect("clusters")))
        });
    }
    group.finish();
}

fn bench_leave_one_out(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let clusters = make_clusters(3, 10, &mut rng);
    c.bench_function("leave_one_out_error", |b| {
        b.iter(|| {
            black_box(
                leave_one_out_error_rate(&clusters, CovarianceScheme::default_diagonal(), 0.05)
                    .expect("computes"),
            )
        })
    });
}

criterion_group!(
    benches,
    bench_classifier,
    bench_merge_pass,
    bench_pair_t2,
    bench_hierarchical,
    bench_leave_one_out
);
criterion_main!(benches);
