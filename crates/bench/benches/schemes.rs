//! Figure 6 as a criterion benchmark: one full feedback iteration
//! (feed + query compile + k-NN) under the diagonal vs the full-inverse
//! covariance scheme, on the color-moment image dataset.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use qcluster_bench::{image_dataset, Scale};
use qcluster_core::{CovarianceScheme, QclusterConfig, QclusterEngine};
use qcluster_eval::{FeedbackSession, SimulatedUser};
use qcluster_imaging::FeatureKind;
use qcluster_index::EuclideanQuery;

fn bench_schemes(c: &mut Criterion) {
    let ds = image_dataset(Scale::Quick, FeatureKind::ColorMoments);
    let query_image = 0usize;
    // Pre-compute the initial round's marked set once.
    let initial = EuclideanQuery::new(ds.vector(query_image).to_vec());
    let (nn, _) = ds.tree().knn(&initial, 30, None);
    let retrieved: Vec<usize> = nn.iter().map(|n| n.id).collect();
    let user = SimulatedUser::new(&ds, ds.category(query_image));
    let marked = user.mark(&retrieved);
    assert!(!marked.is_empty(), "workload must mark something");

    let mut group = c.benchmark_group("fig6_scheme_iteration");
    for (scheme, label) in [
        (CovarianceScheme::default_diagonal(), "diagonal"),
        (CovarianceScheme::default_full(), "inverse"),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &scheme, |b, &s| {
            b.iter(|| {
                let mut engine = QclusterEngine::new(QclusterConfig {
                    scheme: s,
                    ..QclusterConfig::default()
                });
                engine.feed(black_box(&marked)).expect("feeds");
                let q = engine.query().expect("compiles");
                black_box(ds.tree().knn(&q, 30, None))
            })
        });
    }
    group.finish();
}

fn bench_full_session(c: &mut Criterion) {
    let ds = image_dataset(Scale::Quick, FeatureKind::ColorMoments);
    let mut group = c.benchmark_group("fig6_full_session");
    group.sample_size(20);
    for (scheme, label) in [
        (CovarianceScheme::default_diagonal(), "diagonal"),
        (CovarianceScheme::default_full(), "inverse"),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &scheme, |b, &s| {
            b.iter(|| {
                let session = FeedbackSession::new(&ds, 30);
                let mut engine = QclusterEngine::new(QclusterConfig {
                    scheme: s,
                    ..QclusterConfig::default()
                });
                black_box(session.run(&mut engine, 0, 3).expect("session"))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schemes, bench_full_session);
criterion_main!(benches);
