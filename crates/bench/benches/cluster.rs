//! Cluster scatter–gather benchmark, machine-readable.
//!
//! The same deterministic corpus is served two ways on localhost: one
//! `qcluster-net` node holding everything, and a 3-node cluster behind
//! a `qcluster-router` (one partition per node). The same k-NN batch
//! runs against both; the router's answers are checked bit-for-bit
//! against the single node's before any timing is reported, so the
//! numbers can only come from a correct cluster.
//!
//! Results are written to `BENCH_cluster.json` in the working
//! directory with the host fingerprint (cores, target-cpu, timestamp)
//! embedded — scatter–gather only beats a single node when partitions
//! execute on real parallel hardware, so the artifact must be
//! auditable for core count on its own. `-- --test` runs a smoke pass
//! on a tiny corpus without writing the JSON.

use qcluster_net::{Client, ClientConfig, Server, ServerConfig};
use qcluster_router::{
    synthetic_point, synthetic_slice, Partition, Router, RouterConfig, ShardMap,
};
use qcluster_service::{Request, Response, Service, ServiceConfig, ShardKind};
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

const DIM: usize = 8;
const FULL_N: usize = 30_000;
const SMOKE_N: usize = 1_200;
const K: usize = 10;
const NODES: usize = 3;

fn spawn_node(points: &[Vec<f64>]) -> Server {
    let service = Arc::new(
        Service::new(
            points,
            ServiceConfig {
                num_shards: 2,
                shard_kind: ShardKind::Tree,
                ..ServiceConfig::default()
            },
        )
        .expect("node service"),
    );
    Server::bind("127.0.0.1:0", service, ServerConfig::default()).expect("node server")
}

fn client_config() -> ClientConfig {
    ClientConfig {
        read_timeout: Duration::from_secs(60),
        ..ClientConfig::default()
    }
}

struct Row {
    mode: &'static str,
    queries: usize,
    ns_per_query: f64,
    qps: f64,
}

fn run(total: usize, num_queries: usize, reps: usize) -> Vec<Row> {
    let queries: Vec<Vec<f64>> = (0..num_queries)
        .map(|i| synthetic_point(1_000_000 + i, DIM))
        .collect();

    // Single node over the whole corpus.
    let whole = synthetic_slice(0, total, DIM);
    let single_server = spawn_node(&whole);
    let mut single_client =
        Client::connect(single_server.local_addr(), client_config()).expect("single client");
    let Response::SessionCreated {
        session: single_session,
    } = single_client
        .call(&Request::CreateSession { engine: None })
        .expect("single session")
    else {
        panic!("expected session")
    };

    // 3-node cluster over the same ids, partitioned contiguously.
    let per_node = total / NODES;
    let mut servers = Vec::new();
    let mut partitions = Vec::new();
    for node in 0..NODES {
        let id_base = node * per_node;
        let count = if node + 1 == NODES {
            total - id_base
        } else {
            per_node
        };
        let server = spawn_node(&synthetic_slice(id_base, count, DIM));
        partitions.push(Partition {
            id_base,
            replicas: vec![server.local_addr()],
        });
        servers.push(server);
    }
    let router = Router::new(
        ShardMap::new(partitions).expect("map"),
        RouterConfig {
            node_deadline: Duration::from_secs(60),
            client: client_config(),
            ..RouterConfig::default()
        },
    )
    .expect("router");
    let router_session = router.create_session(None).expect("router session");

    // Correctness gate before timing: bit-for-bit equality on every
    // query of one full pass.
    for q in &queries {
        let Response::Neighbors {
            neighbors: want, ..
        } = single_client
            .call(&Request::Query {
                session: single_session,
                k: K,
                vector: Some(q.clone()),
                deadline_ms: None,
            })
            .expect("single query")
        else {
            panic!("expected neighbors")
        };
        let report = router
            .query(router_session, K, Some(q.clone()), None)
            .expect("router query");
        let Response::Neighbors {
            neighbors: got,
            nodes_ok,
            nodes_total,
            ..
        } = report.response
        else {
            panic!("expected neighbors")
        };
        assert_eq!((nodes_ok, nodes_total), (NODES, NODES));
        assert_eq!(got.len(), want.len());
        for (a, b) in got.iter().zip(want.iter()) {
            assert_eq!(a.id, b.id, "cluster must equal single node");
            assert_eq!(a.distance.to_bits(), b.distance.to_bits());
        }
    }

    // Timed passes: best of `reps` for each mode.
    let mut best_single = f64::INFINITY;
    let mut best_cluster = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        for q in &queries {
            let response = single_client
                .call(&Request::Query {
                    session: single_session,
                    k: K,
                    vector: Some(q.clone()),
                    deadline_ms: None,
                })
                .expect("single query");
            black_box(&response);
        }
        best_single = best_single.min(start.elapsed().as_nanos() as f64 / num_queries as f64);

        let start = Instant::now();
        for q in &queries {
            let report = router
                .query(router_session, K, Some(q.clone()), None)
                .expect("router query");
            black_box(&report);
        }
        best_cluster = best_cluster.min(start.elapsed().as_nanos() as f64 / num_queries as f64);
    }

    drop(single_client);
    drop(router);
    assert!(single_server.shutdown().clean(), "single node shutdown");
    for server in servers {
        assert!(server.shutdown().clean(), "cluster node shutdown");
    }

    let row = |mode, ns: f64| Row {
        mode,
        queries: num_queries,
        ns_per_query: ns,
        qps: 1e9 / ns,
    };
    vec![
        row("single_node", best_single),
        row("cluster_3_nodes", best_cluster),
    ]
}

fn write_json(path: &str, n: usize, rows: &[Row]) {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"cluster\",\n");
    s.push_str(&format!("  \"corpus_points\": {n},\n"));
    s.push_str(&format!("  \"dim\": {DIM},\n"));
    s.push_str(&format!("  \"k\": {K},\n"));
    s.push_str(&format!("  \"nodes\": {NODES},\n"));
    s.push_str(&qcluster_bench::host_fingerprint_json("  "));
    s.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"mode\": \"{}\", \"queries\": {}, \"ns_per_query\": {:.0}, \
             \"queries_per_sec\": {:.0}}}{}\n",
            r.mode,
            r.queries,
            r.ns_per_query,
            r.qps,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s).expect("write BENCH_cluster.json");
}

fn cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    if smoke {
        // Smoke mode (CI): tiny corpus, one rep, harness + equality
        // checks only — no timing claims, no JSON.
        let rows = run(SMOKE_N, 8, 1);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.ns_per_query > 0.0));
        println!("cluster bench smoke: ok ({} modes)", rows.len());
        return;
    }
    let rows = run(FULL_N, 200, 3);
    write_json("BENCH_cluster.json", FULL_N, &rows);
    let single = &rows[0];
    let cluster = &rows[1];
    println!(
        "headline (n={FULL_N}, k={K}, {NODES} nodes, {} cores): cluster at {:.2}x \
         single-node latency per query (answers bit-for-bit identical)",
        cores(),
        cluster.ns_per_query / single.ns_per_query
    );
    // On a single-core host the scatter adds wire + router overhead on
    // top of serialized k-NN work, so no speedup bar is enforced; the
    // artifact records the core count for the run that claims one.
    println!("wrote BENCH_cluster.json");
}
