//! Distance-kernel microbenchmarks.
//!
//! The k-NN search evaluates the query distance against every candidate;
//! these kernels dominate Figure 6's CPU comparison. Measures:
//!
//! - the disjunctive aggregate (Eq. 5) under the diagonal and full-inverse
//!   schemes at several cluster counts `g`,
//! - the same aggregate through `distance_batch` over 256-point blocks,
//!   reported per point — the blocked-kernel win over scalar dispatch,
//! - MARS's weighted Euclidean (the QPM query),
//! - FALCON's aggregate as the relevant-set size grows — the structural
//!   cost the paper criticizes ("all relevant points are query points").

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use qcluster_baselines::{AggregateKind, MultiPointQuery};
use qcluster_core::{Cluster, CovarianceScheme, DisjunctiveQuery, FeedbackPoint};
use qcluster_index::{QueryDistance, WeightedEuclideanQuery};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DIM: usize = 4;

fn random_point(rng: &mut StdRng) -> Vec<f64> {
    (0..DIM).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

fn make_clusters(g: usize, rng: &mut StdRng) -> Vec<Cluster> {
    (0..g)
        .map(|i| {
            let center: Vec<f64> = (0..DIM).map(|_| rng.gen_range(-1.0..1.0)).collect();
            Cluster::from_points(
                (0..10)
                    .map(|k| {
                        let v: Vec<f64> = center
                            .iter()
                            .map(|&c| c + rng.gen_range(-0.2..0.2))
                            .collect();
                        FeedbackPoint::new(i * 100 + k, v, 1.0)
                    })
                    .collect(),
            )
            .expect("non-empty")
        })
        .collect()
}

fn bench_disjunctive(c: &mut Criterion) {
    let mut group = c.benchmark_group("disjunctive_distance");
    let mut rng = StdRng::seed_from_u64(1);
    for &g in &[1usize, 3, 5, 10] {
        let clusters = make_clusters(g, &mut rng);
        let x = random_point(&mut rng);
        for (scheme, label) in [
            (CovarianceScheme::default_diagonal(), "diagonal"),
            (CovarianceScheme::default_full(), "inverse"),
        ] {
            let q = DisjunctiveQuery::new(&clusters, scheme).expect("compiles");
            group.bench_with_input(BenchmarkId::new(label, g), &q, |b, q| {
                b.iter(|| black_box(q.distance(black_box(&x))))
            });
        }
    }
    group.finish();
}

/// Scalar per-point dispatch vs one `distance_batch` call per 256-point
/// block, over the same 1024-point corpus (reported per iteration of the
/// whole corpus; divide by 1024 for per-point cost).
fn bench_disjunctive_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("disjunctive_scalar_vs_batch");
    let mut rng = StdRng::seed_from_u64(4);
    const N: usize = 1024;
    const BLOCK: usize = 256;
    let corpus: Vec<f64> = (0..N * DIM).map(|_| rng.gen_range(-1.0..1.0)).collect();
    for &g in &[1usize, 4, 8] {
        let clusters = make_clusters(g, &mut rng);
        for (scheme, label) in [
            (CovarianceScheme::default_diagonal(), "diagonal"),
            (CovarianceScheme::default_full(), "inverse"),
        ] {
            let q = DisjunctiveQuery::new(&clusters, scheme).expect("compiles");
            group.bench_with_input(
                BenchmarkId::new(format!("{label}_scalar"), g),
                &q,
                |b, q| {
                    b.iter(|| {
                        let mut acc = 0.0;
                        for p in 0..N {
                            acc += q.distance(&corpus[p * DIM..(p + 1) * DIM]);
                        }
                        black_box(acc)
                    })
                },
            );
            group.bench_with_input(BenchmarkId::new(format!("{label}_batch"), g), &q, |b, q| {
                let mut out = vec![0.0f64; BLOCK];
                b.iter(|| {
                    let mut acc = 0.0;
                    for block in corpus.chunks(BLOCK * DIM) {
                        let count = block.len() / DIM;
                        q.distance_batch(block, DIM, &mut out[..count]);
                        acc += out[..count].iter().sum::<f64>();
                    }
                    black_box(acc)
                })
            });
        }
    }
    group.finish();
}

fn bench_weighted_euclidean(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let q = WeightedEuclideanQuery::new(
        random_point(&mut rng),
        (0..DIM).map(|_| rng.gen_range(0.1..2.0)).collect(),
    );
    let x = random_point(&mut rng);
    c.bench_function("weighted_euclidean_distance", |b| {
        b.iter(|| black_box(q.distance(black_box(&x))))
    });
}

fn bench_falcon_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("falcon_aggregate_vs_relevant_set");
    let mut rng = StdRng::seed_from_u64(3);
    for &n in &[5usize, 20, 80] {
        let centers: Vec<Vec<f64>> = (0..n).map(|_| random_point(&mut rng)).collect();
        let q = MultiPointQuery::uniform(centers, AggregateKind::FuzzyOr { alpha: -5.0 });
        let x = random_point(&mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &q, |b, q| {
            b.iter(|| black_box(q.distance(black_box(&x))))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_disjunctive,
    bench_disjunctive_batch,
    bench_weighted_euclidean,
    bench_falcon_scaling
);
criterion_main!(benches);
