//! `repro` — regenerates every table and figure of the Qcluster paper.
//!
//! ```text
//! repro <experiment>... [--paper-scale]
//!
//! experiments:
//!   fig5     disjunctive query on the uniform cube (Example 3)
//!   fig6     CPU time: inverse vs diagonal covariance scheme
//!   fig7     execution cost of the three approaches
//!   fig8     P–R per iteration, color moments
//!   fig9     P–R per iteration, co-occurrence texture
//!   fig10    recall per iteration, three approaches, color feature
//!   fig11    recall per iteration, three approaches, texture feature
//!   fig12    precision per iteration, three approaches, color feature
//!   fig13    precision per iteration, three approaches, texture feature
//!   fig14    classification error, inverse matrix, spherical clusters
//!   fig15    classification error, inverse matrix, elliptical clusters
//!   fig16    classification error, diagonal matrix, spherical clusters
//!   fig17    classification error, diagonal matrix, elliptical clusters
//!   fig18    Q–Q plot of T² vs c², inverse matrix
//!   fig19    Q–Q plot of T² vs c², diagonal matrix
//!   table2   T² accuracy, same-mean pairs
//!   table3   T² accuracy, different-mean pairs
//!   headline recall/precision comparison on the semantic-gap workload
//!   ablation design-choice quality ablations (aggregate rule, scheme,
//!            merge forcing)
//!   all      everything above
//!
//! options:
//!   --paper-scale   run at the paper's workload sizes
//!   --csv <dir>     additionally write each experiment's data series as
//!                   CSV files into <dir> (for external plotting)
//! ```

use qcluster_bench::{headline_workload, image_dataset, semantic_gap_dataset, workload, Scale};
use qcluster_core::CovarianceScheme;
use qcluster_eval::experiments::*;
use qcluster_eval::synthetic::ClusterShape;
use qcluster_eval::Dataset;
use qcluster_imaging::FeatureKind;
use qcluster_stats::hotelling::PooledScheme;

use std::io::Write as _;
use std::path::PathBuf;

/// Optional CSV output directory, set from `--csv <dir>`.
static CSV_DIR: std::sync::OnceLock<Option<PathBuf>> = std::sync::OnceLock::new();

/// Writes one CSV file into the `--csv` directory (no-op without it).
fn write_csv(name: &str, header: &str, rows: &[String]) {
    let Some(Some(dir)) = CSV_DIR.get().map(|d| d.as_ref()) else {
        return;
    };
    let path = dir.join(name);
    let mut file = match std::fs::File::create(&path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot write {}: {e}", path.display());
            return;
        }
    };
    let _ = writeln!(file, "{header}");
    for r in rows {
        let _ = writeln!(file, "{r}");
    }
    println!("(wrote {})", path.display());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);
    let csv_dir = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from);
    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).expect("csv directory creates");
    }
    CSV_DIR.set(csv_dir).expect("set once");
    let args: Vec<String> = {
        // Drop the `--csv <dir>` pair so the dir isn't read as an experiment.
        let mut out = Vec::new();
        let mut skip = false;
        for (i, a) in args.iter().enumerate() {
            if skip {
                skip = false;
                continue;
            }
            if a == "--csv" {
                skip = true;
                continue;
            }
            let _ = i;
            out.push(a.clone());
        }
        out
    };
    let mut wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    if wanted.is_empty() || wanted.contains(&"all") {
        wanted = vec![
            "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
            "fig15", "fig16", "fig17", "fig18", "fig19", "table2", "table3", "headline",
            "ablation",
        ];
    }
    println!("# Qcluster paper reproduction — scale: {scale:?}\n");
    for w in wanted {
        match w {
            "fig5" => run_fig5(scale),
            "fig6" => run_fig6(scale),
            "fig7" => run_fig7(scale),
            "fig8" => run_fig89(scale, FeatureKind::ColorMoments, "Figure 8"),
            "fig9" => run_fig89(scale, FeatureKind::CooccurrenceTexture, "Figure 9"),
            "fig10" => run_fig1013(scale, FeatureKind::ColorMoments, true, "Figure 10"),
            "fig11" => run_fig1013(scale, FeatureKind::CooccurrenceTexture, true, "Figure 11"),
            "fig12" => run_fig1013(scale, FeatureKind::ColorMoments, false, "Figure 12"),
            "fig13" => run_fig1013(scale, FeatureKind::CooccurrenceTexture, false, "Figure 13"),
            "fig14" => run_fig1417(
                scale,
                ClusterShape::Spherical,
                CovarianceScheme::default_full(),
                "Figure 14 (inverse matrix, spherical)",
            ),
            "fig15" => run_fig1417(
                scale,
                ClusterShape::Elliptical,
                CovarianceScheme::default_full(),
                "Figure 15 (inverse matrix, elliptical)",
            ),
            "fig16" => run_fig1417(
                scale,
                ClusterShape::Spherical,
                CovarianceScheme::default_diagonal(),
                "Figure 16 (diagonal matrix, spherical)",
            ),
            "fig17" => run_fig1417(
                scale,
                ClusterShape::Elliptical,
                CovarianceScheme::default_diagonal(),
                "Figure 17 (diagonal matrix, elliptical)",
            ),
            "fig18" => run_fig1819(scale, PooledScheme::FullInverse, "Figure 18"),
            "fig19" => run_fig1819(scale, PooledScheme::Diagonal, "Figure 19"),
            "table2" => run_table23(scale, table2_3::MeanHypothesis::Same, "Table 2"),
            "table3" => run_table23(scale, table2_3::MeanHypothesis::Different, "Table 3"),
            "headline" => run_headline(scale),
            "ablation" => run_ablation(scale),
            other => eprintln!("unknown experiment: {other}"),
        }
    }
}

fn run_fig5(scale: Scale) {
    println!("## Figure 5 — disjunctive query on synthetic uniform data\n");
    let cfg = match scale {
        Scale::Quick => fig5::Fig5Config::default(),
        Scale::Paper => fig5::Fig5Config::paper_scale(),
    };
    let r = fig5::run(&cfg);
    println!("points in either unit ball : {}", r.in_or_region);
    println!(
        "top-N aggregate overlap    : {:.1}% (N = region size)",
        100.0 * r.overlap_fraction
    );
    let ball0 = r.retrieved.iter().filter(|(_, b)| *b == 0).count();
    let ball1 = r.retrieved.iter().filter(|(_, b)| *b == 1).count();
    println!("retrieved near (-1,-1,-1)  : {ball0}");
    println!("retrieved near ( 1, 1, 1)  : {ball1}");
    println!("(paper: 820 of 10,000 points retrieved, both balls populated)\n");
}

fn run_fig6(scale: Scale) {
    println!("## Figure 6 — CPU time per iteration, inverse vs diagonal scheme (color)\n");
    let ds = image_dataset(scale, FeatureKind::ColorMoments);
    let rows = fig6::run(&ds, &workload(scale));
    println!(
        "{:<10} {:>14} {:>14} {:>8}",
        "iteration", "diagonal(µs)", "inverse(µs)", "ratio"
    );
    for row in rows {
        let d = row.diagonal.as_micros() as f64;
        let i = row.inverse.as_micros() as f64;
        println!(
            "{:<10} {:>14.0} {:>14.0} {:>8.2}",
            row.iteration,
            d,
            i,
            i / d.max(1.0)
        );
    }
    println!("(paper: diagonal scheme significantly cheaper — ratio > 1 expected)\n");
}

fn run_fig7(scale: Scale) {
    println!("## Figure 7 — execution cost of the three approaches\n");
    let ds = image_dataset(scale, FeatureKind::ColorMoments);
    let costs = fig7::run(&ds, &workload(scale));
    println!("mean simulated disk reads per iteration:");
    print!("{:<10}", "iter");
    for c in &costs {
        print!("{:>12}", c.name);
    }
    println!();
    let iters = costs[0].disk_reads.len();
    for i in 0..iters {
        print!("{:<10}", i);
        for c in &costs {
            print!("{:>12.1}", c.disk_reads[i]);
        }
        println!();
    }
    println!("(paper: Qcluster's cached multipoint k-NN ≪ centroid re-query)\n");
}

fn run_fig89(scale: Scale, kind: FeatureKind, title: &str) {
    println!("## {title} — precision–recall per iteration ({kind:?})\n");
    let ds = image_dataset(scale, kind);
    let res = fig8_9::run(&ds, &workload(scale));
    println!(
        "{:<10} {:>10} {:>22}",
        "iteration", "AUPR", "P@k / R@k (full depth)"
    );
    for (i, curve) in res.curves.iter().enumerate() {
        let last = curve.last().expect("non-empty curve");
        println!(
            "{:<10} {:>10.4} {:>11.3} / {:.3}",
            i,
            res.aupr(i),
            last.precision,
            last.recall
        );
    }
    let mut rows = Vec::new();
    for (i, curve) in res.curves.iter().enumerate() {
        for p in curve {
            rows.push(format!("{i},{},{:.6},{:.6}", p.n, p.recall, p.precision));
        }
    }
    write_csv(
        &format!("pr_{kind:?}.csv"),
        "iteration,depth,recall,precision",
        &rows,
    );
    println!("full P–R series (iteration 0 and final):");
    for &it in &[0usize, res.curves.len() - 1] {
        let pts: Vec<String> = res.curves[it]
            .iter()
            .step_by((res.curves[it].len() / 10).max(1))
            .map(|p| format!("({:.2},{:.2})", p.recall, p.precision))
            .collect();
        println!("  iter {it}: {}", pts.join(" "));
    }
    println!("(paper: quality improves every iteration; biggest jump at iteration 1)\n");
}

fn run_fig1013(scale: Scale, kind: FeatureKind, recall: bool, title: &str) {
    let metric = if recall { "recall" } else { "precision" };
    println!("## {title} — {metric} of the three approaches ({kind:?})\n");
    let ds = image_dataset(scale, kind);
    print_comparison(&ds, scale, recall, &format!("{kind:?}"));
    println!("(see `headline` for the semantic-gap workload where the margins match the paper)\n");
}

fn run_headline(scale: Scale) {
    println!("## Headline — three approaches on the semantic-gap workload\n");
    let ds = semantic_gap_dataset(scale);
    print_headline_comparison(&ds, scale);
    println!("(paper: Qcluster ≈ +22% recall vs QEX, ≈ +34% vs QPM at the final iteration)\n");
}

fn print_headline_comparison(ds: &Dataset, scale: Scale) {
    print_results(
        &fig10_13::run_all(ds, &headline_workload(scale)),
        true,
        "semantic_gap",
    )
}

fn print_comparison(ds: &Dataset, scale: Scale, recall: bool, tag: &str) {
    print_results(&fig10_13::run(ds, &workload(scale)), recall, tag)
}

fn print_results(results: &[fig10_13::ApproachQuality], recall: bool, tag: &str) {
    let iters = results[0].recall.len();
    {
        let metric = if recall { "recall" } else { "precision" };
        let header = std::iter::once("iteration".to_string())
            .chain(results.iter().map(|r| r.name.to_string()))
            .collect::<Vec<_>>()
            .join(",");
        let rows: Vec<String> = (0..iters)
            .map(|i| {
                std::iter::once(i.to_string())
                    .chain(results.iter().map(|r| {
                        format!("{:.6}", if recall { r.recall[i] } else { r.precision[i] })
                    }))
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .collect();
        write_csv(&format!("comparison_{tag}_{metric}.csv"), &header, &rows);
    }
    print!("{:<10}", "iter");
    for r in results {
        print!("{:>12}", r.name);
    }
    println!();
    for i in 0..iters {
        print!("{:<10}", i);
        for r in results {
            let v = if recall { r.recall[i] } else { r.precision[i] };
            print!("{:>12.4}", v);
        }
        println!();
    }
    let last = iters - 1;
    let get = |name: &str| {
        results
            .iter()
            .find(|r| r.name == name)
            .map(|r| {
                if recall {
                    r.recall[last]
                } else {
                    r.precision[last]
                }
            })
            .unwrap_or(f64::NAN)
    };
    let (qc, qpm, qex) = (get("qcluster"), get("qpm"), get("qex"));
    println!(
        "final-iteration improvement: vs QEX {:+.1}%, vs QPM {:+.1}%",
        100.0 * (qc / qex - 1.0),
        100.0 * (qc / qpm - 1.0)
    );
}

fn run_ablation(scale: Scale) {
    println!("## Ablations — design choices (DESIGN.md §7) on the semantic-gap workload\n");
    let ds = semantic_gap_dataset(scale);
    let cfg = headline_workload(scale);
    let show = |title: &str, rows: &[ablation::AblationRow]| {
        println!("{title}:");
        for r in rows {
            let series: Vec<String> = r.recall.iter().map(|v| format!("{v:.3}")).collect();
            println!("  {:<24} {}", r.variant, series.join(" -> "));
        }
        println!();
    };
    show(
        "aggregate combination rule (same clusters, different ranking)",
        &ablation::aggregate_rule_sweep(&ds, &cfg),
    );
    show(
        "covariance scheme (retrieval quality)",
        &ablation::scheme_quality_sweep(&ds, &cfg),
    );
    show(
        "merge forcing (Algorithm 3 step 8)",
        &ablation::merge_forcing_sweep(&ds, &cfg),
    );
    show(
        "QPM negative-feedback weight (Rocchio γ)",
        &ablation::negative_feedback_sweep(&ds, &cfg),
    );
    let (loo_error, mean_clusters) = ablation::clustering_quality(&ds, &cfg);
    println!(
        "clustering quality (Sec. 4.5): leave-one-out error {loo_error:.3}, \
         mean final cluster count {mean_clusters:.1}\n"
    );
}

fn scheme_tag(scheme: CovarianceScheme) -> &'static str {
    match scheme {
        CovarianceScheme::Diagonal { .. } => "diagonal",
        CovarianceScheme::FullInverse { .. } => "inverse",
    }
}

fn run_fig1417(scale: Scale, shape: ClusterShape, scheme: CovarianceScheme, title: &str) {
    println!("## {title} — classification error rate\n");
    let cfg = match scale {
        Scale::Quick => fig14_17::Fig1417Config::default(),
        Scale::Paper => fig14_17::Fig1417Config::paper_scale(),
    };
    let cells = fig14_17::run(&cfg, shape, scheme);
    write_csv(
        &format!("error_{shape:?}_{}.csv", scheme_tag(scheme)),
        "dim,distance,error,variance_ratio",
        &cells
            .iter()
            .map(|c| {
                format!(
                    "{},{},{:.6},{:.6}",
                    c.dim, c.distance, c.error_rate, c.variance_ratio
                )
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "{:<6} {:>10} {:>12} {:>12}",
        "dim", "distance", "error", "var.ratio"
    );
    for c in cells {
        println!(
            "{:<6} {:>10.1} {:>12.3} {:>12.3}",
            c.dim, c.distance, c.error_rate, c.variance_ratio
        );
    }
    println!("(paper: error falls with distance, rises as dims shrink, shape-invariant)\n");
}

fn run_fig1819(scale: Scale, scheme: PooledScheme, title: &str) {
    println!("## {title} — Q–Q plot of T² vs critical distance ({scheme:?})\n");
    let cfg = fig18_19::Fig1819Config::default();
    let _ = scale; // the paper's scale (50+50 pairs) is already the default
    let r = fig18_19::run(&cfg, scheme);
    let show = |name: &str, v: &[f64]| {
        let q = |p: f64| v[((v.len() - 1) as f64 * p) as usize];
        println!(
            "{name:<22} min {:>7.2}  q25 {:>7.2}  med {:>7.2}  q75 {:>7.2}  max {:>7.2}",
            q(0.0),
            q(0.25),
            q(0.5),
            q(0.75),
            q(1.0)
        );
    };
    write_csv(
        &format!("qq_{scheme:?}.csv"),
        "critical,t2_same,t2_diff",
        &(0..r.t2_same.len())
            .map(|i| {
                format!(
                    "{:.6},{:.6},{:.6}",
                    r.critical[i], r.t2_same[i], r.t2_diff[i]
                )
            })
            .collect::<Vec<_>>(),
    );
    show("T² same-mean (F scale)", &r.t2_same);
    show("T² diff-mean (F scale)", &r.t2_diff);
    show("random-F critical", &r.critical);
    println!("Q–Q pairs (same-mean T² vs critical), every 10th:");
    for i in (0..r.t2_same.len()).step_by(10) {
        println!("  ({:.2}, {:.2})", r.critical[i], r.t2_same[i]);
    }
    println!("(paper: same-mean pairs at/below the T²=c² line, different-mean above)\n");
}

fn run_table23(scale: Scale, hypothesis: table2_3::MeanHypothesis, title: &str) {
    println!("## {title} — T² accuracy, {hypothesis:?} means\n");
    let cfg = match scale {
        Scale::Quick => table2_3::Table23Config::default(),
        Scale::Paper => table2_3::Table23Config::paper_scale(),
    };
    for (scheme, label) in [
        (PooledScheme::FullInverse, "T² with inverse matrix"),
        (PooledScheme::Diagonal, "T² with diagonal matrix"),
    ] {
        println!("{label}:");
        println!(
            "{:<6} {:>12} {:>10} {:>12} {:>14}",
            "dim", "var.ratio", "T²", "quantile-F", "error-ratio(%)"
        );
        for row in table2_3::run(&cfg, hypothesis, scheme) {
            println!(
                "{:<6} {:>12.3} {:>10.2} {:>12.2} {:>14.1}",
                row.dim, row.variation_ratio, row.mean_t2, row.quantile_f, row.error_ratio
            );
        }
        println!();
    }
}
