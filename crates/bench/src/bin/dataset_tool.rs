//! `dataset-tool` — prepare, save, inspect, and query the experiment
//! datasets without re-rendering the corpus every run.
//!
//! ```text
//! dataset-tool build   <out.json> [--texture] [--semantic-gap] [--paper-scale]
//! dataset-tool info    <file.json>
//! dataset-tool query   <file.json> <image-id> [k]
//! dataset-tool render  <category> <index> <out.ppm> [--paper-scale]
//! dataset-tool stats   <file.json> [k]
//! dataset-tool convert <in> <out>
//! dataset-tool synth   <out.qseg> <n> <dim> [--centers G] [--seed S]
//! ```
//!
//! `build` renders the corpus (or generates the semantic-gap workload),
//! extracts features, and saves the prepared dataset; `info` prints its
//! shape; `query` runs one k-NN search and prints the ranked result with
//! ground-truth annotations. `convert` re-encodes a dataset between
//! formats by output extension: `.json` (JSON), `.qseg` (a raw
//! `qcluster-store` vector segment — labels dropped), anything else the
//! binary `QDSB` dataset; the input format is sniffed automatically.
//! `synth` streams a synthetic clustered corpus at arbitrary scale
//! (e.g. the 10M-point quantize-bench corpus) straight into a sealed
//! format-v2 segment — tile-native columns plus the u8 code column —
//! without building a labeled dataset in memory.
//!
//! **Deprecation**: `convert` and `synth` have moved to the unified
//! `qcluster` binary (`qcluster convert`, `qcluster synth <out.qseg>`)
//! in `crates/cli`; the aliases here remain for compatibility and
//! forward to the same library paths.

use qcluster_bench::{image_dataset, semantic_gap_dataset, Scale};
use qcluster_eval::{
    load_dataset, load_dataset_auto, save_dataset, save_dataset_binary, RelevanceOracle,
};
use qcluster_imaging::FeatureKind;
use qcluster_index::EuclideanQuery;
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("usage: dataset-tool <build|info|query> ...");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "build" => build(&args[1..]),
        "info" => info(&args[1..]),
        "query" => query(&args[1..]),
        "render" => render(&args[1..]),
        "stats" => stats(&args[1..]),
        "convert" => convert(&args[1..]),
        "synth" => synth(&args[1..]),
        other => Err(format!("unknown command: {other}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn stats(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("stats needs a file path")?;
    let k: usize = args
        .get(1)
        .map_or(Ok(50), |s| s.parse())
        .map_err(|_| "k must be an integer")?;
    let dataset = load_dataset(Path::new(path)).map_err(|e| e.to_string())?;
    let d = qcluster_eval::diagnostics::analyze(&dataset, k.min(dataset.len()));
    println!("categories            : {}", d.categories.len());
    println!("mean within-spread    : {:.4}", d.mean_within);
    println!("mean between-centroid : {:.4}", d.mean_between);
    println!("separation ratio      : {:.2}", d.separation_ratio());
    println!("k-NN reach (k={})     : {:.4}", d.reach_k, d.knn_reach);
    println!(
        "multimodal fraction   : {:.2} (bimodality ≥ 4)",
        d.multimodal_fraction()
    );
    println!();
    println!(
        "{:<10} {:>12} {:>14} {:>12}",
        "category", "within", "nearest-other", "bimodality"
    );
    for row in d.categories.iter().take(20) {
        println!(
            "{:<10} {:>12.4} {:>14.4} {:>12.2}",
            row.category, row.within_spread, row.nearest_other_centroid, row.bimodality
        );
    }
    if d.categories.len() > 20 {
        println!("… ({} more)", d.categories.len() - 20);
    }
    Ok(())
}

fn convert(args: &[String]) -> Result<(), String> {
    eprintln!("note: `dataset-tool convert` is deprecated; use `qcluster convert`");
    let input = args.first().ok_or("convert needs an input path")?;
    let output = args.get(1).ok_or("convert needs an output path")?;
    let dataset = load_dataset_auto(Path::new(input)).map_err(|e| e.to_string())?;
    let out_path = Path::new(output);
    let kind = match out_path.extension().and_then(|e| e.to_str()) {
        Some("json") => {
            save_dataset(&dataset, out_path).map_err(|e| e.to_string())?;
            "JSON dataset"
        }
        Some("qseg") => {
            // A raw vector segment: ground-truth labels are dropped, the
            // vectors become loadable by any qcluster-store reader.
            qcluster_store::write_segment(out_path, dataset.dim(), dataset.vectors())
                .map_err(|e| e.to_string())?;
            "vector segment (labels dropped)"
        }
        _ => {
            save_dataset_binary(&dataset, out_path).map_err(|e| e.to_string())?;
            "binary dataset"
        }
    };
    println!(
        "converted {} vectors x {} dims: {input} -> {output} ({kind})",
        dataset.len(),
        dataset.dim()
    );
    Ok(())
}

fn synth(args: &[String]) -> Result<(), String> {
    eprintln!(
        "note: `dataset-tool synth` is deprecated; use `qcluster synth <out.qseg> <n> <dim>`"
    );
    let [path, n, dim, ..] = args else {
        return Err("synth needs <out.qseg> <n> <dim>".into());
    };
    let n: u64 = n.parse().map_err(|_| "n must be an integer")?;
    let dim: usize = dim.parse().map_err(|_| "dim must be an integer")?;
    let flag = |name: &str, default: u64| -> Result<u64, String> {
        match args.iter().position(|a| a == name) {
            Some(i) => args
                .get(i + 1)
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| format!("{name} needs an integer value")),
            None => Ok(default),
        }
    };
    let centers = flag("--centers", 16)?;
    let seed = flag("--seed", 42)?;
    let start = std::time::Instant::now();
    let sealed = qcluster_bench::synth_segment(
        Path::new(path),
        n,
        dim,
        usize::try_from(centers).map_err(|_| "centers out of range")?,
        seed,
    )
    .map_err(|e| e.to_string())?;
    let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    println!(
        "sealed {sealed} x {dim} synthetic vectors ({centers} centers, seed {seed}) \
         to {path}: {bytes} bytes in {:.1}s",
        start.elapsed().as_secs_f64()
    );
    Ok(())
}

fn render(args: &[String]) -> Result<(), String> {
    let category: usize = args
        .first()
        .ok_or("render needs a category")?
        .parse()
        .map_err(|_| "category must be an integer")?;
    let index: usize = args
        .get(1)
        .ok_or("render needs an image index")?
        .parse()
        .map_err(|_| "index must be an integer")?;
    let out = args.get(2).ok_or("render needs an output path")?;
    let corpus = qcluster_bench::image_corpus(Scale::from_args(args));
    if category >= corpus.num_categories() {
        return Err(format!(
            "category {category} out of range ({} categories)",
            corpus.num_categories()
        ));
    }
    if index >= corpus.images_per_category() {
        return Err(format!(
            "index {index} out of range ({} per category)",
            corpus.images_per_category()
        ));
    }
    let img = corpus.render(category, index);
    let file = std::fs::File::create(out).map_err(|e| e.to_string())?;
    img.write_ppm(std::io::BufWriter::new(file))
        .map_err(|e| e.to_string())?;
    println!(
        "rendered category {category} image {index} ({}x{}, palette mode {}) to {out}",
        img.width(),
        img.height(),
        corpus.mode_of(category, index)
    );
    Ok(())
}

fn build(args: &[String]) -> Result<(), String> {
    let path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .ok_or("build needs an output path")?;
    let scale = Scale::from_args(args);
    let dataset = if args.iter().any(|a| a == "--semantic-gap") {
        semantic_gap_dataset(scale)
    } else if args.iter().any(|a| a == "--texture") {
        image_dataset(scale, FeatureKind::CooccurrenceTexture)
    } else {
        image_dataset(scale, FeatureKind::ColorMoments)
    };
    save_dataset(&dataset, Path::new(path)).map_err(|e| e.to_string())?;
    println!(
        "saved {} vectors x {} dims to {path}",
        dataset.len(),
        dataset.dim()
    );
    Ok(())
}

fn info(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("info needs a file path")?;
    let dataset = load_dataset(Path::new(path)).map_err(|e| e.to_string())?;
    let categories = dataset.len() / dataset.images_per_category();
    println!("images              : {}", dataset.len());
    println!("feature dims        : {}", dataset.dim());
    println!("categories          : {categories}");
    println!("images per category : {}", dataset.images_per_category());
    println!("index nodes         : {}", dataset.tree().num_nodes());
    println!("index leaf capacity : {}", dataset.tree().leaf_capacity());
    Ok(())
}

fn query(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("query needs a file path")?;
    let id: usize = args
        .get(1)
        .ok_or("query needs an image id")?
        .parse()
        .map_err(|_| "image id must be an integer")?;
    let k: usize = args
        .get(2)
        .map_or(Ok(10), |s| s.parse())
        .map_err(|_| "k must be an integer")?;
    let dataset = load_dataset(Path::new(path)).map_err(|e| e.to_string())?;
    if id >= dataset.len() {
        return Err(format!(
            "image id {id} out of range (dataset has {})",
            dataset.len()
        ));
    }
    let oracle = RelevanceOracle::new(&dataset);
    let cat = dataset.category(id);
    let q = EuclideanQuery::new(dataset.vector(id).to_vec());
    let (results, stats) = dataset.tree().knn(&q, k, None);
    println!(
        "query image {id} (category {cat}); {} node accesses",
        stats.nodes_accessed
    );
    println!(
        "{:<6} {:>6} {:>12} {:>10} {:>9}",
        "rank", "id", "distance", "category", "grade"
    );
    for (rank, n) in results.iter().enumerate() {
        let grade = oracle.score(cat, n.id);
        println!(
            "{:<6} {:>6} {:>12.5} {:>10} {:>9}",
            rank + 1,
            n.id,
            n.distance,
            dataset.category(n.id),
            grade
        );
    }
    Ok(())
}
